//! Serial drop-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no registry access, so the real `rayon` cannot
//! be vendored; this shim keeps every `par_*` call site source-compatible
//! while executing serially. Because the traits are blanket-implemented over
//! [`std::iter::Iterator`], all the usual adapters (`map`, `zip`,
//! `enumerate`, `for_each`, `collect`, …) keep working unchanged, and code
//! written against this shim stays correct under the real rayon: every
//! closure is still required to be shape-compatible with a parallel run
//! (no `&mut` captures across items beyond what `for_each_init` provides).

pub mod iter {
    /// Serial stand-in: every std iterator counts as a parallel iterator.
    pub trait ParallelIterator: Iterator + Sized {
        /// Run `op` for each item with a per-"worker" scratch value.
        ///
        /// Serially there is exactly one worker, so `init` runs once and the
        /// scratch is threaded through every call — the same guarantee rayon
        /// gives per worker thread, which is what callers must code against.
        fn for_each_init<T, INIT, OP>(self, init: INIT, op: OP)
        where
            INIT: FnMut() -> T,
            OP: FnMut(&mut T, Self::Item),
        {
            let mut init = init;
            let mut op = op;
            let mut scratch = init();
            for item in self {
                op(&mut scratch, item);
            }
        }

        /// Map with a per-worker scratch value (serial: one scratch).
        fn map_init<T, INIT, OP, R>(self, init: INIT, op: OP) -> MapInit<Self, T, OP>
        where
            INIT: FnMut() -> T,
            OP: FnMut(&mut T, Self::Item) -> R,
        {
            let mut init = init;
            MapInit { base: self, scratch: init(), op }
        }

        fn with_min_len(self, _len: usize) -> Self {
            self
        }

        fn with_max_len(self, _len: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIterator for I {}

    /// Serial stand-in for rayon's indexed (exact-length) parallel iterator.
    pub trait IndexedParallelIterator: ParallelIterator {}

    impl<I: Iterator> IndexedParallelIterator for I {}

    /// Iterator returned by [`ParallelIterator::map_init`].
    pub struct MapInit<I, T, OP> {
        base: I,
        scratch: T,
        op: OP,
    }

    impl<I, T, OP, R> Iterator for MapInit<I, T, OP>
    where
        I: Iterator,
        OP: FnMut(&mut T, I::Item) -> R,
    {
        type Item = R;

        fn next(&mut self) -> Option<R> {
            let item = self.base.next()?;
            Some((self.op)(&mut self.scratch, item))
        }
    }
}

pub mod slice {
    /// `par_chunks` over shared slices (serial: std `chunks`).
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_chunks_mut` over mutable slices (serial: std `chunks_mut`).
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IndexedParallelIterator, ParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};

    /// `into_par_iter()` for anything that is `IntoIterator` (ranges, Vec, …).
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for any collection whose shared reference iterates.
    pub trait IntoParallelRefIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for any collection whose mutable reference iterates.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Item = <&'data mut C as IntoIterator>::Item;
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Serial `join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The shim always runs on the calling thread.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn into_par_iter_on_range_supports_std_adapters() {
        let v: Vec<usize> = (0..10).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_on_vec_and_slice() {
        let data = vec![1.0, 2.0, 3.0];
        let s: f64 = data.par_iter().sum();
        assert_eq!(s, 6.0);
        let s2: f64 = data[..2].par_iter().sum();
        assert_eq!(s2, 3.0);
    }

    #[test]
    fn par_chunks_mut_partitions_disjointly() {
        let mut buf = vec![0.0; 10];
        buf.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as f64;
            }
        });
        assert_eq!(buf, [0., 0., 0., 1., 1., 1., 2., 2., 2., 3.]);
    }

    #[test]
    fn for_each_init_reuses_scratch() {
        let mut inits = 0;
        let mut out = vec![0usize; 5];
        {
            let cells: Vec<&mut usize> = out.iter_mut().collect();
            cells.into_par_iter().enumerate().for_each_init(
                || {
                    inits += 1;
                    Vec::<u8>::with_capacity(16)
                },
                |scratch, (i, cell)| {
                    scratch.clear();
                    scratch.extend(std::iter::repeat_n(0u8, i));
                    *cell = scratch.len();
                },
            );
        }
        assert_eq!(inits, 1);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
