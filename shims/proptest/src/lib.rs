//! Minimal property-testing harness, source-compatible with the subset of
//! `proptest` this workspace uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, range and tuple strategies, `Just`,
//! `prop_oneof!`, `proptest::collection::vec`, `ProptestConfig::with_cases`,
//! and `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Differences from real proptest: generation is deterministic (seeded from
//! the test name) and failing cases are reported without shrinking. That
//! trade keeps the whole harness dependency-free for the offline build while
//! preserving the correctness gate the property tests provide.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};
use std::ops::{Range, RangeInclusive};

/// Deterministic generation source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn deterministic(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// Failure channel used by the `prop_assert*` / `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (`cases` is the only knob this workspace reads).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Object-safe: combinators are `Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive strategy range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )+};
}

int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
    /// Alias matching real proptest's `prelude::prop` re-export
    /// (`prop::collection::vec` and friends).
    pub use crate as prop;
}

/// Stable tiny FNV-1a so each test gets its own deterministic stream.
#[doc(hidden)]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<$crate::BoxedStrategy<_>> =
            vec![$($crate::Strategy::boxed($arm)),+];
        $crate::Union::new(options)
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut prop_rng =
                    $crate::TestRng::deterministic($crate::seed_from_name(stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 65536,
                                "proptest {}: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {} passing case(s): {}",
                                stringify!($name),
                                accepted,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even_strategy() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..2.0, n in 1usize..40, m in 1usize..=8) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..40).contains(&n));
            prop_assert!((1..=8).contains(&m));
        }

        #[test]
        fn prop_map_applies(v in even_strategy()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn flat_map_links_dimensions(v in (1usize..10).prop_flat_map(|n| {
            prop::collection::vec(0.0f64..1.0, n).prop_map(move |data| (n, data))
        })) {
            let (n, data) = v;
            prop_assert_eq!(data.len(), n);
        }

        #[test]
        fn oneof_only_produces_arms(v in prop_oneof![Just(0usize), Just(1), 7usize..9]) {
            prop_assert!(v == 0 || v == 1 || v == 7 || v == 8, "got {}", v);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_generate_componentwise((a, b, c) in (0u64..5, 10u64..15, Just(99u64))) {
            prop_assert!(a < 5);
            prop_assert!((10..15).contains(&b));
            prop_assert_eq!(c, 99);
        }
    }

    #[test]
    fn vec_fixed_size_is_exact() {
        let mut rng = crate::TestRng::deterministic(1);
        let s = crate::collection::vec(0.0f64..1.0, 12usize);
        assert_eq!(crate::Strategy::generate(&s, &mut rng).len(), 12);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
