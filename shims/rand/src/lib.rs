//! Drop-in for the subset of the `rand` 0.8 API this workspace uses:
//! `thread_rng()`, `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over `f64`/integer ranges.
//!
//! The generator is SplitMix64 — a 64-bit state PRNG with full-period
//! output scrambling. It passes the statistical bar needed here (test
//! fixtures and K-Means seeding), is trivially seedable, and keeps the
//! whole workspace deterministic, which the registry-less build demands.

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Raw 64-bit output source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    fn gen(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (only `seed_from_u64` is used in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive sample range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )+};
}

int_sample_range!(usize, u64, u32, i64, i32);

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic 64-bit-state PRNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut state = seed ^ 0x5DEE_CE66_D1CE_4E5B;
            splitmix64(&mut state);
            StdRng { state }
        }
    }

    /// Handle to the per-thread generator returned by [`crate::thread_rng`].
    pub struct ThreadRng;

    thread_local! {
        static THREAD_RNG_STATE: std::cell::Cell<u64> =
            const { std::cell::Cell::new(0x853C_49E6_748F_EA9B) };
    }

    impl RngCore for ThreadRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG_STATE.with(|s| {
                let mut state = s.get();
                let out = splitmix64(&mut state);
                s.set(state);
                out
            })
        }
    }
}

/// Per-thread generator: deterministic per thread, advances across calls.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_range_respects_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0u64..u64::MAX);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn f64_values_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn thread_rng_advances() {
        let mut rng = thread_rng();
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn works_through_mut_reference_bound() {
        fn fill(rng: &mut impl Rng) -> f64 {
            rng.gen_range(-1.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = fill(&mut rng);
    }
}
