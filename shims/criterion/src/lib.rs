//! Minimal wall-clock benchmarking harness, source-compatible with the
//! subset of `criterion` this workspace uses: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Compared to real criterion there is no statistical outlier analysis —
//! each benchmark runs one warm-up iteration plus up to `sample_size` timed
//! iterations under a per-benchmark time budget, and reports min/mean/max.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier `group_name/function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Collects timed samples for one benchmark target.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    time_budget: Duration,
}

impl Bencher {
    /// Time `f` repeatedly: one warm-up call, then up to `sample_size`
    /// measured calls, stopping early once the time budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if start.elapsed() > self.time_budget && self.samples.len() >= 2 {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}  (no samples)");
        return;
    }
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{:<48} time: [{} {} {}]  (n={})",
        format!("{group}/{id}"),
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len()
    );
}

/// A named set of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    time_budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.time_budget = budget;
        self
    }

    fn run(&mut self, id: String, run: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            time_budget: self.time_budget,
        };
        run(&mut bencher);
        report(&self.name, &id, &bencher.samples);
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        self.run(id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    default_time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
            default_time_budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            time_budget: self.default_time_budget,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let time_budget = self.default_time_budget;
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size,
            time_budget,
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n * 100).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        smoke();
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: 4,
            time_budget: Duration::from_secs(1),
        };
        b.iter(|| black_box(2 + 2));
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("kmeans", 512).to_string(), "kmeans/512");
    }
}
