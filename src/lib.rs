//! # lrtddft-suite — workspace umbrella
//!
//! Re-exports the whole reproduction stack so examples and integration tests
//! have one import surface:
//!
//! * [`lrtddft`] — the paper's contribution (five solver versions, the
//!   distributed Algorithm-1 pipeline);
//! * [`isdf`] — interpolative separable density fitting with QRCP and
//!   K-Means point selection;
//! * [`pwdft`] — the plane-wave Kohn–Sham DFT ground-state substrate;
//! * [`mathkit`] — dense linear algebra (GEMM, SYEV, QRCP, LOBPCG);
//! * [`fftkit`] — FFTs and the periodic Poisson solver;
//! * [`parcomm`] — the simulated-MPI SPMD runtime;
//! * [`served`] — multi-tenant solve-as-a-service scheduler over split
//!   communicators.
//!
//! Start with `examples/quickstart.rs`.

pub use fftkit;
pub use isdf;
pub use lrtddft;
pub use mathkit;
pub use parcomm;
pub use pwdft;
pub use served;
