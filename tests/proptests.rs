//! Property-based tests (proptest) on the core numerical invariants.

use fftkit::{fft, ifft, Complex};
use isdf::{face_splitting_product, pair_weights, IsdfDecomposition};
use mathkit::gemm::{gemm, matmul, Transpose};
use mathkit::{cholesky, gemm_tn, qrcp, syev, Mat};
use proptest::prelude::*;

fn mat_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-1.0f64..1.0, r * c)
            .prop_map(move |data| Mat::from_vec(r, c, data))
    })
}

/// Two matrices sharing a row count (avoids `prop_assume` shape rejection).
fn mat_pair_strategy(
    max_rows: usize,
    max_a: usize,
    max_b: usize,
) -> impl Strategy<Value = (Mat, Mat)> {
    (1..=max_rows, 1..=max_a, 1..=max_b).prop_flat_map(|(r, ca, cb)| {
        (
            prop::collection::vec(-1.0f64..1.0, r * ca),
            prop::collection::vec(-1.0f64..1.0, r * cb),
        )
            .prop_map(move |(da, db)| (Mat::from_vec(r, ca, da), Mat::from_vec(r, cb, db)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------------------------------------------------------------- FFT

    #[test]
    fn fft_roundtrip_any_length(re in prop::collection::vec(-10.0f64..10.0, 1..80)) {
        let x: Vec<Complex> = re.iter().map(|&v| Complex::new(v, -0.5 * v)).collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval_any_length(re in prop::collection::vec(-5.0f64..5.0, 1..64)) {
        let x: Vec<Complex> = re.iter().map(|&v| Complex::new(v, v * 0.3)).collect();
        let y = fft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((ex - ey).abs() < 1e-8 * ex.max(1.0));
    }

    #[test]
    fn fft_shift_theorem(re in prop::collection::vec(-3.0f64..3.0, 4..48), shift in 1usize..8) {
        // DFT of a circular shift = phase ramp times original DFT.
        let n = re.len();
        let shift = shift % n;
        let x: Vec<Complex> = re.iter().map(|&v| Complex::from_re(v)).collect();
        let mut xs = x.clone();
        xs.rotate_right(shift);
        let fx = fft(&x);
        let fxs = fft(&xs);
        for k in 0..n {
            let phase = Complex::cis(-2.0 * std::f64::consts::PI * (k * shift) as f64 / n as f64);
            let expect = fx[k] * phase;
            prop_assert!((fxs[k] - expect).abs() < 1e-8,
                "bin {k}: {:?} vs {:?}", fxs[k], expect);
        }
    }

    // --------------------------------------------------------------- GEMM

    #[test]
    fn gemm_transpose_identity((a, b) in mat_pair_strategy(10, 8, 6)) {
        // Only compatible shapes: use AᵀB vs (BᵀA)ᵀ.
        let ab = gemm_tn(&a, &b);
        let ba = gemm_tn(&b, &a);
        prop_assert!(ab.max_abs_diff(&ba.transpose()) < 1e-10);
    }

    #[test]
    fn gemm_distributes_over_addition(
        m in 1usize..7,
        k in 1usize..6,
        n in 1usize..5,
        seed in 1u64..1000,
    ) {
        // Build shape-compatible operands from one dimension tuple.
        let mut s = seed;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let a = Mat::from_fn(m, k, |_, _| next());
        let b = Mat::from_fn(k, n, |_, _| next());
        let c = Mat::from_fn(k, n, |_, _| next());
        let mut bc = b.clone();
        bc.axpy(1.0, &c);
        let lhs = matmul(&a, &bc);
        let mut rhs = matmul(&a, &b);
        rhs.axpy(1.0, &matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn gemm_beta_accumulation(a in mat_strategy(5, 4), alpha in -2.0f64..2.0, beta in -2.0f64..2.0) {
        let b = Mat::eye(a.ncols());
        let mut c = a.clone();
        gemm(alpha, &a, Transpose::No, &b, Transpose::No, beta, &mut c);
        // C = alpha*A + beta*A = (alpha+beta) A
        let mut expect = a.clone();
        expect.scale(alpha + beta);
        prop_assert!(c.max_abs_diff(&expect) < 1e-10);
    }

    // -------------------------------------------------------------- eigen

    #[test]
    fn syev_reconstructs_matrix(a in mat_strategy(8, 8)) {
        prop_assume!(a.nrows() == a.ncols());
        let mut s = a.clone();
        s.symmetrize();
        let eig = syev(&s);
        // A = V Λ Vᵀ
        let mut vl = eig.vectors.clone();
        for j in 0..vl.ncols() {
            let lam = eig.values[j];
            for v in vl.col_mut(j) { *v *= lam; }
        }
        let mut recon = Mat::zeros(s.nrows(), s.ncols());
        gemm(1.0, &vl, Transpose::No, &eig.vectors, Transpose::Yes, 0.0, &mut recon);
        prop_assert!(recon.max_abs_diff(&s) < 1e-8);
    }

    #[test]
    fn syev_eigenvalues_bounded_by_norm(a in mat_strategy(7, 7)) {
        prop_assume!(a.nrows() == a.ncols());
        let mut s = a.clone();
        s.symmetrize();
        let eig = syev(&s);
        let bound = s.norm_fro() + 1e-12;
        for v in &eig.values {
            prop_assert!(v.abs() <= bound);
        }
    }

    // ----------------------------------------------------------- cholesky

    #[test]
    fn cholesky_of_gram_always_succeeds(a in mat_strategy(12, 5)) {
        prop_assume!(a.nrows() >= a.ncols());
        let mut g = gemm_tn(&a, &a);
        for i in 0..g.nrows() { g[(i, i)] += 1.0; } // shift to strict SPD
        let l = cholesky(&g);
        prop_assert!(l.is_ok());
        let l = l.unwrap();
        let mut llt = Mat::zeros(g.nrows(), g.ncols());
        gemm(1.0, &l, Transpose::No, &l, Transpose::Yes, 0.0, &mut llt);
        prop_assert!(llt.max_abs_diff(&g) < 1e-9);
    }

    // --------------------------------------------------------------- QRCP

    #[test]
    fn qrcp_pivot_magnitudes_nonincreasing(a in mat_strategy(12, 9)) {
        let f = qrcp(&a, a.ncols().min(a.nrows()), 0.0);
        for w in f.rdiag.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        // perm is a permutation
        let mut sorted = f.perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..a.ncols()).collect::<Vec<_>>());
    }

    // --------------------------------------------------------------- ISDF

    #[test]
    fn face_splitting_columns_are_products((a, b) in mat_pair_strategy(10, 3, 3)) {
        let z = face_splitting_product(&a, &b);
        prop_assert_eq!(z.ncols(), a.ncols() * b.ncols());
        for i in 0..a.ncols() {
            for j in 0..b.ncols() {
                let col = z.col(i * b.ncols() + j);
                for r in 0..a.nrows() {
                    prop_assert!((col[r] - a[(r, i)] * b[(r, j)]).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn pair_weights_bound_by_column_norms((a, b) in mat_pair_strategy(10, 3, 3)) {
        let w = pair_weights(&a, &b);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        // w(r) = (Σψ²)(Σφ²) equals the squared row norm product
        for r in 0..a.nrows() {
            let pa: f64 = (0..a.ncols()).map(|j| a[(r, j)].powi(2)).sum();
            let pb: f64 = (0..b.ncols()).map(|j| b[(r, j)].powi(2)).sum();
            prop_assert!((w[r] - pa * pb).abs() < 1e-12);
        }
    }

    #[test]
    fn isdf_full_point_set_is_interpolatory((a, b) in mat_pair_strategy(12, 2, 2)) {
        prop_assume!(a.nrows() >= 4);
        // With every grid point selected, ZCᵀ(CCᵀ)⁻¹C reproduces Z exactly
        // (Θ becomes an oblique projector onto the full row space).
        let points: Vec<usize> = (0..a.nrows()).collect();
        let isdf = IsdfDecomposition::build(&a, &b, &points);
        let err = isdf.relative_error(&a, &b);
        prop_assert!(err < 1e-6, "relative error {err}");
    }

    // ------------------------------------------------------- SIMD kernels

    // The explicit AVX2 microkernels promise *bitwise* identity with the
    // scalar fallback. Random shapes around the tile sizes (MR = 8, NR = 4/8)
    // exercise full tiles, partial edge tiles, the gemv row, the skinny
    // packed path, and the blocked path, across all transpose combinations.
    #[test]
    fn gemm_simd_and_scalar_agree_bitwise(
        m in 1usize..40,
        n in 1usize..20,
        k in 1usize..40,
        ta in 0usize..2,
        tb in 0usize..2,
        alpha in -2.0f64..2.0,
        beta_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        if !mathkit::simd::avx2_available() {
            return Ok(());
        }
        let beta = [0.0f64, 1.0, -0.5][beta_idx];
        let _g = kernel_lock();
        let ta = if ta == 1 { Transpose::Yes } else { Transpose::No };
        let tb = if tb == 1 { Transpose::Yes } else { Transpose::No };
        let (ar, ac) = if ta == Transpose::No { (m, k) } else { (k, m) };
        let (br, bc) = if tb == Transpose::No { (k, n) } else { (n, k) };
        let fill = |r: usize, c: usize, salt: u64| {
            Mat::from_fn(r, c, |i, j| {
                let h = (i as u64 + 31 * j as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed ^ salt);
                ((h % 2000) as f64 - 1000.0) * 1e-3
            })
        };
        let a = fill(ar, ac, 1);
        let b = fill(br, bc, 2);
        let c0 = fill(m, n, 3);
        let run = |kern: mathkit::Kernel| {
            let _guard = KernelRestore;
            mathkit::force_kernel(Some(kern));
            let mut c = c0.clone();
            gemm(alpha, &a, ta, &b, tb, beta, &mut c);
            c
        };
        let c_avx2 = run(mathkit::Kernel::Avx2);
        let c_scalar = run(mathkit::Kernel::Scalar);
        for (x, y) in c_avx2.as_slice().iter().zip(c_scalar.as_slice().iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(),
                "m={} n={} k={} ta={:?} tb={:?}", m, n, k, ta, tb);
        }
    }

    // Forcing the fallback through the dispatch override hook must actually
    // take effect (active_kernel reports Scalar) and still produce results
    // matching the naive triple loop.
    #[test]
    fn forced_scalar_fallback_matches_reference(
        m in 1usize..24,
        n in 1usize..12,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let _g = kernel_lock();
        let fill = |r: usize, c: usize, salt: u64| {
            Mat::from_fn(r, c, |i, j| {
                let h = (7 * i as u64 + 13 * j as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(seed ^ salt);
                ((h % 1000) as f64 - 500.0) * 2e-3
            })
        };
        let a = fill(m, k, 4);
        let b = fill(k, n, 5);
        let reference = matmul(&a, &b);
        let forced = {
            let _guard = KernelRestore;
            mathkit::force_kernel(Some(mathkit::Kernel::Scalar));
            prop_assert_eq!(mathkit::active_kernel(), mathkit::Kernel::Scalar);
            let mut c = Mat::zeros(m, n);
            gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
            c
        };
        let err = forced.max_abs_diff(&reference);
        prop_assert!(err < 1e-12 * (k as f64), "err {err}");
    }
}

/// Serialize tests that pin the global kernel dispatcher.
fn kernel_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Restores auto-detection even if an assertion unwinds mid-test.
struct KernelRestore;

impl Drop for KernelRestore {
    fn drop(&mut self) {
        mathkit::force_kernel(None);
    }
}
