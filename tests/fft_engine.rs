//! Property-based tests of the planned/batched FFT engine: batch round
//! trips on power-of-two and Bluestein axes, Hermitian symmetry of real
//! spectra, the two-for-one packed transform against independent complex
//! transforms, Parseval, and the fused diagonal-kernel batch apply.

use fftkit::poisson::signed_freq;
use fftkit::{pack_real_pair, Complex, Fft3, PoissonSolver};
use proptest::prelude::*;

/// Axis lengths mixing radix-2 (2, 4, 8) and Bluestein (3, 5, 6) paths.
const AXES: [usize; 6] = [2, 3, 4, 5, 6, 8];

/// A grid plan plus `k` real fields (column-major, `k·N` values).
fn batch_strategy(max_cols: usize) -> impl Strategy<Value = (Fft3, usize, Vec<f64>)> {
    (0usize..AXES.len(), 0usize..AXES.len(), 0usize..AXES.len(), 1..=max_cols).prop_flat_map(
        |(a1, a2, a3, k)| {
            let (n1, n2, n3) = (AXES[a1], AXES[a2], AXES[a3]);
            prop::collection::vec(-2.0f64..2.0, n1 * n2 * n3 * k)
                .prop_map(move |data| (Fft3::new(n1, n2, n3), k, data))
        },
    )
}

/// An even (`c[-G] = c[G]`) diagonal kernel — the shape every reciprocal-space
/// kernel in the pipeline has (Hartree, kinetic, preconditioner are all
/// functions of `|G|²`).
fn even_coeff(plan: &Fft3, scale: f64) -> Vec<f64> {
    let (n1, n2, n3) = (plan.n1, plan.n2, plan.n3);
    let mut out = vec![0.0; plan.len()];
    for i3 in 0..n3 {
        for i2 in 0..n2 {
            for i1 in 0..n1 {
                let m2 = (signed_freq(i1, n1).pow(2)
                    + signed_freq(i2, n2).pow(2)
                    + signed_freq(i3, n3).pow(2)) as f64;
                out[plan.idx(i1, i2, i3)] = scale / (1.0 + m2);
            }
        }
    }
    out
}

/// Reference diagonal-kernel application: one complex transform per column.
fn apply_per_column(plan: &Fft3, coeff: &[f64], fields: &[f64]) -> Vec<f64> {
    let n = plan.len();
    let mut out = Vec::with_capacity(fields.len());
    for col in fields.chunks(n) {
        let mut spec = plan.forward_real(col);
        for (z, &c) in spec.iter_mut().zip(coeff.iter()) {
            *z = z.scale(c);
        }
        out.extend(plan.inverse_to_real(spec));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn complex_batch_roundtrip((plan, k, data) in batch_strategy(3)) {
        let mut batch: Vec<Complex> = data.iter()
            .map(|&v| Complex::new(v, 0.7 * v - 0.1))
            .collect();
        let original = batch.clone();
        plan.forward_many(&mut batch);
        plan.inverse_many(&mut batch);
        prop_assert_eq!(batch.len(), k * plan.len());
        for (a, b) in batch.iter().zip(original.iter()) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn real_batch_roundtrip_via_identity_kernel((plan, _k, data) in batch_strategy(3)) {
        // All-ones coefficients make the packed forward+inverse an identity.
        let ones = vec![1.0; plan.len()];
        let mut out = vec![0.0; data.len()];
        plan.apply_real_diagonal_batch(&ones, &data, &mut out, false);
        for (a, b) in out.iter().zip(data.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn real_spectrum_is_hermitian((plan, _k, data) in batch_strategy(1)) {
        let spec = plan.forward_real(&data[..plan.len()]);
        for i in 0..plan.len() {
            let j = plan.conj_index(i);
            prop_assert!((spec[i] - spec[j].conj()).abs() < 1e-9,
                "bin {i} vs conj bin {j}");
        }
    }

    #[test]
    fn packed_pair_splits_into_independent_spectra((plan, _k, data) in batch_strategy(2)) {
        let n = plan.len();
        // Reuse the field data for both halves of the pair (second half
        // reversed so the two columns differ).
        let a: Vec<f64> = data[..n].to_vec();
        let b: Vec<f64> = data[..n].iter().rev().copied().collect();
        let mut z = vec![Complex::ZERO; n];
        pack_real_pair(&a, &b, &mut z);
        plan.forward(&mut z);
        let (sa, sb) = plan.split_packed_spectrum(&z);
        let ra = plan.forward_real(&a);
        let rb = plan.forward_real(&b);
        for i in 0..n {
            prop_assert!((sa[i] - ra[i]).abs() < 1e-9, "A spectrum bin {i}");
            prop_assert!((sb[i] - rb[i]).abs() < 1e-9, "B spectrum bin {i}");
        }
    }

    #[test]
    fn batch_parseval((plan, k, data) in batch_strategy(3)) {
        let n = plan.len();
        let mut batch: Vec<Complex> = data.iter()
            .map(|&v| Complex::new(v, -0.3 * v))
            .collect();
        let real_energy: Vec<f64> = (0..k)
            .map(|j| batch[j * n..(j + 1) * n].iter().map(|z| z.norm_sqr()).sum())
            .collect();
        plan.forward_many(&mut batch);
        for (j, &er) in real_energy.iter().enumerate() {
            let eg: f64 = batch[j * n..(j + 1) * n].iter()
                .map(|z| z.norm_sqr())
                .sum::<f64>() / n as f64;
            prop_assert!((er - eg).abs() < 1e-8 * er.max(1.0), "column {j}: {er} vs {eg}");
        }
    }

    #[test]
    fn diagonal_batch_apply_matches_per_column((plan, _k, data) in batch_strategy(4)) {
        let coeff = even_coeff(&plan, 2.5);
        let reference = apply_per_column(&plan, &coeff, &data);
        let mut out = vec![0.0; data.len()];
        plan.apply_real_diagonal_batch(&coeff, &data, &mut out, false);
        for (a, b) in out.iter().zip(reference.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Accumulate mode adds on top of pre-filled output.
        let mut acc = vec![1.5; data.len()];
        plan.apply_real_diagonal_batch(&coeff, &data, &mut acc, true);
        for (a, b) in acc.iter().zip(reference.iter()) {
            prop_assert!((a - (1.5 + b)).abs() < 1e-9);
        }
    }
}

#[test]
fn hartree_many_matches_single_solves_on_mixed_axes() {
    let plan = Fft3::new(8, 6, 5);
    let lengths = [6.0, 5.0, 4.5];
    let solver = PoissonSolver::new(&plan, lengths);
    let n = plan.len();
    let k = 3;
    let fields: Vec<f64> = (0..k * n).map(|i| ((i * 17 + 3) % 19) as f64 * 0.1 - 0.9).collect();
    let mut out = vec![0.0; k * n];
    solver.hartree_many(&fields, &mut out, false);
    for j in 0..k {
        let v = solver.hartree_potential(&fields[j * n..(j + 1) * n]);
        for (a, b) in out[j * n..(j + 1) * n].iter().zip(v.iter()) {
            assert!((a - b).abs() < 1e-10, "column {j}");
        }
    }
}
