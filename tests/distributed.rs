//! Integration tests for the parallel pipeline: the simulated-MPI runs must
//! reproduce the serial results across rank counts and both reduction
//! strategies — the correctness contract behind the paper's Figs. 3–5.

use lrtddft::naive::build_dense_hamiltonian;
use lrtddft::parallel::{distributed_dense_hamiltonian_with, distributed_isdf_hamiltonian_with};
use lrtddft::{IsdfRank, SolveOptions};
use lrtddft::problem::silicon_like_problem;
use lrtddft::versions::{build_isdf_hamiltonian, PointSelector};
use lrtddft::StageTimings;
use mathkit::syev;
use parcomm::{spmd, spmd_with_model, CostModel};

#[test]
fn distributed_naive_invariant_across_rank_counts() {
    let p = silicon_like_problem(1, 8, 2);
    let mut t = StageTimings::default();
    let serial = build_dense_hamiltonian(&p, &mut t);
    for ranks in [1usize, 2, 3, 5, 8] {
        let res = spmd(ranks, |c| distributed_dense_hamiltonian_with(c, &p, &SolveOptions::new()).0);
        for h in &res {
            assert!(
                h.max_abs_diff(&serial) < 1e-8,
                "ranks={ranks}: max diff {}",
                h.max_abs_diff(&serial)
            );
        }
    }
}

#[test]
fn pipelined_and_monolithic_reductions_agree() {
    let p = silicon_like_problem(1, 8, 2);
    for ranks in [2usize, 4] {
        let mono = spmd(ranks, |c| distributed_dense_hamiltonian_with(c, &p, &SolveOptions::new()).0);
        let pipe = spmd(ranks, |c| distributed_dense_hamiltonian_with(c, &p, &SolveOptions::new().pipelined(true)).0);
        assert!(mono[0].max_abs_diff(&pipe[0]) < 1e-9);
    }
}

#[test]
fn distributed_isdf_spectrum_stable_across_ranks() {
    let p = silicon_like_problem(1, 8, 2);
    let n_mu = p.n_cv(); // full rank: spectrum pinned by the exact fit
    let baseline = spmd(1, |c| distributed_isdf_hamiltonian_with(c, &p, &SolveOptions::new().rank(IsdfRank::Fixed(n_mu))).0.to_dense());
    let base_eig = syev(&baseline[0]);
    for ranks in [2usize, 4] {
        let res = spmd(ranks, |c| distributed_isdf_hamiltonian_with(c, &p, &SolveOptions::new().rank(IsdfRank::Fixed(n_mu))).0.to_dense());
        let eig = syev(&res[0]);
        for i in 0..4 {
            let rel =
                (eig.values[i] - base_eig.values[i]).abs() / base_eig.values[i].abs().max(1e-12);
            assert!(rel < 1e-5, "ranks={ranks}, state {i}: rel {rel}");
        }
    }
}

#[test]
fn distributed_isdf_matches_serial_isdf_spectrum() {
    // Distributed K-Means may pick a slightly different (equally valid)
    // point set than the serial path, so compare *spectra* at full rank
    // where both fits are exact.
    let p = silicon_like_problem(1, 8, 2);
    let n_mu = p.n_cv();
    let mut t = StageTimings::default();
    let serial = build_isdf_hamiltonian(&p, PointSelector::Qrcp, n_mu, &mut t).to_dense();
    let serial_eig = syev(&serial);
    let dist = spmd(3, |c| distributed_isdf_hamiltonian_with(c, &p, &SolveOptions::new().rank(IsdfRank::Fixed(n_mu))).0.to_dense());
    let dist_eig = syev(&dist[0]);
    for i in 0..4 {
        let rel = (dist_eig.values[i] - serial_eig.values[i]).abs()
            / serial_eig.values[i].abs().max(1e-12);
        assert!(rel < 1e-4, "state {i}: {} vs {}", dist_eig.values[i], serial_eig.values[i]);
    }
}

#[test]
fn comm_cost_model_does_not_change_results() {
    // The α-β model only affects *charged* time, never data.
    let p = silicon_like_problem(1, 8, 2);
    let free = spmd_with_model(2, CostModel::free(), |c| {
        distributed_dense_hamiltonian_with(c, &p, &SolveOptions::new()).0
    });
    let expensive = spmd_with_model(
        2,
        CostModel { alpha: 1.0, beta: 1e-3 },
        |c| distributed_dense_hamiltonian_with(c, &p, &SolveOptions::new()).0,
    );
    assert!(free[0].max_abs_diff(&expensive[0]) < 1e-14);
}

#[test]
fn rank_timings_report_comm_share() {
    let p = silicon_like_problem(1, 8, 2);
    let res = spmd(4, |c| {
        let (_, t) = distributed_dense_hamiltonian_with(c, &p, &SolveOptions::new());
        (t, c.stats())
    });
    for (t, stats) in res {
        assert!(t.mpi >= 0.0);
        assert!(stats.collective_calls >= 3, "expected alltoall x2 + allreduce");
        assert!(stats.bytes_sent > 0);
        assert!(stats.modeled_seconds > 0.0);
    }
}
