//! Cross-crate integration: SCF ground state → Casida problem → all five
//! solver versions, on a real (small) first-principles system.

use lrtddft::{CasidaProblem, IsdfRank, SolveOptions, Solver, Version};

/// All solves go through the `Solver` facade.
fn run(p: &CasidaProblem, v: Version, o: &SolveOptions) -> lrtddft::Solution {
    Solver::builder().version(v).options(*o).build().solve(p).unwrap()
}

use pwdft::{scf, silicon_supercell, water_in_box, Grid, ScfOptions};

fn si8_problem() -> CasidaProblem {
    let s = silicon_supercell(1);
    let grid = Grid::new(s.cell, [12, 12, 12]);
    let gs = scf(
        &grid,
        &s,
        ScfOptions {
            n_conduction: 3,
            max_iter: 12,
            band_max_iter: 25,
            density_tol: 1e-4,
            ..Default::default()
        },
    );
    CasidaProblem::from_ground_state(&grid, &gs)
}

#[test]
fn si8_five_versions_agree_at_full_rank() {
    let p = si8_problem();
    let opts = SolveOptions::new().n_states(3).rank(IsdfRank::Fixed(p.n_cv()));
    let reference = run(&p, Version::Naive, &opts);
    assert!(reference.energies[0] > 0.0, "excitations must be positive for a gapped system");
    for v in [
        Version::QrcpIsdf,
        Version::KmeansIsdf,
        Version::KmeansIsdfLobpcg,
        Version::ImplicitKmeansIsdfLobpcg,
    ] {
        let s = run(&p, v, &opts);
        for i in 0..3 {
            let rel =
                (s.energies[i] - reference.energies[i]).abs() / reference.energies[i].abs();
            assert!(
                rel < 1e-4,
                "{} state {i}: {} vs {} (rel {rel})",
                v.label(),
                s.energies[i],
                reference.energies[i]
            );
        }
    }
}

#[test]
fn si8_reduced_rank_error_is_small_paper_table5_shape() {
    let p = si8_problem();
    let reference = run(&p, Version::Naive, &SolveOptions::new().n_states(3));
    let reduced = run(
        &p,
        Version::ImplicitKmeansIsdfLobpcg,
        &SolveOptions::new().n_states(3).rank(IsdfRank::Fixed((p.n_cv() * 7 / 8).max(8))),
    );
    // Paper Table 5 reports sub-percent errors on production systems. On
    // this scaled-down Si8 fixture the reduced-rank error depends on which
    // orbital realization the (deterministic, seeded) SCF converges to:
    // sweeping the SCF seed measures 0.005%-5% per state (see
    // examples/rank_error_probe.rs). Bound each state by that envelope and
    // the mean by a tighter margin — a broken ISDF fit fails both by an
    // order of magnitude.
    let rels: Vec<f64> = (0..3)
        .map(|i| (reduced.energies[i] - reference.energies[i]).abs() / reference.energies[i])
        .collect();
    for (i, rel) in rels.iter().enumerate() {
        assert!(*rel < 0.06, "state {i}: relative error {rel}");
    }
    let mean = rels.iter().sum::<f64>() / rels.len() as f64;
    assert!(mean < 0.03, "mean relative error {mean} ({rels:?})");
}

#[test]
fn water_end_to_end_runs() {
    let s = water_in_box(12.0);
    let grid = Grid::new(s.cell, [16, 16, 16]);
    let gs = scf(
        &grid,
        &s,
        ScfOptions {
            n_conduction: 2,
            max_iter: 10,
            band_max_iter: 25,
            ..Default::default()
        },
    );
    let p = CasidaProblem::from_ground_state(&grid, &gs);
    assert_eq!(p.n_v(), 4);
    let sol = run(&p, Version::ImplicitKmeansIsdfLobpcg, &SolveOptions::new().n_states(2));
    assert_eq!(sol.energies.len(), 2);
    assert!(sol.energies[0] > 0.0);
    assert!(sol.energies[0] <= sol.energies[1]);
    assert!(sol.lobpcg_iterations.is_some());
}

#[test]
fn excitations_exceed_none_of_bare_gap_bounds() {
    // TDA with our (attractive) f_xc + (repulsive) Hartree kernel keeps the
    // lowest excitation within a physically sensible window around the bare
    // Kohn-Sham gap.
    let p = si8_problem();
    let bare_min = p
        .diag_d()
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    let sol = run(&p, Version::Naive, &SolveOptions::new().n_states(1));
    let e0 = sol.energies[0];
    assert!(e0 > 0.2 * bare_min, "excitation collapsed: {e0} vs bare {bare_min}");
    assert!(e0 < 5.0 * bare_min.max(1e-3), "excitation blew up: {e0} vs bare {bare_min}");
}
