//! Determinism and recovery properties of the fault-injection subsystem:
//! identical `FaultPlan` seeds must produce identical fault-event sequences
//! AND bitwise-identical recovered outputs, for arbitrary seeds and any of
//! the named injection sites; the recovered eigenvalues must always agree
//! with a fault-free run to 1e-8 (the ladder acceptance tolerance).

use faultkit::{arm, FaultKind, FaultPlan};
use lrtddft::problem::{synthetic_problem, CasidaProblem};
use lrtddft::{IsdfRank, SolveOptions, Solver, Version};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Campaign problem, built once (proptest re-enters the closure per case).
fn problem() -> &'static CasidaProblem {
    static P: OnceLock<CasidaProblem> = OnceLock::new();
    P.get_or_init(|| synthetic_problem([8, 8, 8], 6.0, 2, 2))
}

fn opts(p: &CasidaProblem) -> SolveOptions {
    SolveOptions::new().rank(IsdfRank::Fixed(p.n_cv())).n_states(3).seed(7)
}

/// The serial injection sites, each with the fault kind that makes sense
/// there and the pipeline version that reaches the site.
const SITES: [(&str, FaultKind, Version); 5] = [
    ("ham.c", FaultKind::NanPoison, Version::KmeansIsdf),
    ("ham.v_tilde", FaultKind::InfPoison, Version::KmeansIsdf),
    ("lobpcg.w", FaultKind::NanPoison, Version::ImplicitKmeansIsdfLobpcg),
    ("isdf.points", FaultKind::RankStarvation, Version::KmeansIsdf),
    ("kmeans.init", FaultKind::DegenerateSeeding, Version::KmeansIsdf),
];

/// Fault-free eigenvalues per version, computed once.
fn baseline(version: Version) -> Vec<f64> {
    static IMPLICIT: OnceLock<Vec<f64>> = OnceLock::new();
    static KMEANS: OnceLock<Vec<f64>> = OnceLock::new();
    let solve = move || {
        let p = problem();
        Solver::builder()
            .version(version)
            .options(opts(p))
            .build()
            .solve(p)
            .expect("fault-free baseline")
            .energies
    };
    match version {
        Version::ImplicitKmeansIsdfLobpcg => IMPLICIT.get_or_init(solve).clone(),
        _ => KMEANS.get_or_init(solve).clone(),
    }
}

/// One armed run: recovered energies, recovery log, rendered fault events.
fn armed_run(
    plan: &FaultPlan,
    version: Version,
) -> (Vec<f64>, Vec<String>, Vec<String>) {
    let p = problem();
    let campaign = arm(plan.clone());
    let sol = Solver::builder()
        .version(version)
        .options(opts(p))
        .build()
        .solve(p)
        .expect("single injected fault must heal");
    let events = campaign.events().iter().map(|e| e.render()).collect();
    (sol.energies, sol.recovery, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ same fault sequence ⇒ same bits out; and the healed
    /// result stays within the acceptance tolerance of the fault-free run.
    #[test]
    fn same_seed_campaigns_are_bit_reproducible(
        seed in 0u64..u64::MAX,
        site_ix in 0usize..SITES.len(),
        occurrence in 0u64..2,
    ) {
        let (site, kind, version) = SITES[site_ix];
        let plan = FaultPlan::new(seed).with(site, occurrence, kind);

        let (e1, r1, ev1) = armed_run(&plan, version);
        let (e2, r2, ev2) = armed_run(&plan, version);

        prop_assert_eq!(&ev1, &ev2, "fault-event sequences diverged");
        prop_assert_eq!(&r1, &r2, "recovery logs diverged");
        prop_assert_eq!(e1.len(), e2.len());
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "recovered output not bitwise stable");
        }

        let base = baseline(version);
        prop_assert_eq!(e1.len(), base.len());
        for (a, b) in base.iter().zip(&e1) {
            prop_assert!(
                (a - b).abs() < 1e-8,
                "healed eigenvalue {} vs fault-free {} (events {:?})", b, a, ev1
            );
        }
    }

    /// Different seeds may pick different poison elements, but the event
    /// *sites* are plan-driven, hence identical across seeds.
    #[test]
    fn event_sites_are_plan_driven(seed_a in 0u64..u64::MAX, seed_b in 0u64..u64::MAX) {
        let (site, kind, version) = SITES[0];
        let pa = FaultPlan::new(seed_a).with(site, 0, kind);
        let pb = FaultPlan::new(seed_b).with(site, 0, kind);
        let (_, _, ev_a) = armed_run(&pa, version);
        let (_, _, ev_b) = armed_run(&pb, version);
        prop_assert_eq!(ev_a.len(), 1);
        prop_assert_eq!(ev_b.len(), 1);
        prop_assert!(ev_a[0].contains("ham.c") && ev_b[0].contains("ham.c"));
    }
}
