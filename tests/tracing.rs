//! Integration tests for the `obskit` tracing subsystem wired through the
//! full distributed pipeline: span-derived `StageTimings` must agree with
//! the legacy section timers, the Chrome export must be schema-valid with
//! one lane per rank, recording must be thread-safe, and the disabled-mode
//! overhead on the `V_Hxc` GEMM must stay within budget.
//!
//! `obskit`'s recorder is process-global, so every test takes `OBSKIT_LOCK`
//! and drains leftover state before recording.

use lrtddft::{IsdfRank, SolveOptions};
use lrtddft::problem::silicon_like_problem;
use lrtddft::StageTimings;
use mathkit::{Mat, Transpose};
use parcomm::spmd;
use proptest::prelude::*;
use std::sync::Mutex;
use std::time::Instant;

static OBSKIT_LOCK: Mutex<()> = Mutex::new(());

/// Serialize a test against the process-global recorder and start it from a
/// clean, disabled state.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = OBSKIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obskit::disable();
    let _ = obskit::take_trace();
    guard
}

/// One traced run of the full implicit ISDF-LOBPCG pipeline.
fn traced_pipeline_run(ranks: usize) -> (obskit::Trace, Vec<StageTimings>) {
    let p = silicon_like_problem(1, 10, 3);
    let n_mu = p.n_cv().min(5 * (p.n_v() + p.n_c()));
    obskit::enable();
    let solver = lrtddft::Solver::builder()
        .options(SolveOptions::new().rank(IsdfRank::Fixed(n_mu)).n_states(3).seed(0xbeef))
        .build();
    let timings = spmd(ranks, |c| solver.solve_distributed(c, &p).1);
    obskit::disable();
    (obskit::take_trace(), timings)
}

#[test]
fn stage_timings_from_spans_match_legacy_on_pipeline() {
    let _g = exclusive();
    let (trace, legacy) = traced_pipeline_run(4);
    trace.validate().expect("valid span nesting");

    for (rank, legacy) in legacy.iter().enumerate() {
        let derived = StageTimings::from_trace(&trace, rank);
        for ((name, l), (_, d)) in legacy.stages().iter().zip(derived.stages().iter()) {
            let abs = (l - d).abs();
            let rel = abs / l.abs().max(1e-12);
            // 1% relative, with an absolute floor for µs-scale stages where
            // the per-collective span bookkeeping (~tens of ns each) shows.
            assert!(
                rel <= 0.01 || abs <= 5e-4,
                "rank {rank} stage {name}: legacy {l:.6}s vs spans {d:.6}s (rel {rel:.3})"
            );
        }
    }
}

#[test]
fn chrome_export_from_pipeline_run_is_schema_valid() {
    let _g = exclusive();
    let (trace, _) = traced_pipeline_run(4);
    trace.validate().expect("valid span nesting");

    let json = obskit::chrome::chrome_trace_json(&trace);
    let stats = obskit::chrome::validate_chrome_trace(&json).expect("schema-valid export");
    assert!(stats.lanes >= 4, "expected >= 4 rank lanes, got {}", stats.lanes);
    assert!(stats.spans > 0 && stats.instants > 0);
    for cat in ["kmeans", "theta", "fft", "gemm", "mpi", "diag"] {
        assert!(stats.categories.iter().any(|c| c == cat), "missing category {cat}");
    }

    // Per-collective byte accounting reaches the span args…
    for rank in 0..4 {
        assert!(trace.sum_arg(rank, "mpi:", "bytes") > 0.0, "rank {rank} has no mpi bytes");
    }
    // …and LOBPCG convergence telemetry reaches every rank's lane, with
    // monotone iteration numbers.
    for rank in 0..4 {
        let iters = trace.instants(rank, "lobpcg.iter");
        assert!(!iters.is_empty(), "rank {rank} has no lobpcg.iter events");
        let ids: Vec<f64> = iters
            .iter()
            .map(|(_, args)| {
                args.iter().find(|(k, _)| *k == "iter").map(|(_, v)| *v).unwrap_or(-1.0)
            })
            .collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "rank {rank}: iteration counter not increasing: {ids:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent recording from many threads: every event lands in its own
    /// rank lane, nesting stays valid, and counts are exact.
    #[test]
    fn concurrent_spans_keep_per_rank_lanes_consistent(
        threads in 2usize..6,
        reps in 1usize..6,
        depth in 1usize..4,
    ) {
        let _g = exclusive();
        obskit::enable();
        let handles: Vec<_> = (0..threads)
            .map(|rank| {
                std::thread::spawn(move || {
                    obskit::set_rank(rank);
                    for r in 0..reps {
                        let top = obskit::span(obskit::Stage::Gemm, "outer");
                        for d in 0..depth {
                            let inner = obskit::span(obskit::Stage::Mpi, "inner");
                            obskit::instant(
                                obskit::Stage::Other,
                                "tick",
                                &[("rep", r as f64), ("depth", d as f64)],
                            );
                            drop(inner);
                        }
                        drop(top);
                    }
                    obskit::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        obskit::disable();
        let trace = obskit::take_trace();
        prop_assert!(trace.validate().is_ok());
        prop_assert_eq!(trace.ranks.len(), threads);
        for lane in &trace.ranks {
            // Per rep: (1 outer + depth inner) spans at 2 events each, plus
            // depth instants.
            let expect = reps * ((1 + depth) * 2 + depth);
            prop_assert_eq!(lane.events.len(), expect);
        }
        let json = obskit::chrome::chrome_trace_json(&trace);
        let stats = obskit::chrome::validate_chrome_trace(&json).unwrap();
        prop_assert_eq!(stats.lanes, threads);
    }
}

#[test]
fn disabled_tracing_overhead_under_budget() {
    let _g = exclusive();
    // V_Hxc-shaped contraction, big enough (~75 Mflop) that per-call span
    // bookkeeping would be visible if it cost more than an atomic load.
    let (m, n, k) = (96usize, 96usize, 4096usize);
    let a = Mat::from_fn(k, m, |i, j| (((i * 7 + j * 13) % 23) as f64) * 0.04 - 0.44);
    let b = Mat::from_fn(k, n, |i, j| (((i * 11 + j * 3) % 19) as f64) * 0.05 - 0.45);
    let mut out = Mat::zeros(m, n);

    // Interleaved min-of-N with alternating order, retried: wall-clock noise
    // on shared CI hosts can exceed the 2% budget on any single attempt; the
    // minimum over repeated alternating samples isolates the systematic cost.
    let mut run = |with_span: bool| -> f64 {
        let t0 = Instant::now();
        let sp = with_span.then(|| obskit::span(obskit::Stage::Gemm, "v_hxc.contract"));
        mathkit::gemm(2.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut out);
        drop(sp);
        t0.elapsed().as_secs_f64()
    };
    run(true);
    run(false);
    let mut best_ratio = f64::INFINITY;
    for _attempt in 0..3 {
        let mut t_inst = f64::INFINITY;
        let mut t_raw = f64::INFINITY;
        for i in 0..8 {
            let first_instrumented = i % 2 == 0;
            let s1 = run(first_instrumented);
            let s2 = run(!first_instrumented);
            let (ti, tr) = if first_instrumented { (s1, s2) } else { (s2, s1) };
            t_inst = t_inst.min(ti);
            t_raw = t_raw.min(tr);
        }
        best_ratio = best_ratio.min(t_inst / t_raw);
        if best_ratio <= 1.02 {
            break;
        }
    }
    assert!(
        best_ratio <= 1.02,
        "disabled-tracing overhead {:.2}% exceeds the 2% budget",
        (best_ratio - 1.0) * 100.0
    );
    assert!(obskit::take_trace().ranks.is_empty(), "disabled run recorded events");
}
