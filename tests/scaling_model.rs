//! Integration of the calibrated scaling machinery: real distributed runs
//! feed the α–β extrapolation (the Fig. 7/8 methodology), and the redistri-
//! bution layer holds under randomized shapes.

use bench::scaling::{CommPattern, ScalingStudy, Stage};
use lrtddft::parallel::distributed_isdf_hamiltonian_with;
use lrtddft::{IsdfRank, SolveOptions};
use lrtddft::problem::silicon_like_problem;
use parcomm::{block_ranges, spmd, CostModel};
use proptest::prelude::*;

#[test]
fn calibrated_isdf_study_has_paper_shape() {
    // Measure real serial works, then check the extrapolated curve:
    // monotone efficiency decay, compute share shrinking with ranks.
    let p = silicon_like_problem(1, 12, 4);
    let n_mu = 40.min(p.n_cv());
    let opts = SolveOptions::new().rank(IsdfRank::Fixed(n_mu));
    let t = spmd(1, |c| distributed_isdf_hamiltonian_with(c, &p, &opts).1).pop().unwrap();
    let study = ScalingStudy::new(
        vec![
            Stage::new(
                "kmeans",
                t.kmeans,
                vec![CommPattern::Allreduce { bytes: 4 * n_mu * 8, times: 30 }],
            ),
            Stage::new(
                "fft",
                t.fft,
                vec![CommPattern::Alltoall { global_bytes: p.n_r() * n_mu * 8, times: 2 }],
            ),
            Stage::new(
                "gemm",
                t.gemm,
                vec![CommPattern::Allreduce { bytes: n_mu * n_mu * 8, times: 1 }],
            ),
        ],
        CostModel::default(),
    );
    let rows = study.strong_scaling(&[128, 256, 512, 1024, 2048]);
    assert!((rows[0].parallel_efficiency - 1.0).abs() < 1e-12);
    for w in rows.windows(2) {
        assert!(w[1].parallel_efficiency <= w[0].parallel_efficiency + 1e-9);
        assert!(w[1].compute_seconds <= w[0].compute_seconds + 1e-12);
        assert!(w[1].comm_seconds >= w[0].comm_seconds - 1e-12);
    }
}

#[test]
fn larger_work_scales_further() {
    // The paper's observation: bigger systems keep efficiency longer. Scale
    // all works 100× and compare efficiency at 2048 ranks.
    let mk = |scale: f64| {
        ScalingStudy::new(
            vec![Stage::new(
                "gemm",
                0.01 * scale,
                vec![CommPattern::Allreduce { bytes: 1 << 20, times: 1 }],
            )],
            CostModel::default(),
        )
    };
    let small = mk(1.0).strong_scaling(&[128, 2048]);
    let large = mk(100.0).strong_scaling(&[128, 2048]);
    assert!(
        large[1].parallel_efficiency > small[1].parallel_efficiency,
        "large {} should beat small {}",
        large[1].parallel_efficiency,
        small[1].parallel_efficiency
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn redistribution_roundtrip_random_shapes(
        n_rows in 1usize..40,
        n_cols in 1usize..12,
        ranks in 1usize..6,
    ) {
        use parcomm::redist::{col_to_row_blocks, row_to_col_blocks};
        let results = spmd(ranks, |c| {
            let rr = block_ranges(n_rows, ranks)[c.rank()].clone();
            let mut piece = vec![0.0; rr.len() * n_cols];
            for j in 0..n_cols {
                for (il, i) in rr.clone().enumerate() {
                    piece[j * rr.len() + il] = (i * 131 + j * 17) as f64;
                }
            }
            let col = row_to_col_blocks(c, &piece, n_rows, n_cols);
            let back = col_to_row_blocks(c, &col, n_rows, n_cols);
            back == piece
        });
        prop_assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn cost_model_monotone_in_bytes_and_ranks(
        bytes_a in 1usize..1_000_000,
        extra in 1usize..1_000_000,
        p in 2usize..4096,
    ) {
        let m = CostModel::default();
        prop_assert!(m.allreduce(p, bytes_a + extra) >= m.allreduce(p, bytes_a));
        prop_assert!(m.bcast(p, bytes_a + extra) >= m.bcast(p, bytes_a));
        // latency term grows with p for fixed bytes
        prop_assert!(m.alltoallv(2 * p, bytes_a) >= m.alltoallv(p, bytes_a) - 1e-12);
    }
}
