//! Integration tests for the `served` multi-tenant scheduler: concurrent
//! same-shape solves must share the process-wide FFT plan cache, and a
//! tenant's injected fault must never leak into a co-scheduled tenant's
//! results.
//!
//! `obskit`'s recorder and counters are process-global, so the tests that
//! read them take `OBSKIT_LOCK` and drain leftover state first.

use faultkit::{FaultKind, FaultPlan};
use lrtddft::{synthetic_problem, Solver};
use parcomm::spmd;
use served::{JobSpec, ServeConfig, Service};
use std::sync::{Arc, Mutex};

static OBSKIT_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = OBSKIT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obskit::disable();
    let _ = obskit::take_trace();
    guard
}

fn four_rank_config() -> ServeConfig {
    ServeConfig { ranks: 4, groups: 2, ..Default::default() }
}

/// Four tenants construct *their own* problem objects of the same shape (as
/// real clients would) and solve them concurrently on both groups. The 1-D
/// FFT plan table is process-wide, so at most one construction may build the
/// length-8 plan; every other lookup must hit the shared entry.
#[test]
fn concurrent_same_shape_solves_share_fft_plan_cache() {
    let _g = exclusive();
    obskit::enable();
    let service = Service::start(four_rank_config());
    let mut results = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4u64)
            .map(|tenant| {
                let service = &service;
                s.spawn(move || {
                    // Constructed inside the client thread: plan-cache
                    // lookups race for real across tenants.
                    let problem = Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2));
                    let spec = JobSpec::new(tenant, problem)
                        .with_solver(Solver::builder().n_states(2).build());
                    service.submit(spec).expect("admitted").wait().expect("completed")
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("client thread"));
        }
    });
    service.shutdown();
    obskit::disable();
    let counters = obskit::take_trace().counters;

    // One cubic Fft3 per tenant = one plan lookup each. The cache may have
    // been warmed by an earlier test in this process, so misses are at most
    // one, and at least the other three tenants must have shared.
    assert!(
        counters.fft_plan_hits >= 3,
        "expected >= 3 plan-cache hits across 4 same-shape tenants, got {}",
        counters.fft_plan_hits
    );
    assert!(
        counters.fft_plan_misses <= 1,
        "same-shape tenants must not each build their own plan ({} misses)",
        counters.fft_plan_misses
    );
    // Identical shape + identical options ⇒ identical eigenvalues.
    for r in &results[1..] {
        assert_eq!(r.values, results[0].values, "same-shape solves must agree bitwise");
    }
}

/// Tenant A carries a NaN-poison plan against the distributed Hamiltonian
/// build; tenant B submits the same structure clean, co-scheduled on the
/// same service. B's eigenvalues must be bitwise identical to a fault-free
/// solo run at the group size; A is retried-then-solved (the one-shot fault
/// fires on attempt one, the fresh solo attempt heals) and must observe its
/// own fault in its event log — and nothing else.
#[test]
fn poisoned_tenant_never_contaminates_coscheduled_victim() {
    let problem = Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2));
    let solver = Solver::builder().n_states(2).build();
    let solo = spmd(2, |c| solver.solve_distributed(c, &problem).0)[0].clone();

    let service = Service::start(four_rank_config());
    let poisoned = JobSpec::new(0xa, Arc::clone(&problem))
        .with_solver(solver)
        .with_fault_plan(FaultPlan::new(0xbad).with("par.v_tilde", 0, FaultKind::NanPoison));
    let clean = JobSpec::new(0xb, Arc::clone(&problem)).with_solver(solver);
    let ha = service.submit(poisoned).expect("attacker admitted");
    let hb = service.submit(clean).expect("victim admitted");
    let ra = ha.wait().expect("attacker completes");
    let rb = hb.wait().expect("victim completes");
    service.shutdown();

    // The one-shot plan fires per rank thread: a retry that lands on the
    // *other* group's (fresh) ranks is poisoned once more before healing.
    assert!(
        (2..=3).contains(&ra.attempts),
        "poisoned first attempt(s), healed on a retry: {} attempts",
        ra.attempts
    );
    assert!(
        ra.values.iter().zip(&solo).all(|(a, b)| a.to_bits() == b.to_bits()),
        "retried attacker converges to the clean result: {:?}",
        ra.values
    );
    assert!(!ra.fault_events.is_empty(), "injected fault must be logged on the attacker");
    assert!(
        ra.fault_events.iter().all(|e| e.contains("par.v_tilde")),
        "events name the poisoned site: {:?}",
        ra.fault_events
    );

    assert_eq!(rb.values.len(), solo.len());
    assert!(
        rb.values.iter().zip(&solo).all(|(a, b)| a.to_bits() == b.to_bits()),
        "victim diverged from the fault-free solo run: {:?} vs {:?}",
        rb.values,
        solo
    );
    assert!(rb.fault_events.is_empty(), "victim must not log another tenant's faults");
    assert!(!rb.cache_hit, "poisoned runs bypass the cache, so the victim solved fresh");
}

/// A rank stall (comm-delay) injected by one tenant slows only that tenant's
/// own solve window; the co-scheduled victim still matches the solo oracle.
#[test]
fn stalled_tenant_never_contaminates_coscheduled_victim() {
    let problem = Arc::new(synthetic_problem([8, 8, 8], 6.0, 2, 2));
    let solver = Solver::builder().n_states(2).build();
    let solo = spmd(2, |c| solver.solve_distributed(c, &problem).0)[0].clone();

    let service = Service::start(four_rank_config());
    let stalled = JobSpec::new(0xa, Arc::clone(&problem)).with_solver(solver).with_fault_plan(
        FaultPlan::new(0xbad)
            .with("comm.ireduce", 0, FaultKind::CommDelay { micros: 1500 })
            .with("comm.iallreduce", 0, FaultKind::CommDelay { micros: 1500 })
            .with("comm.iallgatherv", 0, FaultKind::CommDelay { micros: 1500 }),
    );
    let clean = JobSpec::new(0xb, Arc::clone(&problem)).with_solver(solver);
    let ha = service.submit(stalled).expect("attacker admitted");
    let hb = service.submit(clean).expect("victim admitted");
    let ra = ha.wait().expect("attacker completes");
    let rb = hb.wait().expect("victim completes");
    service.shutdown();

    assert!(!ra.fault_events.is_empty(), "the stall must actually fire");
    // A delay changes timing, not arithmetic: even the attacker's values
    // stay correct, and the victim matches the oracle bitwise.
    assert!(ra.values.iter().zip(&solo).all(|(a, b)| a.to_bits() == b.to_bits()));
    assert!(rb.values.iter().zip(&solo).all(|(a, b)| a.to_bits() == b.to_bits()));
    assert!(rb.fault_events.is_empty());
}
