//! Integration tests for the post-processing layer (spectra + analysis)
//! against the full solver stack.

use lrtddft::{
    absorption_spectrum, analyze_states, oscillator_strengths, problem::silicon_like_problem,
    transition_dipoles, CasidaProblem, SolveOptions, Solver, Version,
};

/// All solves go through the `Solver` facade.
fn run(p: &CasidaProblem, v: Version, o: &SolveOptions) -> lrtddft::Solution {
    Solver::builder().version(v).options(*o).build().solve(p).unwrap()
}


#[test]
fn spectra_consistent_between_naive_and_implicit() {
    let p = silicon_like_problem(1, 12, 4);
    let opts = SolveOptions::new().n_states(4).rank(lrtddft::IsdfRank::Fixed(p.n_cv()));
    let a = run(&p, Version::Naive, &opts);
    let b = run(&p, Version::ImplicitKmeansIsdfLobpcg, &opts);
    let fa = oscillator_strengths(&p, &a.energies, &a.coefficients);
    let fb = oscillator_strengths(&p, &b.energies, &b.coefficients);
    for i in 0..4 {
        // Eigenvectors may differ by sign/degenerate rotation; strengths of
        // non-degenerate states must agree.
        let gap_ok = i == 0 || (a.energies[i] - a.energies[i - 1]).abs() > 1e-6;
        if gap_ok {
            assert!(
                (fa[i] - fb[i]).abs() < 1e-4 * fa[i].abs().max(1e-6),
                "state {i}: f {} vs {}",
                fa[i],
                fb[i]
            );
        }
    }
}

#[test]
fn absorption_spectrum_peaks_at_bright_states() {
    let p = silicon_like_problem(1, 12, 4);
    let sol = run(&p, Version::Naive, &SolveOptions::new().n_states(6));
    let f = oscillator_strengths(&p, &sol.energies, &sol.coefficients);
    let (brightest, _) = f
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let emin = sol.energies[0] - 0.1;
    let emax = sol.energies.last().unwrap() + 0.1;
    let spec = absorption_spectrum(&sol.energies, &f, 0.005, emin, emax, 2000);
    let (peak_e, _) = spec
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(
        (peak_e - sol.energies[brightest]).abs() < 0.01,
        "spectrum peak {peak_e} vs brightest state {}",
        sol.energies[brightest]
    );
}

#[test]
fn transition_dipoles_match_brute_force() {
    let p = silicon_like_problem(1, 8, 2);
    let mu = transition_dipoles(&p);
    let dv = p.grid.dv();
    // brute-force a couple of entries
    for &(iv, ic) in &[(0usize, 0usize), (3, 1), (7, 0)] {
        let mut expect = [0.0f64; 3];
        for r in 0..p.n_r() {
            let c = p.grid.coords(r);
            let prod = p.psi_v[(r, iv)] * p.psi_c[(r, ic)] * dv;
            for a in 0..3 {
                expect[a] += prod * c[a];
            }
        }
        let row = p.pair_index(iv, ic);
        for a in 0..3 {
            assert!((mu[(row, a)] - expect[a]).abs() < 1e-10);
        }
    }
}

#[test]
fn analysis_identifies_band_edge_transition() {
    // The lowest bare transition is (highest valence → lowest conduction);
    // with a modest kernel the lowest excited state keeps that character.
    let p = silicon_like_problem(1, 12, 4);
    let sol = run(&p, Version::Naive, &SolveOptions::new().n_states(1));
    let states = analyze_states(&p, &sol.energies, &sol.coefficients, 5);
    let lead = &states[0].leading[0];
    // dominant pair involves the top valence band
    assert!(
        lead.i_v >= p.n_v() - 4,
        "dominant valence index {} too deep (N_v = {})",
        lead.i_v,
        p.n_v()
    );
    assert!(lead.weight > 0.2, "no dominant pair: {}", lead.weight);
}
