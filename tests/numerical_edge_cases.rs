//! Edge-case and invariant tests across the substrate crates: degenerate
//! shapes, extreme parameters, and physical sanity properties that the
//! module-level unit tests don't reach.

use fftkit::{Complex, Fft3};
use lrtddft::{CasidaProblem, IsdfRank, SolveOptions, Solver, Version};

/// All solves go through the `Solver` facade.
fn run(p: &CasidaProblem, v: Version, o: &SolveOptions) -> lrtddft::Solution {
    Solver::builder().version(v).options(*o).build().solve(p).unwrap()
}

use mathkit::Mat;
use parcomm::CostModel;
use pwdft::{erfc, gaussian_dos, Cell, Grid, Species};

#[test]
fn fft3_degenerate_grids() {
    // 1×1×1: transform is the identity.
    let plan = Fft3::new(1, 1, 1);
    let mut x = vec![Complex::new(3.5, -1.25)];
    plan.forward(&mut x);
    assert_eq!(x[0], Complex::new(3.5, -1.25));
    plan.inverse(&mut x);
    assert_eq!(x[0], Complex::new(3.5, -1.25));

    // Effectively 1-D grids embedded in 3-D.
    for dims in [(8usize, 1usize, 1usize), (1, 8, 1), (1, 1, 8)] {
        let plan = Fft3::new(dims.0, dims.1, dims.2);
        let x: Vec<Complex> = (0..8).map(|i| Complex::from_re(i as f64 - 3.0)).collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12, "{dims:?}");
        }
    }
}

#[test]
fn grid_for_cutoff_anisotropic() {
    let cell = Cell::new(5.0, 10.0, 20.0);
    let g = Grid::for_cutoff(cell, 8.0);
    // longer axes need at least as many points
    assert!(g.n[0] <= g.n[1] && g.n[1] <= g.n[2], "{:?}", g.n);
    for c in 0..3 {
        assert!(g.n[c].is_power_of_two());
        let raw = ((2.0f64 * 8.0).sqrt() * cell.lengths[c] / std::f64::consts::PI).ceil() as usize;
        assert!(g.n[c] >= raw.max(4));
    }
}

#[test]
fn species_parameters_physical() {
    for sp in [Species::H, Species::C, Species::O, Species::Si] {
        assert!(sp.z_ion() >= 1.0 && sp.z_ion() <= 6.0);
        assert!(sp.r_loc() > 0.1 && sp.r_loc() < 1.0);
        assert!(!sp.symbol().is_empty());
    }
    // oxygen binds tighter than silicon
    assert!(Species::O.r_loc() < Species::Si.r_loc());
}

#[test]
fn erfc_strictly_decreasing_and_bounded() {
    let mut prev = 2.0 + 1e-9;
    for i in -40..=40 {
        let x = i as f64 * 0.1;
        let v = erfc(x);
        assert!((0.0..=2.0).contains(&v), "erfc({x}) = {v}");
        assert!(v < prev + 1e-6, "not decreasing at {x}");
        prev = v;
    }
}

#[test]
fn dos_narrow_sigma_resolves_close_levels() {
    let levels = [0.50, 0.52];
    let wide = gaussian_dos(&levels, None, 0.05, 0.4, 0.62, 400);
    let narrow = gaussian_dos(&levels, None, 0.002, 0.4, 0.62, 400);
    let count_peaks = |d: &[(f64, f64)]| {
        d.windows(3)
            .filter(|w| w[1].1 > w[0].1 && w[1].1 > w[2].1 && w[1].1 > 1.0)
            .count()
    };
    assert_eq!(count_peaks(&narrow), 2, "narrow broadening must resolve both levels");
    assert!(count_peaks(&wide) <= 1, "wide broadening must merge them");
}

#[test]
fn cost_model_zero_bytes_still_charges_latency() {
    let m = CostModel::default();
    assert!(m.allreduce(64, 0) > 0.0);
    assert!(m.alltoallv(64, 0) > 0.0);
    assert_eq!(m.allreduce(1, 0), 0.0);
}

#[test]
fn solver_with_single_state_and_minimal_rank() {
    let p = lrtddft::problem::synthetic_problem([4, 4, 4], 5.0, 2, 2);
    // k = 1, N_mu = 1: extreme truncation must still run and stay finite,
    // bounded below by something positive for this gapped problem.
    let s = run(
        &p,
        Version::ImplicitKmeansIsdfLobpcg,
        &SolveOptions::new().n_states(1).rank(IsdfRank::Fixed(1)),
    );
    assert_eq!(s.energies.len(), 1);
    assert!(s.energies[0].is_finite());
    assert!(s.energies[0] > 0.0);
    assert_eq!(s.n_mu, 1);
}

#[test]
fn mat_empty_blocks_and_identity_ops() {
    let m = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
    let empty = m.col_block(2, 2);
    assert_eq!(empty.shape(), (4, 0));
    assert_eq!(empty.norm_fro(), 0.0);
    let full = m.row_block(0, 4);
    assert_eq!(full, m);
    let none = m.select_rows(&[]);
    assert_eq!(none.shape(), (0, 4));
}

#[test]
fn rank_factor_extremes() {
    // Huge factor clamps to the pair-count bound; tiny factor floors at 1.
    assert_eq!(IsdfRank::Factor(1e9).resolve(10_000, 4, 4), 16);
    assert_eq!(IsdfRank::Factor(1e-9).resolve(10_000, 4, 4), 1);
}

#[test]
fn version_solutions_share_problem_dimensions() {
    let p = lrtddft::problem::synthetic_problem([4, 4, 4], 5.0, 2, 2);
    for v in Version::all() {
        let s = run(&p, v, &SolveOptions::new().n_states(2));
        assert_eq!(s.coefficients.nrows(), p.n_cv(), "{:?}", v);
        assert_eq!(s.coefficients.ncols(), 2);
        assert_eq!(s.complexity.version_label, v.label());
    }
}
