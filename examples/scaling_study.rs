//! Parallel pipeline demo: run the distributed Algorithm-1 construction on
//! real thread ranks, then extrapolate to Cori-scale core counts with the
//! calibrated α–β model (paper Figs. 7–8 methodology, see DESIGN.md).
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use lrtddft::parallel::{distributed_dense_hamiltonian_with, distributed_isdf_hamiltonian_with};
use lrtddft::{IsdfRank, Solver};
use lrtddft::problem::silicon_like_problem;
use parcomm::spmd;

fn main() {
    let problem = silicon_like_problem(1, 12, 4);
    let n_mu = 40.min(problem.n_cv());
    println!(
        "Workload: N_r = {}, N_cv = {}, N_mu = {n_mu}",
        problem.n_r(),
        problem.n_cv()
    );

    // Real thread-rank runs: verify the distributed pipeline and read the
    // per-rank stage/communication breakdown.
    println!("\n-- real SPMD runs (thread ranks, simulated MPI collectives) --");
    println!("{:>5} | {:>10} | {:>10} | {:>10} | {:>12}", "ranks", "face+theta", "fft (s)", "gemm (s)", "comm calls");
    let naive_solver = Solver::builder().pipelined(true).build();
    let isdf_solver = Solver::builder().rank(IsdfRank::Fixed(n_mu)).build();
    for ranks in [1usize, 2, 4] {
        let naive = spmd(ranks, |c| {
            let (_, t) = distributed_dense_hamiltonian_with(c, &problem, naive_solver.options());
            (t, c.stats())
        });
        let isdf = spmd(ranks, |c| {
            let (_, t) = distributed_isdf_hamiltonian_with(c, &problem, isdf_solver.options());
            (t, c.stats())
        });
        let (tn, sn) = &naive[0];
        let (ti, si) = &isdf[0];
        println!(
            "{ranks:>5} | naive: {:.3}s fft {:.3}s gemm {:.3}s, {} collectives",
            tn.face_split, tn.fft, tn.gemm, sn.collective_calls
        );
        println!(
            "      | isdf : kmeans {:.3}s theta {:.3}s fft {:.3}s gemm {:.3}s, {} collectives ({:.1} MB sent)",
            ti.kmeans,
            ti.theta,
            ti.fft,
            ti.gemm,
            si.collective_calls,
            si.bytes_sent as f64 / 1e6
        );
    }

    // Model-extrapolated strong scaling (the Fig. 7 reproduction lives in
    // `cargo run --release -p bench --bin repro -- fig7`).
    println!("\n-- alpha-beta extrapolation to Cori-scale ranks --");
    let cal = bench_calibration(&problem, n_mu);
    for p in [128usize, 512, 2048] {
        let t = cal.time_at(p);
        println!("   P = {p:>5}: modeled ISDF construction {:.4} s", t);
    }
    println!("\nFull tables: cargo run --release -p bench --bin repro -- fig7");
}

/// Minimal inline calibration (the bench crate has the full version).
fn bench_calibration(
    problem: &lrtddft::CasidaProblem,
    n_mu: usize,
) -> bench::scaling::ScalingStudy {
    use bench::scaling::{CommPattern, ScalingStudy, Stage};
    let solver = Solver::builder().rank(IsdfRank::Fixed(n_mu)).build();
    let t = spmd(1, |c| distributed_isdf_hamiltonian_with(c, problem, solver.options()).1)
        .pop()
        .unwrap();
    ScalingStudy::new(
        vec![
            Stage::new(
                "kmeans",
                t.kmeans,
                vec![CommPattern::Allreduce { bytes: 4 * n_mu * 8, times: 30 }],
            ),
            Stage::new(
                "fft",
                t.fft,
                vec![CommPattern::Alltoall { global_bytes: problem.n_r() * n_mu * 8, times: 2 }],
            ),
            Stage::new(
                "gemm",
                t.gemm,
                vec![CommPattern::Allreduce { bytes: n_mu * n_mu * 8, times: 1 }],
            ),
        ],
        parcomm::CostModel::default(),
    )
}
