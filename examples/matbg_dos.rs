//! Bilayer-graphene (MATBG stand-in) ground- and excited-state DOS — the
//! paper's Fig. 9 application, scaled to a laptop.
//!
//! ```sh
//! cargo run --release --example matbg_dos
//! ```
//!
//! Two interlayer distances are compared: D = 2.6 Å (strong interlayer
//! hybridization → extra spectral weight near the Fermi level) and
//! D = 4.0 Å (decoupled layers).

use lrtddft::{CasidaProblem, Solver, Version};
use pwdft::{bilayer_graphene, gaussian_dos, scf, Grid, ScfOptions};

fn sparkline(values: &[f64]) -> String {
    let blocks = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    values
        .iter()
        .map(|v| blocks[((v / max) * 7.0).round() as usize % 8])
        .collect()
}

fn main() {
    for d in [2.6f64, 4.0] {
        let s = bilayer_graphene(1, 1, d, 18.0);
        let grid = Grid::new(s.cell, [8, 8, 16]);
        println!(
            "\n=== Bilayer graphene, D = {d} A: {} atoms, {} electrons, {} grid points ===",
            s.atoms.len(),
            s.n_electrons(),
            grid.len()
        );
        let gs = scf(
            &grid,
            &s,
            ScfOptions { n_conduction: 6, max_iter: 20, ..Default::default() },
        );
        let e_f = 0.5 * (gs.eps[gs.n_valence - 1] + gs.eps[gs.n_valence]);
        println!(
            "SCF {} iters on a demo-coarse grid (residual {:.1e} — run `repro fig9` for the converged version); gap = {:.4} Ha, E_F = {:.4} Ha",
            gs.iterations,
            gs.residual,
            gs.gap(),
            e_f
        );

        // Ground-state DOS around the Fermi level (paper Fig. 9a).
        let dos = gaussian_dos(&gs.eps, None, 0.03, e_f - 0.5, e_f + 0.5, 60);
        let vals: Vec<f64> = dos.iter().map(|(_, d)| *d).collect();
        println!("ground DOS [E_F±0.5 Ha]: |{}|", sparkline(&vals));

        // Excited-state DOS (paper Fig. 9b) via the implicit solver.
        let problem = CasidaProblem::from_ground_state(&grid, &gs);
        let k = 6.min(problem.n_cv());
        let sol = Solver::builder()
            .version(Version::ImplicitKmeansIsdfLobpcg)
            .n_states(k)
            .build()
            .solve(&problem)
            .expect("excited-state solve failed");
        println!(
            "lowest excitations (Ha): {}",
            sol.energies
                .iter()
                .map(|e| format!("{e:.4}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let emax = sol.energies.last().copied().unwrap_or(1.0) + 0.05;
        let xdos = gaussian_dos(&sol.energies, None, 0.02, 0.0, emax, 60);
        let xvals: Vec<f64> = xdos.iter().map(|(_, d)| *d).collect();
        println!("excitation DOS [0..{emax:.2} Ha]: |{}|", sparkline(&xvals));
    }
    println!("\nPaper's observation to look for: more low-energy spectral weight at D = 2.6 A than at 4.0 A.");
}
