//! End-to-end first-principles run: SCF ground state of bulk silicon, then
//! LR-TDDFT excitations, naive vs the paper's implicit K-Means-ISDF-LOBPCG.
//!
//! ```sh
//! cargo run --release --example silicon_excitations
//! ```
//!
//! This is the paper's Table 5 / Table 6 workflow at Si₈ scale: everything
//! from pseudopotentials to the Casida solve happens in this workspace.

use lrtddft::{
    analyze_states, describe_state, oscillator_strengths, CasidaProblem, IsdfRank, Solver,
    Version,
};
use pwdft::{scf, silicon_supercell, total_energy, Grid, ScfOptions};

fn main() {
    // 1. Ground state: Si8 conventional cell, LDA, HGH-style local pseudo.
    let structure = silicon_supercell(1);
    let grid = Grid::for_cutoff(structure.cell, 5.0);
    println!(
        "Si8: {} atoms, {} electrons, grid {}x{}x{} = {} points",
        structure.atoms.len(),
        structure.n_electrons(),
        grid.n[0],
        grid.n[1],
        grid.n[2],
        grid.len()
    );
    let t0 = std::time::Instant::now();
    let gs = scf(
        &grid,
        &structure,
        ScfOptions { n_conduction: 6, max_iter: 30, density_tol: 1e-5, ..Default::default() },
    );
    println!(
        "SCF: {} iterations, residual {:.2e}, HOMO-LUMO gap {:.4} Ha ({:.1}s)",
        gs.iterations,
        gs.residual,
        gs.gap(),
        t0.elapsed().as_secs_f64()
    );

    // 2. Excited states: naive dense reference vs implicit ISDF-LOBPCG.
    let problem = CasidaProblem::from_ground_state(&grid, &gs);
    println!(
        "Casida: N_v = {}, N_c = {}, N_cv = {}",
        problem.n_v(),
        problem.n_c(),
        problem.n_cv()
    );

    let t0 = std::time::Instant::now();
    let naive = Solver::builder()
        .version(Version::Naive)
        .n_states(5)
        .build()
        .solve(&problem)
        .expect("naive solve failed");
    let t_naive = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let fast = Solver::builder()
        .version(Version::ImplicitKmeansIsdfLobpcg)
        .n_states(5)
        .rank(IsdfRank::Fixed((problem.n_cv() * 3 / 4).max(8)))
        .build()
        .solve(&problem)
        .expect("ISDF solve failed");
    let t_fast = t0.elapsed().as_secs_f64();

    println!("\n  state |   naive (Ha) | ISDF-LOBPCG (Ha) | rel. error");
    println!("  ------+--------------+------------------+-----------");
    for i in 0..5.min(naive.energies.len()) {
        let rel = (naive.energies[i] - fast.energies[i]) / naive.energies[i];
        println!(
            "    {i}   | {:>12.6} | {:>16.6} | {:>+9.4}%",
            naive.energies[i],
            fast.energies[i],
            100.0 * rel
        );
    }
    println!(
        "\nnaive {:.2}s vs ISDF-LOBPCG {:.2}s  ->  speedup {:.2}x at N_mu = {}",
        t_naive,
        t_fast,
        t_naive / t_fast.max(1e-12),
        fast.n_mu
    );

    // 3. Post-processing: total energy, state character, oscillator strengths.
    let e = total_energy(&grid, &structure, &gs);
    println!(
        "\nGround-state total energy: {:.4} Ha (band {:.4}, E_H {:.4}, E_xc {:.4}, Ewald {:.4})",
        e.total(),
        e.band,
        e.hartree,
        e.exc,
        e.ewald
    );
    let f = oscillator_strengths(&problem, &fast.energies, &fast.coefficients);
    let states = analyze_states(&problem, &fast.energies, &fast.coefficients, 3);
    println!("\nExcited-state characters (orbital pairs, weights, oscillator strengths):");
    for (s, fi) in states.iter().zip(&f) {
        println!("  {}   f = {:.4}", describe_state(s), fi);
    }
}
