//! Quickstart: solve a small Casida problem five ways and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic silicon-shaped problem (no SCF needed), runs every
//! solver version of paper Table 4, and prints the lowest three excitation
//! energies plus stage timings — a one-minute tour of the whole API.

use lrtddft::{problem::silicon_like_problem, Solver, Version};

fn main() {
    // A Si8-shaped workload: 16 valence + 4 conduction orbitals on a 12³
    // grid. Dimensions mirror the paper's setup at laptop scale.
    let problem = silicon_like_problem(1, 12, 4);
    println!(
        "Problem: N_r = {}, N_v = {}, N_c = {}, N_cv = {}",
        problem.n_r(),
        problem.n_v(),
        problem.n_c(),
        problem.n_cv()
    );

    let mut reference: Option<Vec<f64>> = None;

    for version in Version::all() {
        let solver = Solver::builder().version(version).n_states(3).build();
        let t0 = std::time::Instant::now();
        let sol = solver.solve(&problem).expect("solve failed");
        let wall = t0.elapsed().as_secs_f64();
        let errs: Vec<String> = match &reference {
            None => sol.energies.iter().map(|_| "ref".to_string()).collect(),
            Some(r) => sol
                .energies
                .iter()
                .zip(r.iter())
                .map(|(e, r)| format!("{:+.4}%", 100.0 * (e - r) / r))
                .collect(),
        };
        println!(
            "\n{:<28} wall {:.3}s  (construct {:.3}s, diag {:.3}s, N_mu = {})",
            version.label(),
            wall,
            sol.timings.construction(),
            sol.timings.diag,
            sol.n_mu
        );
        for (i, (e, err)) in sol.energies.iter().zip(&errs).enumerate() {
            println!("   lambda_{i} = {e:.6} Ha   [{err}]");
        }
        if let Some(iters) = sol.lobpcg_iterations {
            println!("   LOBPCG iterations: {iters}");
        }
        if reference.is_none() {
            reference = Some(sol.energies.clone());
        }
    }
    println!("\nAll versions agree to sub-percent accuracy while the ISDF paths skip the O(N^6) dense work.");
}
