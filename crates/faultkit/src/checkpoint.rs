//! Lightweight in-memory checkpoint/restart for iterative state.
//!
//! Solvers deposit their last-good iterate under a string key each
//! iteration; recovery ladders take it back and resume instead of
//! recomputing from scratch. Checkpoints are thread-local (each SPMD rank
//! keeps its own) and only recorded **while a fault plan is armed** — the
//! fault-free hot path pays one thread-local branch and no copies.

use std::cell::RefCell;
use std::collections::HashMap;

/// One saved iterate: a flat buffer plus its matrix dims and the iteration
/// it was taken at.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    pub iteration: usize,
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

thread_local! {
    static STORE: RefCell<HashMap<String, Checkpoint>> = RefCell::new(HashMap::new());
}

/// Save `cp` under `key`. No-op unless a fault plan is armed on this thread.
pub fn checkpoint_save(key: &str, cp: Checkpoint) {
    if !crate::is_armed() {
        return;
    }
    STORE.with(|s| {
        s.borrow_mut().insert(key.to_string(), cp);
    });
}

/// Remove and return the checkpoint under `key`, if any.
pub fn checkpoint_take(key: &str) -> Option<Checkpoint> {
    STORE.with(|s| s.borrow_mut().remove(key))
}

/// Peek at the checkpoint under `key` without consuming it.
pub fn checkpoint_peek(key: &str) -> Option<Checkpoint> {
    STORE.with(|s| s.borrow().get(key).cloned())
}

/// Drop every checkpoint on this thread (start of a fresh campaign case).
pub fn checkpoint_clear() {
    STORE.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arm, FaultPlan};

    #[test]
    fn save_requires_armed_plan() {
        checkpoint_clear();
        checkpoint_save("k", Checkpoint { iteration: 1, rows: 1, cols: 1, data: vec![1.0] });
        assert!(checkpoint_take("k").is_none());

        let _c = arm(FaultPlan::new(0));
        checkpoint_save("k", Checkpoint { iteration: 2, rows: 1, cols: 2, data: vec![1.0, 2.0] });
        let cp = checkpoint_peek("k").expect("saved while armed");
        assert_eq!(cp.iteration, 2);
        let cp = checkpoint_take("k").expect("take consumes");
        assert_eq!(cp.data, vec![1.0, 2.0]);
        assert!(checkpoint_take("k").is_none());
    }

    #[test]
    fn clear_empties_store() {
        let _c = arm(FaultPlan::new(0));
        checkpoint_save("a", Checkpoint { iteration: 0, rows: 1, cols: 1, data: vec![0.0] });
        checkpoint_clear();
        assert!(checkpoint_peek("a").is_none());
    }
}
