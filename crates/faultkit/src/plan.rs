//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] names *where* (a hook site string), *when* (the `nth`
//! occurrence of that site on each rank), and *what* ([`FaultKind`]). Arming
//! a plan ([`arm`]) installs it in the current thread; SPMD runtimes
//! propagate the armed handle into rank threads ([`handle`]/[`install`]) so
//! every rank sees the same plan and per-rank occurrence counters advance in
//! lockstep — which makes collective faults fire symmetrically.
//!
//! Every fault is **one-shot per rank**: once spec `i` fires on rank `r` it
//! is consumed there, so a recovery retry of the same code path runs clean.
//! All randomness (which element of a buffer gets poisoned) derives from the
//! plan seed via SplitMix64, so identical plans produce identical fault
//! sequences — the determinism gate the campaign runner and the proptest
//! both rely on.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What to inject when a spec fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one seed-chosen element of the hooked buffer with NaN.
    NanPoison,
    /// Overwrite one seed-chosen element of the hooked buffer with +Inf.
    InfPoison,
    /// Truncate a point-selection result to half the requested rank.
    RankStarvation,
    /// Collapse every K-Means centroid onto a single grid point.
    DegenerateSeeding,
    /// Sleep the progress engine for `micros` before running the collective.
    CommDelay { micros: u64 },
    /// Like `CommDelay` but sized to exceed a wait deadline, so the
    /// wait-with-deadline + retry path is exercised.
    CommStall { micros: u64 },
    /// Drop the request before submission; the issuing rank must re-issue.
    CommDrop,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::NanPoison => "nan-poison",
            FaultKind::InfPoison => "inf-poison",
            FaultKind::RankStarvation => "rank-starvation",
            FaultKind::DegenerateSeeding => "degenerate-seeding",
            FaultKind::CommDelay { .. } => "comm-delay",
            FaultKind::CommStall { .. } => "comm-stall",
            FaultKind::CommDrop => "comm-drop",
        }
    }
}

/// One planned fault: fire `kind` on the `nth` (0-based) occurrence of hook
/// calls at `site`, independently on every rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    pub site: String,
    pub nth: u64,
    pub kind: FaultKind,
}

/// A reproducible fault campaign: a seed plus an ordered list of specs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Builder-style: add one spec.
    pub fn with(mut self, site: &str, nth: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { site: site.to_string(), nth, kind });
        self
    }
}

/// Record of one fired fault, in firing order per rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: String,
    pub rank: usize,
    pub occurrence: u64,
    pub kind: FaultKind,
    /// Kind-specific detail: poisoned element index, points kept, etc.
    pub detail: u64,
}

impl FaultEvent {
    /// Stable one-line rendering, used by the campaign log and the
    /// bit-reproducibility comparison.
    pub fn render(&self) -> String {
        format!(
            "{}@{}#{} rank{} detail={}",
            self.kind.label(),
            self.site,
            self.occurrence,
            self.rank,
            self.detail
        )
    }
}

/// Comm-level fault decision returned by [`comm_fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommFault {
    /// Sleep this long on the progress engine before running the collective.
    Delay(Duration),
    /// Drop the request before submission.
    Drop,
}

struct ArmedState {
    plan: FaultPlan,
    /// Occurrences seen so far, per (site, rank).
    counters: Mutex<HashMap<(String, usize), u64>>,
    /// Specs already fired, per (spec index, rank) — one-shot consumption.
    consumed: Mutex<HashSet<(usize, usize)>>,
    events: Mutex<Vec<FaultEvent>>,
}

/// Cloneable cross-thread reference to an armed plan; opaque on purpose.
#[derive(Clone)]
pub struct Handle(Arc<ArmedState>);

impl Handle {
    /// Arm `plan` into a detached handle **without** touching the current
    /// thread's armed state. The serving scheduler builds one of these per
    /// faulted tenant job and installs it only around that job's execution
    /// window ([`install_scoped`]), so co-scheduled tenants never see it.
    pub fn armed(plan: FaultPlan) -> Handle {
        Handle(Arc::new(ArmedState {
            plan,
            counters: Mutex::new(HashMap::new()),
            consumed: Mutex::new(HashSet::new()),
            events: Mutex::new(Vec::new()),
        }))
    }

    /// Every fault fired so far, across all ranks, in a stable order
    /// (rank-major, then firing order). Same contract as
    /// [`Campaign::events`], but usable from a detached handle.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut ev = lock_events(&self.0);
        ev.sort_by(|a, b| {
            (a.rank, &a.site, a.occurrence).cmp(&(b.rank, &b.site, b.occurrence))
        });
        ev
    }

    /// Number of faults fired so far.
    pub fn fired(&self) -> usize {
        lock_events(&self.0).len()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ArmedState>>> = const { RefCell::new(None) };
    static RANK: Cell<usize> = const { Cell::new(0) };
}

/// RAII guard for an armed plan; dropping it disarms the current thread.
pub struct Campaign {
    state: Arc<ArmedState>,
}

impl Campaign {
    /// Every fault fired so far, across all ranks, in a stable order
    /// (rank-major, then firing order).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut ev = lock_events(&self.state);
        ev.sort_by(|a, b| {
            (a.rank, &a.site, a.occurrence).cmp(&(b.rank, &b.site, b.occurrence))
        });
        ev
    }

    /// Number of faults fired so far.
    pub fn fired(&self) -> usize {
        lock_events(&self.state).len()
    }
}

fn lock_events(state: &ArmedState) -> Vec<FaultEvent> {
    state.events.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

impl Drop for Campaign {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Arm `plan` on the current thread and return the campaign guard.
pub fn arm(plan: FaultPlan) -> Campaign {
    let state = Arc::new(ArmedState {
        plan,
        counters: Mutex::new(HashMap::new()),
        consumed: Mutex::new(HashSet::new()),
        events: Mutex::new(Vec::new()),
    });
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&state)));
    Campaign { state }
}

/// The current thread's armed plan, if any — pass to [`install`] in spawned
/// worker/rank threads so they share the campaign.
pub fn handle() -> Option<Handle> {
    CURRENT.with(|c| c.borrow().as_ref().map(|s| Handle(Arc::clone(s))))
}

/// Install (or clear) an armed plan on the current thread.
pub fn install(h: Option<Handle>) {
    CURRENT.with(|c| *c.borrow_mut() = h.map(|h| h.0));
}

/// RAII guard restoring the thread's previously armed plan on drop —
/// returned by [`install_scoped`].
pub struct InstallGuard {
    previous: Option<Arc<ArmedState>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// Install `h` for the lifetime of the returned guard, then restore whatever
/// was armed before. This is the tenant-isolation primitive: a rank thread
/// executing a faulted tenant's job scopes that tenant's plan to exactly the
/// job window, so neighbouring jobs on the same rank run with their own (or
/// no) plan.
#[must_use = "dropping the guard immediately restores the previous plan"]
pub fn install_scoped(h: Option<Handle>) -> InstallGuard {
    let previous = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), h.map(|h| h.0)));
    InstallGuard { previous }
}

/// Tag this thread with its SPMD rank (rank 0 outside SPMD regions).
pub fn set_rank(rank: usize) {
    RANK.with(|r| r.set(rank));
}

/// Whether a plan is armed on this thread. Hooks are no-ops when not.
pub fn is_armed() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// SplitMix64 — the deterministic element-picker for poison faults.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Core matcher: bump the (site, rank) counter and return the first armed,
/// unconsumed spec whose `nth` matches, filtered by `accepts`.
fn fire(site: &str, accepts: impl Fn(FaultKind) -> bool) -> Option<(FaultKind, u64, u64)> {
    let state = CURRENT.with(|c| c.borrow().as_ref().map(Arc::clone))?;
    let rank = RANK.with(|r| r.get());
    let occurrence = {
        let mut counters = state.counters.lock().unwrap_or_else(|p| p.into_inner());
        let slot = counters.entry((site.to_string(), rank)).or_insert(0);
        let occ = *slot;
        *slot += 1;
        occ
    };
    let mut hit = None;
    {
        let mut consumed = state.consumed.lock().unwrap_or_else(|p| p.into_inner());
        for (i, spec) in state.plan.faults.iter().enumerate() {
            if spec.site == site
                && spec.nth == occurrence
                && accepts(spec.kind)
                && !consumed.contains(&(i, rank))
            {
                consumed.insert((i, rank));
                hit = Some(spec.kind);
                break;
            }
        }
    }
    let kind = hit?;
    Some((kind, occurrence, state.plan.seed))
}

fn record(site: &str, occurrence: u64, kind: FaultKind, detail: u64) {
    if let Some(state) = CURRENT.with(|c| c.borrow().as_ref().map(Arc::clone)) {
        let rank = RANK.with(|r| r.get());
        let mut ev = state.events.lock().unwrap_or_else(|p| p.into_inner());
        ev.push(FaultEvent { site: site.to_string(), rank, occurrence, kind, detail });
    }
}

/// Poison hook for named buffers. Returns `true` when a fault fired (one
/// seed-chosen element of `buf` is now NaN or +Inf).
pub fn inject_slice(site: &str, buf: &mut [f64]) -> bool {
    let Some((kind, occ, seed)) =
        fire(site, |k| matches!(k, FaultKind::NanPoison | FaultKind::InfPoison))
    else {
        return false;
    };
    if buf.is_empty() {
        return false;
    }
    let idx = (splitmix64(seed ^ site_hash(site) ^ occ) % buf.len() as u64) as usize;
    buf[idx] = match kind {
        FaultKind::InfPoison => f64::INFINITY,
        _ => f64::NAN,
    };
    record(site, occ, kind, idx as u64);
    true
}

/// Rank-starvation hook for point selections: truncates `points` to half the
/// requested count. Returns `true` when a fault fired.
pub fn starve_points(site: &str, points: &mut Vec<usize>) -> bool {
    let Some((kind, occ, _)) = fire(site, |k| matches!(k, FaultKind::RankStarvation)) else {
        return false;
    };
    let keep = (points.len() / 2).max(1);
    points.truncate(keep);
    record(site, occ, kind, keep as u64);
    true
}

/// Degenerate-seeding hook: `true` means the K-Means initializer should
/// collapse every centroid onto one grid point.
pub fn degenerate_seeding(site: &str) -> bool {
    let Some((kind, occ, _)) = fire(site, |k| matches!(k, FaultKind::DegenerateSeeding)) else {
        return false;
    };
    record(site, occ, kind, 0);
    true
}

/// Comm hook, called by the progress engine at issue time. Because rank
/// counters advance in lockstep across an SPMD region, the same decision
/// fires on every rank of the same collective.
pub fn comm_fault(site: &str) -> Option<CommFault> {
    let (kind, occ, _) = fire(site, |k| {
        matches!(k, FaultKind::CommDelay { .. } | FaultKind::CommStall { .. } | FaultKind::CommDrop)
    })?;
    let fault = match kind {
        FaultKind::CommDelay { micros } | FaultKind::CommStall { micros } => {
            record(site, occ, kind, micros);
            CommFault::Delay(Duration::from_micros(micros))
        }
        _ => {
            record(site, occ, kind, 0);
            CommFault::Drop
        }
    };
    Some(fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hooks_are_noops() {
        let mut buf = vec![1.0, 2.0];
        assert!(!inject_slice("x", &mut buf));
        assert_eq!(buf, vec![1.0, 2.0]);
        let mut pts = vec![1, 2, 3];
        assert!(!starve_points("x", &mut pts));
        assert_eq!(pts.len(), 3);
        assert!(!degenerate_seeding("x"));
        assert!(comm_fault("x").is_none());
    }

    #[test]
    fn nth_occurrence_fires_once() {
        let c = arm(FaultPlan::new(7).with("buf", 1, FaultKind::NanPoison));
        let mut buf = vec![1.0; 8];
        assert!(!inject_slice("buf", &mut buf)); // occurrence 0
        assert!(inject_slice("buf", &mut buf)); // occurrence 1 fires
        assert_eq!(buf.iter().filter(|v| v.is_nan()).count(), 1);
        let mut buf2 = vec![1.0; 8];
        assert!(!inject_slice("buf", &mut buf2)); // consumed: retry runs clean
        assert_eq!(c.fired(), 1);
    }

    #[test]
    fn same_seed_same_element() {
        let pick = |seed: u64| {
            let _c = arm(FaultPlan::new(seed).with("buf", 0, FaultKind::InfPoison));
            let mut buf = vec![0.0; 64];
            inject_slice("buf", &mut buf);
            buf.iter().position(|v| v.is_infinite()).unwrap()
        };
        assert_eq!(pick(42), pick(42));
        // Different sites on the same seed decorrelate.
        let _c = arm(
            FaultPlan::new(42)
                .with("a", 0, FaultKind::NanPoison)
                .with("b", 0, FaultKind::NanPoison),
        );
        let mut a = vec![0.0; 1024];
        let mut b = vec![0.0; 1024];
        inject_slice("a", &mut a);
        inject_slice("b", &mut b);
        let ia = a.iter().position(|v| v.is_nan()).unwrap();
        let ib = b.iter().position(|v| v.is_nan()).unwrap();
        assert_ne!(ia, ib);
    }

    #[test]
    fn disarm_on_drop() {
        {
            let _c = arm(FaultPlan::new(1).with("s", 0, FaultKind::DegenerateSeeding));
            assert!(is_armed());
        }
        assert!(!is_armed());
        assert!(!degenerate_seeding("s"));
    }

    #[test]
    fn handle_propagates_to_other_threads() {
        let c = arm(FaultPlan::new(3).with("cross", 0, FaultKind::DegenerateSeeding));
        let h = handle();
        std::thread::scope(|s| {
            s.spawn(|| {
                install(h.clone());
                set_rank(1);
                assert!(degenerate_seeding("cross"));
            });
        });
        let ev = c.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rank, 1);
    }

    #[test]
    fn detached_handle_does_not_arm_the_creating_thread() {
        let h = Handle::armed(FaultPlan::new(11).with("d", 0, FaultKind::NanPoison));
        assert!(!is_armed(), "Handle::armed must not touch thread state");
        let mut buf = vec![1.0; 4];
        assert!(!inject_slice("d", &mut buf));
        install(Some(h.clone()));
        assert!(inject_slice("d", &mut buf));
        install(None);
        assert_eq!(h.fired(), 1);
        assert_eq!(h.events()[0].site, "d");
    }

    #[test]
    fn install_scoped_restores_previous_plan() {
        let outer = arm(FaultPlan::new(1).with("outer", 0, FaultKind::DegenerateSeeding));
        let tenant = Handle::armed(FaultPlan::new(2).with("inner", 0, FaultKind::DegenerateSeeding));
        {
            let _g = install_scoped(Some(tenant.clone()));
            assert!(degenerate_seeding("inner")); // tenant plan active
            assert!(!degenerate_seeding("outer")); // outer plan shadowed
        }
        // Guard dropped: outer plan is back and untouched by the inner window.
        assert!(degenerate_seeding("outer"));
        assert_eq!(outer.fired(), 1);
        assert_eq!(tenant.fired(), 1);
    }

    #[test]
    fn install_scoped_none_clears_within_window() {
        let _c = arm(FaultPlan::new(1).with("s", 0, FaultKind::DegenerateSeeding));
        {
            let _g = install_scoped(None);
            assert!(!is_armed());
        }
        assert!(is_armed());
    }

    #[test]
    fn comm_kinds_map_to_decisions() {
        let _c = arm(
            FaultPlan::new(9)
                .with("op", 0, FaultKind::CommDrop)
                .with("op", 1, FaultKind::CommDelay { micros: 250 }),
        );
        assert_eq!(comm_fault("op"), Some(CommFault::Drop));
        assert_eq!(comm_fault("op"), Some(CommFault::Delay(Duration::from_micros(250))));
        assert_eq!(comm_fault("op"), None);
    }

    #[test]
    fn events_render_stably() {
        let c = arm(FaultPlan::new(5).with("w", 0, FaultKind::NanPoison));
        let mut buf = vec![0.0; 4];
        inject_slice("w", &mut buf);
        let lines: Vec<String> = c.events().iter().map(|e| e.render()).collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("nan-poison@w#0 rank0"), "{}", lines[0]);
    }
}
