//! Solve-error observer hooks.
//!
//! faultkit owns the error taxonomy but deliberately depends on nothing, so
//! it cannot dump diagnostics itself. Instead, an application registers an
//! observer with [`set_solve_error_hook`]; the recovery ladders in
//! `lrtddft::recover` call [`notify_solve_error`] whenever a rung fails,
//! and the observer does whatever forensics it wants — the `repro` binary
//! dumps `obskit`'s flight-recorder ring to disk, so every recovered fault
//! ships with its last-N-events context.
//!
//! The hook is process-global and fires on every notifying thread;
//! observers must be `Send + Sync` and cheap-ish (they run inside the
//! recovery path, not the hot path).

use crate::error::SolveError;
use std::sync::{Arc, RwLock};

type Hook = Arc<dyn Fn(&SolveError) + Send + Sync>;

static HOOK: RwLock<Option<Hook>> = RwLock::new(None);

/// Register (or replace) the process-global solve-error observer. Returns
/// whether a previous hook was replaced.
pub fn set_solve_error_hook<F>(hook: F) -> bool
where
    F: Fn(&SolveError) + Send + Sync + 'static,
{
    let mut slot = HOOK.write().unwrap_or_else(|p| p.into_inner());
    let had = slot.is_some();
    *slot = Some(Arc::new(hook));
    had
}

/// Remove the observer, if any.
pub fn clear_solve_error_hook() {
    *HOOK.write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// Notify the observer (if one is registered) that a solve error occurred.
/// Called by recovery ladders at each failed rung and on final failure;
/// no-op (one RwLock read) when no hook is set.
pub fn notify_solve_error(err: &SolveError) {
    let hook = {
        let slot = HOOK.read().unwrap_or_else(|p| p.into_inner());
        slot.clone()
    };
    if let Some(hook) = hook {
        hook(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    // The hook is process-global state shared across tests.
    static HOOK_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn hook_fires_on_notify_and_clears() {
        let _g = HOOK_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        FIRED.store(0, Ordering::SeqCst);
        clear_solve_error_hook();
        assert!(!set_solve_error_hook(|_| {
            FIRED.fetch_add(1, Ordering::SeqCst);
        }));
        let err = SolveError::LadderExhausted { stage: "eig", attempts: vec!["a".into()] };
        notify_solve_error(&err);
        notify_solve_error(&err);
        assert_eq!(FIRED.load(Ordering::SeqCst), 2);
        clear_solve_error_hook();
        notify_solve_error(&err);
        assert_eq!(FIRED.load(Ordering::SeqCst), 2, "cleared hook must not fire");
    }

    #[test]
    fn replacing_reports_previous_hook() {
        let _g = HOOK_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        clear_solve_error_hook();
        assert!(!set_solve_error_hook(|_| {}));
        assert!(set_solve_error_hook(|_| {}));
        clear_solve_error_hook();
    }
}
