//! The typed error taxonomy shared by every crate in the workspace.
//!
//! Three layers, matching where failures originate:
//!
//! * [`NumericalError`] — a kernel produced something unusable: a non-finite
//!   entry, a Gram matrix that lost positive-definiteness, an ISDF fit whose
//!   residual blew past its guard, a point selector that came back with too
//!   few points.
//! * [`CommError`] — the progress engine could not complete a collective
//!   within its retry budget (stall) or the request was dropped by fault
//!   injection and must be re-issued.
//! * [`SolveError`] — the solver-facing roll-up: iterative breakdown, honest
//!   non-convergence with the final residual attached, or a recovery ladder
//!   that ran out of rungs. Carries `From` impls for the two layers below so
//!   `?` composes across crate boundaries.

use std::fmt;
use std::time::Duration;

/// A kernel-level numerical failure, with enough context to pick a ladder
/// rung (which buffer, which pivot, how far off the guard was).
#[derive(Clone, Debug, PartialEq)]
pub enum NumericalError {
    /// A named buffer contains NaN/Inf; `index` is the first bad element.
    NonFinite { site: String, index: usize },
    /// Cholesky on a (regularized) Gram matrix failed at `pivot` even with
    /// the Tikhonov floor escalated to `floor`.
    GramNotSpd { stage: &'static str, pivot: usize, floor: f64 },
    /// The ISDF fit residual exceeded its guard tolerance.
    FitResidual { residual: f64, tolerance: f64 },
    /// A point selector returned fewer points than the requested rank.
    RankDeficient { requested: usize, got: usize },
    /// K-Means ended with this many empty clusters it could not reseed.
    EmptyClusters { clusters: usize },
    /// The orbital-pair weight vector is identically zero.
    AllZeroWeights,
    /// Operand shapes disagree (dimension bookkeeping, not roundoff).
    ShapeMismatch { stage: &'static str, expected: (usize, usize), got: (usize, usize) },
}

impl fmt::Display for NumericalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericalError::NonFinite { site, index } => {
                write!(f, "non-finite value in `{site}` at element {index}")
            }
            NumericalError::GramNotSpd { stage, pivot, floor } => write!(
                f,
                "{stage}: Gram matrix not SPD at pivot {pivot} (Tikhonov floor {floor:.3e})"
            ),
            NumericalError::FitResidual { residual, tolerance } => write!(
                f,
                "ISDF fit residual {residual:.3e} exceeds guard tolerance {tolerance:.3e}"
            ),
            NumericalError::RankDeficient { requested, got } => {
                write!(f, "rank-deficient selection: requested {requested} points, got {got}")
            }
            NumericalError::EmptyClusters { clusters } => {
                write!(f, "K-Means left {clusters} empty cluster(s) after reseeding")
            }
            NumericalError::AllZeroWeights => write!(f, "all-zero weights"),
            NumericalError::ShapeMismatch { stage, expected, got } => write!(
                f,
                "{stage}: shape mismatch, expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
        }
    }
}

impl std::error::Error for NumericalError {}

/// A collective that did not complete cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The request did not complete within the deadline even after bounded
    /// retry/backoff.
    Stalled { op: &'static str, waited: Duration, attempts: u32 },
    /// The request was dropped (by fault injection) before submission; the
    /// caller should re-issue.
    Dropped { op: &'static str },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Stalled { op, waited, attempts } => write!(
                f,
                "collective `{op}` stalled: no completion after {attempts} attempt(s) \
                 ({:.1} ms waited)",
                waited.as_secs_f64() * 1e3
            ),
            CommError::Dropped { op } => write!(f, "collective `{op}` request dropped"),
        }
    }
}

impl std::error::Error for CommError {}

/// Solver-facing error: what the eigensolver / pipeline returns when a stage
/// cannot produce a usable answer.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The iteration ran out of budget; the best residual reached and the
    /// iteration count are attached so callers can decide whether to ladder.
    NotConverged { stage: &'static str, residual: f64, iterations: usize },
    /// The iteration broke down (lost its subspace, produced non-finite
    /// quantities) and cannot meaningfully continue.
    Breakdown { stage: &'static str, iteration: usize, reason: String },
    /// A kernel-level numerical failure bubbled up.
    Numerical(NumericalError),
    /// A communication failure bubbled up.
    Comm(CommError),
    /// Every rung of the recovery ladder was tried and failed; `attempts`
    /// names each rung in order.
    LadderExhausted { stage: &'static str, attempts: Vec<String> },
    /// A serving-layer solver group stopped making progress: its leader's
    /// heartbeat went stale for `stalled` while a batch was in flight. Raised
    /// through the solve-error hook by the `served` stall detector so
    /// operators see wedged groups, not just slow jobs.
    GroupStalled { group: usize, stalled: Duration },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotConverged { stage, residual, iterations } => write!(
                f,
                "{stage} did not converge: residual {residual:.3e} after {iterations} iteration(s)"
            ),
            SolveError::Breakdown { stage, iteration, reason } => {
                write!(f, "{stage} broke down at iteration {iteration}: {reason}")
            }
            SolveError::Numerical(e) => write!(f, "numerical failure: {e}"),
            SolveError::Comm(e) => write!(f, "communication failure: {e}"),
            SolveError::LadderExhausted { stage, attempts } => write!(
                f,
                "{stage}: recovery ladder exhausted after [{}]",
                attempts.join(" -> ")
            ),
            SolveError::GroupStalled { group, stalled } => write!(
                f,
                "solver group {group} stalled: no leader heartbeat for {:.1} ms",
                stalled.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<NumericalError> for SolveError {
    fn from(e: NumericalError) -> Self {
        SolveError::Numerical(e)
    }
}

impl From<CommError> for SolveError {
    fn from(e: CommError) -> Self {
        SolveError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SolveError::NotConverged { stage: "lobpcg", residual: 3.2e-5, iterations: 17 };
        let s = e.to_string();
        assert!(s.contains("lobpcg") && s.contains("17"), "{s}");

        let e: SolveError =
            NumericalError::NonFinite { site: "ham.v_tilde".into(), index: 4 }.into();
        assert!(e.to_string().contains("ham.v_tilde"));

        let e: SolveError = CommError::Stalled {
            op: "iallreduce",
            waited: Duration::from_millis(12),
            attempts: 3,
        }
        .into();
        assert!(e.to_string().contains("iallreduce"));

        let zero = NumericalError::AllZeroWeights;
        assert!(zero.to_string().contains("all-zero weights"));
    }

    #[test]
    fn group_stalled_names_group_and_duration() {
        let e = SolveError::GroupStalled { group: 1, stalled: Duration::from_millis(250) };
        let s = e.to_string();
        assert!(s.contains("group 1") && s.contains("250.0 ms"), "{s}");
    }

    #[test]
    fn ladder_exhausted_names_rungs() {
        let e = SolveError::LadderExhausted {
            stage: "eig",
            attempts: vec!["resume".into(), "restart".into(), "davidson".into()],
        };
        let s = e.to_string();
        assert!(s.contains("resume -> restart -> davidson"), "{s}");
    }
}
