//! # faultkit — typed errors, deterministic fault injection, checkpoints
//!
//! Robustness backbone for the LR-TDDFT reproduction. The paper's iterative
//! low-rank machinery (K-Means ISDF + implicit LOBPCG) fails in ways a dense
//! SYEVD never does — LOBPCG basis breakdown, K-Means empty clusters, ISDF
//! fits whose residual blows up, progress-engine requests that stall. This
//! crate supplies the three pieces every other crate threads through:
//!
//! * **Error taxonomy** ([`error`]) — [`NumericalError`], [`CommError`],
//!   [`SolveError`] with stage/iteration/residual context, so hot failure
//!   paths return `Result` instead of panicking and recovery ladders can
//!   dispatch on *why* a stage failed.
//! * **Seeded fault injection** ([`plan`]) — a [`FaultPlan`] fires typed
//!   faults (NaN/Inf poison of named buffers, ISDF rank starvation, K-Means
//!   degenerate seeding, comm delay/stall/drop) at exact hook-site
//!   occurrences, one-shot per rank, with all randomness derived from the
//!   plan seed. Identical plans ⇒ identical fault sequences, so recovery
//!   campaigns are reproducible and CI-able.
//! * **Checkpoint/restart** ([`checkpoint`]) — thread-local last-good-iterate
//!   stores that LOBPCG and SCF use to resume after a mid-run fault instead
//!   of recomputing.
//!
//! Hook calls are no-ops (one thread-local read) when no plan is armed; the
//! fault-free hot path is unaffected.

pub mod checkpoint;
pub mod error;
pub mod hooks;
pub mod plan;

pub use checkpoint::{
    checkpoint_clear, checkpoint_peek, checkpoint_save, checkpoint_take, Checkpoint,
};
pub use error::{CommError, NumericalError, SolveError};
pub use hooks::{clear_solve_error_hook, notify_solve_error, set_solve_error_hook};
pub use plan::{
    arm, comm_fault, degenerate_seeding, handle, inject_slice, install, install_scoped, is_armed,
    set_rank, starve_points, Campaign, CommFault, FaultEvent, FaultKind, FaultPlan, FaultSpec,
    Handle, InstallGuard,
};
