//! # isdf — Interpolative Separable Density Fitting
//!
//! The paper's central low-rank machinery (§4.1–4.2). The orbital-pair
//! matrix `Z = P_vc` (`N_r × N_v N_c`, column `(i,j)` is `ψ_i(r)·φ_j(r)`) is
//! numerically rank-deficient; ISDF compresses it as
//!
//! ```text
//! ψ_i(r) φ_j(r) ≈ Σ_μ ζ_μ(r) · ψ_i(r̂_μ) φ_j(r̂_μ)        (paper Eq. 5)
//! ```
//!
//! with `N_μ ≈ c·N_e` interpolation points `r̂_μ` chosen from the grid.
//!
//! Two point selectors are provided:
//! * [`qrcp_points`] — the traditional pivoted-QR selector (paper §4.1.1),
//!   including the randomized-sketch variant,
//! * [`kmeans`] — the paper's contribution: weighted K-Means clustering over
//!   grid points with the orbital-pair weight `w(r) = (Σ_i ψ_i²)(Σ_j φ_j²)`
//!   (Eq. 14), threshold pruning of negligible-weight points, and
//!   weight-guided centroid initialization (§4.2).
//!
//! [`interp`] then solves the Galerkin least-squares system
//! `Θ = ZCᵀ(CCᵀ)⁻¹` (Eq. 10) for the interpolation vectors, using the
//! separability of `Z` so that `ZCᵀ` and `CCᵀ` are Hadamard products of
//! small Gram matrices — never materializing `Z` itself.

pub mod decomposition;
pub mod interp;
pub mod kmeans;
pub mod points;

pub use decomposition::{face_splitting_product, IsdfDecomposition};
pub use interp::{interpolation_vectors, try_interpolation_vectors, GramPair};
pub use kmeans::{
    kmeans_points, kmeans_points_checked, KmeansInit, KmeansOptions, KmeansOutcome, SnapRule,
};
pub use points::{pair_weights, qrcp_points, randomized_qrcp_points};
