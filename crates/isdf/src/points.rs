//! QRCP-based interpolation point selection (paper §4.1.1) and the
//! orbital-pair weight function (Eq. 14).

use mathkit::qr::{qrcp_select, randomized_qrcp_select};
use mathkit::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::decomposition::face_splitting_product;

/// The weight `w(r) = (Σ_i ψ_i(r)²) · (Σ_j φ_j(r)²)` of every grid point —
/// the diagonal of `Z Zᵀ` thanks to the separable structure (paper Eq. 14).
pub fn pair_weights(psi: &Mat, phi: &Mat) -> Vec<f64> {
    assert_eq!(psi.nrows(), phi.nrows());
    let nr = psi.nrows();
    let mut w = vec![0.0; nr];
    let mut psi2 = vec![0.0; nr];
    for j in 0..psi.ncols() {
        mathkit::simd::add_squares(&mut psi2, psi.col(j));
    }
    let mut phi2 = vec![0.0; nr];
    for j in 0..phi.ncols() {
        mathkit::simd::add_squares(&mut phi2, phi.col(j));
    }
    mathkit::simd::pointwise_mul(&mut w, &psi2, &phi2);
    w
}

/// Traditional QRCP interpolation points: pivoted QR on `Zᵀ` where
/// `Z = face_splitting_product(psi, phi)`. Cost `O(N_r·(N_vN_c)²)`-ish — the
/// expensive path the paper replaces (its Table 3 baseline).
pub fn qrcp_points(psi: &Mat, phi: &Mat, n_mu: usize) -> Vec<usize> {
    let z = face_splitting_product(psi, phi);
    qrcp_select(&z, n_mu)
}

/// Randomized-sketch QRCP (the "randomized sampling QRCP" the paper cites):
/// project the pair columns with a Gaussian sketch before pivoting.
pub fn randomized_qrcp_points(psi: &Mat, phi: &Mat, n_mu: usize, seed: u64) -> Vec<usize> {
    let z = face_splitting_product(psi, phi);
    let mut rng = StdRng::seed_from_u64(seed);
    let oversample = (n_mu / 4).clamp(4, 32);
    randomized_qrcp_select(&z, n_mu, oversample, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orbitals(nr: usize, nb: usize, seed: u64) -> Mat {
        let mut s = seed.max(1);
        Mat::from_fn(nr, nb, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn weights_match_explicit_sum() {
        let psi = orbitals(20, 3, 1);
        let phi = orbitals(20, 2, 2);
        let w = pair_weights(&psi, &phi);
        for i in 0..20 {
            let mut expect = 0.0;
            for a in 0..3 {
                for b in 0..2 {
                    expect += psi[(i, a)].powi(2) * phi[(i, b)].powi(2);
                }
            }
            assert!((w[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_nonnegative() {
        let psi = orbitals(50, 4, 3);
        let phi = orbitals(50, 4, 4);
        assert!(pair_weights(&psi, &phi).iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn qrcp_points_found_in_support() {
        // Orbitals supported only on rows 10..20: every selected point must
        // lie in the support.
        let nr = 40;
        let mut psi = Mat::zeros(nr, 3);
        let mut phi = Mat::zeros(nr, 3);
        for i in 10..20 {
            for j in 0..3 {
                psi[(i, j)] = ((i * (j + 1)) as f64).sin();
                phi[(i, j)] = ((i + 3 * j) as f64).cos();
            }
        }
        let pts = qrcp_points(&psi, &phi, 4);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|&p| (10..20).contains(&p)), "{pts:?}");
    }

    #[test]
    fn randomized_agrees_with_plain_on_small_problem() {
        let psi = orbitals(30, 3, 7);
        let phi = orbitals(30, 3, 8);
        let plain = qrcp_points(&psi, &phi, 6);
        let rnd = randomized_qrcp_points(&psi, &phi, 6, 42);
        // Randomized selection need not be identical but must overlap heavily
        // for a well-conditioned problem.
        let overlap = plain.iter().filter(|p| rnd.contains(p)).count();
        assert!(overlap >= 3, "plain {plain:?} vs randomized {rnd:?}");
    }
}
