//! Interpolation vectors via the Galerkin least-squares fit (paper Eq. 10):
//!
//! ```text
//! Θ = Z Cᵀ (C Cᵀ)⁻¹
//! ```
//!
//! `Z` is never materialized. Because `Z` is a face-splitting product and `C`
//! is the face-splitting product of the *sampled* orbitals, both factors are
//! Hadamard products of small Gram matrices (the standard ISDF trick, Hu–
//! Lin–Yang 2017):
//!
//! ```text
//! (Z Cᵀ)  = (Ψ Ψ̂ᵀ) ∘ (Φ Φ̂ᵀ)        N_r × N_μ
//! (C Cᵀ)  = (Ψ̂ Ψ̂ᵀ) ∘ (Φ̂ Φ̂ᵀ)        N_μ × N_μ
//! ```
//!
//! which turns an `O(N_r · (N_vN_c) · N_μ)` contraction into two
//! `O(N_r · N_e · N_μ)` GEMMs — part of why ISDF construction reaches the
//! `O(N_r N_μ²)`-class costs in the paper's Table 4.

use faultkit::NumericalError;
use mathkit::chol::solve_spd;
use mathkit::gemm::{gemm, syrk_nt, Transpose};
use mathkit::Mat;

/// The two Hadamard-factored Gram matrices of the Galerkin system.
pub struct GramPair {
    /// `Z Cᵀ` (`N_r × N_μ`).
    pub zc_t: Mat,
    /// `C Cᵀ` (`N_μ × N_μ`), symmetric positive semi-definite.
    pub cc_t: Mat,
}

/// Assemble `ZCᵀ` and `CCᵀ` from orbitals and their sampled rows.
pub fn gram_pair(psi: &Mat, phi: &Mat, psi_hat: &Mat, phi_hat: &Mat) -> GramPair {
    let n_mu = psi_hat.nrows();
    assert_eq!(phi_hat.nrows(), n_mu);
    // Ψ Ψ̂ᵀ : (N_r × m)·(m × N_μ)
    let mut p1 = Mat::zeros(psi.nrows(), n_mu);
    gemm(1.0, psi, Transpose::No, psi_hat, Transpose::Yes, 0.0, &mut p1);
    let mut p2 = Mat::zeros(phi.nrows(), n_mu);
    gemm(1.0, phi, Transpose::No, phi_hat, Transpose::Yes, 0.0, &mut p2);
    let zc_t = p1.hadamard(&p2);

    // Ψ̂ Ψ̂ᵀ and Φ̂ Φ̂ᵀ are symmetric Grams — use the packed rank-k engine,
    // which computes only the lower triangle and mirrors it.
    let q1 = syrk_nt(psi_hat);
    let q2 = syrk_nt(phi_hat);
    let cc_t = q1.hadamard(&q2);

    GramPair { zc_t, cc_t }
}

/// Solve for the interpolation vectors `Θ` (`N_r × N_μ`). The Gram matrix is
/// Tikhonov-floored before the Cholesky solve, since near-duplicate
/// interpolation points make `CCᵀ` semi-definite.
///
/// Panics if the system stays non-SPD after floor escalation; see
/// [`try_interpolation_vectors`] for the `Result`-returning variant.
pub fn interpolation_vectors(psi: &Mat, phi: &Mat, psi_hat: &Mat, phi_hat: &Mat) -> Mat {
    match try_interpolation_vectors(psi, phi, psi_hat, phi_hat) {
        Ok(theta) => theta,
        Err(e) => panic!("{e}"),
    }
}

/// [`interpolation_vectors`] with typed failure reporting: a non-finite Gram
/// entry (poisoned orbitals) surfaces as [`NumericalError::NonFinite`], and a
/// Cholesky failure is retried with the Tikhonov floor escalated ×10³ per
/// attempt (3 attempts) before surfacing [`NumericalError::GramNotSpd`].
pub fn try_interpolation_vectors(
    psi: &Mat,
    phi: &Mat,
    psi_hat: &Mat,
    phi_hat: &Mat,
) -> Result<Mat, NumericalError> {
    let GramPair { zc_t, cc_t } = gram_pair(psi, phi, psi_hat, phi_hat);
    if let Some(bad) = cc_t.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(NumericalError::NonFinite { site: "isdf.cc_t".into(), index: bad });
    }
    if let Some(bad) = zc_t.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(NumericalError::NonFinite { site: "isdf.zc_t".into(), index: bad });
    }
    let n_mu = cc_t.nrows();
    let trace: f64 = (0..n_mu).map(|i| cc_t[(i, i)]).sum();
    let base = 1e-12 * (trace / n_mu.max(1) as f64).max(1e-300);
    // Θᵀ solves (CCᵀ) Θᵀ = (ZCᵀ)ᵀ.
    let rhs = zc_t.transpose();
    let mut floor = base;
    let mut last_pivot = 0usize;
    for _ in 0..3 {
        let mut reg = cc_t.clone();
        for i in 0..n_mu {
            reg[(i, i)] += floor;
        }
        match solve_spd(&reg, &rhs) {
            Ok(theta_t) => return Ok(theta_t.transpose()),
            Err(pivot) => {
                last_pivot = pivot;
                floor *= 1e3;
            }
        }
    }
    Err(NumericalError::GramNotSpd { stage: "isdf.fit", pivot: last_pivot, floor: floor / 1e3 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::face_splitting_product;

    fn smooth(nr: usize, nb: usize, phase: f64) -> Mat {
        Mat::from_fn(nr, nb, |r, b| {
            let x = r as f64 / nr as f64 * std::f64::consts::TAU;
            ((b + 1) as f64 * 0.5 * x + phase).sin()
        })
    }

    #[test]
    fn gram_pair_matches_explicit_products() {
        let psi = smooth(30, 3, 0.0);
        let phi = smooth(30, 2, 0.4);
        let pts = vec![3usize, 11, 20, 27];
        let psi_hat = psi.select_rows(&pts);
        let phi_hat = phi.select_rows(&pts);
        let g = gram_pair(&psi, &phi, &psi_hat, &phi_hat);

        let z = face_splitting_product(&psi, &phi);
        let c = face_splitting_product(&psi_hat, &phi_hat);
        let mut zc = Mat::zeros(30, 4);
        gemm(1.0, &z, Transpose::No, &c, Transpose::Yes, 0.0, &mut zc);
        assert!(g.zc_t.max_abs_diff(&zc) < 1e-10);
        let mut cc = Mat::zeros(4, 4);
        gemm(1.0, &c, Transpose::No, &c, Transpose::Yes, 0.0, &mut cc);
        assert!(g.cc_t.max_abs_diff(&cc) < 1e-10);
    }

    #[test]
    fn galerkin_solution_minimizes_residual() {
        // Perturbing Θ must not reduce ‖Z − ΘC‖_F.
        let psi = smooth(40, 2, 0.2);
        let phi = smooth(40, 2, 0.8);
        let pts = vec![1usize, 9, 22, 33];
        let psi_hat = psi.select_rows(&pts);
        let phi_hat = phi.select_rows(&pts);
        let theta = interpolation_vectors(&psi, &phi, &psi_hat, &phi_hat);

        let z = face_splitting_product(&psi, &phi);
        let c = face_splitting_product(&psi_hat, &phi_hat);
        let resid = |th: &Mat| {
            let mut approx = Mat::zeros(z.nrows(), z.ncols());
            gemm(1.0, th, Transpose::No, &c, Transpose::No, 0.0, &mut approx);
            approx.axpy(-1.0, &z);
            approx.norm_fro()
        };
        let base = resid(&theta);
        let mut s = 123u64;
        for _ in 0..5 {
            let mut perturbed = theta.clone();
            for v in perturbed.as_mut_slice() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                *v += 1e-4 * ((s as f64 / u64::MAX as f64) - 0.5);
            }
            assert!(resid(&perturbed) >= base - 1e-12);
        }
    }

    #[test]
    fn poisoned_orbitals_surface_typed_nonfinite() {
        let mut psi = smooth(25, 2, 0.0);
        let phi = smooth(25, 2, 0.3);
        psi[(7, 1)] = f64::NAN;
        let pts = vec![2usize, 7, 19];
        let psi_hat = psi.select_rows(&pts);
        let phi_hat = phi.select_rows(&pts);
        let err = try_interpolation_vectors(&psi, &phi, &psi_hat, &phi_hat).unwrap_err();
        match err {
            NumericalError::NonFinite { site, .. } => assert!(site.starts_with("isdf.")),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_points_are_regularized_not_fatal() {
        let psi = smooth(25, 2, 0.0);
        let phi = smooth(25, 2, 0.3);
        let pts = vec![5usize, 5, 17]; // duplicated row → singular CCᵀ
        let psi_hat = psi.select_rows(&pts);
        let phi_hat = phi.select_rows(&pts);
        let theta = interpolation_vectors(&psi, &phi, &psi_hat, &phi_hat);
        assert!(theta.as_slice().iter().all(|v| v.is_finite()));
    }
}
