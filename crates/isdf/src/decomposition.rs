//! The assembled ISDF decomposition and the face-splitting product.

use faultkit::NumericalError;
use mathkit::Mat;

use crate::interp::try_interpolation_vectors;

/// Transposed block face-splitting product (column-wise Khatri–Rao):
/// `Z[r, i·n_phi + j] = ψ_i(r) · φ_j(r)` — the paper's `P_vc` with pair
/// index `(i_v, i_c)` flattened valence-major.
pub fn face_splitting_product(psi: &Mat, phi: &Mat) -> Mat {
    assert_eq!(psi.nrows(), phi.nrows());
    let nr = psi.nrows();
    let (m, n) = (psi.ncols(), phi.ncols());
    let mut z = Mat::zeros(nr, m * n);
    // Parallel over output columns; column (i,j) contiguous.
    z.par_cols_mut().enumerate().for_each(|(p, col)| {
        let (i, j) = (p / n, p % n);
        let a = psi.col(i);
        let b = phi.col(j);
        for r in 0..nr {
            col[r] = a[r] * b[r];
        }
    });
    z
}

/// A complete ISDF factorization `Z ≈ Θ C`.
pub struct IsdfDecomposition {
    /// Interpolation point indices into the grid (`N_μ`, sorted).
    pub points: Vec<usize>,
    /// Interpolation vectors `Θ` (`N_r × N_μ`) — the auxiliary basis
    /// functions `ζ_μ(r)` of Eq. 5.
    pub theta: Mat,
    /// Sampled orbitals `Ψ̂ = Ψ[points, :]` (`N_μ × m`).
    pub psi_hat: Mat,
    /// Sampled orbitals `Φ̂ = Φ[points, :]` (`N_μ × n`).
    pub phi_hat: Mat,
}

impl IsdfDecomposition {
    /// Build from orbitals and chosen interpolation points.
    ///
    /// Panics on a failed Galerkin fit; see [`IsdfDecomposition::try_build`]
    /// for the `Result`-returning variant used on recoverable paths.
    pub fn build(psi: &Mat, phi: &Mat, points: &[usize]) -> Self {
        match Self::try_build(psi, phi, points) {
            Ok(isdf) => isdf,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`IsdfDecomposition::build`] with fit failures (non-finite Gram
    /// entries, non-SPD `CCᵀ` after floor escalation) reported as typed
    /// errors so callers can ladder (rank escalation, point re-selection).
    pub fn try_build(psi: &Mat, phi: &Mat, points: &[usize]) -> Result<Self, NumericalError> {
        let psi_hat = psi.select_rows(points);
        let phi_hat = phi.select_rows(points);
        let theta = try_interpolation_vectors(psi, phi, &psi_hat, &phi_hat)?;
        Ok(IsdfDecomposition { points: points.to_vec(), theta, psi_hat, phi_hat })
    }

    /// Rank of the fit.
    pub fn n_mu(&self) -> usize {
        self.points.len()
    }

    /// The coefficient matrix `C` (`N_μ × m·n`): face-splitting product of
    /// the sampled orbitals (`C_μ^{ij} = ψ_i(r̂_μ)·φ_j(r̂_μ)`).
    pub fn coefficients(&self) -> Mat {
        face_splitting_product(&self.psi_hat, &self.phi_hat)
    }

    /// Reconstruct a single pair product `ψ_i(r)·φ_j(r)` from the fit.
    pub fn reconstruct_pair(&self, i: usize, j: usize) -> Vec<f64> {
        let n = self.phi_hat.ncols();
        let nr = self.theta.nrows();
        let mut out = vec![0.0; nr];
        for mu in 0..self.n_mu() {
            let c = self.psi_hat[(mu, i)] * self.phi_hat[(mu, j)];
            let t = self.theta.col(mu);
            for (o, &tv) in out.iter_mut().zip(t.iter()) {
                *o += c * tv;
            }
        }
        let _ = n;
        out
    }

    /// Cheap deterministic estimate of the relative fit residual
    /// `‖Z − ΘC‖ / ‖Z‖` over a strided sample of grid rows and orbital
    /// pairs — the guard the rank-escalation ladder checks after a build.
    /// Unlike [`IsdfDecomposition::relative_error`] it never materializes
    /// `Z`: cost is `O(samples · N_μ)`.
    pub fn sampled_relative_error(&self, psi: &Mat, phi: &Mat) -> f64 {
        let nr = self.theta.nrows();
        let (m, n) = (self.psi_hat.ncols(), self.phi_hat.ncols());
        let n_pairs = m * n;
        if nr == 0 || n_pairs == 0 {
            return 0.0;
        }
        let row_step = nr.div_ceil(16).max(1);
        let pair_step = n_pairs.div_ceil(32).max(1);
        let mut num = 0.0;
        let mut den = 0.0;
        for r in (0..nr).step_by(row_step) {
            for p in (0..n_pairs).step_by(pair_step) {
                let (i, j) = (p / n, p % n);
                let z = psi[(r, i)] * phi[(r, j)];
                let mut approx = 0.0;
                for mu in 0..self.n_mu() {
                    approx +=
                        self.theta[(r, mu)] * self.psi_hat[(mu, i)] * self.phi_hat[(mu, j)];
                }
                num += (z - approx) * (z - approx);
                den += z * z;
            }
        }
        if den == 0.0 {
            0.0
        } else {
            (num / den).sqrt()
        }
    }

    /// Relative Frobenius reconstruction error `‖Z − ΘC‖_F / ‖Z‖_F`,
    /// materializing `Z` (test/diagnostic use only).
    pub fn relative_error(&self, psi: &Mat, phi: &Mat) -> f64 {
        let z = face_splitting_product(psi, phi);
        let c = self.coefficients();
        let mut approx = Mat::zeros(z.nrows(), z.ncols());
        mathkit::gemm::gemm(
            1.0,
            &self.theta,
            mathkit::Transpose::No,
            &c,
            mathkit::Transpose::No,
            0.0,
            &mut approx,
        );
        approx.axpy(-1.0, &z);
        let zn = z.norm_fro();
        if zn == 0.0 {
            0.0
        } else {
            approx.norm_fro() / zn
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans_points, KmeansOptions};
    use crate::points::{pair_weights, qrcp_points};

    /// Smooth synthetic orbitals on a 1-D chain embedded in 3-D: low-rank
    /// pair structure by construction.
    fn smooth_orbitals(nr: usize, nb: usize, phase: f64) -> Mat {
        Mat::from_fn(nr, nb, |r, b| {
            let x = r as f64 / nr as f64 * 2.0 * std::f64::consts::PI;
            ((b + 1) as f64 * x * 0.5 + phase).sin() + 0.2 * ((b as f64) * x + phase).cos()
        })
    }

    #[test]
    fn face_splitting_layout() {
        let psi = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let phi = Mat::from_rows(&[&[5.0, 6.0, 7.0], &[8.0, 9.0, 10.0]]);
        let z = face_splitting_product(&psi, &phi);
        assert_eq!(z.shape(), (2, 6));
        // column p = i*3 + j
        assert_eq!(z[(0, 0)], 1.0 * 5.0);
        assert_eq!(z[(0, 5)], 2.0 * 7.0);
        assert_eq!(z[(1, 4)], 4.0 * 9.0);
    }

    #[test]
    fn exact_when_n_mu_reaches_rank() {
        // m*n pair products of smooth bands have small numerical rank; with
        // enough interpolation points QRCP-ISDF reconstructs to high accuracy.
        let (nr, nb) = (60, 3);
        let psi = smooth_orbitals(nr, nb, 0.0);
        let phi = smooth_orbitals(nr, nb, 0.7);
        let pts = qrcp_points(&psi, &phi, 9); // = full pair count
        let isdf = IsdfDecomposition::build(&psi, &phi, &pts);
        let err = isdf.relative_error(&psi, &phi);
        assert!(err < 1e-8, "relative error {err}");
    }

    #[test]
    fn error_decreases_with_rank() {
        let (nr, nb) = (80, 4);
        let psi = smooth_orbitals(nr, nb, 0.1);
        let phi = smooth_orbitals(nr, nb, 1.3);
        let mut last = f64::INFINITY;
        for &n_mu in &[2usize, 4, 8, 16] {
            let pts = qrcp_points(&psi, &phi, n_mu);
            let isdf = IsdfDecomposition::build(&psi, &phi, &pts);
            let err = isdf.relative_error(&psi, &phi);
            assert!(err <= last + 1e-9, "error should not grow: {err} after {last}");
            last = err;
        }
        assert!(last < 1e-6, "highest-rank fit should be accurate: {last}");
    }

    #[test]
    fn kmeans_points_give_comparable_error_to_qrcp() {
        // The paper's headline claim (Table 3 + §4.2): K-Means points match
        // QRCP quality at far lower selection cost.
        let (nr, nb) = (100, 3);
        let psi = smooth_orbitals(nr, nb, 0.0);
        let phi = smooth_orbitals(nr, nb, 0.5);
        let n_mu = 12;
        let q_pts = qrcp_points(&psi, &phi, n_mu);
        let w = pair_weights(&psi, &phi);
        let coords: Vec<[f64; 3]> = (0..nr).map(|i| [i as f64, 0.0, 0.0]).collect();
        let k_out = kmeans_points(&coords, &w, n_mu, KmeansOptions::default());
        let q_err = IsdfDecomposition::build(&psi, &phi, &q_pts).relative_error(&psi, &phi);
        let k_err =
            IsdfDecomposition::build(&psi, &phi, &k_out.points).relative_error(&psi, &phi);
        assert!(q_err < 1e-4, "qrcp err {q_err}");
        assert!(k_err < 20.0 * q_err.max(1e-8), "kmeans err {k_err} vs qrcp {q_err}");
    }

    #[test]
    fn sampled_residual_tracks_full_residual() {
        let (nr, nb) = (80, 3);
        let psi = smooth_orbitals(nr, nb, 0.1);
        let phi = smooth_orbitals(nr, nb, 0.6);
        // Accurate fit: both estimates tiny.
        let good = IsdfDecomposition::build(&psi, &phi, &qrcp_points(&psi, &phi, 9));
        assert!(good.sampled_relative_error(&psi, &phi) < 1e-6);
        // Starved fit: sampled estimate must flag it as bad too.
        let bad = IsdfDecomposition::build(&psi, &phi, &qrcp_points(&psi, &phi, 2));
        let full = bad.relative_error(&psi, &phi);
        let sampled = bad.sampled_relative_error(&psi, &phi);
        assert!(full > 1e-3, "starved fit should be inaccurate: {full}");
        assert!(sampled > 0.1 * full, "sampled {sampled} vs full {full}");
    }

    #[test]
    fn try_build_surfaces_poisoned_orbitals() {
        let (nr, nb) = (40, 2);
        let mut psi = smooth_orbitals(nr, nb, 0.2);
        let phi = smooth_orbitals(nr, nb, 0.9);
        let pts = qrcp_points(&psi, &phi, 4);
        psi[(pts[0], 0)] = f64::INFINITY;
        assert!(IsdfDecomposition::try_build(&psi, &phi, &pts).is_err());
    }

    #[test]
    fn reconstruct_pair_matches_full_product() {
        let (nr, nb) = (40, 2);
        let psi = smooth_orbitals(nr, nb, 0.2);
        let phi = smooth_orbitals(nr, nb, 0.9);
        let pts = qrcp_points(&psi, &phi, 4);
        let isdf = IsdfDecomposition::build(&psi, &phi, &pts);
        let rec = isdf.reconstruct_pair(1, 0);
        let z = face_splitting_product(&psi, &phi);
        let col = z.col(2); // pair (i=1, j=0) → column i·nb + j with nb = 2
        let err: f64 = rec
            .iter()
            .zip(col.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(err / norm < 1e-6, "pair reconstruction error {}", err / norm);
    }

    #[test]
    fn interpolation_exactness_at_points() {
        // At the interpolation points themselves the fit must be exact:
        // Θ[r̂_ν, μ] ≈ δ_{νμ} ⇒ Z[r̂_ν, :] = C[ν, :].
        let (nr, nb) = (50, 3);
        let psi = smooth_orbitals(nr, nb, 0.4);
        let phi = smooth_orbitals(nr, nb, 1.1);
        let pts = qrcp_points(&psi, &phi, 9);
        let isdf = IsdfDecomposition::build(&psi, &phi, &pts);
        let z = face_splitting_product(&psi, &phi);
        let c = isdf.coefficients();
        for (nu, &p) in isdf.points.iter().enumerate() {
            for q in 0..z.ncols() {
                // reconstructed value at an interpolation point
                let mut rec = 0.0;
                for mu in 0..isdf.n_mu() {
                    rec += isdf.theta[(p, mu)] * c[(mu, q)];
                }
                assert!(
                    (rec - z[(p, q)]).abs() < 1e-6 * z.norm_max().max(1.0),
                    "row {nu} col {q}"
                );
            }
        }
    }
}
