//! Weighted K-Means interpolation-point selection (paper §4.2).
//!
//! The algorithm, following the paper:
//! 1. compute the weight `w(r)` of every grid point (Eq. 14),
//! 2. **prune** points whose weight falls below `threshold · max(w)` — the
//!    weight vector is low-rank/sparse for plane-wave orbital pairs, so the
//!    effective point count `N_r'` is much smaller than `N_r`,
//! 3. initialize `N_μ` centroids from the surviving points, guided by the
//!    weights (the paper initializes at points "whose weight functions are
//!    rather large"),
//! 4. Lloyd iterations with *weighted* centroid updates (Eq. 13); the
//!    classification step is embarrassingly parallel (Rayon here; MPI ranks
//!    each classify their own grid slab in the paper),
//! 5. return, per cluster, the member grid point closest to the centroid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Centroid initialization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KmeansInit {
    /// Greedy largest-weight points with a minimum mutual separation — the
    /// paper's weight-guided initialization.
    WeightGuided,
    /// Weighted k-means++ (distance-proportional seeding).
    PlusPlus,
    /// Uniform random over surviving points (the baseline the paper warns
    /// "may yield a terrible convergence problem").
    Random,
}

/// How a converged cluster is snapped back to a concrete grid point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapRule {
    /// Member grid point closest to the centroid (geometric choice).
    #[default]
    NearestCentroid,
    /// Member grid point with the largest weight (density-peak choice —
    /// tends to land on orbital maxima, often better conditioned for the
    /// ISDF fit at small N_μ).
    MaxWeight,
}

/// Options for [`kmeans_points`].
#[derive(Clone, Copy, Debug)]
pub struct KmeansOptions {
    /// Relative weight threshold for pruning (fraction of the max weight).
    pub prune_rel: f64,
    /// Max Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total squared centroid movement.
    pub tol: f64,
    pub init: KmeansInit,
    /// Cluster → grid-point snap rule.
    pub snap: SnapRule,
    pub seed: u64,
}

impl Default for KmeansOptions {
    fn default() -> Self {
        KmeansOptions {
            prune_rel: 1e-6,
            max_iter: 100,
            tol: 1e-10,
            init: KmeansInit::WeightGuided,
            snap: SnapRule::NearestCentroid,
            seed: 0x5ee_d00d,
        }
    }
}

/// Result of a K-Means run.
#[derive(Clone, Debug)]
pub struct KmeansOutcome {
    /// Selected interpolation points (indices into the original grid),
    /// sorted ascending, deduplicated.
    pub points: Vec<usize>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Number of grid points that survived pruning (`N_r'` in the paper).
    pub active_points: usize,
    /// Final weighted within-cluster sum of squares (the Eq. 11 objective).
    pub objective: f64,
}

/// Select `n_mu` interpolation points from grid `coords` (one `[x,y,z]` per
/// point) with weights `w` (Eq. 14 values).
pub fn kmeans_points(
    coords: &[[f64; 3]],
    w: &[f64],
    n_mu: usize,
    opts: KmeansOptions,
) -> KmeansOutcome {
    assert_eq!(coords.len(), w.len());
    assert!(n_mu >= 1);
    let wmax = w.iter().cloned().fold(0.0f64, f64::max);
    assert!(wmax > 0.0, "all-zero weights");

    // Step 2: prune.
    let cutoff = opts.prune_rel * wmax;
    let active: Vec<usize> = (0..coords.len()).filter(|&i| w[i] > cutoff).collect();
    let n_active = active.len();
    assert!(
        n_active >= n_mu,
        "pruning left {n_active} points, need at least {n_mu}"
    );

    // Step 3: initialize centroids.
    let mut centroids = initialize(coords, w, &active, n_mu, opts);

    // Step 4: Lloyd iterations.
    let mut assign = vec![0usize; n_active];
    let mut iterations = 0;
    for it in 0..opts.max_iter {
        iterations = it + 1;
        // Classification (parallel over active points).
        assign = active
            .par_iter()
            .map(|&gi| nearest(&centroids, coords[gi]).0)
            .collect();

        // Weighted centroid update (Eq. 13).
        let mut sums = vec![[0.0f64; 3]; n_mu];
        let mut wsum = vec![0.0f64; n_mu];
        for (a, &gi) in assign.iter().zip(active.iter()) {
            let wi = w[gi];
            for c in 0..3 {
                sums[*a][c] += coords[gi][c] * wi;
            }
            wsum[*a] += wi;
        }
        let mut movement = 0.0;
        let mut rng = StdRng::seed_from_u64(opts.seed ^ (it as u64 + 1));
        for k in 0..n_mu {
            let new = if wsum[k] > 0.0 {
                [sums[k][0] / wsum[k], sums[k][1] / wsum[k], sums[k][2] / wsum[k]]
            } else {
                // Empty cluster: re-seed at a random heavy point.
                coords[active[rng.gen_range(0..n_active)]]
            };
            movement += dist2(centroids[k], new);
            centroids[k] = new;
        }
        if movement < opts.tol {
            break;
        }
    }

    // Step 5: snap centroids to actual grid points (per the snap rule;
    // empty clusters fall back to the globally nearest active point).
    let mut best: Vec<(f64, Option<usize>)> = vec![(f64::INFINITY, None); n_mu];
    for (a, &gi) in assign.iter().zip(active.iter()) {
        let score = match opts.snap {
            SnapRule::NearestCentroid => dist2(centroids[*a], coords[gi]),
            SnapRule::MaxWeight => -w[gi],
        };
        if score < best[*a].0 {
            best[*a] = (score, Some(gi));
        }
    }
    let mut points: Vec<usize> = Vec::with_capacity(n_mu);
    for (k, (_, p)) in best.iter().enumerate() {
        let idx = p.unwrap_or_else(|| {
            // Global nearest active point to this centroid.
            *active
                .iter()
                .min_by(|&&a, &&b| {
                    dist2(centroids[k], coords[a])
                        .partial_cmp(&dist2(centroids[k], coords[b]))
                        .unwrap()
                })
                .unwrap()
        });
        points.push(idx);
    }
    points.sort_unstable();
    points.dedup();

    // Objective (Eq. 11) at the final assignment.
    let objective: f64 = assign
        .iter()
        .zip(active.iter())
        .map(|(a, &gi)| w[gi] * dist2(centroids[*a], coords[gi]))
        .sum();

    KmeansOutcome { points, iterations, active_points: n_active, objective }
}

fn initialize(
    coords: &[[f64; 3]],
    w: &[f64],
    active: &[usize],
    n_mu: usize,
    opts: KmeansOptions,
) -> Vec<[f64; 3]> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    match opts.init {
        KmeansInit::Random => {
            let mut cs = Vec::with_capacity(n_mu);
            let mut used = std::collections::HashSet::new();
            while cs.len() < n_mu {
                let gi = active[rng.gen_range(0..active.len())];
                if used.insert(gi) {
                    cs.push(coords[gi]);
                }
            }
            cs
        }
        KmeansInit::WeightGuided => {
            // Sort by weight descending; greedily accept points at least
            // `dmin` away from everything accepted so far, relaxing `dmin`
            // until n_mu seeds exist.
            let mut order: Vec<usize> = active.to_vec();
            order.sort_by(|&a, &b| w[b].partial_cmp(&w[a]).unwrap());
            // Estimate a separation scale from the bounding box.
            let (mut lo, mut hi) = ([f64::INFINITY; 3], [f64::NEG_INFINITY; 3]);
            for &gi in active {
                for c in 0..3 {
                    lo[c] = lo[c].min(coords[gi][c]);
                    hi[c] = hi[c].max(coords[gi][c]);
                }
            }
            let vol: f64 = (0..3).map(|c| (hi[c] - lo[c]).max(1e-6)).product();
            let mut dmin = 0.5 * (vol / n_mu as f64).powf(1.0 / 3.0);
            loop {
                let mut cs: Vec<[f64; 3]> = Vec::with_capacity(n_mu);
                for &gi in &order {
                    if cs.iter().all(|&c| dist2(c, coords[gi]) >= dmin * dmin) {
                        cs.push(coords[gi]);
                        if cs.len() == n_mu {
                            return cs;
                        }
                    }
                }
                dmin *= 0.5;
                if dmin < 1e-12 {
                    // Degenerate geometry: fill with top-weight points.
                    let mut cs: Vec<[f64; 3]> =
                        order.iter().take(n_mu).map(|&gi| coords[gi]).collect();
                    while cs.len() < n_mu {
                        cs.push(coords[active[rng.gen_range(0..active.len())]]);
                    }
                    return cs;
                }
            }
        }
        KmeansInit::PlusPlus => {
            let mut cs: Vec<[f64; 3]> = Vec::with_capacity(n_mu);
            // First seed: weight-proportional.
            let total: f64 = active.iter().map(|&gi| w[gi]).sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut first = active[0];
            for &gi in active {
                pick -= w[gi];
                if pick <= 0.0 {
                    first = gi;
                    break;
                }
            }
            cs.push(coords[first]);
            while cs.len() < n_mu {
                // D² weighting times point weight.
                let d2: Vec<f64> = active
                    .iter()
                    .map(|&gi| {
                        let (_, d) = nearest(&cs, coords[gi]);
                        d * w[gi]
                    })
                    .collect();
                let total: f64 = d2.iter().sum();
                if total <= 0.0 {
                    cs.push(coords[active[rng.gen_range(0..active.len())]]);
                    continue;
                }
                let mut pick = rng.gen_range(0.0..total);
                let mut chosen = active[0];
                for (k, &gi) in active.iter().enumerate() {
                    pick -= d2[k];
                    if pick <= 0.0 {
                        chosen = gi;
                        break;
                    }
                }
                cs.push(coords[chosen]);
            }
            cs
        }
    }
}

#[inline]
fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

#[inline]
fn nearest(centroids: &[[f64; 3]], p: [f64; 3]) -> (usize, f64) {
    let mut bi = 0;
    let mut bd = f64::INFINITY;
    for (k, &c) in centroids.iter().enumerate() {
        let d = dist2(c, p);
        if d < bd {
            bd = d;
            bi = k;
        }
    }
    (bi, bd)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs of heavy points + scattered near-zero noise.
    fn two_blob_fixture() -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut coords = Vec::new();
        let mut w = Vec::new();
        for i in 0..10 {
            let t = i as f64 * 0.01;
            coords.push([1.0 + t, 1.0, 1.0]);
            w.push(10.0);
            coords.push([5.0 + t, 5.0, 5.0]);
            w.push(12.0);
        }
        // background noise, prunable
        for i in 0..50 {
            coords.push([(i % 7) as f64, (i % 5) as f64, (i % 3) as f64]);
            w.push(1e-9);
        }
        (coords, w)
    }

    #[test]
    fn finds_the_two_blobs() {
        let (coords, w) = two_blob_fixture();
        let out = kmeans_points(&coords, &w, 2, KmeansOptions::default());
        assert_eq!(out.points.len(), 2);
        // One point from each blob.
        let p0 = coords[out.points[0]];
        let p1 = coords[out.points[1]];
        let near = |p: [f64; 3], c: [f64; 3]| dist2(p, c) < 0.5;
        assert!(
            (near(p0, [1.05, 1.0, 1.0]) && near(p1, [5.05, 5.0, 5.0]))
                || (near(p1, [1.05, 1.0, 1.0]) && near(p0, [5.05, 5.0, 5.0])),
            "{p0:?} {p1:?}"
        );
    }

    #[test]
    fn pruning_removes_noise() {
        let (coords, w) = two_blob_fixture();
        let out = kmeans_points(&coords, &w, 2, KmeansOptions::default());
        assert_eq!(out.active_points, 20, "only the blob points should survive");
    }

    #[test]
    fn all_inits_converge_to_same_objective_on_easy_data() {
        let (coords, w) = two_blob_fixture();
        let mut objectives = Vec::new();
        for init in [KmeansInit::WeightGuided, KmeansInit::PlusPlus, KmeansInit::Random] {
            let out = kmeans_points(
                &coords,
                &w,
                2,
                KmeansOptions { init, ..KmeansOptions::default() },
            );
            objectives.push(out.objective);
        }
        for o in &objectives {
            assert!((o - objectives[0]).abs() < 1e-6, "{objectives:?}");
        }
    }

    #[test]
    fn weight_guided_needs_fewer_iterations_than_random() {
        // On the blob fixture, weight-guided should start essentially
        // converged (paper's motivation for the initialization).
        let (coords, w) = two_blob_fixture();
        let wg = kmeans_points(
            &coords,
            &w,
            2,
            KmeansOptions { init: KmeansInit::WeightGuided, ..Default::default() },
        );
        assert!(wg.iterations <= 5, "took {} iterations", wg.iterations);
    }

    #[test]
    fn points_are_sorted_unique_valid() {
        let (coords, w) = two_blob_fixture();
        let out = kmeans_points(&coords, &w, 5, KmeansOptions::default());
        for win in out.points.windows(2) {
            assert!(win[0] < win[1]);
        }
        assert!(out.points.iter().all(|&p| p < coords.len()));
        // selected points must be heavy (survived pruning)
        for &p in &out.points {
            assert!(w[p] > 1.0);
        }
    }

    #[test]
    fn n_mu_equals_active_points() {
        // Degenerate: ask for exactly as many clusters as active points.
        let coords: Vec<[f64; 3]> = (0..4).map(|i| [i as f64, 0.0, 0.0]).collect();
        let w = vec![1.0; 4];
        let out = kmeans_points(&coords, &w, 4, KmeansOptions::default());
        assert_eq!(out.points, vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_weight_snap_picks_heaviest_member() {
        // One obvious cluster with a single dominant-weight member.
        let mut coords: Vec<[f64; 3]> = (0..8).map(|i| [i as f64 * 0.1, 0.0, 0.0]).collect();
        let mut w = vec![1.0; 8];
        w[5] = 50.0; // heavy member, off the centroid
        coords.push([10.0, 0.0, 0.0]); // far lone point, second cluster
        w.push(2.0);
        let out = kmeans_points(
            &coords,
            &w,
            2,
            KmeansOptions { snap: SnapRule::MaxWeight, ..Default::default() },
        );
        assert!(out.points.contains(&5), "{:?}", out.points);
        assert!(out.points.contains(&8));
    }

    #[test]
    fn deterministic_given_seed() {
        let (coords, w) = two_blob_fixture();
        let a = kmeans_points(&coords, &w, 3, KmeansOptions::default());
        let b = kmeans_points(&coords, &w, 3, KmeansOptions::default());
        assert_eq!(a.points, b.points);
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn zero_weights_panic() {
        let coords = vec![[0.0, 0.0, 0.0]; 3];
        let w = vec![0.0; 3];
        kmeans_points(&coords, &w, 1, KmeansOptions::default());
    }
}
