//! Weighted K-Means interpolation-point selection (paper §4.2).
//!
//! The algorithm, following the paper:
//! 1. compute the weight `w(r)` of every grid point (Eq. 14),
//! 2. **prune** points whose weight falls below `threshold · max(w)` — the
//!    weight vector is low-rank/sparse for plane-wave orbital pairs, so the
//!    effective point count `N_r'` is much smaller than `N_r`,
//! 3. initialize `N_μ` centroids from the surviving points, guided by the
//!    weights (the paper initializes at points "whose weight functions are
//!    rather large"),
//! 4. Lloyd iterations with *weighted* centroid updates (Eq. 13); the
//!    classification step is embarrassingly parallel (Rayon here; MPI ranks
//!    each classify their own grid slab in the paper),
//! 5. return, per cluster, the member grid point closest to the centroid.

use faultkit::NumericalError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Centroid initialization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KmeansInit {
    /// Greedy largest-weight points with a minimum mutual separation — the
    /// paper's weight-guided initialization.
    WeightGuided,
    /// Weighted k-means++ (distance-proportional seeding).
    PlusPlus,
    /// Uniform random over surviving points (the baseline the paper warns
    /// "may yield a terrible convergence problem").
    Random,
}

/// How a converged cluster is snapped back to a concrete grid point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapRule {
    /// Member grid point closest to the centroid (geometric choice).
    #[default]
    NearestCentroid,
    /// Member grid point with the largest weight (density-peak choice —
    /// tends to land on orbital maxima, often better conditioned for the
    /// ISDF fit at small N_μ).
    MaxWeight,
}

/// Options for [`kmeans_points`].
#[derive(Clone, Copy, Debug)]
pub struct KmeansOptions {
    /// Relative weight threshold for pruning (fraction of the max weight).
    pub prune_rel: f64,
    /// Max Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total squared centroid movement.
    pub tol: f64,
    pub init: KmeansInit,
    /// Cluster → grid-point snap rule.
    pub snap: SnapRule,
    pub seed: u64,
}

impl Default for KmeansOptions {
    fn default() -> Self {
        KmeansOptions {
            prune_rel: 1e-6,
            max_iter: 100,
            tol: 1e-10,
            init: KmeansInit::WeightGuided,
            snap: SnapRule::NearestCentroid,
            seed: 0x5ee_d00d,
        }
    }
}

/// Result of a K-Means run.
#[derive(Clone, Debug)]
pub struct KmeansOutcome {
    /// Selected interpolation points (indices into the original grid),
    /// sorted ascending, deduplicated.
    pub points: Vec<usize>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Number of grid points that survived pruning (`N_r'` in the paper).
    pub active_points: usize,
    /// Final weighted within-cluster sum of squares (the Eq. 11 objective).
    pub objective: f64,
    /// Empty clusters re-seeded during Lloyd iterations. Nonzero signals a
    /// degenerate start (e.g. injected via `kmeans.init`); callers that need
    /// a pristine run can retry with a different seed.
    pub reseeded: usize,
}

/// Select `n_mu` interpolation points from grid `coords` (one `[x,y,z]` per
/// point) with weights `w` (Eq. 14 values).
///
/// Panics on degenerate inputs; see [`kmeans_points_checked`] for the
/// `Result`-returning variant used on recoverable paths.
pub fn kmeans_points(
    coords: &[[f64; 3]],
    w: &[f64],
    n_mu: usize,
    opts: KmeansOptions,
) -> KmeansOutcome {
    match kmeans_points_checked(coords, w, n_mu, opts) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`kmeans_points`] with degenerate inputs reported as typed errors instead
/// of panics: all-zero weights, a coords/weights length mismatch, or pruning
/// that leaves fewer than `n_mu` candidate points.
pub fn kmeans_points_checked(
    coords: &[[f64; 3]],
    w: &[f64],
    n_mu: usize,
    opts: KmeansOptions,
) -> Result<KmeansOutcome, NumericalError> {
    assert!(n_mu >= 1);
    if coords.len() != w.len() {
        return Err(NumericalError::ShapeMismatch {
            stage: "kmeans",
            expected: (coords.len(), 1),
            got: (w.len(), 1),
        });
    }
    // `f64::max` against the 0.0 seed discards NaN entries, so a weight
    // vector of all NaNs also lands here rather than seeding centroids.
    let wmax = w.iter().cloned().fold(0.0f64, f64::max);
    if wmax <= 0.0 {
        return Err(NumericalError::AllZeroWeights);
    }

    // Step 2: prune.
    let cutoff = opts.prune_rel * wmax;
    let active: Vec<usize> = (0..coords.len()).filter(|&i| w[i] > cutoff).collect();
    let n_active = active.len();
    if n_active < n_mu {
        return Err(NumericalError::RankDeficient { requested: n_mu, got: n_active });
    }

    // Step 3: initialize centroids.
    let mut centroids = initialize(coords, w, &active, n_mu, opts);

    // Step 4: Lloyd iterations.
    let mut assign = vec![0usize; n_active];
    let mut iterations = 0;
    let mut reseeded = 0usize;
    // Weight-descending candidate order for empty-cluster reseeding,
    // computed lazily on the first empty cluster.
    let mut weight_order: Option<Vec<usize>> = None;
    for it in 0..opts.max_iter {
        iterations = it + 1;
        // Classification (parallel over active points).
        assign = active
            .par_iter()
            .map(|&gi| nearest(&centroids, coords[gi]).0)
            .collect();

        // Weighted centroid update (Eq. 13).
        let mut sums = vec![[0.0f64; 3]; n_mu];
        let mut wsum = vec![0.0f64; n_mu];
        for (a, &gi) in assign.iter().zip(active.iter()) {
            let wi = w[gi];
            for c in 0..3 {
                sums[*a][c] += coords[gi][c] * wi;
            }
            wsum[*a] += wi;
        }
        let mut movement = 0.0;
        for k in 0..n_mu {
            let new = if wsum[k] > 0.0 {
                [sums[k][0] / wsum[k], sums[k][1] / wsum[k], sums[k][2] / wsum[k]]
            } else {
                // Empty cluster: re-seed deterministically at the
                // highest-weight active point no other centroid sits on, so
                // the cluster lands where the orbital-pair density actually
                // is (and identical inputs reproduce identical selections).
                reseeded += 1;
                let order = weight_order.get_or_insert_with(|| {
                    let mut o = active.clone();
                    o.sort_by(|&a, &b| w[b].total_cmp(&w[a]).then(a.cmp(&b)));
                    o
                });
                let pick = order.iter().copied().find(|&gi| {
                    centroids
                        .iter()
                        .enumerate()
                        .all(|(j, &c)| j == k || c != coords[gi])
                });
                coords[pick.unwrap_or(order[0])]
            };
            movement += dist2(centroids[k], new);
            centroids[k] = new;
        }
        if movement < opts.tol {
            break;
        }
    }

    // Step 5: snap centroids to actual grid points (per the snap rule;
    // empty clusters fall back to the globally nearest active point).
    let mut best: Vec<(f64, Option<usize>)> = vec![(f64::INFINITY, None); n_mu];
    for (a, &gi) in assign.iter().zip(active.iter()) {
        let score = match opts.snap {
            SnapRule::NearestCentroid => dist2(centroids[*a], coords[gi]),
            SnapRule::MaxWeight => -w[gi],
        };
        if score < best[*a].0 {
            best[*a] = (score, Some(gi));
        }
    }
    let mut points: Vec<usize> = Vec::with_capacity(n_mu);
    for (k, (_, p)) in best.iter().enumerate() {
        let idx = match p {
            Some(gi) => *gi,
            None => {
                // Global nearest active point to this centroid (`active` is
                // non-empty — checked above — so this cannot fail).
                let mut best_gi = active[0];
                let mut best_d = f64::INFINITY;
                for &a in &active {
                    let d = dist2(centroids[k], coords[a]);
                    if d < best_d {
                        best_d = d;
                        best_gi = a;
                    }
                }
                best_gi
            }
        };
        points.push(idx);
    }
    points.sort_unstable();
    points.dedup();

    // Objective (Eq. 11) at the final assignment.
    let objective: f64 = assign
        .iter()
        .zip(active.iter())
        .map(|(a, &gi)| w[gi] * dist2(centroids[*a], coords[gi]))
        .sum();

    Ok(KmeansOutcome { points, iterations, active_points: n_active, objective, reseeded })
}

fn initialize(
    coords: &[[f64; 3]],
    w: &[f64],
    active: &[usize],
    n_mu: usize,
    opts: KmeansOptions,
) -> Vec<[f64; 3]> {
    if faultkit::degenerate_seeding("kmeans.init") {
        // Injected degenerate start: every centroid on the same point — the
        // pathological initialization the paper warns "may yield a terrible
        // convergence problem". Recovery is the empty-cluster reseed path.
        return vec![coords[active[0]]; n_mu];
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    match opts.init {
        KmeansInit::Random => {
            let mut cs = Vec::with_capacity(n_mu);
            let mut used = std::collections::HashSet::new();
            while cs.len() < n_mu {
                let gi = active[rng.gen_range(0..active.len())];
                if used.insert(gi) {
                    cs.push(coords[gi]);
                }
            }
            cs
        }
        KmeansInit::WeightGuided => {
            // Sort by weight descending; greedily accept points at least
            // `dmin` away from everything accepted so far, relaxing `dmin`
            // until n_mu seeds exist.
            let mut order: Vec<usize> = active.to_vec();
            order.sort_by(|&a, &b| w[b].partial_cmp(&w[a]).unwrap());
            // Estimate a separation scale from the bounding box.
            let (mut lo, mut hi) = ([f64::INFINITY; 3], [f64::NEG_INFINITY; 3]);
            for &gi in active {
                for c in 0..3 {
                    lo[c] = lo[c].min(coords[gi][c]);
                    hi[c] = hi[c].max(coords[gi][c]);
                }
            }
            let vol: f64 = (0..3).map(|c| (hi[c] - lo[c]).max(1e-6)).product();
            let mut dmin = 0.5 * (vol / n_mu as f64).powf(1.0 / 3.0);
            loop {
                let mut cs: Vec<[f64; 3]> = Vec::with_capacity(n_mu);
                for &gi in &order {
                    if cs.iter().all(|&c| dist2(c, coords[gi]) >= dmin * dmin) {
                        cs.push(coords[gi]);
                        if cs.len() == n_mu {
                            return cs;
                        }
                    }
                }
                dmin *= 0.5;
                if dmin < 1e-12 {
                    // Degenerate geometry: fill with top-weight points.
                    let mut cs: Vec<[f64; 3]> =
                        order.iter().take(n_mu).map(|&gi| coords[gi]).collect();
                    while cs.len() < n_mu {
                        cs.push(coords[active[rng.gen_range(0..active.len())]]);
                    }
                    return cs;
                }
            }
        }
        KmeansInit::PlusPlus => {
            let mut cs: Vec<[f64; 3]> = Vec::with_capacity(n_mu);
            // First seed: weight-proportional.
            let total: f64 = active.iter().map(|&gi| w[gi]).sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut first = active[0];
            for &gi in active {
                pick -= w[gi];
                if pick <= 0.0 {
                    first = gi;
                    break;
                }
            }
            cs.push(coords[first]);
            while cs.len() < n_mu {
                // D² weighting times point weight.
                let d2: Vec<f64> = active
                    .iter()
                    .map(|&gi| {
                        let (_, d) = nearest(&cs, coords[gi]);
                        d * w[gi]
                    })
                    .collect();
                let total: f64 = d2.iter().sum();
                if total <= 0.0 {
                    cs.push(coords[active[rng.gen_range(0..active.len())]]);
                    continue;
                }
                let mut pick = rng.gen_range(0.0..total);
                let mut chosen = active[0];
                for (k, &gi) in active.iter().enumerate() {
                    pick -= d2[k];
                    if pick <= 0.0 {
                        chosen = gi;
                        break;
                    }
                }
                cs.push(coords[chosen]);
            }
            cs
        }
    }
}

#[inline]
fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

#[inline]
fn nearest(centroids: &[[f64; 3]], p: [f64; 3]) -> (usize, f64) {
    let mut bi = 0;
    let mut bd = f64::INFINITY;
    for (k, &c) in centroids.iter().enumerate() {
        let d = dist2(c, p);
        if d < bd {
            bd = d;
            bi = k;
        }
    }
    (bi, bd)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs of heavy points + scattered near-zero noise.
    fn two_blob_fixture() -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut coords = Vec::new();
        let mut w = Vec::new();
        for i in 0..10 {
            let t = i as f64 * 0.01;
            coords.push([1.0 + t, 1.0, 1.0]);
            w.push(10.0);
            coords.push([5.0 + t, 5.0, 5.0]);
            w.push(12.0);
        }
        // background noise, prunable
        for i in 0..50 {
            coords.push([(i % 7) as f64, (i % 5) as f64, (i % 3) as f64]);
            w.push(1e-9);
        }
        (coords, w)
    }

    #[test]
    fn finds_the_two_blobs() {
        let (coords, w) = two_blob_fixture();
        let out = kmeans_points(&coords, &w, 2, KmeansOptions::default());
        assert_eq!(out.points.len(), 2);
        // One point from each blob.
        let p0 = coords[out.points[0]];
        let p1 = coords[out.points[1]];
        let near = |p: [f64; 3], c: [f64; 3]| dist2(p, c) < 0.5;
        assert!(
            (near(p0, [1.05, 1.0, 1.0]) && near(p1, [5.05, 5.0, 5.0]))
                || (near(p1, [1.05, 1.0, 1.0]) && near(p0, [5.05, 5.0, 5.0])),
            "{p0:?} {p1:?}"
        );
    }

    #[test]
    fn pruning_removes_noise() {
        let (coords, w) = two_blob_fixture();
        let out = kmeans_points(&coords, &w, 2, KmeansOptions::default());
        assert_eq!(out.active_points, 20, "only the blob points should survive");
    }

    #[test]
    fn all_inits_converge_to_same_objective_on_easy_data() {
        let (coords, w) = two_blob_fixture();
        let mut objectives = Vec::new();
        for init in [KmeansInit::WeightGuided, KmeansInit::PlusPlus, KmeansInit::Random] {
            let out = kmeans_points(
                &coords,
                &w,
                2,
                KmeansOptions { init, ..KmeansOptions::default() },
            );
            objectives.push(out.objective);
        }
        for o in &objectives {
            assert!((o - objectives[0]).abs() < 1e-6, "{objectives:?}");
        }
    }

    #[test]
    fn weight_guided_needs_fewer_iterations_than_random() {
        // On the blob fixture, weight-guided should start essentially
        // converged (paper's motivation for the initialization).
        let (coords, w) = two_blob_fixture();
        let wg = kmeans_points(
            &coords,
            &w,
            2,
            KmeansOptions { init: KmeansInit::WeightGuided, ..Default::default() },
        );
        assert!(wg.iterations <= 5, "took {} iterations", wg.iterations);
    }

    #[test]
    fn points_are_sorted_unique_valid() {
        let (coords, w) = two_blob_fixture();
        let out = kmeans_points(&coords, &w, 5, KmeansOptions::default());
        for win in out.points.windows(2) {
            assert!(win[0] < win[1]);
        }
        assert!(out.points.iter().all(|&p| p < coords.len()));
        // selected points must be heavy (survived pruning)
        for &p in &out.points {
            assert!(w[p] > 1.0);
        }
    }

    #[test]
    fn n_mu_equals_active_points() {
        // Degenerate: ask for exactly as many clusters as active points.
        let coords: Vec<[f64; 3]> = (0..4).map(|i| [i as f64, 0.0, 0.0]).collect();
        let w = vec![1.0; 4];
        let out = kmeans_points(&coords, &w, 4, KmeansOptions::default());
        assert_eq!(out.points, vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_weight_snap_picks_heaviest_member() {
        // One obvious cluster with a single dominant-weight member.
        let mut coords: Vec<[f64; 3]> = (0..8).map(|i| [i as f64 * 0.1, 0.0, 0.0]).collect();
        let mut w = vec![1.0; 8];
        w[5] = 50.0; // heavy member, off the centroid
        coords.push([10.0, 0.0, 0.0]); // far lone point, second cluster
        w.push(2.0);
        let out = kmeans_points(
            &coords,
            &w,
            2,
            KmeansOptions { snap: SnapRule::MaxWeight, ..Default::default() },
        );
        assert!(out.points.contains(&5), "{:?}", out.points);
        assert!(out.points.contains(&8));
    }

    #[test]
    fn deterministic_given_seed() {
        let (coords, w) = two_blob_fixture();
        let a = kmeans_points(&coords, &w, 3, KmeansOptions::default());
        let b = kmeans_points(&coords, &w, 3, KmeansOptions::default());
        assert_eq!(a.points, b.points);
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn zero_weights_panic() {
        let coords = vec![[0.0, 0.0, 0.0]; 3];
        let w = vec![0.0; 3];
        kmeans_points(&coords, &w, 1, KmeansOptions::default());
    }

    #[test]
    fn checked_variant_reports_typed_errors() {
        use faultkit::NumericalError;
        let coords = vec![[0.0, 0.0, 0.0]; 3];
        assert_eq!(
            kmeans_points_checked(&coords, &[0.0; 3], 1, KmeansOptions::default()).unwrap_err(),
            NumericalError::AllZeroWeights
        );
        assert_eq!(
            kmeans_points_checked(&coords, &[1.0; 2], 1, KmeansOptions::default()).unwrap_err(),
            NumericalError::ShapeMismatch { stage: "kmeans", expected: (3, 1), got: (2, 1) }
        );
        // One heavy point drowns the rest below the prune cutoff.
        let mut w = vec![1e-12; 3];
        w[0] = 1.0;
        assert_eq!(
            kmeans_points_checked(&coords, &w, 2, KmeansOptions::default()).unwrap_err(),
            NumericalError::RankDeficient { requested: 2, got: 1 }
        );
    }

    #[test]
    fn degenerate_seeding_reseeds_from_heaviest_unclaimed() {
        use faultkit::{FaultKind, FaultPlan};
        let (coords, w) = two_blob_fixture();
        let run = || {
            let campaign = faultkit::arm(
                FaultPlan::new(7).with("kmeans.init", 0, FaultKind::DegenerateSeeding),
            );
            let out = kmeans_points(&coords, &w, 2, KmeansOptions::default());
            assert_eq!(campaign.fired(), 1, "the seeding fault must trigger");
            out
        };
        let a = run();
        let b = run();
        assert!(a.reseeded > 0, "degenerate start must exercise the reseed path");
        assert_eq!(a.points, b.points, "reseeding must be deterministic");
        // The reseed steers the empty cluster onto the heaviest blob, so the
        // fit still resolves both blobs.
        assert_eq!(a.points.len(), 2);
        let near = |p: [f64; 3], c: [f64; 3]| dist2(p, c) < 0.5;
        let p0 = coords[a.points[0]];
        let p1 = coords[a.points[1]];
        assert!(
            (near(p0, [1.05, 1.0, 1.0]) && near(p1, [5.05, 5.0, 5.0]))
                || (near(p1, [1.05, 1.0, 1.0]) && near(p0, [5.05, 5.0, 5.0])),
            "{p0:?} {p1:?}"
        );
    }

    #[test]
    fn coincident_points_reseed_without_panic() {
        // Pathological distribution: every surviving point at the same
        // coordinate. Initialization degenerates, clusters empty out, and
        // the deterministic reseed must neither panic nor loop.
        let coords = vec![[0.0, 0.0, 0.0]; 3];
        let w = vec![1.0, 2.0, 3.0];
        let out = kmeans_points(&coords, &w, 2, KmeansOptions::default());
        assert!(out.reseeded >= 1, "coincident points must trigger a reseed");
        assert!(!out.points.is_empty());
        assert!(out.points.iter().all(|&p| p < 3));
    }
}
