//! Request-based nonblocking collectives and their progress engine.
//!
//! Every `i*` collective ([`Comm::ireduce_sum`], [`Comm::iallreduce_sum`],
//! [`Comm::ibcast`], [`Comm::ialltoallv`], [`Comm::iallgatherv`]) returns a
//! [`Request`] immediately; the data movement is carried out by a per-rank
//! **progress worker thread**, so communication genuinely proceeds while the
//! issuing rank computes. `test()` polls completion without blocking,
//! `wait()` blocks and hands the payload back, [`wait_all`] drains a batch.
//!
//! ## Chunked algorithms
//!
//! Large payloads are processed as a stream of fixed-size **segments**
//! ([`Comm::segment_words`]), each an independent step through the op's
//! state machine:
//!
//! * [`Algorithm::Ring`] (default) — each segment is folded in ascending
//!   rank order (a systolic chain, the shared-memory image of a ring
//!   reduce-scatter), then read back by the ranks that need it. The
//!   ascending fold order makes results **bitwise identical** to the legacy
//!   blocking deposit-then-sum path.
//! * [`Algorithm::RecursiveDoubling`] — per segment, partial sums combine
//!   pairwise along a binomial tree (`⌈log₂ p⌉` rounds). Fewer chain steps
//!   at large `p`, but the pairwise association differs from the sequential
//!   order, so results agree only to rounding.
//!
//! Every segment step bumps the segment-aware [`SegStats`] counters, and
//! every completed request records a timestamped [`CommInterval`] — the
//! issue-to-completion window during which the collective was in flight on
//! the issuing rank — into that rank's timeline.
//! [`crate::overlap::overlap_fraction`] turns those windows plus the
//! caller's compute intervals into a measured compute/communication overlap
//! fraction (paper Fig. 5): comm that is outstanding while the application
//! computes is overlapped; comm that is outstanding while the caller sits
//! in `wait` is not.
//!
//! ## Issue order and progress model
//!
//! Collectives pair up across ranks by per-rank issue order (op `n` on rank
//! `a` matches op `n` on rank `b`), the SPMD discipline the blocking API
//! already required. Progress is engine-driven: a request completes whether
//! or not anyone calls `wait`, and waits may happen in any order without
//! deadlock. Workers are spawned lazily on the first nonblocking issue and
//! joined when the rank's [`Comm`] drops.

use crate::comm::{lock, Comm, CommStats, OpStats};
use crate::layout::segment_ranges;
use faultkit::{CommError, CommFault};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Words (f64) per segment step: 4096 words = 32 KiB, small enough that a
/// multi-chunk reduction streams, large enough that per-step bookkeeping is
/// noise.
pub const DEFAULT_SEGMENT_WORDS: usize = 4096;

/// Which chunked algorithm a reduction uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Ascending rank-order fold chain per segment (deterministic, bitwise
    /// identical to the blocking path). The default.
    Ring,
    /// Pairwise binomial-tree combine per segment (recursive
    /// halving/doubling); reassociates, so agrees with Ring only to
    /// rounding.
    RecursiveDoubling,
}

/// One request-outstanding window: from the caller's issue of a nonblocking
/// collective to the completion of this rank's duty in it, in seconds since
/// the SPMD epoch ([`Comm::now_secs`] uses the same origin). Compute the
/// caller performs inside this window is genuinely overlapped with the
/// communication (the standard "availability" methodology of MPI overlap
/// benchmarks, which stays meaningful even when rank threads and engine
/// threads share cores).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommInterval {
    pub start: f64,
    pub end: f64,
    pub bytes: u64,
}

/// `Condvar::wait` with poison recovery (same policy as [`lock`]).
fn cv_wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------- requests

struct Slot<T> {
    m: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot { m: Mutex::new(None), cv: Condvar::new() }
    }

    fn ready(v: T) -> Self {
        Slot { m: Mutex::new(Some(v)), cv: Condvar::new() }
    }

    fn put(&self, v: T) {
        *lock(&self.m) = Some(v);
        self.cv.notify_all();
    }

    fn try_take(&self) -> Option<T> {
        lock(&self.m).take()
    }

    fn take_blocking(&self) -> T {
        let mut g = lock(&self.m);
        loop {
            match g.take() {
                Some(v) => return v,
                None => g = cv_wait(&self.cv, g),
            }
        }
    }

    /// Blocking take with a deadline; `None` when the deadline expires with
    /// the slot still empty.
    fn take_timeout(&self, d: Duration) -> Option<T> {
        let deadline = Instant::now() + d;
        let mut g = lock(&self.m);
        loop {
            if let Some(v) = g.take() {
                return Some(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (ng, timeout) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            g = ng;
            if timeout.timed_out() {
                return g.take();
            }
        }
    }
}

/// Which nonblocking op a request accounts against.
#[derive(Clone, Copy, Debug)]
pub(crate) enum NbOp {
    Ireduce,
    Iallreduce,
    Ibcast,
    Iallgatherv,
    Ialltoallv,
}

impl NbOp {
    pub(crate) fn slot(self, s: &mut CommStats) -> &mut OpStats {
        match self {
            NbOp::Ireduce => &mut s.ireduce,
            NbOp::Iallreduce => &mut s.iallreduce,
            NbOp::Ibcast => &mut s.ibcast,
            NbOp::Iallgatherv => &mut s.iallgatherv,
            NbOp::Ialltoallv => &mut s.ialltoallv_nb,
        }
    }

    fn span_name(self) -> &'static str {
        match self {
            NbOp::Ireduce => "mpi:ireduce",
            NbOp::Iallreduce => "mpi:iallreduce",
            NbOp::Ibcast => "mpi:ibcast",
            NbOp::Iallgatherv => "mpi:iallgatherv",
            NbOp::Ialltoallv => "mpi:ialltoallv",
        }
    }

    /// Row in [`CommStats::per_op`] order (blocking ops occupy 0..=5).
    fn index(self) -> usize {
        match self {
            NbOp::Ireduce => 6,
            NbOp::Iallreduce => 7,
            NbOp::Ibcast => 8,
            NbOp::Iallgatherv => 9,
            NbOp::Ialltoallv => 10,
        }
    }

    /// Fault-hook site for this op. Blocking wrappers issue with no `NbOp`
    /// accounting and hook under `comm.blocking`, so a `FaultPlan` can
    /// target the request API without perturbing blocking call sites (whose
    /// plain `wait` has no drop recovery).
    fn fault_site(op: Option<NbOp>) -> &'static str {
        match op {
            Some(NbOp::Ireduce) => "comm.ireduce",
            Some(NbOp::Iallreduce) => "comm.iallreduce",
            Some(NbOp::Ibcast) => "comm.ibcast",
            Some(NbOp::Iallgatherv) => "comm.iallgatherv",
            Some(NbOp::Ialltoallv) => "comm.ialltoallv",
            None => "comm.blocking",
        }
    }

    fn op_label(op: Option<NbOp>) -> &'static str {
        match op {
            Some(NbOp::Ireduce) => "ireduce",
            Some(NbOp::Iallreduce) => "iallreduce",
            Some(NbOp::Ibcast) => "ibcast",
            Some(NbOp::Iallgatherv) => "iallgatherv",
            Some(NbOp::Ialltoallv) => "ialltoallv",
            None => "blocking",
        }
    }
}

/// Deadline/backoff budget for [`Request::wait_deadline`] and
/// [`Comm::settle`]: attempt `k` waits `deadline + k·backoff`, and a request
/// that never completes surfaces [`CommError::Stalled`] after
/// `max_attempts` waits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    pub deadline: Duration,
    pub max_attempts: u32,
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Engine completions are sub-millisecond; 60 ms + linear backoff
        // tolerates CI scheduling hiccups while a genuinely stalled engine
        // (or an injected `CommStall` larger than the whole budget) is
        // surfaced within ~1 s.
        RetryPolicy {
            deadline: Duration::from_millis(60),
            max_attempts: 5,
            backoff: Duration::from_millis(60),
        }
    }
}

struct ReqAcct {
    stats: Arc<Mutex<CommStats>>,
    op: NbOp,
}

/// Handle to an in-flight nonblocking collective. The payload type depends
/// on the op: `Vec<f64>` for reductions/bcast/allgatherv, `Vec<Vec<f64>>`
/// for all-to-all.
///
/// `wait` after a successful `test` is idempotent: the payload is cached on
/// the request and handed back without blocking. Dropping a request without
/// waiting is allowed — the engine still completes the collective (every
/// rank's duties were enqueued at issue), only the payload is discarded.
pub struct Request<T = Vec<f64>> {
    slot: Arc<Slot<T>>,
    taken: Option<T>,
    acct: Option<ReqAcct>,
    /// Fault injection dropped this request before submission; the payload
    /// will never arrive and the issuing rank must re-issue
    /// ([`Comm::settle`] does).
    dropped: bool,
    op: &'static str,
}

impl<T> Request<T> {
    fn pending(slot: Arc<Slot<T>>, acct: Option<ReqAcct>, op: &'static str) -> Self {
        Request { slot, taken: None, acct, dropped: false, op }
    }

    fn ready(v: T) -> Self {
        Request {
            slot: Arc::new(Slot::ready(v)),
            taken: None,
            acct: None,
            dropped: false,
            op: "local",
        }
    }

    fn make_dropped(op: &'static str) -> Self {
        Request { slot: Arc::new(Slot::new()), taken: None, acct: None, dropped: true, op }
    }

    /// Whether fault injection dropped this request at issue. A dropped
    /// request never completes; re-issue it (symmetrically on every rank —
    /// the injection decision is) or hand it to [`Comm::settle`].
    pub fn is_dropped(&self) -> bool {
        self.dropped
    }

    /// Nonblocking completion poll. Returns `true` once the collective has
    /// finished; the payload is then pinned to this handle for `wait`.
    pub fn test(&mut self) -> bool {
        if self.taken.is_some() {
            return true;
        }
        match self.slot.try_take() {
            Some(v) => {
                self.taken = Some(v);
                true
            }
            None => false,
        }
    }

    /// Block until completion and hand back the payload. Blocked time is
    /// charged to the issuing rank's [`CommStats`] (the engine's own busy
    /// time is *not* — it lives in the segment counters).
    pub fn wait(mut self) -> T {
        if let Some(v) = self.taken.take() {
            return v;
        }
        assert!(
            !self.dropped,
            "wait() on a request dropped by fault injection (op `{}`); \
             use wait_deadline/Comm::settle on fault-injected paths",
            self.op
        );
        let span = self.acct.as_ref().map(|_| obskit::span(obskit::Stage::Mpi, "mpi:wait"));
        let t0 = Instant::now();
        let v = self.slot.take_blocking();
        self.charge_wait(t0);
        drop(span);
        v
    }

    fn charge_wait(&self, t0: Instant) {
        if let Some(a) = &self.acct {
            let dt = t0.elapsed().as_secs_f64();
            let mut s = lock(&a.stats);
            s.measured_seconds += dt;
            a.op.slot(&mut s).seconds += dt;
        }
    }

    /// Wait with a deadline/backoff budget. Attempt `k` blocks for
    /// `deadline + k·backoff`; once the budget is exhausted the request is
    /// abandoned and [`CommError::Stalled`] surfaces. A request dropped by
    /// fault injection returns [`CommError::Dropped`] immediately.
    ///
    /// Expired deadlines re-wait on the **same** request — they never
    /// re-issue, because a locally-timed re-issue would desynchronize the
    /// SPMD op-id matching across ranks. Only symmetrically-dropped requests
    /// are re-issued ([`Comm::settle`]).
    pub fn wait_deadline(mut self, policy: &RetryPolicy) -> Result<T, CommError> {
        if let Some(v) = self.taken.take() {
            return Ok(v);
        }
        if self.dropped {
            return Err(CommError::Dropped { op: self.op });
        }
        let span = self.acct.as_ref().map(|_| obskit::span(obskit::Stage::Mpi, "mpi:wait"));
        let t0 = Instant::now();
        let mut waited = Duration::ZERO;
        for attempt in 0..policy.max_attempts.max(1) {
            let d = policy.deadline + policy.backoff * attempt;
            if let Some(v) = self.slot.take_timeout(d) {
                self.charge_wait(t0);
                drop(span);
                return Ok(v);
            }
            waited += d;
        }
        self.charge_wait(t0);
        Err(CommError::Stalled { op: self.op, waited, attempts: policy.max_attempts.max(1) })
    }
}

/// Wait on a batch of requests, returning payloads in issue order.
pub fn wait_all<T>(reqs: Vec<Request<T>>) -> Vec<T> {
    reqs.into_iter().map(Request::wait).collect()
}

// ------------------------------------------------------------------ engine

type Task = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct Worker {
    tx: Sender<Task>,
    handle: JoinHandle<()>,
}

impl Worker {
    fn spawn(rank: usize) -> Worker {
        let (tx, rx) = std::sync::mpsc::channel::<Task>();
        let handle = std::thread::Builder::new()
            .name(format!("parcomm-nb-{rank}"))
            .spawn(move || {
                // FIFO drain; the channel closing (Comm drop) ends the loop.
                // The engine thread records no spans of its own (engine work
                // is observable via SegStats and the timeline), but label
                // its lane anyway: anything that *does* record here — flight
                // events, future instrumentation — must not read as
                // anonymous rank-0 activity.
                obskit::set_thread_label(&format!("progress-{rank}"));
                for task in rx {
                    task();
                }
            })
            .expect("spawn progress worker");
        Worker { tx, handle }
    }

    fn send(&self, task: Task) {
        self.tx.send(task).expect("progress worker alive");
    }

    pub(crate) fn shutdown(self) {
        drop(self.tx);
        let _ = self.handle.join();
    }
}

/// Cross-rank shared state of the nonblocking engine.
pub(crate) struct NbShared {
    pub(crate) epoch: Instant,
    pub(crate) segment_words: usize,
    ops: Mutex<HashMap<u64, OpCell>>,
}

impl NbShared {
    pub(crate) fn new(segment_words: usize) -> Self {
        NbShared {
            epoch: Instant::now(),
            segment_words: segment_words.max(1),
            ops: Mutex::new(HashMap::new()),
        }
    }

    fn retire(&self, id: u64) {
        lock(&self.ops).remove(&id);
    }
}

#[derive(Clone)]
enum OpCell {
    Reduce(Arc<ReduceCell>),
    Bcast(Arc<BcastCell>),
    Gather(Arc<GatherCell>),
    A2a(Arc<A2aCell>),
}

/// Per-task context cloned into the worker closure: everything a step needs
/// to synchronize, time itself, and account.
struct Ctx {
    nb: Arc<crate::comm::Shared>,
    id: u64,
    rank: usize,
    size: usize,
    timeline: Arc<Mutex<Vec<CommInterval>>>,
    stats: Arc<Mutex<CommStats>>,
}

impl Ctx {
    /// Account one engine segment step (fold/publish/copy) in [`SegStats`].
    fn record(&self, t0: Instant, bytes: u64) {
        let epoch = self.nb.nb.epoch;
        let start = t0.duration_since(epoch).as_secs_f64();
        let end = epoch.elapsed().as_secs_f64();
        let mut s = lock(&self.stats);
        s.seg.steps += 1;
        s.seg.bytes += bytes;
        s.seg.busy_seconds += end - start;
        drop(s);
        obskit::add_comm_segments(1);
    }

    /// Close this rank's request-outstanding window: called by the engine
    /// the moment the rank's duty in the collective completes (not when the
    /// caller gets around to `wait`ing), so the window's end is the true
    /// completion time.
    fn record_window(&self, issued_at: f64, bytes: u64) {
        let end = self.nb.nb.epoch.elapsed().as_secs_f64();
        lock(&self.timeline).push(CommInterval { start: issued_at, end, bytes });
    }

    /// Mark this rank done with the op; the last rank retires the cell.
    fn finish(&self, finished: &Mutex<usize>) {
        let done = {
            let mut f = lock(finished);
            *f += 1;
            *f == self.size
        };
        if done {
            self.nb.nb.retire(self.id);
        }
    }
}

// ------------------------------------------------------------ reduce cells

struct ReduceCell {
    len: usize,
    root: usize,
    all: bool,
    max_op: bool,
    alg: Algorithm,
    segs: Vec<Range<usize>>,
    st: Mutex<RedState>,
    cv: Condvar,
    finished: Mutex<usize>,
}

struct RedState {
    /// Ring: the single ordered accumulation buffer. Tree: the published
    /// total (filled by rank 0 after its last fold).
    acc: Vec<f64>,
    /// Ring: next rank allowed to fold each segment.
    next_rank: Vec<usize>,
    /// Segment fully reduced (ring) / total published (tree: one flag in
    /// slot 0 when any segments exist).
    done: Vec<bool>,
    /// Tree: per-rank partials, deposited at task start.
    partials: Vec<Option<Vec<f64>>>,
    /// Tree: rounds completed per rank per segment.
    round: Vec<Vec<u32>>,
    /// Tree: total assembled at rank 0 and published into `acc`.
    published: bool,
}

impl ReduceCell {
    fn new(len: usize, root: usize, all: bool, max_op: bool, alg: Algorithm, p: usize, seg: usize) -> Self {
        let segs = segment_ranges(len, seg);
        let init = if max_op { f64::NEG_INFINITY } else { 0.0 };
        let nseg = segs.len();
        ReduceCell {
            len,
            root,
            all,
            max_op,
            alg,
            st: Mutex::new(RedState {
                acc: match alg {
                    Algorithm::Ring => vec![init; len],
                    Algorithm::RecursiveDoubling => Vec::new(),
                },
                next_rank: vec![0; nseg],
                done: vec![false; nseg],
                partials: match alg {
                    Algorithm::Ring => Vec::new(),
                    Algorithm::RecursiveDoubling => (0..p).map(|_| None).collect(),
                },
                round: match alg {
                    Algorithm::Ring => Vec::new(),
                    Algorithm::RecursiveDoubling => vec![vec![u32::MAX; nseg]; p],
                },
                published: false,
            }),
            cv: Condvar::new(),
            finished: Mutex::new(0),
            segs,
        }
    }

    #[inline]
    fn fold(max_op: bool, acc: &mut [f64], x: &[f64]) {
        if max_op {
            for (a, v) in acc.iter_mut().zip(x) {
                *a = a.max(*v);
            }
        } else {
            for (a, v) in acc.iter_mut().zip(x) {
                *a += *v;
            }
        }
    }

    /// This rank's whole part of the collective, run on the progress
    /// worker. Returns the payload for this rank's request.
    fn run(&self, ctx: &Ctx, data: Vec<f64>) -> Vec<f64> {
        let out = match self.alg {
            Algorithm::Ring => self.run_ring(ctx, data),
            Algorithm::RecursiveDoubling => self.run_tree(ctx, data),
        };
        ctx.finish(&self.finished);
        out
    }

    fn run_ring(&self, ctx: &Ctx, mut data: Vec<f64>) -> Vec<f64> {
        let (p, rank) = (ctx.size, ctx.rank);
        // Fold phase: ascending rank order per segment — a systolic chain
        // whose sum order matches the legacy blocking path bitwise.
        for (si, seg) in self.segs.iter().enumerate() {
            let mut g = lock(&self.st);
            while g.next_rank[si] != rank {
                g = cv_wait(&self.cv, g);
            }
            let t0 = Instant::now();
            Self::fold(self.max_op, &mut g.acc[seg.clone()], &data[seg.clone()]);
            g.next_rank[si] += 1;
            if g.next_rank[si] == p {
                g.done[si] = true;
            }
            drop(g);
            self.cv.notify_all();
            ctx.record(t0, (seg.len() * 8) as u64);
        }
        // Read-back phase.
        if self.all {
            for (si, seg) in self.segs.iter().enumerate() {
                let mut g = lock(&self.st);
                while !g.done[si] {
                    g = cv_wait(&self.cv, g);
                }
                let t0 = Instant::now();
                data[seg.clone()].copy_from_slice(&g.acc[seg.clone()]);
                drop(g);
                ctx.record(t0, (seg.len() * 8) as u64);
            }
            data
        } else if rank == self.root {
            let mut g = lock(&self.st);
            while !g.done.iter().all(|d| *d) {
                g = cv_wait(&self.cv, g);
            }
            // Only the root reads the accumulator — move it out.
            std::mem::take(&mut g.acc)
        } else {
            Vec::new()
        }
    }

    fn run_tree(&self, ctx: &Ctx, data: Vec<f64>) -> Vec<f64> {
        let (p, rank) = (ctx.size, ctx.rank);
        let nseg = self.segs.len();
        {
            let mut g = lock(&self.st);
            g.partials[rank] = Some(data);
            for si in 0..nseg {
                g.round[rank][si] = 0;
            }
            drop(g);
            self.cv.notify_all();
        }
        // Binomial combine: at round k, rank r with r % 2^(k+1) == 0 folds
        // the partial of r + 2^k (the root of the adjacent subtree).
        let mut k = 0u32;
        while (1usize << k) < p {
            let step = 1usize << k;
            if rank % (step << 1) == 0 {
                let peer = rank + step;
                for (si, seg) in self.segs.iter().enumerate() {
                    let mut g = lock(&self.st);
                    if peer < p {
                        while g.partials[peer].is_none() || g.round[peer][si] == u32::MAX || g.round[peer][si] < k {
                            g = cv_wait(&self.cv, g);
                        }
                        let t0 = Instant::now();
                        let (lo, hi) = g.partials.split_at_mut(peer);
                        let mine = lo[rank].as_mut().expect("own partial deposited");
                        let theirs = hi[0].as_ref().expect("peer partial deposited");
                        Self::fold(self.max_op, &mut mine[seg.clone()], &theirs[seg.clone()]);
                        g.round[rank][si] = k + 1;
                        drop(g);
                        self.cv.notify_all();
                        ctx.record(t0, (seg.len() * 8) as u64);
                    } else {
                        g.round[rank][si] = k + 1;
                        drop(g);
                        self.cv.notify_all();
                    }
                }
                k += 1;
            } else {
                // Sender: my partial (rounds 0..k complete) is consumed by
                // rank − 2^k; nothing further to fold.
                break;
            }
        }
        // Rank 0 holds the total; publish for root / all read-back.
        if rank == 0 {
            let mut g = lock(&self.st);
            g.acc = g.partials[0].take().expect("total at rank 0");
            g.published = true;
            drop(g);
            self.cv.notify_all();
        }
        if self.all || rank == self.root {
            let mut g = lock(&self.st);
            while !g.published {
                g = cv_wait(&self.cv, g);
            }
            let t0 = Instant::now();
            let out = g.acc.clone();
            drop(g);
            ctx.record(t0, (self.len * 8) as u64);
            out
        } else {
            Vec::new()
        }
    }
}

// ------------------------------------------------------------- bcast cell

struct BcastCell {
    root: usize,
    segs: Vec<Range<usize>>,
    st: Mutex<BcState>,
    cv: Condvar,
    finished: Mutex<usize>,
}

struct BcState {
    data: Vec<f64>,
    published: usize,
}

impl BcastCell {
    fn new(len: usize, root: usize, seg: usize) -> Self {
        BcastCell {
            root,
            segs: segment_ranges(len, seg),
            st: Mutex::new(BcState { data: vec![0.0; len], published: 0 }),
            cv: Condvar::new(),
            finished: Mutex::new(0),
        }
    }

    fn run(&self, ctx: &Ctx, mut data: Vec<f64>) -> Vec<f64> {
        if ctx.rank == self.root {
            for (si, seg) in self.segs.iter().enumerate() {
                let mut g = lock(&self.st);
                let t0 = Instant::now();
                g.data[seg.clone()].copy_from_slice(&data[seg.clone()]);
                g.published = si + 1;
                drop(g);
                self.cv.notify_all();
                ctx.record(t0, (seg.len() * 8) as u64);
            }
        } else {
            for (si, seg) in self.segs.iter().enumerate() {
                let mut g = lock(&self.st);
                while g.published <= si {
                    g = cv_wait(&self.cv, g);
                }
                let t0 = Instant::now();
                data[seg.clone()].copy_from_slice(&g.data[seg.clone()]);
                drop(g);
                ctx.record(t0, (seg.len() * 8) as u64);
            }
        }
        ctx.finish(&self.finished);
        data
    }
}

// ------------------------------------------------------------ gather cell

struct GatherCell {
    st: Mutex<GatherState>,
    cv: Condvar,
    finished: Mutex<usize>,
}

struct GatherState {
    parts: Vec<Option<Vec<f64>>>,
}

impl GatherCell {
    fn new(p: usize) -> Self {
        GatherCell {
            st: Mutex::new(GatherState { parts: (0..p).map(|_| None).collect() }),
            cv: Condvar::new(),
            finished: Mutex::new(0),
        }
    }

    fn run(&self, ctx: &Ctx, mine: Vec<f64>) -> Vec<f64> {
        {
            let mut g = lock(&self.st);
            g.parts[ctx.rank] = Some(mine);
            drop(g);
            self.cv.notify_all();
        }
        let mut out = Vec::new();
        for r in 0..ctx.size {
            let mut g = lock(&self.st);
            while g.parts[r].is_none() {
                g = cv_wait(&self.cv, g);
            }
            let t0 = Instant::now();
            let part = g.parts[r].as_ref().expect("deposited");
            out.extend_from_slice(part);
            let bytes = (part.len() * 8) as u64;
            drop(g);
            ctx.record(t0, bytes);
        }
        ctx.finish(&self.finished);
        out
    }
}

// --------------------------------------------------------- all-to-all cell

struct A2aCell {
    st: Mutex<A2aState>,
    cv: Condvar,
    finished: Mutex<usize>,
}

struct A2aState {
    /// `boxes[src][dst]`: the chunk src sent to dst, taken by dst.
    boxes: Vec<Vec<Option<Vec<f64>>>>,
}

impl A2aCell {
    fn new(p: usize) -> Self {
        A2aCell {
            st: Mutex::new(A2aState {
                boxes: (0..p).map(|_| (0..p).map(|_| None).collect()).collect(),
            }),
            cv: Condvar::new(),
            finished: Mutex::new(0),
        }
    }

    fn run(&self, ctx: &Ctx, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let sizes: Vec<u64> = send.iter().map(|c| (c.len() * 8) as u64).collect();
        {
            let t0 = Instant::now();
            let mut g = lock(&self.st);
            for (dst, chunk) in send.into_iter().enumerate() {
                g.boxes[ctx.rank][dst] = Some(chunk);
            }
            drop(g);
            self.cv.notify_all();
            ctx.record(t0, sizes.iter().sum());
        }
        let mut recv = Vec::with_capacity(ctx.size);
        for src in 0..ctx.size {
            let mut g = lock(&self.st);
            while g.boxes[src][ctx.rank].is_none() {
                g = cv_wait(&self.cv, g);
            }
            let t0 = Instant::now();
            let chunk = g.boxes[src][ctx.rank].take().expect("deposited");
            let bytes = (chunk.len() * 8) as u64;
            drop(g);
            ctx.record(t0, bytes);
            recv.push(chunk);
        }
        ctx.finish(&self.finished);
        recv
    }
}

// --------------------------------------------------- issue paths on `Comm`

impl Comm {
    /// Seconds since the SPMD epoch — the time origin of
    /// [`CommInterval`] timestamps, for callers recording compute
    /// intervals to overlap against.
    pub fn now_secs(&self) -> f64 {
        self.shared.nb.epoch.elapsed().as_secs_f64()
    }

    /// Segment size (in f64 words) of the chunked algorithms.
    pub fn segment_words(&self) -> usize {
        self.shared.nb.segment_words
    }

    /// Drain this rank's engine timeline: the outstanding window of every
    /// nonblocking collective completed since the previous drain, in
    /// completion order.
    pub fn drain_comm_intervals(&self) -> Vec<CommInterval> {
        std::mem::take(&mut *lock(&self.timeline))
    }

    fn ctx(&self, id: u64) -> Ctx {
        Ctx {
            nb: Arc::clone(&self.shared),
            id,
            rank: self.rank,
            size: self.shared.size,
            timeline: Arc::clone(&self.timeline),
            stats: Arc::clone(&self.stats),
        }
    }

    fn acct_for(&self, op: Option<NbOp>) -> Option<ReqAcct> {
        op.map(|op| ReqAcct { stats: Arc::clone(&self.stats), op })
    }

    /// Charge the issue side of a public nonblocking op: one collective
    /// call, its bytes, its modeled time, and the caller-side issue latency.
    /// `span` was opened at the op's entry (same convention as the blocking
    /// wrappers) so span-derived stage timings match `measured_seconds`; it
    /// gets its args here and closes on drop.
    fn account_issue(&self, op: NbOp, bytes: usize, t0: Instant, modeled: f64, span: obskit::Span) {
        let seconds = t0.elapsed().as_secs_f64();
        let mut s = lock(&self.stats);
        s.bytes_sent += bytes as u64;
        s.collective_calls += 1;
        s.measured_seconds += seconds;
        s.modeled_seconds += modeled;
        if bytes as u64 <= crate::comm::ALPHA_SMALL_BYTES {
            s.alpha_calls += 1;
        }
        s.hist.record(op.index(), bytes as u64);
        let slot = op.slot(&mut s);
        slot.calls += 1;
        slot.bytes += bytes as u64;
        slot.seconds += seconds;
        drop(s);
        obskit::add_bytes_moved(bytes as u64);
        let mut span = span;
        span.arg("bytes", bytes as f64);
        span.arg("modeled_s", modeled);
    }

    fn reduce_cell(&self, id: u64, len: usize, root: usize, all: bool, max_op: bool, alg: Algorithm) -> Arc<ReduceCell> {
        let nb = &self.shared.nb;
        let p = self.shared.size;
        let seg = nb.segment_words;
        let mut ops = lock(&nb.ops);
        let cell = ops
            .entry(id)
            .or_insert_with(|| OpCell::Reduce(Arc::new(ReduceCell::new(len, root, all, max_op, alg, p, seg))));
        match cell {
            OpCell::Reduce(c) => {
                assert_eq!(c.len, len, "reduce length mismatch at op {id} (rank {})", self.rank);
                assert!(
                    c.root == root && c.all == all && c.max_op == max_op && c.alg == alg,
                    "mismatched reduce parameters at op {id} (rank {})",
                    self.rank
                );
                Arc::clone(c)
            }
            _ => panic!("collective kind mismatch at op {id}: expected reduce"),
        }
    }

    pub(crate) fn issue_reduce(
        &self,
        data: Vec<f64>,
        root: usize,
        all: bool,
        max_op: bool,
        alg: Algorithm,
        acct: Option<NbOp>,
    ) -> Request {
        if self.shared.size == 1 {
            // Identity: the single contribution is the result, bitwise.
            return Request::ready(data);
        }
        let delay = match faultkit::comm_fault(NbOp::fault_site(acct)) {
            Some(CommFault::Drop) => return Request::make_dropped(NbOp::op_label(acct)),
            Some(CommFault::Delay(d)) => Some(d),
            None => None,
        };
        let id = self.next_op_id();
        let cell = self.reduce_cell(id, data.len(), root, all, max_op, alg);
        let slot = Arc::new(Slot::new());
        let req = Request::pending(Arc::clone(&slot), self.acct_for(acct), NbOp::op_label(acct));
        let ctx = self.ctx(id);
        let issued_at = self.now_secs();
        let bytes = (data.len() * 8) as u64;
        self.submit(Box::new(move || {
            if let Some(d) = delay {
                std::thread::sleep(d);
            }
            let out = cell.run(&ctx, data);
            ctx.record_window(issued_at, bytes);
            slot.put(out);
        }));
        req
    }

    /// Nonblocking sum-reduce of `data` to `root`. On `root`, `wait()`
    /// returns the reduced buffer; on other ranks it returns an empty
    /// vector once this rank's contribution has been folded in.
    pub fn ireduce_sum(&self, data: Vec<f64>, root: usize) -> Request {
        self.ireduce_sum_with(data, root, Algorithm::Ring)
    }

    /// [`Comm::ireduce_sum`] with an explicit chunked algorithm.
    pub fn ireduce_sum_with(&self, data: Vec<f64>, root: usize, alg: Algorithm) -> Request {
        let sp = obskit::span(obskit::Stage::Mpi, NbOp::Ireduce.span_name());
        let t0 = Instant::now();
        let bytes = data.len() * 8;
        let modeled = self
            .shared
            .model
            .segmented_reduce(self.size(), bytes, self.segment_words() * 8);
        let rq = self.issue_reduce(data, root, false, false, alg, Some(NbOp::Ireduce));
        self.account_issue(NbOp::Ireduce, bytes, t0, modeled, sp);
        rq
    }

    /// Nonblocking in-place sum-allreduce: `wait()` returns the fully
    /// reduced buffer on every rank.
    pub fn iallreduce_sum(&self, data: Vec<f64>) -> Request {
        self.iallreduce_sum_with(data, Algorithm::Ring)
    }

    /// [`Comm::iallreduce_sum`] with an explicit chunked algorithm.
    pub fn iallreduce_sum_with(&self, data: Vec<f64>, alg: Algorithm) -> Request {
        let sp = obskit::span(obskit::Stage::Mpi, NbOp::Iallreduce.span_name());
        let t0 = Instant::now();
        let bytes = data.len() * 8;
        let modeled = self
            .shared
            .model
            .ring_allreduce(self.size(), bytes, self.segment_words() * 8);
        let rq = self.issue_reduce(data, 0, true, false, alg, Some(NbOp::Iallreduce));
        self.account_issue(NbOp::Iallreduce, bytes, t0, modeled, sp);
        rq
    }

    /// Internal max-allreduce used by the blocking wrapper.
    pub(crate) fn issue_allreduce_max(&self, data: Vec<f64>) -> Request {
        self.issue_reduce(data, 0, true, true, Algorithm::Ring, None)
    }

    /// Nonblocking broadcast from `root`; every rank passes a buffer of the
    /// broadcast length and `wait()` returns it filled with root's data.
    pub fn ibcast(&self, data: Vec<f64>, root: usize) -> Request {
        let sp = obskit::span(obskit::Stage::Mpi, NbOp::Ibcast.span_name());
        let t0 = Instant::now();
        let bytes = data.len() * 8;
        let modeled = self
            .shared
            .model
            .segmented_bcast(self.size(), bytes, self.segment_words() * 8);
        let rq = self.issue_bcast(data, root, Some(NbOp::Ibcast));
        // Match the blocking convention: only root "contributes" bytes.
        let contributed = if self.rank == root { bytes } else { 0 };
        self.account_issue(NbOp::Ibcast, contributed, t0, modeled, sp);
        rq
    }

    pub(crate) fn issue_bcast(&self, data: Vec<f64>, root: usize, acct: Option<NbOp>) -> Request {
        if self.shared.size == 1 {
            return Request::ready(data);
        }
        let delay = match faultkit::comm_fault(NbOp::fault_site(acct)) {
            Some(CommFault::Drop) => return Request::make_dropped(NbOp::op_label(acct)),
            Some(CommFault::Delay(d)) => Some(d),
            None => None,
        };
        let id = self.next_op_id();
        let nb = &self.shared.nb;
        let cell = {
            let seg = nb.segment_words;
            let mut ops = lock(&nb.ops);
            let cell = ops
                .entry(id)
                .or_insert_with(|| OpCell::Bcast(Arc::new(BcastCell::new(data.len(), root, seg))));
            match cell {
                OpCell::Bcast(c) => {
                    assert_eq!(c.root, root, "bcast root mismatch at op {id}");
                    assert_eq!(
                        lock(&c.st).data.len(),
                        data.len(),
                        "bcast length mismatch at op {id} (rank {})",
                        self.rank
                    );
                    Arc::clone(c)
                }
                _ => panic!("collective kind mismatch at op {id}: expected bcast"),
            }
        };
        let slot = Arc::new(Slot::new());
        let req = Request::pending(Arc::clone(&slot), self.acct_for(acct), NbOp::op_label(acct));
        let ctx = self.ctx(id);
        let issued_at = self.now_secs();
        let bytes = (data.len() * 8) as u64;
        self.submit(Box::new(move || {
            if let Some(d) = delay {
                std::thread::sleep(d);
            }
            let out = cell.run(&ctx, data);
            ctx.record_window(issued_at, bytes);
            slot.put(out);
        }));
        req
    }

    /// Nonblocking variable all-gather; `wait()` returns the rank-order
    /// concatenation on every rank.
    pub fn iallgatherv(&self, mine: &[f64]) -> Request {
        let sp = obskit::span(obskit::Stage::Mpi, NbOp::Iallgatherv.span_name());
        let t0 = Instant::now();
        let bytes = mine.len() * 8;
        // Modeled like the blocking allgatherv; total size is only known
        // collectively, so charge the per-rank contribution p-fold.
        let modeled = self.shared.model.allgatherv(self.size(), bytes * self.size());
        let rq = self.issue_gather(mine.to_vec(), Some(NbOp::Iallgatherv));
        self.account_issue(NbOp::Iallgatherv, bytes, t0, modeled, sp);
        rq
    }

    pub(crate) fn issue_gather(&self, mine: Vec<f64>, acct: Option<NbOp>) -> Request {
        if self.shared.size == 1 {
            return Request::ready(mine);
        }
        let delay = match faultkit::comm_fault(NbOp::fault_site(acct)) {
            Some(CommFault::Drop) => return Request::make_dropped(NbOp::op_label(acct)),
            Some(CommFault::Delay(d)) => Some(d),
            None => None,
        };
        let id = self.next_op_id();
        let p = self.shared.size;
        let cell = {
            let mut ops = lock(&self.shared.nb.ops);
            let cell = ops.entry(id).or_insert_with(|| OpCell::Gather(Arc::new(GatherCell::new(p))));
            match cell {
                OpCell::Gather(c) => Arc::clone(c),
                _ => panic!("collective kind mismatch at op {id}: expected allgatherv"),
            }
        };
        let slot = Arc::new(Slot::new());
        let req = Request::pending(Arc::clone(&slot), self.acct_for(acct), NbOp::op_label(acct));
        let ctx = self.ctx(id);
        let issued_at = self.now_secs();
        let bytes = (mine.len() * 8) as u64;
        self.submit(Box::new(move || {
            if let Some(d) = delay {
                std::thread::sleep(d);
            }
            let out = cell.run(&ctx, mine);
            ctx.record_window(issued_at, bytes);
            slot.put(out);
        }));
        req
    }

    /// Nonblocking variable all-to-all: `send[q]` goes to rank `q`;
    /// `wait()` returns the received chunks indexed by source rank.
    pub fn ialltoallv(&self, send: Vec<Vec<f64>>) -> Request<Vec<Vec<f64>>> {
        let sp = obskit::span(obskit::Stage::Mpi, NbOp::Ialltoallv.span_name());
        let t0 = Instant::now();
        let bytes: usize = send.iter().map(|c| c.len() * 8).sum();
        let modeled = self.shared.model.alltoallv(self.size(), bytes);
        let rq = self.issue_alltoall(send, Some(NbOp::Ialltoallv));
        self.account_issue(NbOp::Ialltoallv, bytes, t0, modeled, sp);
        rq
    }

    pub(crate) fn issue_alltoall(&self, send: Vec<Vec<f64>>, acct: Option<NbOp>) -> Request<Vec<Vec<f64>>> {
        let p = self.shared.size;
        assert_eq!(send.len(), p, "alltoallv needs one chunk per destination");
        if p == 1 {
            return Request::ready(send);
        }
        let delay = match faultkit::comm_fault(NbOp::fault_site(acct)) {
            Some(CommFault::Drop) => return Request::make_dropped(NbOp::op_label(acct)),
            Some(CommFault::Delay(d)) => Some(d),
            None => None,
        };
        let id = self.next_op_id();
        let cell = {
            let mut ops = lock(&self.shared.nb.ops);
            let cell = ops.entry(id).or_insert_with(|| OpCell::A2a(Arc::new(A2aCell::new(p))));
            match cell {
                OpCell::A2a(c) => Arc::clone(c),
                _ => panic!("collective kind mismatch at op {id}: expected alltoallv"),
            }
        };
        let slot = Arc::new(Slot::new());
        let req = Request::pending(Arc::clone(&slot), self.acct_for(acct), NbOp::op_label(acct));
        let ctx = self.ctx(id);
        let issued_at = self.now_secs();
        let bytes: u64 = send.iter().map(|c| (c.len() * 8) as u64).sum();
        self.submit(Box::new(move || {
            if let Some(d) = delay {
                std::thread::sleep(d);
            }
            let out = cell.run(&ctx, send);
            ctx.record_window(issued_at, bytes);
            slot.put(out);
        }));
        req
    }

    /// Zero-payload helper some schedules use to keep op ids aligned when a
    /// rank's chunk is empty: issues a real (empty) reduce so every rank
    /// consumes the same op-id sequence.
    pub fn ireduce_sum_empty(&self, root: usize) -> Request {
        self.ireduce_sum(Vec::new(), root)
    }

    /// Settle an already-issued request with bounded recovery: a request
    /// dropped by fault injection is re-issued via `reissue` (safe because
    /// the injection decision fired symmetrically on every rank, so every
    /// rank re-issues and op ids stay matched), and completion is awaited
    /// under `policy`'s deadline/backoff budget before
    /// [`CommError::Stalled`] surfaces.
    ///
    /// Taking the first request as an argument (rather than issuing it
    /// here) lets callers keep their issue-then-compute overlap window: the
    /// recovery path only engages after the overlapped compute is done.
    pub fn settle<T>(
        &self,
        first: Request<T>,
        policy: &RetryPolicy,
        mut reissue: impl FnMut(&Comm) -> Request<T>,
    ) -> Result<T, CommError> {
        let mut rq = first;
        let mut reissues = 0u32;
        loop {
            if rq.is_dropped() {
                let op = rq.op;
                if reissues >= policy.max_attempts.max(1) {
                    return Err(CommError::Dropped { op });
                }
                reissues += 1;
                rq = reissue(self);
                continue;
            }
            return rq.wait_deadline(policy);
        }
    }

    /// Issue-and-settle in one call: `issue` runs once up front and again on
    /// every (symmetric) drop re-issue.
    pub fn resilient<T>(
        &self,
        policy: &RetryPolicy,
        mut issue: impl FnMut(&Comm) -> Request<T>,
    ) -> Result<T, CommError> {
        let first = issue(self);
        self.settle(first, policy, issue)
    }

    /// Per-rank monotone op id; SPMD issue order matches op `n` here with
    /// op `n` on every other rank.
    pub(crate) fn next_op_id(&self) -> u64 {
        let id = self.next_op.get();
        self.next_op.set(id + 1);
        id
    }

    /// Enqueue a task on this rank's progress worker (spawned lazily).
    pub(crate) fn submit(&self, task: Task) {
        let mut w = self.worker.borrow_mut();
        let w = w.get_or_insert_with(|| Worker::spawn(self.rank));
        w.send(task);
    }
}
