//! α–β communication cost model.
//!
//! Collective costs follow the standard Hockney-style estimates used in the
//! MPI literature (and implicitly in the paper's scaling discussion):
//!
//! | collective  | modeled time                                   |
//! |-------------|------------------------------------------------|
//! | barrier     | `α · log₂(p)`                                  |
//! | bcast       | `log₂(p) · (α + β·n)`                          |
//! | reduce      | `log₂(p) · (α + β·n)`                          |
//! | allreduce   | `2·log₂(p)·α + 2·β·n·(p−1)/p` (Rabenseifner)   |
//! | allgatherv  | `(p−1)·α + β·n_total·(p−1)/p`                  |
//! | alltoallv   | `(p−1)·α + β·n_sent`                           |
//!
//! where `n` is the per-rank payload in bytes. The defaults approximate a
//! Cray-Aries-class interconnect (≈1.5 µs latency, ≈8 GB/s per-rank
//! bandwidth); benches may calibrate them.

/// Latency–bandwidth model for collective communication.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Per-byte transfer time, seconds (1/bandwidth).
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // ~1.5 µs latency, 8 GB/s effective per-rank bandwidth.
        CostModel { alpha: 1.5e-6, beta: 1.0 / 8.0e9 }
    }
}

impl CostModel {
    /// A model in which communication is free (useful to isolate compute).
    pub fn free() -> Self {
        CostModel { alpha: 0.0, beta: 0.0 }
    }

    #[inline]
    fn log2p(p: usize) -> f64 {
        (p.max(1) as f64).log2().max(1.0)
    }

    pub fn barrier(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            self.alpha * Self::log2p(p)
        }
    }

    pub fn bcast(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            Self::log2p(p) * (self.alpha + self.beta * bytes as f64)
        }
    }

    pub fn reduce(&self, p: usize, bytes: usize) -> f64 {
        self.bcast(p, bytes)
    }

    pub fn allreduce(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            2.0 * Self::log2p(p) * self.alpha
                + 2.0 * self.beta * bytes as f64 * (p as f64 - 1.0) / p as f64
        }
    }

    pub fn allgatherv(&self, p: usize, total_bytes: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            (p as f64 - 1.0) * self.alpha
                + self.beta * total_bytes as f64 * (p as f64 - 1.0) / p as f64
        }
    }

    pub fn alltoallv(&self, p: usize, sent_bytes: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            (p as f64 - 1.0) * self.alpha + self.beta * sent_bytes as f64
        }
    }

    #[inline]
    fn segments(bytes: usize, seg_bytes: usize) -> f64 {
        bytes.div_ceil(seg_bytes.max(1)).max(1) as f64
    }

    /// Pipelined ring allreduce over fixed-size segments: the chain fills in
    /// `2(p−1)` steps and then streams one segment per step, so latency is
    /// `α · (2(p−1) + s − 1)` with the usual `2n(p−1)/p` bandwidth term.
    pub fn ring_allreduce(&self, p: usize, bytes: usize, seg_bytes: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            let s = Self::segments(bytes, seg_bytes);
            self.alpha * (2.0 * (p as f64 - 1.0) + s - 1.0)
                + 2.0 * self.beta * bytes as f64 * (p as f64 - 1.0) / p as f64
        }
    }

    /// Pipelined (segmented) binomial-tree reduce: `log₂(p)` rounds to fill,
    /// then one segment per step; each byte crosses the wire once.
    pub fn segmented_reduce(&self, p: usize, bytes: usize, seg_bytes: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            let s = Self::segments(bytes, seg_bytes);
            self.alpha * (Self::log2p(p) + s - 1.0) + self.beta * bytes as f64
        }
    }

    /// Pipelined (segmented) binomial-tree broadcast — same shape as
    /// [`CostModel::segmented_reduce`].
    pub fn segmented_bcast(&self, p: usize, bytes: usize, seg_bytes: usize) -> f64 {
        self.segmented_reduce(p, bytes, seg_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        let m = CostModel::default();
        assert_eq!(m.barrier(1), 0.0);
        assert_eq!(m.allreduce(1, 1 << 20), 0.0);
        assert_eq!(m.alltoallv(1, 1 << 20), 0.0);
    }

    #[test]
    fn costs_grow_with_ranks_and_bytes() {
        let m = CostModel::default();
        assert!(m.allreduce(16, 1 << 20) > m.allreduce(4, 1 << 20));
        assert!(m.allreduce(16, 1 << 22) > m.allreduce(16, 1 << 20));
        assert!(m.alltoallv(64, 1 << 20) > m.alltoallv(8, 1 << 20));
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.allreduce(1024, 1 << 30), 0.0);
        assert_eq!(m.bcast(1024, 1 << 30), 0.0);
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let m = CostModel::default();
        // 8-byte allreduce at p=1024: latency term >> bandwidth term.
        let t = m.allreduce(1024, 8);
        assert!(t > 2.0 * 10.0 * m.alpha * 0.9);
        assert!(t < 2.0 * 10.0 * m.alpha + 1e-6);
    }
}
