//! The SPMD engine: thread ranks + request-based collectives.
//!
//! Every collective — blocking or not — is executed by the nonblocking
//! progress engine in [`crate::requests`]: the blocking API below is a thin
//! *issue-then-wait* wrapper over the same chunked algorithms, so the two
//! paths are one implementation and stay bitwise-identical by construction.
//! Blocking calls account under the legacy op labels (`allreduce`, `reduce`,
//! …); nonblocking calls account under their own `i*` labels, with engine
//! segment steps tracked separately in [`SegStats`] so per-segment work is
//! never double-counted against the aggregate fields.

use crate::cost::CostModel;
use crate::requests::{Algorithm, CommInterval, NbShared, Worker, DEFAULT_SEGMENT_WORDS};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Instant;

/// `lock()` with poison-recovery: a panicked rank already aborts the SPMD
/// scope, so recovering the data here never observes a torn slot.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-operation slice of [`CommStats`]: how often one collective kind ran,
/// how many bytes this rank contributed to it, and the measured wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    pub calls: u64,
    pub bytes: u64,
    pub seconds: f64,
}

/// Number of log₂ message-size buckets in [`MsgHist`]. Bucket `b` counts
/// calls whose payload is in `(2^(b−1), 2^b]` bytes (bucket 0 holds 0- and
/// 1-byte calls); the last bucket absorbs everything ≥ 2^(BUCKETS−1).
/// 24 buckets reach 8 MiB, far beyond any per-call payload in the solve.
pub const HIST_BUCKETS: usize = 24;

/// Payload threshold below which a collective call is **α-dominated**
/// (latency-bound): at the default [`CostModel`] and 4 ranks, the allreduce
/// latency and bandwidth terms cross at ~32 KiB — also the engine's segment
/// size, so anything under it is a single-segment (pure-latency) op.
pub const ALPHA_SMALL_BYTES: u64 = 32 * 1024;

/// Per-op log₂ message-size histogram: one row per [`CommStats::per_op`]
/// label, in the same order. Distinguishes latency-bound (small-payload)
/// from bandwidth-bound collectives at a glance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MsgHist {
    /// `counts[op][bucket]` — rows in [`CommStats::per_op`] order.
    pub counts: [[u64; HIST_BUCKETS]; 11],
}

impl Default for MsgHist {
    fn default() -> Self {
        MsgHist { counts: [[0; HIST_BUCKETS]; 11] }
    }
}

impl MsgHist {
    /// ⌈log₂ bytes⌉ capped to the last bucket; 0 bytes lands in bucket 0.
    #[inline]
    pub fn bucket(bytes: u64) -> usize {
        let b = bytes.max(1).next_power_of_two().trailing_zeros() as usize;
        b.min(HIST_BUCKETS - 1)
    }

    /// Upper payload bound (bytes) of bucket `b`.
    #[inline]
    pub fn bucket_limit(b: usize) -> u64 {
        1u64 << b
    }

    #[inline]
    pub(crate) fn record(&mut self, op_index: usize, bytes: u64) {
        self.counts[op_index][Self::bucket(bytes)] += 1;
    }

    /// Total calls recorded across every op and bucket — a quick "is this
    /// histogram empty?" probe for stats-window tests and reports.
    pub fn total_calls(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Merge another histogram into this one (per-rank → global rollups).
    pub fn merge(&mut self, other: &MsgHist) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a += b;
            }
        }
    }
}

/// Engine-side segment counters. A nonblocking collective is executed as a
/// stream of segment steps on the progress worker; those steps are counted
/// here and **only** here — `bytes`/`busy_seconds` below deliberately do
/// not feed [`CommStats::bytes_sent`] / [`CommStats::measured_seconds`],
/// which charge each collective exactly once at issue/wait on the caller's
/// thread.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegStats {
    /// Segment steps executed by this rank's progress worker.
    pub steps: u64,
    /// Bytes touched by those steps (fold + copy traffic).
    pub bytes: u64,
    /// Seconds the progress worker was busy executing steps.
    pub busy_seconds: f64,
}

/// Per-rank communication statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Bytes this rank contributed to collectives.
    pub bytes_sent: u64,
    /// Number of collective calls.
    pub collective_calls: u64,
    /// Wall-clock seconds actually spent inside collectives (measured):
    /// blocked time for the blocking API, issue + `wait()` time for the
    /// request API. Engine-thread busy time is in [`SegStats`] instead.
    pub measured_seconds: f64,
    /// Seconds the α–β model charges for the same collectives.
    pub modeled_seconds: f64,
    /// Per-operation breakdowns; their `calls`/`bytes`/`seconds` sum to the
    /// aggregate fields above.
    pub allreduce: OpStats,
    pub reduce: OpStats,
    pub bcast: OpStats,
    pub allgatherv: OpStats,
    pub alltoallv: OpStats,
    pub barrier: OpStats,
    /// Nonblocking (request-based) ops.
    pub ireduce: OpStats,
    pub iallreduce: OpStats,
    pub ibcast: OpStats,
    pub iallgatherv: OpStats,
    pub ialltoallv_nb: OpStats,
    /// Engine segment-step counters (not part of the aggregates above).
    pub seg: SegStats,
    /// Fused flushes executed by the deferred-reduction scheduler
    /// ([`crate::batch`]): each flush is one collective that replaced
    /// `fused_fields / fused_flushes` small ones on average.
    pub fused_flushes: u64,
    /// Total pending fields folded into those fused flushes.
    pub fused_fields: u64,
    /// Collective calls whose payload was ≤ [`ALPHA_SMALL_BYTES`] — the
    /// latency-bound population the communication-avoiding path shrinks.
    pub alpha_calls: u64,
    /// Per-op log₂ message-size histogram.
    pub hist: MsgHist,
}

impl CommStats {
    /// The per-operation breakdown as `(label, stats)` rows, in a stable
    /// report order.
    pub fn per_op(&self) -> [(&'static str, OpStats); 11] {
        [
            ("allreduce", self.allreduce),
            ("reduce", self.reduce),
            ("bcast", self.bcast),
            ("allgatherv", self.allgatherv),
            ("alltoallv", self.alltoallv),
            ("barrier", self.barrier),
            ("ireduce", self.ireduce),
            ("iallreduce", self.iallreduce),
            ("ibcast", self.ibcast),
            ("iallgatherv", self.iallgatherv),
            ("ialltoallv", self.ialltoallv_nb),
        ]
    }
}

/// Which blocking collective an accounting entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CollOp {
    Allreduce,
    Reduce,
    Bcast,
    Allgatherv,
    Alltoallv,
    Barrier,
}

impl CollOp {
    fn span_name(self) -> &'static str {
        match self {
            CollOp::Allreduce => "mpi:allreduce",
            CollOp::Reduce => "mpi:reduce",
            CollOp::Bcast => "mpi:bcast",
            CollOp::Allgatherv => "mpi:allgatherv",
            CollOp::Alltoallv => "mpi:alltoallv",
            CollOp::Barrier => "mpi:barrier",
        }
    }

    fn slot(self, stats: &mut CommStats) -> &mut OpStats {
        match self {
            CollOp::Allreduce => &mut stats.allreduce,
            CollOp::Reduce => &mut stats.reduce,
            CollOp::Bcast => &mut stats.bcast,
            CollOp::Allgatherv => &mut stats.allgatherv,
            CollOp::Alltoallv => &mut stats.alltoallv,
            CollOp::Barrier => &mut stats.barrier,
        }
    }

    /// Row in [`CommStats::per_op`] order (the nonblocking ops follow at 6+).
    fn index(self) -> usize {
        match self {
            CollOp::Allreduce => 0,
            CollOp::Reduce => 1,
            CollOp::Bcast => 2,
            CollOp::Allgatherv => 3,
            CollOp::Alltoallv => 4,
            CollOp::Barrier => 5,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) size: usize,
    pub(crate) barrier: Barrier,
    pub(crate) model: CostModel,
    /// Cross-rank state of the nonblocking progress engine.
    pub(crate) nb: NbShared,
    /// Sub-communicator rendezvous for [`Comm::split`], keyed by
    /// `(split sequence number, color)`. The entry is removed once every
    /// member of the group has taken its handle.
    pub(crate) splits: Mutex<HashMap<(u64, u64), SplitEntry>>,
}

/// One color group being assembled by a [`Comm::split`] call.
pub(crate) struct SplitEntry {
    shared: Arc<Shared>,
    /// Members that have taken their handle; the last one retires the entry.
    taken: usize,
}

/// Per-rank communicator handle (not shared across threads).
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) shared: Arc<Shared>,
    /// Shared with this rank's progress worker (it bumps [`SegStats`]), so
    /// a mutex rather than a `Cell`; still reset atomically as one struct.
    pub(crate) stats: Arc<Mutex<CommStats>>,
    /// Timestamped engine steps since the last
    /// [`Comm::drain_comm_intervals`].
    pub(crate) timeline: Arc<Mutex<Vec<CommInterval>>>,
    /// Per-rank issue counter; SPMD issue order pairs op `n` here with op
    /// `n` on every other rank.
    pub(crate) next_op: Cell<u64>,
    /// Per-rank [`Comm::split`] counter; splits pair up across ranks by call
    /// order exactly like collectives pair by op id.
    pub(crate) split_seq: Cell<u64>,
    /// Lazily spawned progress worker (joined on drop).
    pub(crate) worker: RefCell<Option<Worker>>,
}

impl Drop for Comm {
    fn drop(&mut self) {
        if let Some(w) = self.worker.borrow_mut().take() {
            w.shutdown();
        }
    }
}

impl Comm {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Statistics accumulated by this rank so far.
    pub fn stats(&self) -> CommStats {
        *lock(&self.stats)
    }

    /// Reset the statistics counters (e.g. between timed phases). One store:
    /// aggregate, per-op, per-segment, message-histogram, fused-flush, and
    /// latency-bound counters all clear together — `CommStats` resets as a
    /// whole struct, so no field can bleed into the next window.
    pub fn reset_stats(&self) {
        *lock(&self.stats) = CommStats::default();
    }

    /// Atomically snapshot **and** reset the statistics counters under one
    /// lock acquisition. This is the per-job stats window primitive for the
    /// serving scheduler: a `stats()` + `reset_stats()` pair leaves a gap in
    /// which another collective on a shared progress path could be counted in
    /// neither window, while `take_stats()` hands every recorded event to
    /// exactly one window.
    pub fn take_stats(&self) -> CommStats {
        std::mem::take(&mut *lock(&self.stats))
    }

    fn account(&self, op: CollOp, bytes: usize, t0: Instant, modeled: f64, span: obskit::Span) {
        let seconds = t0.elapsed().as_secs_f64();
        {
            let mut s = lock(&self.stats);
            s.bytes_sent += bytes as u64;
            s.collective_calls += 1;
            s.measured_seconds += seconds;
            s.modeled_seconds += modeled;
            if bytes as u64 <= ALPHA_SMALL_BYTES {
                s.alpha_calls += 1;
            }
            s.hist.record(op.index(), bytes as u64);
            let slot = op.slot(&mut s);
            slot.calls += 1;
            slot.bytes += bytes as u64;
            slot.seconds += seconds;
        }
        obskit::add_bytes_moved(bytes as u64);
        let mut span = span;
        span.arg("bytes", bytes as f64);
        span.arg("modeled_s", modeled);
    }

    /// Credit one fused flush of `fields` pending reductions to this rank
    /// (called by the [`crate::batch`] scheduler).
    pub(crate) fn note_fused(&self, fields: u64) {
        let mut s = lock(&self.stats);
        s.fused_flushes += 1;
        s.fused_fields += fields;
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let op = CollOp::Barrier;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        self.shared.barrier.wait();
        let m = self.shared.model.barrier(self.size());
        self.account(op, 0, t0, m, sp);
    }

    /// In-place sum-allreduce of `buf` across all ranks. Issue-then-wait
    /// over the ring engine; the ascending rank-order fold keeps results
    /// bitwise identical to the historical staging-buffer path.
    pub fn allreduce_sum(&self, buf: &mut [f64]) {
        let op = CollOp::Allreduce;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return;
        }
        let out = self
            .issue_reduce(buf.to_vec(), 0, true, false, Algorithm::Ring, None)
            .wait();
        buf.copy_from_slice(&out);
        let bytes = buf.len() * 8;
        let m = self.shared.model.allreduce(p, bytes);
        self.account(op, bytes, t0, m, sp);
    }

    /// Max-allreduce of a scalar.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        let op = CollOp::Allreduce;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return v;
        }
        let out = self.issue_allreduce_max(vec![v]).wait();
        let m = self.shared.model.allreduce(p, 8);
        self.account(op, 8, t0, m, sp);
        out[0]
    }

    /// Sum-reduce `buf` to `root`; non-root ranks' buffers are untouched.
    pub fn reduce_sum(&self, buf: &mut [f64], root: usize) {
        let op = CollOp::Reduce;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return;
        }
        let out = self
            .issue_reduce(buf.to_vec(), root, false, false, Algorithm::Ring, None)
            .wait();
        if self.rank == root {
            buf.copy_from_slice(&out);
        }
        let bytes = buf.len() * 8;
        let m = self.shared.model.reduce(p, bytes);
        self.account(op, bytes, t0, m, sp);
    }

    /// Broadcast `buf` from `root` to all ranks.
    pub fn bcast(&self, buf: &mut [f64], root: usize) {
        let op = CollOp::Bcast;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return;
        }
        let out = self.issue_bcast(buf.to_vec(), root, None).wait();
        buf.copy_from_slice(&out);
        let bytes = buf.len() * 8;
        let m = self.shared.model.bcast(p, bytes);
        self.account(op, if self.rank == root { bytes } else { 0 }, t0, m, sp);
    }

    /// Variable all-gather: every rank contributes `mine`, receives the
    /// concatenation in rank order.
    pub fn allgatherv(&self, mine: &[f64]) -> Vec<f64> {
        let op = CollOp::Allgatherv;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return mine.to_vec();
        }
        let out = self.issue_gather(mine.to_vec(), None).wait();
        let total = out.len() * 8;
        let m = self.shared.model.allgatherv(p, total);
        self.account(op, mine.len() * 8, t0, m, sp);
        out
    }

    /// Variable all-to-all: `send[q]` goes to rank `q`; returns what every
    /// rank sent to *me*, indexed by source rank.
    pub fn alltoallv(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let op = CollOp::Alltoallv;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        assert_eq!(send.len(), p, "alltoallv needs one chunk per destination");
        let sent_bytes: usize = send.iter().map(|c| c.len() * 8).sum();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return send;
        }
        let recv = self.issue_alltoall(send, None).wait();
        let m = self.shared.model.alltoallv(p, sent_bytes);
        self.account(op, sent_bytes, t0, m, sp);
        recv
    }

    // ---- point-to-point-flavoured collectives (formerly collectives_ext)

    /// Gather variable-length contributions at `root`. Non-root ranks get an
    /// empty vector; `root` gets the concatenation in rank order.
    pub fn gatherv(&self, mine: &[f64], root: usize) -> Vec<f64> {
        let all = self.allgatherv(mine);
        if self.rank() == root {
            all
        } else {
            Vec::new()
        }
    }

    /// Scatter per-rank chunks from `root`: `chunks` is only read on `root`
    /// (other ranks pass anything, conventionally `&[]`). Returns my chunk.
    pub fn scatterv(&self, chunks: &[Vec<f64>], root: usize) -> Vec<f64> {
        let p = self.size();
        // Route through alltoallv: root supplies the payload row, everyone
        // else sends empties.
        let send: Vec<Vec<f64>> = if self.rank() == root {
            assert_eq!(chunks.len(), p, "scatterv needs one chunk per rank on root");
            chunks.to_vec()
        } else {
            vec![Vec::new(); p]
        };
        let recv = self.alltoallv(send);
        recv[root].clone()
    }

    /// Ring shift: send `mine` to `(rank+1) % size`, receive from the left
    /// neighbour. The building block of systolic matrix algorithms.
    pub fn ring_shift(&self, mine: &[f64]) -> Vec<f64> {
        let p = self.size();
        let mut send: Vec<Vec<f64>> = vec![Vec::new(); p];
        send[(self.rank() + 1) % p] = mine.to_vec();
        let recv = self.alltoallv(send);
        recv[(self.rank() + p - 1) % p].clone()
    }

    /// Sum a scalar across ranks.
    pub fn allreduce_sum_scalar(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Exclusive prefix sum of a scalar (rank 0 gets 0.0) — used to compute
    /// global offsets of variable-length local arrays.
    pub fn exscan_sum(&self, v: f64) -> f64 {
        let all = self.allgatherv(&[v]);
        all[..self.rank()].iter().sum()
    }

    /// Split this communicator into disjoint sub-communicators: ranks with
    /// the same `color` form a group; within a group, ranks are ordered by
    /// `(key, parent rank)` — the MPI `Comm_split` convention.
    ///
    /// Collective on the parent (every rank must call it, in the same call
    /// order). The returned [`Comm`] has its own rank numbering, barrier,
    /// progress engine, and [`CommStats`], so a sub-group's collectives are
    /// accounted separately from the parent's and never pair with them.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        // Collective exchange of (color, key): the allgatherv both publishes
        // every rank's choice and synchronizes the ranks, so all members of
        // a color reach the rendezvous below.
        let all = self.allgatherv(&[color as f64, key as f64]);
        let mut members: Vec<(usize, usize)> = (0..self.size())
            .filter(|&r| all[2 * r] as usize == color)
            .map(|r| (all[2 * r + 1] as usize, r))
            .collect();
        members.sort_unstable();
        let group_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("calling rank belongs to its own color group");
        let group_size = members.len();
        let shared = {
            let mut splits = lock(&self.shared.splits);
            let entry = splits.entry((seq, color as u64)).or_insert_with(|| SplitEntry {
                shared: Arc::new(Shared {
                    size: group_size,
                    barrier: Barrier::new(group_size),
                    model: self.shared.model,
                    nb: NbShared::new(self.shared.nb.segment_words),
                    splits: Mutex::new(HashMap::new()),
                }),
                taken: 0,
            });
            entry.taken += 1;
            let shared = Arc::clone(&entry.shared);
            if entry.taken == group_size {
                splits.remove(&(seq, color as u64));
            }
            shared
        };
        Comm {
            rank: group_rank,
            shared,
            stats: Arc::new(Mutex::new(CommStats::default())),
            timeline: Arc::new(Mutex::new(Vec::new())),
            next_op: Cell::new(0),
            split_seq: Cell::new(0),
            worker: RefCell::new(None),
        }
    }
}

/// Run `f` as an SPMD program on `size` thread-ranks with the default cost
/// model; returns the per-rank results in rank order.
pub fn spmd<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    spmd_with_model(size, CostModel::default(), f)
}

/// [`spmd`] with an explicit communication cost model.
pub fn spmd_with_model<T, F>(size: usize, model: CostModel, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(size > 0, "need at least one rank");
    let shared = Arc::new(Shared {
        size,
        barrier: Barrier::new(size),
        model,
        nb: NbShared::new(DEFAULT_SEGMENT_WORDS),
        splits: Mutex::new(HashMap::new()),
    });
    let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
    // An armed fault plan on the launching thread extends to every rank:
    // rank threads install the same handle, so per-rank occurrence counters
    // advance in lockstep and collective faults fire symmetrically.
    let faults = faultkit::handle();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let shared = Arc::clone(&shared);
            let f = &f;
            let faults = faults.clone();
            handles.push(scope.spawn(move || {
                // Tag this rank thread's trace stream (lane label "rank N")
                // and deliver whatever it recorded when the rank function
                // returns (or panics — the thread-local backstop flushes on
                // unwind).
                obskit::set_rank(rank);
                faultkit::install(faults);
                faultkit::set_rank(rank);
                let comm = Comm {
                    rank,
                    shared,
                    stats: Arc::new(Mutex::new(CommStats::default())),
                    timeline: Arc::new(Mutex::new(Vec::new())),
                    next_op: Cell::new(0),
                    split_seq: Cell::new(0),
                    worker: RefCell::new(None),
                };
                let out = f(&comm);
                obskit::flush_thread();
                // `comm` drops here, joining the progress worker.
                out
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        let p = 4;
        let res = spmd(p, |c| {
            let mut buf = vec![c.rank() as f64 + 1.0; 3];
            c.allreduce_sum(&mut buf);
            buf
        });
        for r in res {
            assert_eq!(r, vec![10.0, 10.0, 10.0]); // 1+2+3+4
        }
    }

    #[test]
    fn allreduce_repeated_rounds() {
        // Two back-to-back collectives must not corrupt each other.
        let res = spmd(3, |c| {
            let mut a = vec![1.0];
            c.allreduce_sum(&mut a);
            let mut b = vec![c.rank() as f64];
            c.allreduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in res {
            assert_eq!(a, 3.0);
            assert_eq!(b, 3.0); // 0+1+2
        }
    }

    #[test]
    fn reduce_only_root_gets_sum() {
        let res = spmd(4, |c| {
            let mut buf = vec![2.0];
            c.reduce_sum(&mut buf, 2);
            buf[0]
        });
        assert_eq!(res[2], 8.0);
        assert_eq!(res[0], 2.0);
        assert_eq!(res[3], 2.0);
    }

    #[test]
    fn bcast_distributes_roots_data() {
        let res = spmd(5, |c| {
            let mut buf = if c.rank() == 1 { vec![7.0, 8.0] } else { vec![0.0, 0.0] };
            c.bcast(&mut buf, 1);
            buf
        });
        for r in res {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let res = spmd(3, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1];
            c.allgatherv(&mine)
        });
        for r in res {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn alltoallv_routes_chunks() {
        let p = 4;
        let res = spmd(p, |c| {
            // Send [my_rank, dest] to each destination.
            let send: Vec<Vec<f64>> =
                (0..p).map(|q| vec![c.rank() as f64, q as f64]).collect();
            c.alltoallv(send)
        });
        for (me, recv) in res.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![src as f64, me as f64]);
            }
        }
    }

    #[test]
    fn alltoallv_ragged_sizes() {
        let p = 3;
        let res = spmd(p, |c| {
            let send: Vec<Vec<f64>> = (0..p).map(|q| vec![1.0; c.rank() * p + q]).collect();
            c.alltoallv(send)
        });
        for (me, recv) in res.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk.len(), src * p + me);
            }
        }
    }

    #[test]
    fn allreduce_max_scalar() {
        let res = spmd(6, |c| c.allreduce_max((c.rank() as f64 - 2.5).abs()));
        for r in res {
            assert_eq!(r, 2.5);
        }
    }

    #[test]
    fn stats_account_bytes_and_calls() {
        let res = spmd(2, |c| {
            let mut buf = vec![0.0; 100];
            c.allreduce_sum(&mut buf);
            c.barrier();
            c.stats()
        });
        for s in res {
            assert_eq!(s.collective_calls, 2);
            assert_eq!(s.bytes_sent, 800);
            assert!(s.modeled_seconds > 0.0);
        }
    }

    #[test]
    fn per_op_breakdown_sums_to_aggregate() {
        let res = spmd(2, |c| {
            let mut buf = vec![1.0; 16];
            c.allreduce_sum(&mut buf);
            c.bcast(&mut buf, 0);
            let _ = c.allgatherv(&buf);
            let _ = c.alltoallv(vec![vec![1.0], vec![2.0]]);
            c.reduce_sum(&mut buf, 0);
            c.barrier();
            c.stats()
        });
        for s in &res {
            assert_eq!(s.allreduce.calls, 1);
            assert_eq!(s.reduce.calls, 1);
            assert_eq!(s.bcast.calls, 1);
            assert_eq!(s.allgatherv.calls, 1);
            assert_eq!(s.alltoallv.calls, 1);
            assert_eq!(s.barrier.calls, 1);
            let per: [(&str, OpStats); 11] = s.per_op();
            let calls: u64 = per.iter().map(|(_, o)| o.calls).sum();
            let bytes: u64 = per.iter().map(|(_, o)| o.bytes).sum();
            let secs: f64 = per.iter().map(|(_, o)| o.seconds).sum();
            assert_eq!(calls, s.collective_calls);
            assert_eq!(bytes, s.bytes_sent);
            assert!((secs - s.measured_seconds).abs() < 1e-12);
            assert_eq!(s.allreduce.bytes, 128);
            assert_eq!(s.barrier.bytes, 0);
        }
        // Root contributed bcast bytes, non-root did not.
        assert_eq!(res[0].bcast.bytes, 128);
        assert_eq!(res[1].bcast.bytes, 0);
    }

    #[test]
    fn segment_steps_do_not_double_count_aggregates() {
        // The bugfix this PR guards: engine segment traffic must stay out of
        // bytes_sent / measured_seconds, which charge each op exactly once.
        let res = spmd(2, |c| {
            let mut buf = vec![1.0; 10_000]; // > one segment
            c.allreduce_sum(&mut buf);
            c.stats()
        });
        for s in res {
            assert_eq!(s.collective_calls, 1);
            assert_eq!(s.bytes_sent, 80_000);
            assert!(s.seg.steps >= 2, "chunked algorithm must take multiple steps");
            assert!(s.seg.bytes >= 80_000);
            assert!(s.seg.busy_seconds >= 0.0);
            // Aggregate bytes unchanged by segment traffic.
            let per_sum: u64 = s.per_op().iter().map(|(_, o)| o.bytes).sum();
            assert_eq!(per_sum, s.bytes_sent);
        }
    }

    #[test]
    fn reset_clears_aggregate_and_per_op_together() {
        let res = spmd(2, |c| {
            let mut buf = vec![1.0; 8];
            c.allreduce_sum(&mut buf);
            c.barrier();
            c.reset_stats();
            c.stats()
        });
        for s in res {
            assert_eq!(s, CommStats::default(), "reset must clear every field");
        }
    }

    #[test]
    fn reset_clears_histogram_fused_and_alpha_counters() {
        // Per-job stats windows in the serving scheduler rely on reset
        // clearing *every* counter family, including the message-size
        // histogram, fused-flush credits, and latency-bound call counts —
        // none may bleed from one tenant's window into the next.
        let res = spmd(2, |c| {
            let mut small = vec![1.0; 4]; // under ALPHA_SMALL_BYTES
            c.allreduce_sum(&mut small);
            c.note_fused(3);
            let before = c.stats();
            assert!(before.alpha_calls >= 1);
            assert_eq!(before.fused_flushes, 1);
            assert_eq!(before.fused_fields, 3);
            assert!(before.hist.total_calls() > 0);
            c.reset_stats();
            c.stats()
        });
        for s in res {
            assert_eq!(s.alpha_calls, 0);
            assert_eq!(s.fused_flushes, 0);
            assert_eq!(s.fused_fields, 0);
            assert_eq!(s.hist.total_calls(), 0);
        }
    }

    #[test]
    fn take_stats_snapshots_and_clears_in_one_step() {
        let res = spmd(2, |c| {
            let mut buf = vec![1.0; 8];
            c.allreduce_sum(&mut buf);
            c.barrier();
            let window = c.take_stats();
            (window, c.stats())
        });
        for (window, after) in res {
            assert_eq!(window.collective_calls, 2);
            assert_eq!(window.bytes_sent, 64);
            assert!(window.hist.total_calls() > 0);
            assert_eq!(after, CommStats::default(), "take_stats must leave a fresh window");
        }
    }

    #[test]
    fn reset_clears_segment_counters() {
        let res = spmd(2, |c| {
            let mut buf = vec![1.0; 9000];
            c.allreduce_sum(&mut buf);
            assert!(c.stats().seg.steps > 0);
            c.reset_stats();
            c.stats()
        });
        for s in res {
            assert_eq!(s.seg, SegStats::default());
        }
    }

    #[test]
    fn single_rank_everything_is_identity() {
        let res = spmd(1, |c| {
            let mut buf = vec![3.0];
            c.allreduce_sum(&mut buf);
            c.bcast(&mut buf, 0);
            let g = c.allgatherv(&buf);
            let a = c.alltoallv(vec![vec![1.0, 2.0]]);
            (buf[0], g, a)
        });
        assert_eq!(res[0].0, 3.0);
        assert_eq!(res[0].1, vec![3.0]);
        assert_eq!(res[0].2, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn many_ranks_stress() {
        let p = 16;
        let res = spmd(p, |c| {
            let mut acc = 0.0;
            for round in 0..5 {
                let mut buf = vec![(c.rank() + round) as f64];
                c.allreduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        });
        let expect: f64 = (0..5).map(|r| (0..16).map(|k| (k + r) as f64).sum::<f64>()).sum();
        for v in res {
            assert_eq!(v, expect);
        }
    }

    // ---- formerly collectives_ext tests

    #[test]
    fn gatherv_only_root_receives() {
        let res = spmd(4, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1];
            c.gatherv(&mine, 2)
        });
        assert!(res[0].is_empty() && res[1].is_empty() && res[3].is_empty());
        assert_eq!(res[2], vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn scatterv_routes_chunks_from_root() {
        let res = spmd(3, |c| {
            let chunks = if c.rank() == 1 {
                vec![vec![10.0], vec![20.0, 21.0], vec![30.0, 31.0, 32.0]]
            } else {
                vec![Vec::new(); 3]
            };
            c.scatterv(&chunks, 1)
        });
        assert_eq!(res[0], vec![10.0]);
        assert_eq!(res[1], vec![20.0, 21.0]);
        assert_eq!(res[2], vec![30.0, 31.0, 32.0]);
    }

    #[test]
    fn ring_shift_rotates() {
        let res = spmd(5, |c| {
            let mine = vec![c.rank() as f64];
            c.ring_shift(&mine)
        });
        for (me, r) in res.iter().enumerate() {
            let left = (me + 5 - 1) % 5;
            assert_eq!(r, &vec![left as f64]);
        }
    }

    #[test]
    fn ring_shift_composes_to_identity() {
        // P shifts bring the data home.
        let p = 4;
        let res = spmd(p, |c| {
            let mut data = vec![c.rank() as f64 * 10.0, 1.0];
            for _ in 0..p {
                data = c.ring_shift(&data);
            }
            data
        });
        for (me, r) in res.iter().enumerate() {
            assert_eq!(r, &vec![me as f64 * 10.0, 1.0]);
        }
    }

    #[test]
    fn scalar_helpers() {
        let res = spmd(4, |c| {
            let sum = c.allreduce_sum_scalar(c.rank() as f64 + 1.0);
            let offset = c.exscan_sum((c.rank() + 1) as f64);
            (sum, offset)
        });
        for (me, (sum, offset)) in res.iter().enumerate() {
            assert_eq!(*sum, 10.0);
            let expect: f64 = (1..=me).map(|r| r as f64).sum();
            assert_eq!(*offset, expect, "rank {me}");
        }
    }
}
