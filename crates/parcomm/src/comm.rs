//! The SPMD engine: thread ranks + staging-buffer collectives.
//!
//! Every collective follows a deposit → barrier → read → barrier discipline:
//! each rank publishes its contribution into its own slot, a barrier
//! guarantees visibility, every rank reads what it needs, and a second
//! barrier guarantees nobody's slot is reused before all readers are done.
//! Slots are cleared by their owner right after the exit barrier, which is
//! safe because only the owner writes its slot.

use crate::cost::CostModel;
use std::cell::Cell;
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Instant;

/// `lock()` with poison-recovery: a panicked rank already aborts the SPMD
/// scope, so recovering the data here never observes a torn slot.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-rank communication statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Bytes this rank contributed to collectives.
    pub bytes_sent: u64,
    /// Number of collective calls.
    pub collective_calls: u64,
    /// Wall-clock seconds actually spent inside collectives (measured).
    pub measured_seconds: f64,
    /// Seconds the α–β model charges for the same collectives.
    pub modeled_seconds: f64,
}

struct Shared {
    size: usize,
    barrier: Barrier,
    /// Flat f64 staging, one slot per rank.
    flat: Vec<Mutex<Vec<f64>>>,
    /// Chunked staging for all-to-all style exchanges.
    chunked: Vec<Mutex<Vec<Vec<f64>>>>,
    model: CostModel,
}

/// Per-rank communicator handle (not shared across threads).
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    bytes_sent: Cell<u64>,
    calls: Cell<u64>,
    measured: Cell<f64>,
    modeled: Cell<f64>,
}

impl Comm {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Statistics accumulated by this rank so far.
    pub fn stats(&self) -> CommStats {
        CommStats {
            bytes_sent: self.bytes_sent.get(),
            collective_calls: self.calls.get(),
            measured_seconds: self.measured.get(),
            modeled_seconds: self.modeled.get(),
        }
    }

    /// Reset the statistics counters (e.g. between timed phases).
    pub fn reset_stats(&self) {
        self.bytes_sent.set(0);
        self.calls.set(0);
        self.measured.set(0.0);
        self.modeled.set(0.0);
    }

    fn account(&self, bytes: usize, t0: Instant, modeled: f64) {
        self.bytes_sent.set(self.bytes_sent.get() + bytes as u64);
        self.calls.set(self.calls.get() + 1);
        self.measured.set(self.measured.get() + t0.elapsed().as_secs_f64());
        self.modeled.set(self.modeled.get() + modeled);
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let t0 = Instant::now();
        self.shared.barrier.wait();
        let m = self.shared.model.barrier(self.size());
        self.account(0, t0, m);
    }

    /// In-place sum-allreduce of `buf` across all ranks.
    pub fn allreduce_sum(&self, buf: &mut [f64]) {
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(0, t0, 0.0);
            return;
        }
        *lock(&self.shared.flat[self.rank]) = buf.to_vec();
        self.shared.barrier.wait();
        buf.fill(0.0);
        for r in 0..p {
            let slot = lock(&self.shared.flat[r]);
            assert_eq!(slot.len(), buf.len(), "allreduce length mismatch at rank {r}");
            for (b, s) in buf.iter_mut().zip(slot.iter()) {
                *b += *s;
            }
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let bytes = buf.len() * 8;
        let m = self.shared.model.allreduce(p, bytes);
        self.account(bytes, t0, m);
    }

    /// Max-allreduce of a scalar.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(0, t0, 0.0);
            return v;
        }
        *lock(&self.shared.flat[self.rank]) = vec![v];
        self.shared.barrier.wait();
        let mut out = f64::NEG_INFINITY;
        for r in 0..p {
            out = out.max(lock(&self.shared.flat[r])[0]);
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let m = self.shared.model.allreduce(p, 8);
        self.account(8, t0, m);
        out
    }

    /// Sum-reduce `buf` to `root`; non-root ranks' buffers are untouched.
    pub fn reduce_sum(&self, buf: &mut [f64], root: usize) {
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(0, t0, 0.0);
            return;
        }
        *lock(&self.shared.flat[self.rank]) = buf.to_vec();
        self.shared.barrier.wait();
        if self.rank == root {
            buf.fill(0.0);
            for r in 0..p {
                let slot = lock(&self.shared.flat[r]);
                for (b, s) in buf.iter_mut().zip(slot.iter()) {
                    *b += *s;
                }
            }
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let bytes = buf.len() * 8;
        let m = self.shared.model.reduce(p, bytes);
        self.account(bytes, t0, m);
    }

    /// Broadcast `buf` from `root` to all ranks.
    pub fn bcast(&self, buf: &mut [f64], root: usize) {
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(0, t0, 0.0);
            return;
        }
        if self.rank == root {
            *lock(&self.shared.flat[root]) = buf.to_vec();
        }
        self.shared.barrier.wait();
        if self.rank != root {
            let slot = lock(&self.shared.flat[root]);
            assert_eq!(slot.len(), buf.len(), "bcast length mismatch");
            buf.copy_from_slice(&slot);
        }
        self.shared.barrier.wait();
        if self.rank == root {
            lock(&self.shared.flat[root]).clear();
        }
        let bytes = buf.len() * 8;
        let m = self.shared.model.bcast(p, bytes);
        self.account(if self.rank == root { bytes } else { 0 }, t0, m);
    }

    /// Variable all-gather: every rank contributes `mine`, receives the
    /// concatenation in rank order.
    pub fn allgatherv(&self, mine: &[f64]) -> Vec<f64> {
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(0, t0, 0.0);
            return mine.to_vec();
        }
        *lock(&self.shared.flat[self.rank]) = mine.to_vec();
        self.shared.barrier.wait();
        let mut out = Vec::new();
        for r in 0..p {
            out.extend_from_slice(&lock(&self.shared.flat[r]));
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let total = out.len() * 8;
        let m = self.shared.model.allgatherv(p, total);
        self.account(mine.len() * 8, t0, m);
        out
    }

    /// Variable all-to-all: `send[q]` goes to rank `q`; returns what every
    /// rank sent to *me*, indexed by source rank.
    pub fn alltoallv(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let t0 = Instant::now();
        let p = self.size();
        assert_eq!(send.len(), p, "alltoallv needs one chunk per destination");
        let sent_bytes: usize = send.iter().map(|c| c.len() * 8).sum();
        if p == 1 {
            self.account(0, t0, 0.0);
            return send;
        }
        *lock(&self.shared.chunked[self.rank]) = send;
        self.shared.barrier.wait();
        let mut recv = Vec::with_capacity(p);
        for r in 0..p {
            let slot = lock(&self.shared.chunked[r]);
            recv.push(slot[self.rank].clone());
        }
        self.shared.barrier.wait();
        lock(&self.shared.chunked[self.rank]).clear();
        let m = self.shared.model.alltoallv(p, sent_bytes);
        self.account(sent_bytes, t0, m);
        recv
    }
}

/// Run `f` as an SPMD program on `size` thread-ranks with the default cost
/// model; returns the per-rank results in rank order.
pub fn spmd<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    spmd_with_model(size, CostModel::default(), f)
}

/// [`spmd`] with an explicit communication cost model.
pub fn spmd_with_model<T, F>(size: usize, model: CostModel, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(size > 0, "need at least one rank");
    let shared = Arc::new(Shared {
        size,
        barrier: Barrier::new(size),
        flat: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
        chunked: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
        model,
    });
    let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let shared = Arc::clone(&shared);
            let f = &f;
            handles.push(scope.spawn(move || {
                let comm = Comm {
                    rank,
                    shared,
                    bytes_sent: Cell::new(0),
                    calls: Cell::new(0),
                    measured: Cell::new(0.0),
                    modeled: Cell::new(0.0),
                };
                f(&comm)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        let p = 4;
        let res = spmd(p, |c| {
            let mut buf = vec![c.rank() as f64 + 1.0; 3];
            c.allreduce_sum(&mut buf);
            buf
        });
        for r in res {
            assert_eq!(r, vec![10.0, 10.0, 10.0]); // 1+2+3+4
        }
    }

    #[test]
    fn allreduce_repeated_rounds() {
        // Two back-to-back collectives must not corrupt each other.
        let res = spmd(3, |c| {
            let mut a = vec![1.0];
            c.allreduce_sum(&mut a);
            let mut b = vec![c.rank() as f64];
            c.allreduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in res {
            assert_eq!(a, 3.0);
            assert_eq!(b, 3.0); // 0+1+2
        }
    }

    #[test]
    fn reduce_only_root_gets_sum() {
        let res = spmd(4, |c| {
            let mut buf = vec![2.0];
            c.reduce_sum(&mut buf, 2);
            buf[0]
        });
        assert_eq!(res[2], 8.0);
        assert_eq!(res[0], 2.0);
        assert_eq!(res[3], 2.0);
    }

    #[test]
    fn bcast_distributes_roots_data() {
        let res = spmd(5, |c| {
            let mut buf = if c.rank() == 1 { vec![7.0, 8.0] } else { vec![0.0, 0.0] };
            c.bcast(&mut buf, 1);
            buf
        });
        for r in res {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let res = spmd(3, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1];
            c.allgatherv(&mine)
        });
        for r in res {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn alltoallv_routes_chunks() {
        let p = 4;
        let res = spmd(p, |c| {
            // Send [my_rank, dest] to each destination.
            let send: Vec<Vec<f64>> =
                (0..p).map(|q| vec![c.rank() as f64, q as f64]).collect();
            c.alltoallv(send)
        });
        for (me, recv) in res.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![src as f64, me as f64]);
            }
        }
    }

    #[test]
    fn alltoallv_ragged_sizes() {
        let p = 3;
        let res = spmd(p, |c| {
            let send: Vec<Vec<f64>> = (0..p).map(|q| vec![1.0; c.rank() * p + q]).collect();
            c.alltoallv(send)
        });
        for (me, recv) in res.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk.len(), src * p + me);
            }
        }
    }

    #[test]
    fn allreduce_max_scalar() {
        let res = spmd(6, |c| c.allreduce_max((c.rank() as f64 - 2.5).abs()));
        for r in res {
            assert_eq!(r, 2.5);
        }
    }

    #[test]
    fn stats_account_bytes_and_calls() {
        let res = spmd(2, |c| {
            let mut buf = vec![0.0; 100];
            c.allreduce_sum(&mut buf);
            c.barrier();
            c.stats()
        });
        for s in res {
            assert_eq!(s.collective_calls, 2);
            assert_eq!(s.bytes_sent, 800);
            assert!(s.modeled_seconds > 0.0);
        }
    }

    #[test]
    fn single_rank_everything_is_identity() {
        let res = spmd(1, |c| {
            let mut buf = vec![3.0];
            c.allreduce_sum(&mut buf);
            c.bcast(&mut buf, 0);
            let g = c.allgatherv(&buf);
            let a = c.alltoallv(vec![vec![1.0, 2.0]]);
            (buf[0], g, a)
        });
        assert_eq!(res[0].0, 3.0);
        assert_eq!(res[0].1, vec![3.0]);
        assert_eq!(res[0].2, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn many_ranks_stress() {
        let p = 16;
        let res = spmd(p, |c| {
            let mut acc = 0.0;
            for round in 0..5 {
                let mut buf = vec![(c.rank() + round) as f64];
                c.allreduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        });
        let expect: f64 = (0..5).map(|r| (0..16).map(|k| (k + r) as f64).sum::<f64>()).sum();
        for v in res {
            assert_eq!(v, expect);
        }
    }
}
