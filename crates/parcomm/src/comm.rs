//! The SPMD engine: thread ranks + staging-buffer collectives.
//!
//! Every collective follows a deposit → barrier → read → barrier discipline:
//! each rank publishes its contribution into its own slot, a barrier
//! guarantees visibility, every rank reads what it needs, and a second
//! barrier guarantees nobody's slot is reused before all readers are done.
//! Slots are cleared by their owner right after the exit barrier, which is
//! safe because only the owner writes its slot.

use crate::cost::CostModel;
use std::cell::Cell;
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Instant;

/// `lock()` with poison-recovery: a panicked rank already aborts the SPMD
/// scope, so recovering the data here never observes a torn slot.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-operation slice of [`CommStats`]: how often one collective kind ran,
/// how many bytes this rank contributed to it, and the measured wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    pub calls: u64,
    pub bytes: u64,
    pub seconds: f64,
}

/// Per-rank communication statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Bytes this rank contributed to collectives.
    pub bytes_sent: u64,
    /// Number of collective calls.
    pub collective_calls: u64,
    /// Wall-clock seconds actually spent inside collectives (measured).
    pub measured_seconds: f64,
    /// Seconds the α–β model charges for the same collectives.
    pub modeled_seconds: f64,
    /// Per-operation breakdowns; their `calls`/`bytes`/`seconds` sum to the
    /// aggregate fields above.
    pub allreduce: OpStats,
    pub reduce: OpStats,
    pub bcast: OpStats,
    pub allgatherv: OpStats,
    pub alltoallv: OpStats,
    pub barrier: OpStats,
}

impl CommStats {
    /// The per-operation breakdown as `(label, stats)` rows, in a stable
    /// report order.
    pub fn per_op(&self) -> [(&'static str, OpStats); 6] {
        [
            ("allreduce", self.allreduce),
            ("reduce", self.reduce),
            ("bcast", self.bcast),
            ("allgatherv", self.allgatherv),
            ("alltoallv", self.alltoallv),
            ("barrier", self.barrier),
        ]
    }
}

/// Which collective an accounting entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CollOp {
    Allreduce,
    Reduce,
    Bcast,
    Allgatherv,
    Alltoallv,
    Barrier,
}

impl CollOp {
    fn span_name(self) -> &'static str {
        match self {
            CollOp::Allreduce => "mpi:allreduce",
            CollOp::Reduce => "mpi:reduce",
            CollOp::Bcast => "mpi:bcast",
            CollOp::Allgatherv => "mpi:allgatherv",
            CollOp::Alltoallv => "mpi:alltoallv",
            CollOp::Barrier => "mpi:barrier",
        }
    }

    fn slot(self, stats: &mut CommStats) -> &mut OpStats {
        match self {
            CollOp::Allreduce => &mut stats.allreduce,
            CollOp::Reduce => &mut stats.reduce,
            CollOp::Bcast => &mut stats.bcast,
            CollOp::Allgatherv => &mut stats.allgatherv,
            CollOp::Alltoallv => &mut stats.alltoallv,
            CollOp::Barrier => &mut stats.barrier,
        }
    }
}

struct Shared {
    size: usize,
    barrier: Barrier,
    /// Flat f64 staging, one slot per rank.
    flat: Vec<Mutex<Vec<f64>>>,
    /// Chunked staging for all-to-all style exchanges.
    chunked: Vec<Mutex<Vec<Vec<f64>>>>,
    model: CostModel,
}

/// Per-rank communicator handle (not shared across threads).
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    /// All counters live in one `Cell<CommStats>` so [`Comm::reset_stats`]
    /// clears the aggregate and per-op fields in a single store — they can
    /// never be observed half-reset.
    stats: Cell<CommStats>,
}

impl Comm {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Statistics accumulated by this rank so far.
    pub fn stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Reset the statistics counters (e.g. between timed phases). One store:
    /// aggregate and per-op breakdowns clear together.
    pub fn reset_stats(&self) {
        self.stats.set(CommStats::default());
    }

    fn account(&self, op: CollOp, bytes: usize, t0: Instant, modeled: f64, span: obskit::Span) {
        let seconds = t0.elapsed().as_secs_f64();
        let mut s = self.stats.get();
        s.bytes_sent += bytes as u64;
        s.collective_calls += 1;
        s.measured_seconds += seconds;
        s.modeled_seconds += modeled;
        let slot = op.slot(&mut s);
        slot.calls += 1;
        slot.bytes += bytes as u64;
        slot.seconds += seconds;
        self.stats.set(s);
        obskit::add_bytes_moved(bytes as u64);
        let mut span = span;
        span.arg("bytes", bytes as f64);
        span.arg("modeled_s", modeled);
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let op = CollOp::Barrier;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        self.shared.barrier.wait();
        let m = self.shared.model.barrier(self.size());
        self.account(op, 0, t0, m, sp);
    }

    /// In-place sum-allreduce of `buf` across all ranks.
    pub fn allreduce_sum(&self, buf: &mut [f64]) {
        let op = CollOp::Allreduce;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return;
        }
        *lock(&self.shared.flat[self.rank]) = buf.to_vec();
        self.shared.barrier.wait();
        buf.fill(0.0);
        for r in 0..p {
            let slot = lock(&self.shared.flat[r]);
            assert_eq!(slot.len(), buf.len(), "allreduce length mismatch at rank {r}");
            for (b, s) in buf.iter_mut().zip(slot.iter()) {
                *b += *s;
            }
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let bytes = buf.len() * 8;
        let m = self.shared.model.allreduce(p, bytes);
        self.account(op, bytes, t0, m, sp);
    }

    /// Max-allreduce of a scalar.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        let op = CollOp::Allreduce;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return v;
        }
        *lock(&self.shared.flat[self.rank]) = vec![v];
        self.shared.barrier.wait();
        let mut out = f64::NEG_INFINITY;
        for r in 0..p {
            out = out.max(lock(&self.shared.flat[r])[0]);
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let m = self.shared.model.allreduce(p, 8);
        self.account(op, 8, t0, m, sp);
        out
    }

    /// Sum-reduce `buf` to `root`; non-root ranks' buffers are untouched.
    pub fn reduce_sum(&self, buf: &mut [f64], root: usize) {
        let op = CollOp::Reduce;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return;
        }
        *lock(&self.shared.flat[self.rank]) = buf.to_vec();
        self.shared.barrier.wait();
        if self.rank == root {
            buf.fill(0.0);
            for r in 0..p {
                let slot = lock(&self.shared.flat[r]);
                for (b, s) in buf.iter_mut().zip(slot.iter()) {
                    *b += *s;
                }
            }
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let bytes = buf.len() * 8;
        let m = self.shared.model.reduce(p, bytes);
        self.account(op, bytes, t0, m, sp);
    }

    /// Broadcast `buf` from `root` to all ranks.
    pub fn bcast(&self, buf: &mut [f64], root: usize) {
        let op = CollOp::Bcast;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return;
        }
        if self.rank == root {
            *lock(&self.shared.flat[root]) = buf.to_vec();
        }
        self.shared.barrier.wait();
        if self.rank != root {
            let slot = lock(&self.shared.flat[root]);
            assert_eq!(slot.len(), buf.len(), "bcast length mismatch");
            buf.copy_from_slice(&slot);
        }
        self.shared.barrier.wait();
        if self.rank == root {
            lock(&self.shared.flat[root]).clear();
        }
        let bytes = buf.len() * 8;
        let m = self.shared.model.bcast(p, bytes);
        self.account(op, if self.rank == root { bytes } else { 0 }, t0, m, sp);
    }

    /// Variable all-gather: every rank contributes `mine`, receives the
    /// concatenation in rank order.
    pub fn allgatherv(&self, mine: &[f64]) -> Vec<f64> {
        let op = CollOp::Allgatherv;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return mine.to_vec();
        }
        *lock(&self.shared.flat[self.rank]) = mine.to_vec();
        self.shared.barrier.wait();
        let mut out = Vec::new();
        for r in 0..p {
            out.extend_from_slice(&lock(&self.shared.flat[r]));
        }
        self.shared.barrier.wait();
        lock(&self.shared.flat[self.rank]).clear();
        let total = out.len() * 8;
        let m = self.shared.model.allgatherv(p, total);
        self.account(op, mine.len() * 8, t0, m, sp);
        out
    }

    /// Variable all-to-all: `send[q]` goes to rank `q`; returns what every
    /// rank sent to *me*, indexed by source rank.
    pub fn alltoallv(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let op = CollOp::Alltoallv;
        let sp = obskit::span(obskit::Stage::Mpi, op.span_name());
        let t0 = Instant::now();
        let p = self.size();
        assert_eq!(send.len(), p, "alltoallv needs one chunk per destination");
        let sent_bytes: usize = send.iter().map(|c| c.len() * 8).sum();
        if p == 1 {
            self.account(op, 0, t0, 0.0, sp);
            return send;
        }
        *lock(&self.shared.chunked[self.rank]) = send;
        self.shared.barrier.wait();
        let mut recv = Vec::with_capacity(p);
        for r in 0..p {
            let slot = lock(&self.shared.chunked[r]);
            recv.push(slot[self.rank].clone());
        }
        self.shared.barrier.wait();
        lock(&self.shared.chunked[self.rank]).clear();
        let m = self.shared.model.alltoallv(p, sent_bytes);
        self.account(op, sent_bytes, t0, m, sp);
        recv
    }
}

/// Run `f` as an SPMD program on `size` thread-ranks with the default cost
/// model; returns the per-rank results in rank order.
pub fn spmd<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    spmd_with_model(size, CostModel::default(), f)
}

/// [`spmd`] with an explicit communication cost model.
pub fn spmd_with_model<T, F>(size: usize, model: CostModel, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(size > 0, "need at least one rank");
    let shared = Arc::new(Shared {
        size,
        barrier: Barrier::new(size),
        flat: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
        chunked: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
        model,
    });
    let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let shared = Arc::clone(&shared);
            let f = &f;
            handles.push(scope.spawn(move || {
                // Tag this rank thread's trace stream and deliver whatever it
                // recorded when the rank function returns (or panics — the
                // thread-local backstop flushes on unwind).
                obskit::set_rank(rank);
                let comm = Comm { rank, shared, stats: Cell::new(CommStats::default()) };
                let out = f(&comm);
                obskit::flush_thread();
                out
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        let p = 4;
        let res = spmd(p, |c| {
            let mut buf = vec![c.rank() as f64 + 1.0; 3];
            c.allreduce_sum(&mut buf);
            buf
        });
        for r in res {
            assert_eq!(r, vec![10.0, 10.0, 10.0]); // 1+2+3+4
        }
    }

    #[test]
    fn allreduce_repeated_rounds() {
        // Two back-to-back collectives must not corrupt each other.
        let res = spmd(3, |c| {
            let mut a = vec![1.0];
            c.allreduce_sum(&mut a);
            let mut b = vec![c.rank() as f64];
            c.allreduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in res {
            assert_eq!(a, 3.0);
            assert_eq!(b, 3.0); // 0+1+2
        }
    }

    #[test]
    fn reduce_only_root_gets_sum() {
        let res = spmd(4, |c| {
            let mut buf = vec![2.0];
            c.reduce_sum(&mut buf, 2);
            buf[0]
        });
        assert_eq!(res[2], 8.0);
        assert_eq!(res[0], 2.0);
        assert_eq!(res[3], 2.0);
    }

    #[test]
    fn bcast_distributes_roots_data() {
        let res = spmd(5, |c| {
            let mut buf = if c.rank() == 1 { vec![7.0, 8.0] } else { vec![0.0, 0.0] };
            c.bcast(&mut buf, 1);
            buf
        });
        for r in res {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let res = spmd(3, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1];
            c.allgatherv(&mine)
        });
        for r in res {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn alltoallv_routes_chunks() {
        let p = 4;
        let res = spmd(p, |c| {
            // Send [my_rank, dest] to each destination.
            let send: Vec<Vec<f64>> =
                (0..p).map(|q| vec![c.rank() as f64, q as f64]).collect();
            c.alltoallv(send)
        });
        for (me, recv) in res.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![src as f64, me as f64]);
            }
        }
    }

    #[test]
    fn alltoallv_ragged_sizes() {
        let p = 3;
        let res = spmd(p, |c| {
            let send: Vec<Vec<f64>> = (0..p).map(|q| vec![1.0; c.rank() * p + q]).collect();
            c.alltoallv(send)
        });
        for (me, recv) in res.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk.len(), src * p + me);
            }
        }
    }

    #[test]
    fn allreduce_max_scalar() {
        let res = spmd(6, |c| c.allreduce_max((c.rank() as f64 - 2.5).abs()));
        for r in res {
            assert_eq!(r, 2.5);
        }
    }

    #[test]
    fn stats_account_bytes_and_calls() {
        let res = spmd(2, |c| {
            let mut buf = vec![0.0; 100];
            c.allreduce_sum(&mut buf);
            c.barrier();
            c.stats()
        });
        for s in res {
            assert_eq!(s.collective_calls, 2);
            assert_eq!(s.bytes_sent, 800);
            assert!(s.modeled_seconds > 0.0);
        }
    }

    #[test]
    fn per_op_breakdown_sums_to_aggregate() {
        let res = spmd(2, |c| {
            let mut buf = vec![1.0; 16];
            c.allreduce_sum(&mut buf);
            c.bcast(&mut buf, 0);
            let _ = c.allgatherv(&buf);
            let _ = c.alltoallv(vec![vec![1.0], vec![2.0]]);
            c.reduce_sum(&mut buf, 0);
            c.barrier();
            c.stats()
        });
        for s in &res {
            assert_eq!(s.allreduce.calls, 1);
            assert_eq!(s.reduce.calls, 1);
            assert_eq!(s.bcast.calls, 1);
            assert_eq!(s.allgatherv.calls, 1);
            assert_eq!(s.alltoallv.calls, 1);
            assert_eq!(s.barrier.calls, 1);
            let per: [( &str, OpStats); 6] = s.per_op();
            let calls: u64 = per.iter().map(|(_, o)| o.calls).sum();
            let bytes: u64 = per.iter().map(|(_, o)| o.bytes).sum();
            let secs: f64 = per.iter().map(|(_, o)| o.seconds).sum();
            assert_eq!(calls, s.collective_calls);
            assert_eq!(bytes, s.bytes_sent);
            assert!((secs - s.measured_seconds).abs() < 1e-12);
            assert_eq!(s.allreduce.bytes, 128);
            assert_eq!(s.barrier.bytes, 0);
        }
        // Root contributed bcast bytes, non-root did not.
        assert_eq!(res[0].bcast.bytes, 128);
        assert_eq!(res[1].bcast.bytes, 0);
    }

    #[test]
    fn reset_clears_aggregate_and_per_op_together() {
        let res = spmd(2, |c| {
            let mut buf = vec![1.0; 8];
            c.allreduce_sum(&mut buf);
            c.barrier();
            c.reset_stats();
            c.stats()
        });
        for s in res {
            assert_eq!(s, CommStats::default(), "reset must clear every field");
        }
    }

    #[test]
    fn single_rank_everything_is_identity() {
        let res = spmd(1, |c| {
            let mut buf = vec![3.0];
            c.allreduce_sum(&mut buf);
            c.bcast(&mut buf, 0);
            let g = c.allgatherv(&buf);
            let a = c.alltoallv(vec![vec![1.0, 2.0]]);
            (buf[0], g, a)
        });
        assert_eq!(res[0].0, 3.0);
        assert_eq!(res[0].1, vec![3.0]);
        assert_eq!(res[0].2, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn many_ranks_stress() {
        let p = 16;
        let res = spmd(p, |c| {
            let mut acc = 0.0;
            for round in 0..5 {
                let mut buf = vec![(c.rank() + round) as f64];
                c.allreduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        });
        let expect: f64 = (0..5).map(|r| (0..16).map(|k| (k + r) as f64).sum::<f64>()).sum();
        for v in res {
            assert_eq!(v, expect);
        }
    }
}
