//! Compute/communication overlap measurement.
//!
//! The progress engine timestamps the outstanding window of every
//! nonblocking collective ([`CommInterval`]: issue → completion of the
//! rank's duty); callers record the intervals in which they were
//! *computing* (e.g. the chunk-`q+1` GEMM of the pipelined Gram
//! reduction). The overlap fraction is the share of outstanding-comm time
//! that coincided with compute:
//!
//! ```text
//! fraction = |∪ comm ∩ ∪ compute| / |∪ comm|
//! ```
//!
//! A blocking schedule measures ≈ 0 (issue is followed immediately by
//! `wait`, so no compute falls inside the window); the paper's Fig. 4/5
//! pipelined schedule pushes this well above zero because the reduce of
//! chunk `q` is outstanding across the GEMM of chunk `q+1`.

use crate::requests::CommInterval;

/// A half-open `[start, end)` caller-side compute interval, in the same
/// epoch-relative seconds as [`CommInterval`] (see `Comm::now_secs`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeInterval {
    pub start: f64,
    pub end: f64,
}

impl ComputeInterval {
    pub fn new(start: f64, end: f64) -> Self {
        ComputeInterval { start, end }
    }
}

/// Summary of one overlap measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverlapStats {
    /// Seconds with at least one collective outstanding (union length).
    pub comm_busy: f64,
    /// Total caller compute seconds.
    pub compute_busy: f64,
    /// Seconds of engine-busy time that coincided with caller compute.
    pub overlapped: f64,
    /// `overlapped / comm_busy` (0 when no communication happened).
    pub fraction: f64,
}

/// Measure how much outstanding-collective time overlapped the given
/// compute intervals. Neither input needs to be sorted; intervals within
/// each set may also overlap each other (both are flattened to unions
/// first, so duplicated cover never counts twice).
pub fn overlap_fraction(segs: &[CommInterval], compute: &[ComputeInterval]) -> OverlapStats {
    let seg_iv: Vec<(f64, f64)> = segs.iter().map(|s| (s.start, s.end)).collect();
    let cmp_iv: Vec<(f64, f64)> = compute.iter().map(|c| (c.start, c.end)).collect();
    let seg_u = union(seg_iv);
    let cmp_u = union(cmp_iv);
    let comm_busy: f64 = seg_u.iter().map(|(a, b)| b - a).sum();
    let compute_busy: f64 = cmp_u.iter().map(|(a, b)| b - a).sum();
    let overlapped = intersection_len(&seg_u, &cmp_u);
    let fraction = if comm_busy > 0.0 { overlapped / comm_busy } else { 0.0 };
    OverlapStats { comm_busy, compute_busy, overlapped, fraction }
}

/// Sort + merge a set of possibly-overlapping intervals into a disjoint
/// union, dropping empty/negative spans.
fn union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(a, b)| b > a);
    iv.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = e.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted interval sets.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut total = 0.0;
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(s: f64, e: f64) -> CommInterval {
        CommInterval { start: s, end: e, bytes: 8 }
    }

    #[test]
    fn disjoint_sets_have_zero_overlap() {
        let st = overlap_fraction(&[seg(0.0, 1.0)], &[ComputeInterval::new(2.0, 3.0)]);
        assert_eq!(st.overlapped, 0.0);
        assert_eq!(st.fraction, 0.0);
        assert_eq!(st.comm_busy, 1.0);
        assert_eq!(st.compute_busy, 1.0);
    }

    #[test]
    fn fully_contained_comm_overlaps_completely() {
        let st = overlap_fraction(&[seg(1.0, 2.0)], &[ComputeInterval::new(0.0, 3.0)]);
        assert!((st.fraction - 1.0).abs() < 1e-12);
        assert!((st.overlapped - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_measures_the_intersection() {
        let st = overlap_fraction(&[seg(0.0, 2.0)], &[ComputeInterval::new(1.0, 4.0)]);
        assert!((st.overlapped - 1.0).abs() < 1e-12);
        assert!((st.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicated_cover_does_not_double_count() {
        // Two identical segment steps and two overlapping compute spans:
        // union first, so the intersection is still just one second.
        let st = overlap_fraction(
            &[seg(0.0, 1.0), seg(0.0, 1.0)],
            &[ComputeInterval::new(0.0, 0.8), ComputeInterval::new(0.5, 1.0)],
        );
        assert!((st.comm_busy - 1.0).abs() < 1e-12);
        assert!((st.compute_busy - 1.0).abs() < 1e-12);
        assert!((st.overlapped - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_comm_is_zero_fraction_not_nan() {
        let st = overlap_fraction(&[], &[ComputeInterval::new(0.0, 1.0)]);
        assert_eq!(st.fraction, 0.0);
        assert!(st.fraction.is_finite());
    }
}
