//! Row-block ↔ column-block redistribution of tall matrices.
//!
//! This is the `MPI_Alltoall` step of Algorithm 1 (lines 3 and 6): the
//! wavefunction matrix `Ψ` (`N_r × N_b`) moves between the row-block layout
//! (GEMM/face-splitting friendly) and the column-block layout (FFT friendly).
//!
//! The flat payloads here are column-major within each (row-range × col-range)
//! tile, so reassembly on the receiving side is deterministic.

use crate::comm::Comm;
use crate::layout::block_ranges;

/// Convert *my* row-block piece (`my_rows × n_cols` of a `n_rows × n_cols`
/// global matrix, stored column-major) into my column-block piece
/// (`n_rows × my_cols`). SPMD-collective: every rank must call this.
pub fn row_to_col_blocks(
    comm: &Comm,
    my_piece: &[f64],
    n_rows: usize,
    n_cols: usize,
) -> Vec<f64> {
    let p = comm.size();
    let row_ranges = block_ranges(n_rows, p);
    let col_ranges = block_ranges(n_cols, p);
    let my_rows = row_ranges[comm.rank()].len();
    assert_eq!(my_piece.len(), my_rows * n_cols, "row-block piece size mismatch");

    // Tile (my rows) × (q's columns) goes to rank q, column-major.
    let send: Vec<Vec<f64>> = col_ranges
        .iter()
        .map(|cr| {
            let mut chunk = Vec::with_capacity(my_rows * cr.len());
            for j in cr.clone() {
                chunk.extend_from_slice(&my_piece[j * my_rows..(j + 1) * my_rows]);
            }
            chunk
        })
        .collect();
    // Nonblocking exchange: allocate/zero the reassembly target while the
    // tiles are in flight.
    let rq = comm.ialltoallv(send);
    let my_cols = col_ranges[comm.rank()].len();
    let mut out = vec![0.0; n_rows * my_cols];
    let recv = rq.wait();
    for (src, chunk) in recv.iter().enumerate() {
        let rr = &row_ranges[src];
        let rows_src = rr.len();
        assert_eq!(chunk.len(), rows_src * my_cols, "tile size mismatch from {src}");
        for jl in 0..my_cols {
            let src_col = &chunk[jl * rows_src..(jl + 1) * rows_src];
            out[jl * n_rows + rr.start..jl * n_rows + rr.end].copy_from_slice(src_col);
        }
    }
    out
}

/// Inverse of [`row_to_col_blocks`]: column-block piece → row-block piece.
pub fn col_to_row_blocks(
    comm: &Comm,
    my_piece: &[f64],
    n_rows: usize,
    n_cols: usize,
) -> Vec<f64> {
    let p = comm.size();
    let row_ranges = block_ranges(n_rows, p);
    let col_ranges = block_ranges(n_cols, p);
    let my_cols = col_ranges[comm.rank()].len();
    assert_eq!(my_piece.len(), n_rows * my_cols, "col-block piece size mismatch");

    // Tile (q's rows) × (my columns) goes to rank q.
    let send: Vec<Vec<f64>> = row_ranges
        .iter()
        .map(|rr| {
            let mut chunk = Vec::with_capacity(rr.len() * my_cols);
            for jl in 0..my_cols {
                chunk.extend_from_slice(&my_piece[jl * n_rows + rr.start..jl * n_rows + rr.end]);
            }
            chunk
        })
        .collect();
    let rq = comm.ialltoallv(send);
    let my_rows = row_ranges[comm.rank()].len();
    let mut out = vec![0.0; my_rows * n_cols];
    let recv = rq.wait();
    for (src, chunk) in recv.iter().enumerate() {
        let cr = &col_ranges[src];
        assert_eq!(chunk.len(), my_rows * cr.len(), "tile size mismatch from {src}");
        for (jl, j) in cr.clone().enumerate() {
            out[j * my_rows..(j + 1) * my_rows]
                .copy_from_slice(&chunk[jl * my_rows..(jl + 1) * my_rows]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::spmd;
    use crate::layout::block_ranges;

    /// Global test matrix entry.
    fn entry(i: usize, j: usize) -> f64 {
        (i * 1000 + j) as f64
    }

    #[test]
    fn row_to_col_roundtrip() {
        let (n_rows, n_cols, p) = (13, 7, 4);
        let res = spmd(p, |c| {
            let rr = block_ranges(n_rows, p)[c.rank()].clone();
            // my row-block piece, column-major
            let mut piece = vec![0.0; rr.len() * n_cols];
            for j in 0..n_cols {
                for (il, i) in rr.clone().enumerate() {
                    piece[j * rr.len() + il] = entry(i, j);
                }
            }
            let col_piece = row_to_col_blocks(c, &piece, n_rows, n_cols);
            // verify column-block content
            let cr = block_ranges(n_cols, p)[c.rank()].clone();
            assert_eq!(col_piece.len(), n_rows * cr.len());
            for (jl, j) in cr.clone().enumerate() {
                for i in 0..n_rows {
                    assert_eq!(col_piece[jl * n_rows + i], entry(i, j), "({i},{j})");
                }
            }
            // and back
            let back = col_to_row_blocks(c, &col_piece, n_rows, n_cols);
            assert_eq!(back, piece);
            true
        });
        assert!(res.into_iter().all(|b| b));
    }

    #[test]
    fn works_with_more_ranks_than_columns() {
        let (n_rows, n_cols, p) = (9, 2, 5);
        spmd(p, |c| {
            let rr = block_ranges(n_rows, p)[c.rank()].clone();
            let mut piece = vec![0.0; rr.len() * n_cols];
            for j in 0..n_cols {
                for (il, i) in rr.clone().enumerate() {
                    piece[j * rr.len() + il] = entry(i, j);
                }
            }
            let col_piece = row_to_col_blocks(c, &piece, n_rows, n_cols);
            let back = col_to_row_blocks(c, &col_piece, n_rows, n_cols);
            assert_eq!(back, piece);
        });
    }

    #[test]
    fn single_rank_identity() {
        spmd(1, |c| {
            let piece: Vec<f64> = (0..12).map(|x| x as f64).collect();
            let col = row_to_col_blocks(c, &piece, 4, 3);
            assert_eq!(col, piece);
            let row = col_to_row_blocks(c, &piece, 4, 3);
            assert_eq!(row, piece);
        });
    }
}
