//! Extended point-to-point-flavoured collectives: `Gatherv`, `Scatterv`,
//! `Sendrecv`-style ring exchange, and scalar sum helpers — the remaining
//! MPI primitives a ScaLAPACK-style 2-D pipeline needs beyond the core set.

use crate::comm::Comm;

impl Comm {
    /// Gather variable-length contributions at `root`. Non-root ranks get an
    /// empty vector; `root` gets the concatenation in rank order.
    pub fn gatherv(&self, mine: &[f64], root: usize) -> Vec<f64> {
        let all = self.allgatherv(mine);
        if self.rank() == root {
            all
        } else {
            Vec::new()
        }
    }

    /// Scatter per-rank chunks from `root`: `chunks` is only read on `root`
    /// (other ranks pass anything, conventionally `&[]`). Returns my chunk.
    pub fn scatterv(&self, chunks: &[Vec<f64>], root: usize) -> Vec<f64> {
        let p = self.size();
        // Route through alltoallv: root supplies the payload row, everyone
        // else sends empties.
        let send: Vec<Vec<f64>> = if self.rank() == root {
            assert_eq!(chunks.len(), p, "scatterv needs one chunk per rank on root");
            chunks.to_vec()
        } else {
            vec![Vec::new(); p]
        };
        let recv = self.alltoallv(send);
        recv[root].clone()
    }

    /// Ring shift: send `mine` to `(rank+1) % size`, receive from the left
    /// neighbour. The building block of systolic matrix algorithms.
    pub fn ring_shift(&self, mine: &[f64]) -> Vec<f64> {
        let p = self.size();
        let mut send: Vec<Vec<f64>> = vec![Vec::new(); p];
        send[(self.rank() + 1) % p] = mine.to_vec();
        let recv = self.alltoallv(send);
        recv[(self.rank() + p - 1) % p].clone()
    }

    /// Sum a scalar across ranks.
    pub fn allreduce_sum_scalar(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Exclusive prefix sum of a scalar (rank 0 gets 0.0) — used to compute
    /// global offsets of variable-length local arrays.
    pub fn exscan_sum(&self, v: f64) -> f64 {
        let all = self.allgatherv(&[v]);
        all[..self.rank()].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::spmd;

    #[test]
    fn gatherv_only_root_receives() {
        let res = spmd(4, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1];
            c.gatherv(&mine, 2)
        });
        assert!(res[0].is_empty() && res[1].is_empty() && res[3].is_empty());
        assert_eq!(res[2], vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn scatterv_routes_chunks_from_root() {
        let res = spmd(3, |c| {
            let chunks = if c.rank() == 1 {
                vec![vec![10.0], vec![20.0, 21.0], vec![30.0, 31.0, 32.0]]
            } else {
                vec![Vec::new(); 3]
            };
            c.scatterv(&chunks, 1)
        });
        assert_eq!(res[0], vec![10.0]);
        assert_eq!(res[1], vec![20.0, 21.0]);
        assert_eq!(res[2], vec![30.0, 31.0, 32.0]);
    }

    #[test]
    fn ring_shift_rotates() {
        let res = spmd(5, |c| {
            let mine = vec![c.rank() as f64];
            c.ring_shift(&mine)
        });
        for (me, r) in res.iter().enumerate() {
            let left = (me + 5 - 1) % 5;
            assert_eq!(r, &vec![left as f64]);
        }
    }

    #[test]
    fn ring_shift_composes_to_identity() {
        // P shifts bring the data home.
        let p = 4;
        let res = spmd(p, |c| {
            let mut data = vec![c.rank() as f64 * 10.0, 1.0];
            for _ in 0..p {
                data = c.ring_shift(&data);
            }
            data
        });
        for (me, r) in res.iter().enumerate() {
            assert_eq!(r, &vec![me as f64 * 10.0, 1.0]);
        }
    }

    #[test]
    fn scalar_helpers() {
        let res = spmd(4, |c| {
            let sum = c.allreduce_sum_scalar(c.rank() as f64 + 1.0);
            let offset = c.exscan_sum((c.rank() + 1) as f64);
            (sum, offset)
        });
        for (me, (sum, offset)) in res.iter().enumerate() {
            assert_eq!(*sum, 10.0);
            let expect: f64 = (1..=me).map(|r| r as f64).sum();
            assert_eq!(*offset, expect, "rank {me}");
        }
    }
}
