//! Data distributions of paper Figure 3.
//!
//! * **Column-block partition** — each rank owns a contiguous block of
//!   wavefunction columns (orbitals): the FFT-friendly layout, since every
//!   orbital's grid is local.
//! * **Row-block partition** — each rank owns a contiguous block of grid
//!   rows: the GEMM/face-splitting-product-friendly layout.
//! * **2-D block-cyclic** — the ScaLAPACK `SYEVD` layout.

use std::ops::Range;

/// Which axis of the `N_r × N_b` wavefunction matrix is distributed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Rows (grid points) split across ranks; all columns local.
    RowBlock,
    /// Columns (orbitals) split across ranks; all rows local.
    ColBlock,
}

/// Contiguous block partition of `n` items over `p` ranks: the first
/// `n mod p` ranks get one extra item. Returns per-rank index ranges.
pub fn block_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
    assert!(p > 0);
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for r in 0..p {
        let len = base + usize::from(r < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Split `0..len` into fixed-size segments of `seg` items (the last one may
/// be short). The chunked collective algorithms stream one segment per
/// engine step. `len == 0` yields no segments.
pub fn segment_ranges(len: usize, seg: usize) -> Vec<Range<usize>> {
    assert!(seg > 0, "segment size must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(seg));
    let mut start = 0;
    while start < len {
        let end = (start + seg).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Owner rank of global index `i` under [`block_ranges`]`(n, p)`.
pub fn block_owner(i: usize, n: usize, p: usize) -> usize {
    let base = n / p;
    let extra = n % p;
    let cutoff = extra * (base + 1);
    if i < cutoff {
        i / (base + 1)
    } else {
        extra + (i - cutoff) / base.max(1)
    }
}

/// Owner in a 1-D block-cyclic distribution with block size `nb`.
pub fn block_cyclic_owner(i: usize, nb: usize, p: usize) -> usize {
    (i / nb) % p
}

/// 2-D block-cyclic process grid (the ScaLAPACK layout used for SYEVD).
#[derive(Clone, Copy, Debug)]
pub struct BlockCyclic2D {
    /// Process grid rows and columns (`p = prow × pcol`).
    pub prow: usize,
    pub pcol: usize,
    /// Block sizes along each axis.
    pub mb: usize,
    pub nb: usize,
}

impl BlockCyclic2D {
    /// Square-ish process grid for `p` ranks with block size `nb`.
    pub fn for_ranks(p: usize, nb: usize) -> Self {
        let mut prow = (p as f64).sqrt().floor() as usize;
        while prow > 1 && !p.is_multiple_of(prow) {
            prow -= 1;
        }
        let prow = prow.max(1);
        BlockCyclic2D { prow, pcol: p / prow, mb: nb, nb }
    }

    /// Rank owning global entry `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        let pr = (i / self.mb) % self.prow;
        let pc = (j / self.nb) % self.pcol;
        pr * self.pcol + pc
    }

    /// Local (row, col) coordinates of global `(i, j)` on its owner.
    pub fn local_index(&self, i: usize, j: usize) -> (usize, usize) {
        let li = (i / (self.mb * self.prow)) * self.mb + i % self.mb;
        let lj = (j / (self.nb * self.pcol)) * self.nb + j % self.nb;
        (li, lj)
    }

    /// Number of local rows rank-row `pr` holds of a global dimension `m`.
    pub fn local_rows(&self, m: usize, pr: usize) -> usize {
        count_local(m, self.mb, self.prow, pr)
    }

    /// Number of local cols rank-col `pc` holds of a global dimension `n`.
    pub fn local_cols(&self, n: usize, pc: usize) -> usize {
        count_local(n, self.nb, self.pcol, pc)
    }
}

/// NUMROC: how many of `n` items a rank at position `coord` owns in a 1-D
/// block-cyclic distribution with block `nb` over `p` ranks.
fn count_local(n: usize, nb: usize, p: usize, coord: usize) -> usize {
    let nblocks = n / nb;
    let mut cnt = (nblocks / p) * nb;
    let rem = nblocks % p;
    if coord < rem {
        cnt += nb;
    } else if coord == rem {
        cnt += n % nb;
    }
    cnt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_everything() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (5, 8), (0, 4), (100, 1)] {
            let rs = block_ranges(n, p);
            assert_eq!(rs.len(), p);
            let mut next = 0;
            for r in &rs {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n);
            // sizes differ by at most 1
            let min = rs.iter().map(|r| r.len()).min().unwrap();
            let max = rs.iter().map(|r| r.len()).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn block_owner_agrees_with_ranges() {
        for &(n, p) in &[(10usize, 3usize), (23, 5), (16, 4)] {
            let rs = block_ranges(n, p);
            for i in 0..n {
                let owner = block_owner(i, n, p);
                assert!(rs[owner].contains(&i), "i={i} owner={owner} ranges={rs:?}");
            }
        }
    }

    #[test]
    fn cyclic_owner_wraps() {
        assert_eq!(block_cyclic_owner(0, 2, 3), 0);
        assert_eq!(block_cyclic_owner(1, 2, 3), 0);
        assert_eq!(block_cyclic_owner(2, 2, 3), 1);
        assert_eq!(block_cyclic_owner(5, 2, 3), 2);
        assert_eq!(block_cyclic_owner(6, 2, 3), 0);
    }

    #[test]
    fn bc2d_grid_factorization() {
        let g = BlockCyclic2D::for_ranks(12, 4);
        assert_eq!(g.prow * g.pcol, 12);
        let g = BlockCyclic2D::for_ranks(7, 4); // prime: 1x7
        assert_eq!(g.prow * g.pcol, 7);
    }

    #[test]
    fn bc2d_owner_in_range_and_balanced() {
        let g = BlockCyclic2D::for_ranks(4, 2);
        let (m, n) = (16, 16);
        let mut counts = vec![0usize; 4];
        for i in 0..m {
            for j in 0..n {
                let o = g.owner(i, j);
                assert!(o < 4);
                counts[o] += 1;
            }
        }
        // perfectly divisible case: equal shares
        assert!(counts.iter().all(|&c| c == 64), "{counts:?}");
    }

    #[test]
    fn bc2d_local_counts_sum_to_global() {
        let g = BlockCyclic2D::for_ranks(6, 3);
        let m = 25;
        let total: usize = (0..g.prow).map(|pr| g.local_rows(m, pr)).sum();
        assert_eq!(total, m);
        let n = 17;
        let total: usize = (0..g.pcol).map(|pc| g.local_cols(n, pc)).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn bc2d_local_index_consistent_with_owner_counts() {
        let g = BlockCyclic2D { prow: 2, pcol: 2, mb: 2, nb: 2 };
        // Count entries per rank via owner() and check local_index stays in bounds.
        let (m, n) = (9, 7);
        for i in 0..m {
            for j in 0..n {
                let o = g.owner(i, j);
                let (li, lj) = g.local_index(i, j);
                let pr = o / g.pcol;
                let pc = o % g.pcol;
                assert!(li < g.local_rows(m, pr), "li={li} bounds");
                assert!(lj < g.local_cols(n, pc), "lj={lj} bounds");
            }
        }
    }
}
