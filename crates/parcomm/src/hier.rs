//! Hierarchical two-level collectives over split communicators.
//!
//! At large rank counts a flat ring allreduce pays `O(p)` latency steps. The
//! two-level schedule — intra-group partial reduce → inter-group exchange
//! among group leaders → intra-group broadcast — pays `O(g + p/g)` instead,
//! minimized at `g ≈ √p`. Built on [`Comm::split`]: group membership is
//! `rank / g`, leaders are the ranks with intra-group rank 0.
//!
//! **Determinism caveat:** the two-level fold reassociates the sum (group
//! partials are formed first, then folded across groups), so results agree
//! with the flat ring only to rounding (~1 ulp per reassociation). It is
//! therefore **opt-in**: [`Hierarchy::allreduce_sum_tuned`] uses it only when
//! the caller's [`CommTuning`] both *allows reassociation* and *predicts a
//! win* from its α–β model (typically perfsight's fitted constants). The
//! default tuning keeps the flat, bitwise-deterministic path.

use crate::comm::Comm;
use crate::cost::CostModel;

/// Message-size/rank-count selection policy for hierarchical collectives,
/// fed by a fitted α–β model (e.g. `perfsight::fit`'s global Hockney
/// constants, measured from this machine's own OpStats).
#[derive(Clone, Copy, Debug)]
pub struct CommTuning {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Per-byte transfer time, seconds.
    pub beta: f64,
    /// Permit the reassociating two-level fold. `false` (the default) pins
    /// every reduction to the flat bitwise-deterministic ring.
    pub allow_reassociation: bool,
}

impl Default for CommTuning {
    fn default() -> Self {
        let m = CostModel::default();
        CommTuning { alpha: m.alpha, beta: m.beta, allow_reassociation: false }
    }
}

impl CommTuning {
    fn model(&self) -> CostModel {
        CostModel { alpha: self.alpha, beta: self.beta }
    }

    /// Modeled cost of the flat single-level allreduce — the engine's actual
    /// default algorithm, a segmented ring with **linear** `2(p−1)` latency
    /// steps (this, not the log-tree Rabenseifner bound, is what the
    /// hierarchy competes against).
    pub fn flat_cost(&self, p: usize, bytes: usize) -> f64 {
        self.model()
            .ring_allreduce(p, bytes, crate::requests::DEFAULT_SEGMENT_WORDS * 8)
    }

    /// Modeled cost of the two-level schedule with intra-group size `g`:
    /// tree-style intra reduce + flat ring across the `⌈p/g⌉` leaders +
    /// tree-style intra broadcast.
    pub fn two_level_cost(&self, p: usize, g: usize, bytes: usize) -> f64 {
        let m = self.model();
        let groups = p.div_ceil(g.max(1));
        m.reduce(g, bytes)
            + m.ring_allreduce(groups, bytes, crate::requests::DEFAULT_SEGMENT_WORDS * 8)
            + m.bcast(g, bytes)
    }

    /// Whether the policy selects the two-level schedule for a `bytes`-sized
    /// allreduce on `p` ranks (group size `g`): reassociation must be
    /// allowed *and* the α–β model must predict a win.
    pub fn picks_two_level(&self, p: usize, g: usize, bytes: usize) -> bool {
        self.allow_reassociation
            && g > 1
            && g < p
            && self.two_level_cost(p, g, bytes) < self.flat_cost(p, bytes)
    }
}

/// Cached two-level communicator pair: build once (two collective
/// [`Comm::split`] calls), reduce many times.
pub struct Hierarchy<'a> {
    parent: &'a Comm,
    group: usize,
    intra: Comm,
    /// Leaders' cross-group communicator; non-leaders hold a singleton they
    /// never reduce on (split is collective on the parent, so every rank
    /// participates in its construction).
    inter: Comm,
}

impl<'a> Hierarchy<'a> {
    /// Build with the latency-minimizing group size `g ≈ √p`.
    pub fn new(parent: &'a Comm) -> Self {
        let g = (parent.size() as f64).sqrt().floor().max(1.0) as usize;
        Self::with_group(parent, g)
    }

    /// Build with an explicit intra-group size (collective on `parent`).
    pub fn with_group(parent: &'a Comm, group: usize) -> Self {
        let group = group.clamp(1, parent.size());
        let color = parent.rank() / group;
        let intra = parent.split(color, parent.rank());
        let is_leader = intra.rank() == 0;
        // Leaders share color 0; every other rank gets a unique color (its
        // parent rank offset past 0), i.e. a singleton communicator.
        let inter_color = if is_leader { 0 } else { 1 + parent.rank() };
        let inter = parent.split(inter_color, parent.rank());
        Hierarchy { parent, group, intra, inter }
    }

    /// Intra-group size this hierarchy was built with.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Two-level sum-allreduce: intra-group reduce to the leader, leaders
    /// allreduce across groups, leaders broadcast back. **Reassociates** the
    /// fold — use [`Hierarchy::allreduce_sum_tuned`] unless the caller has
    /// explicitly opted in to non-deterministic rounding.
    pub fn allreduce_sum(&self, buf: &mut [f64]) {
        if self.parent.size() == 1 {
            return;
        }
        self.intra.reduce_sum(buf, 0);
        if self.intra.rank() == 0 {
            self.inter.allreduce_sum(buf);
        }
        self.intra.bcast(buf, 0);
    }

    /// Policy-selected allreduce: the two-level schedule when `tuning` allows
    /// reassociation and models it faster, else the flat deterministic ring
    /// on the parent communicator.
    pub fn allreduce_sum_tuned(&self, buf: &mut [f64], tuning: &CommTuning) {
        if tuning.picks_two_level(self.parent.size(), self.group, buf.len() * 8) {
            self.allreduce_sum(buf);
        } else {
            self.parent.allreduce_sum(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::spmd;

    #[test]
    fn two_level_matches_flat_within_rounding() {
        let p = 6;
        let res = spmd(p, |c| {
            let h = Hierarchy::new(c);
            let mut a = vec![c.rank() as f64 + 0.1, 2.0];
            h.allreduce_sum(&mut a);
            let mut b = vec![c.rank() as f64 + 0.1, 2.0];
            c.allreduce_sum(&mut b);
            (a, b)
        });
        for (a, b) in res {
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= 4.0 * f64::EPSILON * y.abs(), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn exactly_representable_sums_are_bitwise() {
        // Integer-valued payloads reassociate without rounding, so the
        // two-level result must be bit-for-bit the flat result.
        let res = spmd(9, |c| {
            let h = Hierarchy::new(c);
            let mut a = vec![c.rank() as f64, 1.0, 1024.0];
            h.allreduce_sum(&mut a);
            a
        });
        for a in res {
            assert_eq!(a, vec![36.0, 9.0, 9216.0]);
        }
    }

    #[test]
    fn default_tuning_stays_flat_and_deterministic() {
        let res = spmd(4, |c| {
            let h = Hierarchy::new(c);
            let tuning = CommTuning::default(); // reassociation NOT allowed
            let mut a = vec![0.1 * (c.rank() as f64 + 1.0); 3];
            h.allreduce_sum_tuned(&mut a, &tuning);
            let mut b = vec![0.1 * (c.rank() as f64 + 1.0); 3];
            c.allreduce_sum(&mut b);
            (a, b)
        });
        for (a, b) in res {
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "gated policy must stay bitwise flat");
            }
        }
    }

    #[test]
    fn policy_picks_two_level_only_when_latency_bound() {
        let t = CommTuning { alpha: 1e-5, beta: 1.25e-10, allow_reassociation: true };
        // Tiny message at high rank count: latency dominates → two-level wins.
        assert!(t.picks_two_level(1024, 32, 256));
        // Huge message: bandwidth dominates and the two-level schedule moves
        // every byte three times → flat wins.
        assert!(!t.picks_two_level(1024, 32, 64 << 20));
        // Gated: without reassociation permission it never picks two-level.
        let gated = CommTuning { allow_reassociation: false, ..t };
        assert!(!gated.picks_two_level(1024, 32, 256));
    }
}
