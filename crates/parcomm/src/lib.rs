//! # parcomm — simulated-MPI SPMD runtime
//!
//! The paper's implementation is MPI+OpenMP on up to 12,288 Cori cores. This
//! crate reproduces the *structure* of that parallelization in-process:
//!
//! * [`spmd`] launches `P` ranks as OS threads executing the same closure
//!   (SPMD), each holding a [`Comm`] handle;
//! * [`Comm`] provides the collectives Algorithm 1 uses — `Alltoallv`,
//!   `Allreduce`, `Reduce`, `Bcast`, `Allgatherv`, `Barrier` — plus their
//!   **nonblocking request forms** (`ireduce_sum`, `iallreduce_sum`,
//!   `ibcast`, `ialltoallv`, …) backed by a per-rank progress engine running
//!   chunked ring / recursive-doubling algorithms ([`requests`]), so
//!   communication proceeds while the caller computes and the measured
//!   overlap fraction can be reported ([`overlap`]);
//! * [`batch`] fuses many pending small reductions into one collective over
//!   a packed buffer (bitwise-identical per-field results), [`comm::Comm::split`]
//!   carves disjoint sub-communicators, and [`hier`] builds opt-in two-level
//!   collectives on top of them — the communication-avoiding layer;
//! * every collective records **bytes moved and call counts** ([`CommStats`])
//!   and accrues modeled wall-time from an **α–β (latency–bandwidth) cost
//!   model** ([`CostModel`]), so rank counts far beyond the host's cores can
//!   be extrapolated faithfully for the strong/weak-scaling reproductions;
//! * [`layout`] implements the paper's three data distributions (Figure 3):
//!   row-block, column-block, and 2-D block-cyclic, plus the
//!   `MPI_Alltoall`-based row↔column redistribution of wavefunction matrices.

pub mod batch;
pub mod comm;
pub mod cost;
pub mod hier;
pub mod layout;
pub mod overlap;
pub mod redist;
pub mod requests;

pub use batch::{fusion_enabled, set_fusion_enabled, FusedFields, ReduceBatch, ReducePlan};
pub use comm::{
    spmd, spmd_with_model, Comm, CommStats, MsgHist, OpStats, SegStats, ALPHA_SMALL_BYTES,
    HIST_BUCKETS,
};
pub use cost::CostModel;
pub use hier::{CommTuning, Hierarchy};
pub use layout::{block_cyclic_owner, block_ranges, segment_ranges, BlockCyclic2D, Layout};
pub use overlap::{overlap_fraction, ComputeInterval, OverlapStats};
pub use redist::{col_to_row_blocks, row_to_col_blocks};
pub use requests::{
    wait_all, Algorithm, CommInterval, Request, RetryPolicy, DEFAULT_SEGMENT_WORDS,
};
