//! Deferred-reduction scheduler: fused and persistent collective plans.
//!
//! Iterative solvers issue many *tiny* allreduces per iteration (Gram
//! matrices, residual norms, convergence scalars) — each paying the full
//! collective latency α while moving a few hundred bytes. This module lets
//! callers **register** those pending reductions and **flush** them as one
//! fused allreduce over a packed segment buffer:
//!
//! * [`ReduceBatch`] — ad-hoc: push fields, flush once, read them back;
//! * [`ReducePlan`] — persistent: pre-registered field shapes + one reusable
//!   buffer for reductions that repeat every iteration (no per-iteration
//!   allocation, no re-packing bookkeeping).
//!
//! ## Bitwise identity
//!
//! The fused flush reduces the packed buffer with the same ascending
//! rank-order ring fold the unfused path uses per field. Summation is
//! element-wise, so packing fields side by side changes *which* elements ride
//! in one collective but never the fold order *within* an element — fault-free
//! f64 results are **bitwise identical** to issuing one collective per field
//! (property-tested in `tests/fused.rs`).
//!
//! ## Fusion switch
//!
//! `PARCOMM_NO_FUSE=1` (or [`set_fusion_enabled`]`(false)`) forces the
//! unfused reference path: one resilient collective per field, same results,
//! more α. CI runs the whole workspace test suite both ways.

use crate::comm::Comm;
use crate::requests::RetryPolicy;
use faultkit::CommError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static FUSION: OnceLock<AtomicBool> = OnceLock::new();

fn fusion_flag() -> &'static AtomicBool {
    FUSION.get_or_init(|| {
        let forced_off = std::env::var("PARCOMM_NO_FUSE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        AtomicBool::new(!forced_off)
    })
}

/// Whether batched reductions actually fuse (default: yes, unless the
/// process started with `PARCOMM_NO_FUSE=1`).
pub fn fusion_enabled() -> bool {
    fusion_flag().load(Ordering::Relaxed)
}

/// Toggle fusion process-wide (used by the comm report to measure fused vs
/// unfused with identical code paths; tests serialize around it).
pub fn set_fusion_enabled(on: bool) {
    fusion_flag().store(on, Ordering::Relaxed);
}

/// One resilient allreduce: payload retained for drop re-issue only while a
/// fault plan is armed (drops cannot fire otherwise, so the fault-free path
/// pays no copy).
fn resilient_allreduce(comm: &Comm, data: Vec<f64>) -> Result<Vec<f64>, CommError> {
    let keep = if faultkit::is_armed() { data.clone() } else { Vec::new() };
    let rq = comm.iallreduce_sum(data);
    comm.settle(rq, &RetryPolicy::default(), |c| c.iallreduce_sum(keep.clone()))
}

/// Compute fencepost offsets from field lengths.
fn offsets_of(lens: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(lens.len() + 1);
    offsets.push(0usize);
    for &l in lens {
        offsets.push(offsets.last().unwrap() + l);
    }
    offsets
}

/// A deferred batch of sum-allreduces over one communicator: push any number
/// of pending fields (uneven lengths, empty fields allowed), then [`flush`]
/// them as a single fused collective.
///
/// [`flush`]: ReduceBatch::flush
pub struct ReduceBatch<'a> {
    comm: &'a Comm,
    buf: Vec<f64>,
    lens: Vec<usize>,
}

impl<'a> ReduceBatch<'a> {
    pub fn new(comm: &'a Comm) -> Self {
        ReduceBatch { comm, buf: Vec::new(), lens: Vec::new() }
    }

    /// Register a pending reduction; returns its field index for
    /// [`FusedFields::field`] after the flush.
    pub fn push(&mut self, field: &[f64]) -> usize {
        self.buf.extend_from_slice(field);
        self.lens.push(field.len());
        self.lens.len() - 1
    }

    /// Number of registered fields.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Execute the batch: one fused allreduce when fusion is on (and there is
    /// something to fuse), else one resilient collective per field in
    /// registration order. Both paths produce bitwise-identical sums.
    pub fn flush(self) -> Result<FusedFields, CommError> {
        let ReduceBatch { comm, buf, lens } = self;
        let offsets = offsets_of(&lens);
        if comm.size() == 1 {
            return Ok(FusedFields { buf, offsets });
        }
        let buf = if fusion_enabled() && lens.len() > 1 {
            comm.note_fused(lens.len() as u64);
            resilient_allreduce(comm, buf)?
        } else {
            let mut out = Vec::with_capacity(buf.len());
            for w in offsets.windows(2) {
                out.extend_from_slice(&resilient_allreduce(comm, buf[w[0]..w[1]].to_vec())?);
            }
            out
        };
        Ok(FusedFields { buf, offsets })
    }
}

/// The reduced fields of a flushed [`ReduceBatch`], read back by index.
pub struct FusedFields {
    buf: Vec<f64>,
    offsets: Vec<usize>,
}

impl FusedFields {
    /// The reduced field registered as index `i` by `push`.
    pub fn field(&self, i: usize) -> &[f64] {
        &self.buf[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A persistent collective plan: field shapes registered once, one packed
/// buffer reused across executions. The shape of choice for the fixed
/// per-iteration reductions of LOBPCG and K-Means — write the local partial
/// sums into [`field_mut`], [`execute`], read the global sums back from
/// [`field`]. No allocation after construction on the fused path.
///
/// [`field_mut`]: ReducePlan::field_mut
/// [`execute`]: ReducePlan::execute
/// [`field`]: ReducePlan::field
pub struct ReducePlan {
    offsets: Vec<usize>,
    buf: Vec<f64>,
}

impl ReducePlan {
    /// Pre-register the per-execution field lengths.
    pub fn new(lens: &[usize]) -> Self {
        let offsets = offsets_of(lens);
        let total = *offsets.last().unwrap();
        ReducePlan { offsets, buf: vec![0.0; total] }
    }

    pub fn n_fields(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Mutable view of field `i` (write local partials here before
    /// [`ReducePlan::execute`]).
    pub fn field_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.buf[self.offsets[i]..self.offsets[i + 1]]
    }

    /// View of field `i` (global sums after [`ReducePlan::execute`]).
    pub fn field(&self, i: usize) -> &[f64] {
        &self.buf[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Reset every field to zero for the next accumulation round.
    pub fn clear(&mut self) {
        self.buf.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reduce all fields in place: fused (one collective) when fusion is on,
    /// else one resilient collective per field. Bitwise-identical results
    /// either way.
    pub fn execute(&mut self, comm: &Comm) -> Result<(), CommError> {
        if comm.size() == 1 {
            return Ok(());
        }
        if fusion_enabled() && self.n_fields() > 1 {
            comm.note_fused(self.n_fields() as u64);
            let sent = std::mem::take(&mut self.buf);
            let keep = if faultkit::is_armed() { sent.clone() } else { Vec::new() };
            let rq = comm.iallreduce_sum(sent);
            self.buf =
                comm.settle(rq, &RetryPolicy::default(), |c| c.iallreduce_sum(keep.clone()))?;
        } else {
            for i in 0..self.n_fields() {
                let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
                let out = resilient_allreduce(comm, self.buf[lo..hi].to_vec())?;
                self.buf[lo..hi].copy_from_slice(&out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::spmd;

    #[test]
    fn batch_reduces_every_field() {
        let p = 4;
        let res = spmd(p, |c| {
            let mut b = ReduceBatch::new(c);
            let f0 = b.push(&[c.rank() as f64, 1.0]);
            let f1 = b.push(&[]); // empty field must survive
            let f2 = b.push(&[10.0]);
            let out = b.flush().expect("flush");
            (out.field(f0).to_vec(), out.field(f1).to_vec(), out.field(f2).to_vec())
        });
        for (f0, f1, f2) in res {
            assert_eq!(f0, vec![6.0, 4.0]); // 0+1+2+3, 4·1
            assert!(f1.is_empty());
            assert_eq!(f2, vec![40.0]);
        }
    }

    #[test]
    fn plan_is_reusable_across_iterations() {
        let res = spmd(3, |c| {
            let mut plan = ReducePlan::new(&[2, 1]);
            let mut acc = Vec::new();
            for round in 0..3 {
                plan.clear();
                plan.field_mut(0).copy_from_slice(&[c.rank() as f64, round as f64]);
                plan.field_mut(1)[0] = 1.0;
                plan.execute(c).expect("execute");
                acc.push((plan.field(0).to_vec(), plan.field(1)[0]));
            }
            acc
        });
        for rounds in res {
            for (round, (f0, count)) in rounds.iter().enumerate() {
                assert_eq!(f0, &vec![3.0, 3.0 * round as f64]);
                assert_eq!(*count, 3.0);
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let res = spmd(1, |c| {
            let mut b = ReduceBatch::new(c);
            b.push(&[5.0, 6.0]);
            let out = b.flush().expect("flush");
            out.field(0).to_vec()
        });
        assert_eq!(res[0], vec![5.0, 6.0]);
    }

    #[test]
    fn fused_flush_accounts_one_collective() {
        if !fusion_enabled() {
            return; // PARCOMM_NO_FUSE run: counters legitimately stay zero
        }
        let res = spmd(2, |c| {
            let mut b = ReduceBatch::new(c);
            b.push(&[1.0]);
            b.push(&[2.0, 3.0]);
            b.push(&[4.0]);
            let _ = b.flush().expect("flush");
            c.stats()
        });
        for s in res {
            assert_eq!(s.iallreduce.calls, 1, "three fields fused into one collective");
            assert_eq!(s.fused_flushes, 1);
            assert_eq!(s.fused_fields, 3);
        }
    }
}
