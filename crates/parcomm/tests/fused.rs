//! Property tests for the communication-avoiding layer: fused batched
//! reductions must be **bitwise identical** to sequential per-field
//! allreduces at any rank count, and the hierarchical two-level fold must
//! stay within rounding of the flat ring — and stay *off* unless its
//! reassociating policy is explicitly enabled.

use parcomm::{spmd, Comm, CommTuning, Hierarchy, ReduceBatch, ReducePlan};
use proptest::prelude::*;
use std::sync::Mutex;

/// Deterministic pseudo-random payload (same generator as tests/requests.rs).
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(0x2545f491);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

fn rank_field(c: &Comm, seed: u64, field: usize, len: usize) -> Vec<f64> {
    fill(seed.wrapping_add(c.rank() as u64 * 1_000_003).wrapping_add(field as u64 * 7919), len)
}

/// Serializes the tests that toggle the process-global fusion switch.
static FUSION_GUARD: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fused batch ≡ one blocking allreduce per field, bitwise, at 1–8 ranks
    /// with uneven field sizes including empty fields.
    #[test]
    fn fused_batch_matches_sequential_bitwise(
        ranks in 1usize..=8,
        lens in prop::collection::vec(0usize..200, 1..6),
        seed in 0u64..u64::MAX,
    ) {
        let lens2 = lens.clone();
        let res = spmd(ranks, move |c| {
            // Fused path.
            let mut batch = ReduceBatch::new(c);
            for (f, &len) in lens2.iter().enumerate() {
                batch.push(&rank_field(c, seed, f, len));
            }
            let fused = batch.flush().expect("flush");
            // Reference path: one blocking collective per field.
            let mut seq = Vec::new();
            for (f, &len) in lens2.iter().enumerate() {
                let mut buf = rank_field(c, seed, f, len);
                c.allreduce_sum(&mut buf);
                seq.push(buf);
            }
            let fused: Vec<Vec<f64>> = (0..fused.len()).map(|f| fused.field(f).to_vec()).collect();
            (fused, seq)
        });
        for (fused, seq) in res {
            prop_assert_eq!(fused.len(), seq.len());
            for (a, b) in fused.iter().zip(&seq) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "{:e} vs {:e}", x, y);
                }
            }
        }
    }

    /// A persistent plan executed repeatedly matches per-field blocking
    /// allreduces bitwise on every execution.
    #[test]
    fn plan_matches_sequential_bitwise_across_rounds(
        ranks in 1usize..=6,
        lens in prop::collection::vec(1usize..120, 1..5),
        seed in 0u64..u64::MAX,
    ) {
        let lens2 = lens.clone();
        let res = spmd(ranks, move |c| {
            let mut plan = ReducePlan::new(&lens2);
            let mut out = Vec::new();
            for round in 0..3u64 {
                plan.clear();
                for (f, &len) in lens2.iter().enumerate() {
                    plan.field_mut(f)
                        .copy_from_slice(&rank_field(c, seed ^ round, f, len));
                }
                plan.execute(c).expect("execute");
                let mut reference = Vec::new();
                for (f, &len) in lens2.iter().enumerate() {
                    let mut buf = rank_field(c, seed ^ round, f, len);
                    c.allreduce_sum(&mut buf);
                    reference.push(buf);
                }
                let got: Vec<Vec<f64>> =
                    (0..plan.n_fields()).map(|f| plan.field(f).to_vec()).collect();
                out.push((got, reference));
            }
            out
        });
        for rounds in res {
            for (got, reference) in rounds {
                for (a, b) in got.iter().zip(&reference) {
                    for (x, y) in a.iter().zip(b) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }

    /// Hierarchical two-level allreduce agrees with the flat ring within a
    /// few ulps (it reassociates group partials, nothing more).
    #[test]
    fn hierarchical_matches_flat_within_ulps(
        ranks in 2usize..=8,
        len in 1usize..300,
        seed in 0u64..u64::MAX,
    ) {
        let res = spmd(ranks, move |c| {
            let h = Hierarchy::new(c);
            let mut two_level = rank_field(c, seed, 0, len);
            h.allreduce_sum(&mut two_level);
            let mut flat = rank_field(c, seed, 0, len);
            c.allreduce_sum(&mut flat);
            (two_level, flat)
        });
        for (a, b) in res {
            for (x, y) in a.iter().zip(&b) {
                // ≤ p−1 reassociations, each bounded by an ulp of the
                // *accumulated magnitude* Σ|x_i| ≤ p (inputs are in ±1) —
                // the result itself may be tiny through cancellation.
                let tol = 2.0 * f64::EPSILON * ranks as f64;
                prop_assert!((x - y).abs() <= tol, "{:e} vs {:e}", x, y);
            }
        }
    }

    /// The tuned entry point is **gated**: with `allow_reassociation: false`
    /// (the default) it must be bitwise identical to the flat ring no matter
    /// what the α–β constants predict.
    #[test]
    fn tuned_policy_without_optin_is_bitwise_flat(
        ranks in 2usize..=8,
        len in 1usize..200,
        seed in 0u64..u64::MAX,
    ) {
        let res = spmd(ranks, move |c| {
            let h = Hierarchy::new(c);
            // α–β constants that scream "latency-bound" — reassociation
            // still not permitted, so the flat path must be taken.
            let tuning = CommTuning { alpha: 1.0, beta: 1e-30, allow_reassociation: false };
            let mut tuned = rank_field(c, seed, 0, len);
            h.allreduce_sum_tuned(&mut tuned, &tuning);
            let mut flat = rank_field(c, seed, 0, len);
            c.allreduce_sum(&mut flat);
            (tuned, flat)
        });
        for (a, b) in res {
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

/// The forced-unfused branch produces the same sums and never bumps the
/// fused counters (serialized: the fusion switch is process-global).
#[test]
fn unfused_branch_matches_and_counts_nothing() {
    let _g = FUSION_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let was = parcomm::fusion_enabled();
    parcomm::set_fusion_enabled(false);
    let res = spmd(4, |c| {
        let mut batch = ReduceBatch::new(c);
        batch.push(&[c.rank() as f64, 2.0]);
        batch.push(&[1.0]);
        let out = batch.flush().expect("flush");
        (out.field(0).to_vec(), out.field(1).to_vec(), c.stats())
    });
    parcomm::set_fusion_enabled(was);
    for (f0, f1, stats) in res {
        assert_eq!(f0, vec![6.0, 8.0]);
        assert_eq!(f1, vec![4.0]);
        assert_eq!(stats.fused_flushes, 0, "unfused branch must not count flushes");
        assert_eq!(stats.fused_fields, 0);
        assert_eq!(stats.iallreduce.calls, 2, "one collective per field when unfused");
    }
}

/// `Comm::split` carves disjoint groups with correct sub-ranks, independent
/// collectives, and independent stats.
#[test]
fn split_groups_reduce_independently() {
    let p = 6;
    let res = spmd(p, |c| {
        let color = c.rank() % 2;
        let sub = c.split(color, c.rank());
        let mut buf = vec![c.rank() as f64];
        sub.allreduce_sum(&mut buf);
        (color, sub.rank(), sub.size(), buf[0], sub.stats().collective_calls, c.stats())
    });
    for (rank, (color, sub_rank, sub_size, sum, sub_calls, parent_stats)) in
        res.into_iter().enumerate()
    {
        assert_eq!(color, rank % 2);
        assert_eq!(sub_rank, rank / 2, "keys preserve parent order");
        assert_eq!(sub_size, 3);
        // evens: 0+2+4, odds: 1+3+5
        assert_eq!(sum, if color == 0 { 6.0 } else { 9.0 });
        assert_eq!(sub_calls, 1, "sub-comm accounts its own collectives");
        // The parent saw only the split's rendezvous allgatherv.
        assert_eq!(parent_stats.allgatherv.calls, 1);
        assert_eq!(parent_stats.allreduce.calls, 0);
    }
}

#[test]
fn split_keys_reorder_group_ranks() {
    let res = spmd(4, |c| {
        // Reverse ordering: higher parent rank → lower key → lower sub-rank.
        let sub = c.split(0, 100 - c.rank());
        (sub.rank(), sub.size())
    });
    for (rank, (sub_rank, sub_size)) in res.into_iter().enumerate() {
        assert_eq!(sub_size, 4);
        assert_eq!(sub_rank, 3 - rank);
    }
}

#[test]
fn nested_splits_compose() {
    let res = spmd(8, |c| {
        let half = c.split(c.rank() / 4, c.rank());
        let quarter = half.split(half.rank() / 2, half.rank());
        let mut buf = vec![1.0];
        quarter.allreduce_sum(&mut buf);
        (quarter.size(), buf[0])
    });
    for (size, sum) in res {
        assert_eq!(size, 2);
        assert_eq!(sum, 2.0);
    }
}
