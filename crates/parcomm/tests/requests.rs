//! Property tests for the nonblocking request API: completion-handle
//! semantics (test/wait), engine-driven progress under out-of-order waits,
//! uneven/empty all-to-all slabs, and the bitwise contract between the
//! chunked ring algorithms and the legacy blocking collectives.

use parcomm::{spmd, wait_all, Algorithm, Comm};
use proptest::prelude::*;

/// Deterministic pseudo-random doubles so every rank regenerates the same
/// global picture without sharing state.
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(0x2545f491);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            // map to roughly [-1, 1) with full mantissa entropy
            (s >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect()
}

fn rank_data(c: &Comm, seed: u64, len: usize) -> Vec<f64> {
    fill(seed.wrapping_add(c.rank() as u64 * 1_000_003), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `wait` after a successful `test` must hand back the same payload the
    /// engine produced, and repeated `test` calls stay true (idempotence).
    #[test]
    fn wait_after_test_is_idempotent(ranks in 1usize..6, len in 1usize..600, seed in 0u64..u64::MAX) {
        let results = spmd(ranks, |c| {
            let mine = rank_data(c, seed, len);
            let mut blocking = mine.clone();
            c.allreduce_sum(&mut blocking);

            let mut rq = c.iallreduce_sum(mine);
            // Spin until the engine finishes; the barrier above every spmd
            // exit bounds this, but completion must arrive without waiting.
            while !rq.test() {
                std::hint::spin_loop();
            }
            // test() after completion stays true and must not lose the payload
            prop_assert!(rq.test());
            prop_assert!(rq.test());
            let nb = rq.wait();
            prop_assert_eq!(nb.len(), blocking.len());
            for (a, b) in nb.iter().zip(blocking.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            Ok(())
        });
        for r in results {
            r?;
        }
    }

    /// Several requests issued back-to-back, then waited in *reverse* issue
    /// order: the engine drives all of them to completion regardless of the
    /// order the caller collects payloads, so this must not deadlock and
    /// every payload must match its blocking counterpart.
    #[test]
    fn out_of_order_waits_complete(ranks in 1usize..6, len in 1usize..300, seed in 0u64..u64::MAX) {
        let n_reqs = 4usize;
        let results = spmd(ranks, |c| {
            let inputs: Vec<Vec<f64>> =
                (0..n_reqs).map(|i| rank_data(c, seed.wrapping_add(i as u64), len + i)).collect();
            let expected: Vec<Vec<f64>> = inputs
                .iter()
                .map(|v| {
                    let mut b = v.clone();
                    c.allreduce_sum(&mut b);
                    b
                })
                .collect();

            let mut reqs: Vec<_> =
                inputs.into_iter().map(|v| c.iallreduce_sum(v)).collect();
            // Collect payloads last-issued-first.
            let mut got: Vec<(usize, Vec<f64>)> = Vec::new();
            while let Some(rq) = reqs.pop() {
                got.push((reqs.len(), rq.wait()));
            }
            for (i, nb) in got {
                let want = &expected[i];
                prop_assert_eq!(nb.len(), want.len());
                for (a, b) in nb.iter().zip(want.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            Ok(())
        });
        for r in results {
            r?;
        }
    }

    /// `ialltoallv` with uneven per-destination slab lengths, including empty
    /// slabs: rank `d` must receive exactly the slab rank `s` addressed to it,
    /// in source-rank order.
    #[test]
    fn ialltoallv_uneven_and_empty_slabs(ranks in 1usize..6, seed in 0u64..u64::MAX) {
        // Global slab-length table, same on every rank: len(s, d) in 0..7
        // with a deterministic scatter of zeros (empty slabs).
        let slab_len = |s: usize, d: usize| -> usize {
            let h = seed
                .wrapping_add(s as u64 * 293)
                .wrapping_add(d as u64 * 7919)
                .wrapping_mul(0x9e3779b97f4a7c15);
            ((h >> 32) % 7) as usize // 0..7, ~1 in 7 slabs empty
        };
        let slab = |s: usize, d: usize| fill(seed ^ ((s * 64 + d) as u64), slab_len(s, d));

        let results = spmd(ranks, |c| {
            let me = c.rank();
            let send: Vec<Vec<f64>> = (0..ranks).map(|d| slab(me, d)).collect();
            let recv = c.ialltoallv(send).wait();
            prop_assert_eq!(recv.len(), ranks);
            for (s, got) in recv.iter().enumerate() {
                let want = slab(s, me);
                prop_assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(want.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            Ok(())
        });
        for r in results {
            r?;
        }
    }

    /// The chunked ring reduce folds contributions in ascending rank order —
    /// exactly the legacy blocking order — so `iallreduce_sum`/`ireduce_sum`
    /// must agree *bitwise* with the blocking collectives for 1..=8 ranks.
    #[test]
    fn ring_matches_blocking_bitwise(ranks in 1usize..=8, len in 1usize..5000, seed in 0u64..u64::MAX) {
        let results = spmd(ranks, |c| {
            let mine = rank_data(c, seed, len);

            let mut blocking_all = mine.clone();
            c.allreduce_sum(&mut blocking_all);
            let nb_all = c.iallreduce_sum_with(mine.clone(), Algorithm::Ring).wait();

            let root = ranks - 1;
            let mut blocking_red = mine.clone();
            c.reduce_sum(&mut blocking_red, root);
            let nb_red = c.ireduce_sum(mine, root).wait();

            for (a, b) in nb_all.iter().zip(blocking_all.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            if c.rank() == root {
                prop_assert_eq!(nb_red.len(), blocking_red.len());
                for (a, b) in nb_red.iter().zip(blocking_red.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            } else {
                prop_assert!(nb_red.is_empty());
            }
            Ok(())
        });
        for r in results {
            r?;
        }
    }
}

/// Recursive doubling reassociates the sum, so it only agrees with ring to
/// rounding; both must still be deterministic run-to-run.
#[test]
fn recursive_doubling_deterministic_and_close_to_ring() {
    let ranks = 4;
    let run = || {
        spmd(ranks, |c| {
            let mine = rank_data(c, 42, 2048);
            c.iallreduce_sum_with(mine, Algorithm::RecursiveDoubling).wait()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "recursive doubling must be deterministic");

    let ring = spmd(ranks, |c| {
        let mine = rank_data(c, 42, 2048);
        c.iallreduce_sum_with(mine, Algorithm::Ring).wait()
    });
    let max_diff = a[0]
        .iter()
        .zip(ring[0].iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-12, "reassociation error too large: {max_diff}");
}

/// Mixed op kinds interleaved on the same engine: bcast + allreduce + gather
/// issued together, waited together via `wait_all`.
#[test]
fn interleaved_op_kinds_via_wait_all() {
    let ranks = 4;
    let results = spmd(ranks, |c| {
        let me = c.rank();
        let bc_in = if me == 2 { fill(7, 33) } else { vec![0.0; 33] };
        let rq_bc = c.ibcast(bc_in, 2);
        let rq_ar = c.iallreduce_sum(rank_data(c, 9, 100));
        let rq_ag = c.iallgatherv(&[me as f64; 3]);
        let out = wait_all(vec![rq_bc, rq_ar, rq_ag]);
        (out[0].clone(), out[1].clone(), out[2].clone())
    });
    let want_bc = fill(7, 33);
    let want_ar = {
        let mut acc = vec![0.0; 100];
        for r in 0..ranks {
            let v = fill(9u64.wrapping_add(r as u64 * 1_000_003), 100);
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
        }
        acc
    };
    for (bc, ar, ag) in &results {
        assert_eq!(bc, &want_bc);
        assert_eq!(ar.len(), want_ar.len());
        assert_eq!(
            ag,
            &(0..ranks).flat_map(|r| [r as f64; 3]).collect::<Vec<_>>()
        );
    }
}

// ------------------------------------------------- fault-injection recovery

mod faults {
    use super::*;
    use faultkit::{FaultKind, FaultPlan};
    use parcomm::RetryPolicy;
    use std::time::{Duration, Instant};

    /// An injected engine stall longer than the first deadline: the
    /// wait-with-deadline must fire at least once, the backoff retries must
    /// then pick the payload up, and the sum must match the blocking path
    /// bitwise.
    #[test]
    fn stall_fires_deadline_then_recovers() {
        let stall_ms = 150u64;
        let policy = RetryPolicy {
            deadline: Duration::from_millis(40),
            max_attempts: 8,
            backoff: Duration::from_millis(40),
        };
        let campaign = faultkit::arm(
            FaultPlan::new(11).with("comm.iallreduce", 0, FaultKind::CommStall {
                micros: stall_ms * 1000,
            }),
        );
        let t0 = Instant::now();
        let results = spmd(2, |c| {
            let mine = rank_data(c, 77, 300);
            let mut expect = mine.clone();
            c.allreduce_sum(&mut expect);
            let rq = c.iallreduce_sum(mine.clone());
            let got = c
                .settle(rq, &policy, |c| c.iallreduce_sum(mine.clone()))
                .expect("stall within budget must recover");
            (expect, got)
        });
        // The engine slept through at least one 40 ms deadline on each rank.
        assert!(t0.elapsed() >= Duration::from_millis(stall_ms));
        for (expect, got) in results {
            assert_eq!(expect, got, "recovered sum must match blocking path bitwise");
        }
        let events = campaign.events();
        assert_eq!(events.len(), 2, "stall fires once per rank: {events:?}");
        assert!(events.iter().all(|e| e.site == "comm.iallreduce"));
    }

    /// A stall larger than the entire deadline/backoff budget must surface
    /// `CommError::Stalled` (with the attempt count) instead of hanging.
    #[test]
    fn stall_beyond_budget_surfaces_stalled() {
        let policy = RetryPolicy {
            deadline: Duration::from_millis(5),
            max_attempts: 3,
            backoff: Duration::from_millis(5),
        };
        let _campaign = faultkit::arm(
            FaultPlan::new(12).with("comm.iallreduce", 0, FaultKind::CommStall {
                micros: 400_000,
            }),
        );
        let results = spmd(2, |c| {
            let rq = c.iallreduce_sum(vec![c.rank() as f64; 16]);
            rq.wait_deadline(&policy)
        });
        for r in results {
            match r {
                Err(faultkit::CommError::Stalled { op, attempts, .. }) => {
                    assert_eq!(op, "iallreduce");
                    assert_eq!(attempts, 3);
                }
                other => panic!("expected Stalled, got {other:?}"),
            }
        }
    }

    /// A dropped request is re-issued symmetrically on every rank and the
    /// retry completes with the exact blocking-path sum.
    #[test]
    fn dropped_request_reissues_and_recovers() {
        let campaign = faultkit::arm(
            FaultPlan::new(13).with("comm.iallreduce", 0, FaultKind::CommDrop),
        );
        let results = spmd(4, |c| {
            let mine = rank_data(c, 5, 120);
            let mut expect = mine.clone();
            c.allreduce_sum(&mut expect);
            let got = c
                .resilient(&RetryPolicy::default(), |c| c.iallreduce_sum(mine.clone()))
                .expect("drop must recover by re-issue");
            (expect, got)
        });
        for (expect, got) in results {
            assert_eq!(expect, got);
        }
        let events = campaign.events();
        assert_eq!(events.len(), 4, "drop decision must fire on all 4 ranks: {events:?}");
        assert!(events.iter().all(|e| e.kind == FaultKind::CommDrop));
    }

    /// Blocking collectives hook under a separate site, so request-API fault
    /// plans leave them untouched.
    #[test]
    fn blocking_site_is_isolated_from_request_site() {
        let campaign = faultkit::arm(
            FaultPlan::new(14).with("comm.iallreduce", 0, FaultKind::CommDrop),
        );
        let results = spmd(2, |c| {
            let mut buf = vec![1.0; 8];
            c.allreduce_sum(&mut buf); // must not see the drop
            buf[0]
        });
        assert_eq!(results, vec![2.0, 2.0]);
        assert_eq!(campaign.fired(), 0);
    }
}
