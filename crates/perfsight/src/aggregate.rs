//! Cross-rank trace aggregation: per-stage load-imbalance metrics and
//! critical-path extraction over span + collective dependency edges.
//!
//! The paper's parallel-efficiency story is told in two numbers per stage:
//! how unevenly the ranks share the work (the imbalance factor
//! λ = t_max / t_mean) and which rank/stage actually bounds the wall clock.
//! This module computes both from a merged [`Trace`].
//!
//! ## Critical path
//!
//! In an SPMD run every rank issues the same collectives in the same order,
//! so the `mpi:*` spans form synchronization edges across the per-rank
//! timelines: collective *j* cannot complete anywhere before every rank has
//! reached it. Walking those edges with a time cursor decomposes the wall
//! clock exactly:
//!
//! * the gap from the cursor to the **last arrival** at collective *j* is
//!   compute time on the critical path, attributed to the latest-arriving
//!   rank and its dominant stage in that window;
//! * the remainder until the **last completion** of *j* is communication
//!   time attributed to the collective;
//! * after the final collective, the tail until the last event is compute
//!   on the latest-finishing rank.
//!
//! The segments telescope: their sum equals [`Trace::wall_seconds`] by
//! construction, which is what makes the "critical path within 5% of wall
//! clock" CI gate meaningful rather than lucky.

use obskit::span::EventKind;
use obskit::trace::Trace;
use obskit::Stage;

/// Load statistics for one pipeline stage across ranks (exclusive time).
#[derive(Clone, Debug)]
pub struct StageLoad {
    pub stage: Stage,
    /// Slowest rank's exclusive seconds in this stage.
    pub max_s: f64,
    pub mean_s: f64,
    pub min_s: f64,
    /// Imbalance factor λ = max / mean (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Rank holding `max_s`.
    pub bottleneck_rank: usize,
}

/// Compute per-stage load statistics over every rank present in the trace.
/// Stages with no recorded time anywhere are omitted.
pub fn stage_loads(trace: &Trace) -> Vec<StageLoad> {
    let ranks = rank_ids(trace);
    if ranks.is_empty() {
        return Vec::new();
    }
    let per_rank: Vec<[f64; Stage::ALL.len()]> =
        ranks.iter().map(|&r| trace.stage_seconds_for_rank(r)).collect();
    let mut out = Vec::new();
    for stage in Stage::ALL {
        let i = stage.index();
        let col: Vec<f64> = per_rank.iter().map(|s| s[i]).collect();
        let max_s = col.iter().cloned().fold(0.0, f64::max);
        if max_s <= 0.0 {
            continue;
        }
        let min_s = col.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean_s = col.iter().sum::<f64>() / col.len() as f64;
        let (arg, _) = col
            .iter()
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |acc, (j, &v)| if v > acc.1 { (j, v) } else { acc });
        out.push(StageLoad {
            stage,
            max_s,
            mean_s,
            min_s,
            imbalance: if mean_s > 0.0 { max_s / mean_s } else { 1.0 },
            bottleneck_rank: ranks[arg],
        });
    }
    out
}

/// The distinct rank ids in a trace, ascending.
pub fn rank_ids(trace: &Trace) -> Vec<usize> {
    let mut ids: Vec<usize> = Vec::new();
    for lane in &trace.ranks {
        if !ids.contains(&lane.rank) {
            ids.push(lane.rank);
        }
    }
    ids.sort_unstable();
    ids
}

/// What one critical-path segment was spent on.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentKind {
    /// Compute on `rank`, dominated by `stage`, while other ranks waited.
    Compute { rank: usize, stage: Stage },
    /// A collective completing after every rank arrived.
    Collective { name: String },
}

/// One segment of the critical path, in time order.
#[derive(Clone, Debug)]
pub struct CriticalSegment {
    pub kind: SegmentKind,
    pub seconds: f64,
}

/// The extracted critical path of a multi-rank solve.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    pub segments: Vec<CriticalSegment>,
    /// Σ segment seconds — equals the trace wall span by construction.
    pub total_seconds: f64,
    /// Portion attributed to collectives.
    pub comm_seconds: f64,
    /// Portion attributed to per-rank compute.
    pub compute_seconds: f64,
    /// Seconds of critical-path compute charged to each rank id.
    pub rank_seconds: Vec<(usize, f64)>,
    /// Rank with the most critical-path compute (the run's bottleneck).
    pub bottleneck_rank: Option<usize>,
    /// Collectives matched across ranks (the dependency edges used).
    pub matched_collectives: usize,
}

impl CriticalPath {
    /// Fraction of the critical path spent in communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.comm_seconds / self.total_seconds
        } else {
            0.0
        }
    }
}

/// A closed `mpi:*` span interval on one rank.
#[derive(Clone, Debug)]
struct CollInterval {
    name: &'static str,
    begin_ns: u64,
    end_ns: u64,
}

/// Extract each rank's `mpi:*` span intervals in issue order. Aborted spans
/// close during unwinding and still form intervals; spans left open by a
/// dying thread are skipped (the stack never pops), which keeps the walk
/// tolerant of faulted streams.
fn collective_intervals(trace: &Trace, rank: usize) -> Vec<CollInterval> {
    let mut out = Vec::new();
    for lane in trace.ranks.iter().filter(|r| r.rank == rank) {
        let mut stack: Vec<(&'static str, u64)> = Vec::new();
        for ev in &lane.events {
            match ev.kind {
                EventKind::Begin => stack.push((ev.name, ev.ts_ns)),
                EventKind::End { .. } => {
                    if let Some((name, t0)) = stack.pop() {
                        if name.starts_with("mpi:") {
                            out.push(CollInterval { name, begin_ns: t0, end_ns: ev.ts_ns });
                        }
                    }
                }
                EventKind::Instant => {}
            }
        }
    }
    out.sort_by_key(|c| c.begin_ns);
    out
}

/// Exclusive per-stage seconds for one rank, restricted to the window
/// `[lo_ns, hi_ns]` (span portions outside the window are clipped).
fn stage_seconds_in_window(trace: &Trace, rank: usize, lo_ns: u64, hi_ns: u64) -> [f64; Stage::ALL.len()] {
    let mut out = [0.0; Stage::ALL.len()];
    if hi_ns <= lo_ns {
        return out;
    }
    for lane in trace.ranks.iter().filter(|r| r.rank == rank) {
        // (stage, begin_ts, child_ns_in_window)
        let mut stack: Vec<(Stage, u64, u64)> = Vec::new();
        for ev in &lane.events {
            match ev.kind {
                EventKind::Begin => stack.push((ev.stage, ev.ts_ns, 0)),
                EventKind::End { .. } => {
                    if let Some((stage, t0, child_ns)) = stack.pop() {
                        let a = t0.clamp(lo_ns, hi_ns);
                        let b = ev.ts_ns.clamp(lo_ns, hi_ns);
                        let dur = b.saturating_sub(a);
                        let excl = dur.saturating_sub(child_ns);
                        out[stage.index()] += excl as f64 * 1e-9;
                        if let Some(parent) = stack.last_mut() {
                            parent.2 += dur;
                        }
                    }
                }
                EventKind::Instant => {}
            }
        }
    }
    out
}

fn dominant_stage(seconds: &[f64; Stage::ALL.len()]) -> Stage {
    let mut best = Stage::Other;
    let mut best_v = 0.0;
    for stage in Stage::ALL {
        let v = seconds[stage.index()];
        if v > best_v {
            best_v = v;
            best = stage;
        }
    }
    best
}

/// Extract the critical path of a multi-rank trace. Single-rank (or
/// collective-free) traces degrade to one compute segment spanning the
/// whole wall clock.
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let ranks = rank_ids(trace);
    let mut path = CriticalPath::default();
    if ranks.is_empty() {
        return path;
    }
    let wall_lo = trace
        .ranks
        .iter()
        .filter_map(|r| r.events.first())
        .map(|e| e.ts_ns)
        .min()
        .unwrap_or(0);
    let wall_hi = trace
        .ranks
        .iter()
        .filter_map(|r| r.events.last())
        .map(|e| e.ts_ns)
        .max()
        .unwrap_or(wall_lo);

    let per_rank: Vec<Vec<CollInterval>> =
        ranks.iter().map(|&r| collective_intervals(trace, r)).collect();
    // Match collectives across ranks by issue index. SPMD symmetry makes
    // index j on every rank the same logical operation; a faulted rank with
    // a shorter stream just truncates the matchable prefix.
    let matched = per_rank.iter().map(Vec::len).min().unwrap_or(0);
    path.matched_collectives = matched;

    let mut rank_acc: Vec<(usize, f64)> = ranks.iter().map(|&r| (r, 0.0)).collect();
    let mut cur = wall_lo;
    for j in 0..matched {
        let arrive = per_rank.iter().map(|iv| iv[j].begin_ns).max().unwrap_or(cur);
        let done = per_rank.iter().map(|iv| iv[j].end_ns).max().unwrap_or(cur);
        let (late_idx, _) = per_rank
            .iter()
            .enumerate()
            .fold((0, 0u64), |acc, (i, iv)| if iv[j].begin_ns >= acc.1 { (i, iv[j].begin_ns) } else { acc });
        if arrive > cur {
            let rank = ranks[late_idx];
            let win = stage_seconds_in_window(trace, rank, cur, arrive);
            let seconds = (arrive - cur) as f64 * 1e-9;
            path.segments.push(CriticalSegment {
                kind: SegmentKind::Compute { rank, stage: dominant_stage(&win) },
                seconds,
            });
            path.compute_seconds += seconds;
            rank_acc[late_idx].1 += seconds;
            cur = arrive;
        }
        if done > cur {
            let seconds = (done - cur) as f64 * 1e-9;
            path.segments.push(CriticalSegment {
                kind: SegmentKind::Collective { name: per_rank[late_idx][j].name.to_string() },
                seconds,
            });
            path.comm_seconds += seconds;
            cur = done;
        }
    }
    if wall_hi > cur {
        // Tail after the last matched collective: charge the rank whose
        // stream ends last.
        let (tail_idx, _) = trace
            .ranks
            .iter()
            .filter_map(|r| r.events.last().map(|e| (r.rank, e.ts_ns)))
            .fold((ranks[0], 0u64), |acc, (r, ts)| if ts >= acc.1 { (r, ts) } else { acc });
        let win = stage_seconds_in_window(trace, tail_idx, cur, wall_hi);
        let seconds = (wall_hi - cur) as f64 * 1e-9;
        path.segments.push(CriticalSegment {
            kind: SegmentKind::Compute { rank: tail_idx, stage: dominant_stage(&win) },
            seconds,
        });
        path.compute_seconds += seconds;
        if let Some(acc) = rank_acc.iter_mut().find(|(r, _)| *r == tail_idx) {
            acc.1 += seconds;
        }
        cur = wall_hi;
    }
    let _ = cur;
    path.total_seconds = path.compute_seconds + path.comm_seconds;
    path.bottleneck_rank = rank_acc
        .iter()
        .filter(|(_, s)| *s > 0.0)
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(r, _)| *r);
    path.rank_seconds = rank_acc;
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use obskit::span::Event;
    use obskit::trace::RankTrace;

    fn ev(kind: EventKind, name: &'static str, stage: Stage, ts_ns: u64) -> Event {
        Event { kind, name, stage, ts_ns, args: Vec::new() }
    }

    fn lane(rank: usize, tid: u64, events: Vec<Event>) -> RankTrace {
        RankTrace { rank, tid, label: format!("rank {rank}"), events }
    }

    /// Two ranks: rank 1 computes longer before a shared allreduce, so the
    /// pre-collective critical segment belongs to rank 1.
    fn two_rank_trace() -> Trace {
        let b = |n, s, t| ev(EventKind::Begin, n, s, t);
        let e = |n, s, t| ev(EventKind::End { aborted: false }, n, s, t);
        Trace {
            ranks: vec![
                lane(0, 1, vec![
                    b("gemm", Stage::Gemm, 0),
                    e("gemm", Stage::Gemm, 100),
                    b("mpi:allreduce", Stage::Mpi, 100),
                    e("mpi:allreduce", Stage::Mpi, 500),
                    b("diag", Stage::Diag, 500),
                    e("diag", Stage::Diag, 600),
                ]),
                lane(1, 2, vec![
                    b("gemm", Stage::Gemm, 0),
                    e("gemm", Stage::Gemm, 400),
                    b("mpi:allreduce", Stage::Mpi, 400),
                    e("mpi:allreduce", Stage::Mpi, 500),
                    b("diag", Stage::Diag, 500),
                    e("diag", Stage::Diag, 550),
                ]),
            ],
            counters: Default::default(),
        }
    }

    #[test]
    fn critical_path_telescopes_to_wall_clock() {
        let t = two_rank_trace();
        let cp = critical_path(&t);
        assert_eq!(cp.matched_collectives, 1);
        assert!((cp.total_seconds - t.wall_seconds()).abs() < 1e-15);
        // 0..400 compute (rank 1, gemm), 400..500 allreduce, 500..600 tail
        // compute (rank 0, diag).
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(
            cp.segments[0].kind,
            SegmentKind::Compute { rank: 1, stage: Stage::Gemm }
        );
        assert!((cp.segments[0].seconds - 400e-9).abs() < 1e-15);
        assert_eq!(
            cp.segments[1].kind,
            SegmentKind::Collective { name: "mpi:allreduce".to_string() }
        );
        assert_eq!(
            cp.segments[2].kind,
            SegmentKind::Compute { rank: 0, stage: Stage::Diag }
        );
        assert_eq!(cp.bottleneck_rank, Some(1));
        assert!((cp.comm_fraction() - 100.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn stage_loads_reports_imbalance() {
        let t = two_rank_trace();
        let loads = stage_loads(&t);
        let gemm = loads.iter().find(|l| l.stage == Stage::Gemm).unwrap();
        // 100ns vs 400ns of gemm: mean 250, λ = 1.6, bottleneck rank 1.
        assert!((gemm.imbalance - 1.6).abs() < 1e-12);
        assert_eq!(gemm.bottleneck_rank, 1);
        assert!((gemm.min_s - 100e-9).abs() < 1e-15);
        assert!((gemm.max_s - 400e-9).abs() < 1e-15);
    }

    #[test]
    fn single_rank_degrades_to_one_compute_segment() {
        let b = |n, s, t| ev(EventKind::Begin, n, s, t);
        let e = |n, s, t| ev(EventKind::End { aborted: false }, n, s, t);
        let t = Trace {
            ranks: vec![lane(0, 1, vec![
                b("fft", Stage::Fft, 10),
                e("fft", Stage::Fft, 910),
            ])],
            counters: Default::default(),
        };
        let cp = critical_path(&t);
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.matched_collectives, 0);
        assert_eq!(cp.segments[0].kind, SegmentKind::Compute { rank: 0, stage: Stage::Fft });
        assert!((cp.total_seconds - t.wall_seconds()).abs() < 1e-15);
    }

    #[test]
    fn aborted_spans_are_tolerated() {
        let b = |n, s, t| ev(EventKind::Begin, n, s, t);
        let e = |n, s, t| ev(EventKind::End { aborted: false }, n, s, t);
        let ea = |n, s, t| ev(EventKind::End { aborted: true }, n, s, t);
        // Rank 1 aborts its collective mid-flight (panic unwound); rank 0
        // completes. Index matching still pairs them.
        let t = Trace {
            ranks: vec![
                lane(0, 1, vec![
                    b("gemm", Stage::Gemm, 0),
                    e("gemm", Stage::Gemm, 50),
                    b("mpi:allreduce", Stage::Mpi, 50),
                    e("mpi:allreduce", Stage::Mpi, 200),
                ]),
                lane(1, 2, vec![
                    b("gemm", Stage::Gemm, 0),
                    ea("gemm", Stage::Gemm, 80),
                    b("mpi:allreduce", Stage::Mpi, 80),
                    ea("mpi:allreduce", Stage::Mpi, 150),
                ]),
            ],
            counters: Default::default(),
        };
        let cp = critical_path(&t);
        assert_eq!(cp.matched_collectives, 1);
        assert!((cp.total_seconds - t.wall_seconds()).abs() < 1e-15);
        assert!(cp.comm_seconds > 0.0);
    }

    #[test]
    fn empty_trace_is_empty_path() {
        let cp = critical_path(&Trace::default());
        assert_eq!(cp.total_seconds, 0.0);
        assert!(cp.segments.is_empty());
        assert!(stage_loads(&Trace::default()).is_empty());
    }
}
