//! Baseline tolerances for the perf-regression sentinel.
//!
//! `repro perf-report --check` compares measured metrics against committed
//! baselines. The tolerances live in one TOML file (`perf_baselines.toml`
//! at the repo root) so future PRs adjust thresholds in-diff instead of
//! editing code. This module parses the TOML subset that file needs —
//! `[section]` headers, `key = value` with numbers/strings/booleans, and
//! `#` comments; no registry TOML crate is available in this build
//! environment — and evaluates per-metric checks.
//!
//! A metric section looks like:
//!
//! ```toml
//! [quick.critical_path_rel_err]
//! max = 0.05            # hard ceiling
//!
//! [quick.gemm_speedup]
//! baseline = 1.8        # committed reference value
//! rel_tol = 0.25        # |measured - baseline| / baseline allowed
//! min = 1.0             # additional hard floor
//! ```

use std::collections::BTreeMap;

/// A parsed TOML-subset value.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    Number(f64),
    String(String),
    Bool(bool),
}

impl TomlValue {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parsed document: section name → key → value. Keys before any section
/// header land in the `""` section.
pub type TomlDoc = BTreeMap<String, BTreeMap<String, TomlValue>>;

/// Parse the TOML subset described in the module docs. Unsupported syntax
/// (arrays, inline tables, multi-line strings) is a hard error — baselines
/// should fail loudly, not drift silently.
pub fn parse_toml(text: &str) -> Result<TomlDoc, String> {
    let mut doc = TomlDoc::new();
    let mut section = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", lineno + 1))?
                .trim();
            if name.is_empty() {
                return Err(format!("line {}: empty section name", lineno + 1));
            }
            section = name.to_string();
            doc.entry(section.clone()).or_default();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected 'key = value'", lineno + 1))?;
        let key = key.trim();
        if key.is_empty() {
            return Err(format!("line {}: empty key", lineno + 1));
        }
        let value = parse_value(value.trim())
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        doc.entry(section.clone()).or_default().insert(key.to_string(), value);
    }
    Ok(doc)
}

/// Strip a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_value(s: &str) -> Result<TomlValue, String> {
    if s == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if s == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: {s}"))?;
        if inner.contains('"') {
            return Err(format!("unsupported embedded quote in {s}"));
        }
        return Ok(TomlValue::String(inner.replace("\\n", "\n").replace("\\\\", "\\")));
    }
    // TOML permits underscores in numbers.
    let cleaned: String = s.chars().filter(|&c| c != '_').collect();
    cleaned
        .parse::<f64>()
        .map(TomlValue::Number)
        .map_err(|_| format!("unsupported value: {s}"))
}

/// Tolerance specification for one metric.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tolerance {
    /// Committed reference value (needed when `rel_tol`/`abs_tol` is set).
    pub baseline: Option<f64>,
    /// Allowed `|measured − baseline| / |baseline|`.
    pub rel_tol: Option<f64>,
    /// Allowed `|measured − baseline|`.
    pub abs_tol: Option<f64>,
    /// Hard floor on the measured value.
    pub min: Option<f64>,
    /// Hard ceiling on the measured value.
    pub max: Option<f64>,
}

impl Tolerance {
    /// Build from a parsed section. Unknown keys are an error so typos in
    /// the baselines file are caught in CI instead of silently ignored.
    pub fn from_section(section: &BTreeMap<String, TomlValue>) -> Result<Tolerance, String> {
        let mut t = Tolerance::default();
        for (k, v) in section {
            let num = v.as_f64().ok_or_else(|| format!("key '{k}' must be a number"))?;
            match k.as_str() {
                "baseline" => t.baseline = Some(num),
                "rel_tol" => t.rel_tol = Some(num),
                "abs_tol" => t.abs_tol = Some(num),
                "min" => t.min = Some(num),
                "max" => t.max = Some(num),
                other => return Err(format!("unknown tolerance key '{other}'")),
            }
        }
        if (t.rel_tol.is_some() || t.abs_tol.is_some()) && t.baseline.is_none() {
            return Err("rel_tol/abs_tol require a baseline".to_string());
        }
        Ok(t)
    }

    /// Check a measured value; `Err` carries a human-readable violation.
    pub fn check(&self, metric: &str, measured: f64) -> Result<(), String> {
        if !measured.is_finite() {
            return Err(format!("{metric}: measured value {measured} is not finite"));
        }
        if let Some(min) = self.min {
            if measured < min {
                return Err(format!("{metric}: {measured:.6} below floor {min:.6}"));
            }
        }
        if let Some(max) = self.max {
            if measured > max {
                return Err(format!("{metric}: {measured:.6} above ceiling {max:.6}"));
            }
        }
        if let Some(base) = self.baseline {
            let dev = (measured - base).abs();
            if let Some(rel) = self.rel_tol {
                let allowed = rel * base.abs();
                if dev > allowed {
                    return Err(format!(
                        "{metric}: {measured:.6} deviates from baseline {base:.6} by {dev:.6} (> rel_tol {rel} ⇒ {allowed:.6})"
                    ));
                }
            }
            if let Some(abs) = self.abs_tol {
                if dev > abs {
                    return Err(format!(
                        "{metric}: {measured:.6} deviates from baseline {base:.6} by {dev:.6} (> abs_tol {abs})"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Result of checking a batch of metrics against a baselines document.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// `(metric, measured)` pairs that passed.
    pub passed: Vec<(String, f64)>,
    /// Human-readable violations.
    pub failures: Vec<String>,
    /// Metrics measured but not covered by any section (informational).
    pub uncovered: Vec<String>,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check measured metrics against the sections of `doc` under `profile`
/// (e.g. metric `critical_path_rel_err` with profile `quick` reads section
/// `[quick.critical_path_rel_err]`). Metrics without a section are
/// recorded as uncovered, not failed — adding a metric to the report must
/// not break CI until a baseline is committed for it.
pub fn check_metrics(
    doc: &TomlDoc,
    profile: &str,
    metrics: &[(&str, f64)],
) -> Result<CheckReport, String> {
    let mut report = CheckReport::default();
    for (metric, measured) in metrics {
        let section_name = format!("{profile}.{metric}");
        let Some(section) = doc.get(&section_name) else {
            report.uncovered.push(metric.to_string());
            continue;
        };
        let tol = Tolerance::from_section(section)
            .map_err(|e| format!("[{section_name}]: {e}"))?;
        match tol.check(metric, *measured) {
            Ok(()) => report.passed.push((metric.to_string(), *measured)),
            Err(e) => report.failures.push(e),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
# sentinel tolerances
[quick.critical_path_rel_err]
max = 0.05

[quick.gemm_speedup]
baseline = 2.0
rel_tol = 0.5
min = 1.0

[quick.fft_call_ratio]
baseline = 0.5
abs_tol = 0.05
"#;

    #[test]
    fn parses_sections_keys_and_comments() {
        let doc = parse_toml(DOC).unwrap();
        assert_eq!(
            doc["quick.critical_path_rel_err"]["max"],
            TomlValue::Number(0.05)
        );
        assert_eq!(doc["quick.gemm_speedup"]["baseline"], TomlValue::Number(2.0));
        assert_eq!(doc["quick.fft_call_ratio"]["abs_tol"], TomlValue::Number(0.05));
    }

    #[test]
    fn parses_strings_bools_and_underscored_numbers() {
        let doc = parse_toml("[s]\nname = \"full run\" # trailing\nflag = true\nn = 1_000\n").unwrap();
        assert_eq!(doc["s"]["name"], TomlValue::String("full run".to_string()));
        assert_eq!(doc["s"]["flag"], TomlValue::Bool(true));
        assert_eq!(doc["s"]["n"], TomlValue::Number(1000.0));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_toml("[unterminated\n").is_err());
        assert!(parse_toml("novalue\n").is_err());
        assert!(parse_toml("[s]\nk = [1, 2]\n").is_err());
    }

    #[test]
    fn check_passes_and_fails_correctly() {
        let doc = parse_toml(DOC).unwrap();
        let ok = check_metrics(
            &doc,
            "quick",
            &[
                ("critical_path_rel_err", 0.03),
                ("gemm_speedup", 1.8),
                ("fft_call_ratio", 0.52),
            ],
        )
        .unwrap();
        assert!(ok.ok(), "{:?}", ok.failures);
        assert_eq!(ok.passed.len(), 3);

        let bad = check_metrics(&doc, "quick", &[("critical_path_rel_err", 0.2)]).unwrap();
        assert!(!bad.ok());
        assert!(bad.failures[0].contains("above ceiling"));

        let floor = check_metrics(&doc, "quick", &[("gemm_speedup", 0.9)]).unwrap();
        assert!(!floor.ok());
    }

    #[test]
    fn uncovered_metrics_do_not_fail() {
        let doc = parse_toml(DOC).unwrap();
        let r = check_metrics(&doc, "quick", &[("brand_new_metric", 42.0)]).unwrap();
        assert!(r.ok());
        assert_eq!(r.uncovered, vec!["brand_new_metric".to_string()]);
    }

    #[test]
    fn tolerance_requires_baseline_for_rel_tol() {
        let doc = parse_toml("[q.m]\nrel_tol = 0.1\n").unwrap();
        let err = check_metrics(&doc, "q", &[("m", 1.0)]).unwrap_err();
        assert!(err.contains("require a baseline"), "{err}");
    }

    #[test]
    fn non_finite_measurements_fail() {
        let t = Tolerance { min: Some(0.0), ..Default::default() };
        assert!(t.check("m", f64::NAN).is_err());
        assert!(t.check("m", f64::INFINITY).is_err());
    }
}
