//! Roofline placement: where each kernel stage sits relative to the
//! machine's compute and memory ceilings.
//!
//! The roofline model bounds achievable performance by
//! `min(peak_flops, intensity × peak_bandwidth)` where the arithmetic
//! intensity is flops per byte of memory traffic. Stages left of the ridge
//! point are memory-bound — more SIMD won't help them; stages right of it
//! are compute-bound — blocking for cache won't either. obskit's
//! flops/bytes counters supply the numerator and denominator; the caller
//! supplies measured ceilings (see `bench`'s `perf-report`, which times a
//! large in-cache GEMM and a streaming triad to measure them).

/// Measured machine ceilings.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    /// Peak sustained flops/second (measured, not nameplate).
    pub peak_flops: f64,
    /// Peak sustained memory bandwidth, bytes/second.
    pub peak_bytes_per_s: f64,
}

impl Machine {
    /// Arithmetic intensity (flops/byte) at which the two ceilings meet.
    pub fn ridge_intensity(&self) -> f64 {
        if self.peak_bytes_per_s > 0.0 {
            self.peak_flops / self.peak_bytes_per_s
        } else {
            f64::INFINITY
        }
    }
}

/// Which ceiling bounds a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    Memory,
    Compute,
}

impl Bound {
    pub fn label(self) -> &'static str {
        match self {
            Bound::Memory => "memory",
            Bound::Compute => "compute",
        }
    }
}

/// One stage placed on the roofline.
#[derive(Clone, Debug)]
pub struct RooflineRow {
    pub label: String,
    pub flops: f64,
    pub bytes: f64,
    pub seconds: f64,
    /// Achieved flops/second.
    pub achieved_flops: f64,
    /// Arithmetic intensity, flops/byte.
    pub intensity: f64,
    /// `min(peak_flops, intensity × peak_bw)` — the model's ceiling here.
    pub attainable_flops: f64,
    /// `achieved / attainable` (how close to the roof the stage runs).
    pub efficiency: f64,
    pub bound: Bound,
}

/// Place `(label, flops, bytes, seconds)` measurements on the roofline.
/// Rows with no time or no flops are skipped (nothing to place).
pub fn place(machine: &Machine, rows: &[(String, f64, f64, f64)]) -> Vec<RooflineRow> {
    let mut out = Vec::new();
    for (label, flops, bytes, seconds) in rows {
        if *seconds <= 0.0 || *flops <= 0.0 {
            continue;
        }
        let intensity = if *bytes > 0.0 { flops / bytes } else { f64::INFINITY };
        let attainable = if intensity.is_finite() {
            (intensity * machine.peak_bytes_per_s).min(machine.peak_flops)
        } else {
            machine.peak_flops
        };
        let achieved = flops / seconds;
        out.push(RooflineRow {
            label: label.clone(),
            flops: *flops,
            bytes: *bytes,
            seconds: *seconds,
            achieved_flops: achieved,
            intensity,
            attainable_flops: attainable,
            efficiency: if attainable > 0.0 { achieved / attainable } else { 0.0 },
            bound: if intensity < machine.ridge_intensity() {
                Bound::Memory
            } else {
                Bound::Compute
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: Machine = Machine { peak_flops: 1e11, peak_bytes_per_s: 1e10 }; // ridge = 10

    #[test]
    fn classification_splits_at_the_ridge() {
        let rows = vec![
            // intensity 2 flops/byte → memory-bound
            ("stream".to_string(), 2e9, 1e9, 1.0),
            // intensity 100 flops/byte → compute-bound
            ("gemm".to_string(), 1e11, 1e9, 2.0),
        ];
        let placed = place(&M, &rows);
        assert_eq!(placed.len(), 2);
        assert_eq!(placed[0].bound, Bound::Memory);
        assert_eq!(placed[1].bound, Bound::Compute);
        // Memory-bound ceiling: intensity × bw = 2 × 1e10 = 2e10.
        assert!((placed[0].attainable_flops - 2e10).abs() < 1.0);
        // Compute-bound ceiling: peak flops.
        assert!((placed[1].attainable_flops - 1e11).abs() < 1.0);
    }

    #[test]
    fn efficiency_is_achieved_over_attainable() {
        let rows = vec![("gemm".to_string(), 5e10, 1e8, 1.0)]; // intensity 500
        let placed = place(&M, &rows);
        // achieved 5e10 of attainable 1e11 → 0.5.
        assert!((placed[0].efficiency - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_rows_are_compute_bound() {
        let rows = vec![("fma-loop".to_string(), 1e9, 0.0, 0.1)];
        let placed = place(&M, &rows);
        assert_eq!(placed[0].bound, Bound::Compute);
        assert!(placed[0].intensity.is_infinite());
        assert!((placed[0].attainable_flops - M.peak_flops).abs() < 1.0);
    }

    #[test]
    fn empty_and_degenerate_rows_are_skipped() {
        let rows = vec![
            ("no-time".to_string(), 1e9, 1e9, 0.0),
            ("no-flops".to_string(), 0.0, 1e9, 1.0),
        ];
        assert!(place(&M, &rows).is_empty());
    }
}
