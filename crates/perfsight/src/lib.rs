//! # perfsight — cross-rank performance analytics on obskit traces
//!
//! Six PRs of instrumentation (spans, counters, per-op comm stats, fault
//! campaigns) produce raw streams; this crate turns them into the
//! quantities the paper actually argues with, and that CI can gate on:
//!
//! * [`aggregate`] — merge per-rank streams into per-stage load-imbalance
//!   metrics (max/mean/min, λ = max/mean) and an exact critical-path
//!   decomposition over span + collective dependency edges, reporting
//!   which rank/stage bounds each phase of the solve;
//! * [`costmodel`] — least-squares α–β (latency/bandwidth) fits per
//!   collective kind from `parcomm`'s `OpStats`, a global Hockney-factor
//!   fit, and strong-scaling comm-fraction extrapolation to 2–1024 ranks;
//! * [`roofline`] — place GEMM/FFT/apply stages on a measured roofline and
//!   flag memory- vs compute-bound stages;
//! * [`baseline`] — the TOML-subset tolerance file and metric checks
//!   behind `repro perf-report --check`, the CI perf-regression sentinel.
//!
//! The flight recorder itself lives in [`obskit::flight`] (it must be
//! below everything that records); perfsight is the analytics layer that
//! never sits on a hot path.

pub mod aggregate;
pub mod baseline;
pub mod costmodel;
pub mod roofline;

pub use aggregate::{critical_path, stage_loads, CriticalPath, CriticalSegment, SegmentKind, StageLoad};
pub use baseline::{check_metrics, parse_toml, CheckReport, Tolerance, TomlDoc, TomlValue};
pub use costmodel::{fit, CostModelFit, OpFit, ScalePoint};
pub use roofline::{place, Bound, Machine, RooflineRow};
