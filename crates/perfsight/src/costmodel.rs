//! α–β cost-model fitting from observed collectives, with at-scale
//! extrapolation.
//!
//! parcomm's [`CommStats`] records, per rank and per collective kind, how
//! many calls ran, how many bytes moved, and how long the calls took. Those
//! rows over-determine the two-parameter Hockney model
//! `t = α·calls + β·bytes` per op, so we fit it by least squares — and a
//! *global* (α, β) across all ops using each collective's analytic
//! latency/bandwidth factors (the same formulas as
//! [`parcomm::cost::CostModel`]), which is the model the ROADMAP's
//! scenario sweeps extrapolate "to thousands of simulated ranks".
//!
//! The fits are deliberately defensive: zero-byte ops (barrier) drop the β
//! column, collinear or negative solutions fall back to the best
//! single-parameter fit, and everything is clamped nonnegative — a fitted
//! latency of −3 µs predicts nothing.

use parcomm::comm::{CommStats, OpStats};

/// Least-squares fit of `t ≈ α·x + β·y` over rows `(x, y, t)`, with
/// single-parameter fallbacks when the system is degenerate or the
/// solution leaves the physical (nonnegative) quadrant.
fn fit_two(rows: &[(f64, f64, f64)]) -> (f64, f64) {
    let (mut sxx, mut sxy, mut syy, mut sxt, mut syt) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(x, y, t) in rows {
        sxx += x * x;
        sxy += x * y;
        syy += y * y;
        sxt += x * t;
        syt += y * t;
    }
    let alpha_only = if sxx > 0.0 { (sxt / sxx).max(0.0) } else { 0.0 };
    let beta_only = if syy > 0.0 { (syt / syy).max(0.0) } else { 0.0 };
    let residual = |a: f64, b: f64| {
        rows.iter().map(|&(x, y, t)| (a * x + b * y - t).powi(2)).sum::<f64>()
    };
    let det = sxx * syy - sxy * sxy;
    // Relative determinant guard: the 2x2 system is near-singular when
    // calls and bytes are proportional across rows (constant message size).
    if det > 1e-12 * sxx.max(1e-300) * syy.max(1e-300) {
        let a = (sxt * syy - syt * sxy) / det;
        let b = (syt * sxx - sxt * sxy) / det;
        if a >= 0.0 && b >= 0.0 {
            return (a, b);
        }
    }
    if residual(alpha_only, 0.0) <= residual(0.0, beta_only) {
        (alpha_only, 0.0)
    } else {
        (0.0, beta_only)
    }
}

/// Fitted α–β parameters for one collective kind.
#[derive(Clone, Debug)]
pub struct OpFit {
    pub op: &'static str,
    /// Total calls across ranks.
    pub calls: u64,
    /// Total bytes across ranks.
    pub bytes: u64,
    /// Total measured seconds across ranks.
    pub measured_s: f64,
    /// Fitted per-call latency (seconds).
    pub alpha: f64,
    /// Fitted per-byte cost (seconds).
    pub beta: f64,
    /// `α·calls + β·bytes` — the model's reproduction of `measured_s`.
    pub predicted_s: f64,
    /// `|predicted − measured| / measured` (0 when nothing was measured).
    pub rel_err: f64,
}

/// The complete fit: per-op parameters plus one global (α, β) tied to the
/// Hockney factors of each collective.
#[derive(Clone, Debug)]
pub struct CostModelFit {
    /// Ranks the measurements came from.
    pub ranks: usize,
    pub ops: Vec<OpFit>,
    /// Global per-message latency (seconds) across all collectives.
    pub global_alpha: f64,
    /// Global per-byte cost (seconds) across all collectives.
    pub global_beta: f64,
    pub total_measured_s: f64,
    pub total_predicted_s: f64,
    /// Worst per-op relative error among ops with measurable time.
    pub worst_rel_err: f64,
}

/// Analytic latency/bandwidth factors for one collective at `p` ranks:
/// modeled seconds = `calls·α·L(p) + bytes·β·W(p)`. Mirrors
/// [`parcomm::cost::CostModel`]'s formulas.
fn hockney_factors(op: &str, p: usize) -> (f64, f64) {
    let pf = p.max(1) as f64;
    let log2p = pf.log2().max(1.0);
    if p <= 1 {
        return (0.0, 0.0);
    }
    match op {
        "barrier" => (log2p, 0.0),
        "bcast" | "ibcast" | "reduce" | "ireduce" => (log2p, log2p),
        "allreduce" | "iallreduce" => (2.0 * log2p, 2.0 * (pf - 1.0) / pf),
        "allgatherv" | "iallgatherv" => (pf - 1.0, (pf - 1.0) / pf),
        "alltoallv" | "ialltoallv" => (pf - 1.0, 1.0),
        _ => (1.0, 1.0),
    }
}

/// Fit the cost model from per-rank [`CommStats`] gathered at `p` ranks.
pub fn fit(stats: &[CommStats]) -> CostModelFit {
    let p = stats.len().max(1);
    let mut ops = Vec::new();
    let mut total_measured = 0.0;
    let mut total_predicted = 0.0;
    let mut worst = 0.0f64;
    // Rows for the global fit: one per (op) aggregate, in Hockney units.
    let mut global_rows: Vec<(f64, f64, f64)> = Vec::new();

    let Some(first) = stats.first() else {
        return CostModelFit {
            ranks: p,
            ops: Vec::new(),
            global_alpha: 0.0,
            global_beta: 0.0,
            total_measured_s: 0.0,
            total_predicted_s: 0.0,
            worst_rel_err: 0.0,
        };
    };
    for (idx, &(op, _)) in first.per_op().iter().enumerate() {
        let per_rank: Vec<OpStats> = stats.iter().map(|s| s.per_op()[idx].1).collect();
        let calls: u64 = per_rank.iter().map(|o| o.calls).sum();
        let bytes: u64 = per_rank.iter().map(|o| o.bytes).sum();
        let seconds: f64 = per_rank.iter().map(|o| o.seconds).sum();
        if calls == 0 {
            continue;
        }
        let rows: Vec<(f64, f64, f64)> = per_rank
            .iter()
            .filter(|o| o.calls > 0)
            .map(|o| (o.calls as f64, o.bytes as f64, o.seconds))
            .collect();
        let (alpha, beta) = fit_two(&rows);
        let predicted = alpha * calls as f64 + beta * bytes as f64;
        let rel_err = if seconds > 0.0 { (predicted - seconds).abs() / seconds } else { 0.0 };
        total_measured += seconds;
        total_predicted += predicted;
        worst = worst.max(rel_err);
        let (lf, wf) = hockney_factors(op, p);
        global_rows.push((calls as f64 * lf, bytes as f64 * wf, seconds));
        ops.push(OpFit {
            op,
            calls,
            bytes,
            measured_s: seconds,
            alpha,
            beta,
            predicted_s: predicted,
            rel_err,
        });
    }

    let (global_alpha, global_beta) = fit_two(&global_rows);
    CostModelFit {
        ranks: p,
        ops,
        global_alpha,
        global_beta,
        total_measured_s: total_measured,
        total_predicted_s: total_predicted,
        worst_rel_err: worst,
    }
}

/// One point of the at-scale extrapolation.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    pub ranks: usize,
    /// Predicted communication seconds per rank at this scale.
    pub comm_s: f64,
    /// Predicted compute seconds per rank (perfect strong scaling of the
    /// measured compute total).
    pub compute_s: f64,
    /// `comm / (comm + compute)`.
    pub comm_fraction: f64,
}

impl CostModelFit {
    /// Predict the communication cost per rank if the same workload ran at
    /// `target_p` ranks: per-rank call counts and payloads are held at
    /// their measured per-rank averages while the Hockney factors rescale
    /// with p — the standard strong-scaling extrapolation.
    pub fn comm_seconds_at(&self, target_p: usize) -> f64 {
        let mut t = 0.0;
        for op in &self.ops {
            let calls_per_rank = op.calls as f64 / self.ranks as f64;
            let bytes_per_rank = op.bytes as f64 / self.ranks as f64;
            let (lf, wf) = hockney_factors(op.op, target_p);
            t += calls_per_rank * self.global_alpha * lf + bytes_per_rank * self.global_beta * wf;
        }
        t
    }

    /// Extrapolate comm fraction over `2..=max_p` (powers of two), given
    /// the measured total compute CPU-seconds across all ranks.
    pub fn scale_sweep(&self, compute_total_s: f64, max_p: usize) -> Vec<ScalePoint> {
        let mut out = Vec::new();
        let mut p = 2usize;
        while p <= max_p {
            let comm_s = self.comm_seconds_at(p);
            let compute_s = compute_total_s / p as f64;
            let denom = comm_s + compute_s;
            out.push(ScalePoint {
                ranks: p,
                comm_s,
                compute_s,
                comm_fraction: if denom > 0.0 { comm_s / denom } else { 0.0 },
            });
            p *= 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(f: impl Fn(&mut CommStats)) -> CommStats {
        let mut s = CommStats::default();
        f(&mut s);
        s
    }

    /// Synthesize per-rank stats from a known (α, β) and check the fit
    /// recovers the generating model.
    #[test]
    fn fit_recovers_synthetic_alpha_beta() {
        let alpha = 2e-6;
        let beta = 1.0 / 4e9;
        // Vary message sizes across ranks so calls and bytes decorrelate.
        let stats: Vec<CommStats> = (0..4)
            .map(|r| {
                stats_with(|s| {
                    let calls = 10 + r as u64;
                    let bytes = 8_000 * (r as u64 + 1);
                    s.allreduce = OpStats {
                        calls,
                        bytes,
                        seconds: alpha * calls as f64 + beta * bytes as f64,
                    };
                })
            })
            .collect();
        let fit = fit(&stats);
        let op = fit.ops.iter().find(|o| o.op == "allreduce").unwrap();
        assert!((op.alpha - alpha).abs() / alpha < 1e-6, "alpha {} vs {alpha}", op.alpha);
        assert!((op.beta - beta).abs() / beta < 1e-6);
        assert!(op.rel_err < 1e-9);
        assert!(fit.worst_rel_err < 1e-9);
    }

    #[test]
    fn zero_byte_op_fits_latency_only() {
        let stats: Vec<CommStats> = (0..4)
            .map(|_| {
                stats_with(|s| {
                    s.barrier = OpStats { calls: 20, bytes: 0, seconds: 20.0 * 3e-6 };
                })
            })
            .collect();
        let fit = fit(&stats);
        let op = fit.ops.iter().find(|o| o.op == "barrier").unwrap();
        assert!((op.alpha - 3e-6).abs() < 1e-12);
        assert_eq!(op.beta, 0.0);
        assert!(op.rel_err < 1e-12);
    }

    #[test]
    fn collinear_rows_fall_back_without_exploding() {
        // Same calls and bytes on every rank: the 2x2 system is singular.
        let stats: Vec<CommStats> = (0..4)
            .map(|_| {
                stats_with(|s| {
                    s.bcast = OpStats { calls: 5, bytes: 4_000, seconds: 1e-4 };
                })
            })
            .collect();
        let fit = fit(&stats);
        let op = fit.ops.iter().find(|o| o.op == "bcast").unwrap();
        assert!(op.alpha >= 0.0 && op.beta >= 0.0);
        assert!(op.alpha.is_finite() && op.beta.is_finite());
        // A single-parameter fallback still reproduces the aggregate.
        assert!(op.rel_err < 1e-9, "rel_err {}", op.rel_err);
    }

    #[test]
    fn unused_ops_are_omitted() {
        let stats =
            vec![stats_with(|s| s.allreduce = OpStats { calls: 1, bytes: 8, seconds: 1e-6 })];
        let fit = fit(&stats);
        assert_eq!(fit.ops.len(), 1);
        assert_eq!(fit.ops[0].op, "allreduce");
    }

    #[test]
    fn comm_fraction_grows_with_rank_count() {
        // A latency-bound workload strong-scales its compute but not its
        // per-rank collective latency, so comm fraction must rise with p.
        let stats: Vec<CommStats> = (0..4)
            .map(|r| {
                stats_with(|s| {
                    let calls = 100;
                    let bytes = 800 * (r + 1) as u64;
                    s.allreduce = OpStats {
                        calls,
                        bytes,
                        seconds: 1.5e-6 * calls as f64 + bytes as f64 / 8e9,
                    };
                })
            })
            .collect();
        let fit = fit(&stats);
        let sweep = fit.scale_sweep(1.0, 1024);
        assert_eq!(sweep.first().unwrap().ranks, 2);
        assert_eq!(sweep.last().unwrap().ranks, 1024);
        assert!(sweep.last().unwrap().comm_fraction > sweep.first().unwrap().comm_fraction);
        for w in sweep.windows(2) {
            assert!(w[1].compute_s < w[0].compute_s, "compute strong-scales");
        }
    }

    #[test]
    fn empty_stats_fit_is_empty() {
        let fit = fit(&[]);
        assert!(fit.ops.is_empty());
        assert_eq!(fit.total_measured_s, 0.0);
    }
}
