//! Criterion bench for paper Figs. 4–5: monolithic GEMM+Allreduce vs
//! pipelined GEMM+Reduce across rank counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrtddft::pipeline::{gram_allreduce, gram_pipelined_reduce};
use mathkit::Mat;
use parcomm::{block_ranges, spmd};

fn bench_pipeline(c: &mut Criterion) {
    let (nr, ncv) = (2048usize, 128usize);
    let a = Mat::from_fn(nr, ncv, |i, j| (((i * 13 + j * 5) % 17) as f64) * 0.1 - 0.8);

    let mut group = c.benchmark_group("fig5_gemm_reduce");
    group.sample_size(10);
    for ranks in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("monolithic", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                spmd(ranks, |comm| {
                    let rr = block_ranges(nr, ranks)[comm.rank()].clone();
                    let al = a.row_block(rr.start, rr.end);
                    gram_allreduce(comm, &al, &al, 1.0).local.norm_fro()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("pipelined", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                spmd(ranks, |comm| {
                    let rr = block_ranges(nr, ranks)[comm.rank()].clone();
                    let al = a.row_block(rr.start, rr.end);
                    gram_pipelined_reduce(comm, &al, &al, 1.0).expect("pipelined reduce").local.norm_fro()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
