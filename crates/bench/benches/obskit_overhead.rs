//! Criterion bench for the tracing subsystem's overhead on the `V_Hxc`
//! contraction hot path (Algorithm 1 line 7, the shape from Fig. 5).
//!
//! Three configurations of the same packed GEMM:
//!
//! * `disabled`  — `obskit` recording off: the instrumented kernel pays one
//!   relaxed atomic load per span plus the shape-histogram counter. The
//!   acceptance budget is < 2% over `seed`.
//! * `enabled`   — recording on: span events are written to a thread-local
//!   buffer, bounding the cost of actually capturing a trace.
//! * `seed`      — the uninstrumented pre-rewrite reference kernel
//!   (`bench::gemm_report::reference_gemm`), the absolute baseline.
//!
//! `seed` uses a different (slower) kernel than the packed engine, so the
//! disabled-vs-seed comparison is dominated by the engine speedup; the
//! < 2% overhead claim is asserted after the groups on a min-of-N
//! disabled-vs-bare comparison of the *same* kernel (also enforced in CI by
//! `tests/tracing.rs::disabled_tracing_overhead_under_budget`).

use bench::gemm_report::reference_gemm;
use criterion::{criterion_group, BenchmarkId, Criterion};
use mathkit::{Mat, Transpose};
use std::time::Instant;

fn operand(rows: usize, cols: usize, phase: usize) -> Mat {
    Mat::from_fn(rows, cols, |i, j| {
        (((i * 7 + j * 13 + phase) % 23) as f64) * 0.04 - 0.44
    })
}

fn bench_obskit_overhead(c: &mut Criterion) {
    // V_Hxc shape: C(128×128) = Aᵀ(16384×128)·B(16384×128).
    let (m, n, k) = (128usize, 128usize, 16384usize);
    let a = operand(k, m, 0);
    let b = operand(k, n, 5);
    let mut out = Mat::zeros(m, n);
    let shape = "vhxc_16384x128t_x_16384x128";

    let mut group = c.benchmark_group("obskit_overhead");
    group.sample_size(10);

    obskit::disable();
    let _ = obskit::take_trace();
    group.bench_with_input(BenchmarkId::new("disabled", shape), &(), |bch, _| {
        bch.iter(|| {
            let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.contract");
            mathkit::gemm(2.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut out);
            drop(sp);
        });
    });

    obskit::enable();
    group.bench_with_input(BenchmarkId::new("enabled", shape), &(), |bch, _| {
        bch.iter(|| {
            let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.contract");
            mathkit::gemm(2.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut out);
            drop(sp);
        });
    });
    obskit::disable();
    let _ = obskit::take_trace(); // drop the captured events

    group.bench_with_input(BenchmarkId::new("seed", shape), &(), |bch, _| {
        bch.iter(|| reference_gemm(2.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut out));
    });

    group.finish();

    // The always-on flight recorder rides the same span guard, so its cost
    // must stay in the disabled-mode budget. Bench both states of the ring
    // plus the bare pieces it is built from.
    let mut flight = c.benchmark_group("obskit_flight");
    obskit::flight::set_enabled(true);
    flight.bench_function("span_flight_on", |bch| {
        bch.iter(|| {
            let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.contract");
            std::hint::black_box(&out);
            drop(sp);
        });
    });
    obskit::flight::set_enabled(false);
    flight.bench_function("span_flight_off", |bch| {
        bch.iter(|| {
            let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.contract");
            std::hint::black_box(&out);
            drop(sp);
        });
    });
    obskit::flight::set_enabled(true);
    flight.bench_function("flight_note", |bch| {
        bch.iter(|| obskit::flight::note(obskit::Stage::Gemm, "flight.note", 1.0));
    });
    flight.bench_function("record_kernel_dispatch", |bch| {
        bch.iter(|| obskit::record_kernel_dispatch("gemm.blocked.8x8.avx2"));
    });
    obskit::flight::clear();
    flight.finish();
}

criterion_group!(benches, bench_obskit_overhead);

fn main() {
    benches();

    // Asserted overhead budget: disabled-mode span guard vs the bare call on
    // the same packed kernel, min-of-N interleaved with alternating order
    // (min absorbs scheduler noise; alternation cancels warm-up bias).
    let (m, n, k) = (96usize, 96usize, 4096usize);
    let a = operand(k, m, 0);
    let b = operand(k, n, 5);
    let mut out = Mat::zeros(m, n);
    obskit::disable();
    let _ = obskit::take_trace();
    let mut run = |with_span: bool| -> f64 {
        let t0 = Instant::now();
        let sp = with_span.then(|| obskit::span(obskit::Stage::Gemm, "v_hxc.contract"));
        mathkit::gemm(2.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut out);
        drop(sp);
        t0.elapsed().as_secs_f64()
    };
    run(true);
    run(false);
    let mut best_ratio = f64::INFINITY;
    for _attempt in 0..3 {
        let mut t_inst = f64::INFINITY;
        let mut t_raw = f64::INFINITY;
        for i in 0..8 {
            let first_instrumented = i % 2 == 0;
            let s1 = run(first_instrumented);
            let s2 = run(!first_instrumented);
            let (ti, tr) = if first_instrumented { (s1, s2) } else { (s2, s1) };
            t_inst = t_inst.min(ti);
            t_raw = t_raw.min(tr);
        }
        best_ratio = best_ratio.min(t_inst / t_raw);
        if best_ratio <= 1.02 {
            break;
        }
    }
    println!(
        "\ndisabled-mode overhead on v_hxc gemm: {:+.2}% (budget < 2%)",
        (best_ratio - 1.0) * 100.0
    );
    assert!(
        best_ratio <= 1.02,
        "disabled-tracing overhead {:.2}% exceeds the 2% budget",
        (best_ratio - 1.0) * 100.0
    );

    // Same gate for the flight ring specifically: instrumented GEMM with the
    // ring on vs off. The span guard above already pays the flight mirror
    // (the ring defaults to on), so this isolates the ring's share.
    let mut run_flight = |ring_on: bool| -> f64 {
        obskit::flight::set_enabled(ring_on);
        let t0 = Instant::now();
        let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.contract");
        mathkit::gemm(2.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut out);
        drop(sp);
        t0.elapsed().as_secs_f64()
    };
    run_flight(true);
    run_flight(false);
    let mut flight_ratio = f64::INFINITY;
    for _attempt in 0..3 {
        let mut t_on = f64::INFINITY;
        let mut t_off = f64::INFINITY;
        for i in 0..8 {
            let on_first = i % 2 == 0;
            let s1 = run_flight(on_first);
            let s2 = run_flight(!on_first);
            let (on, off) = if on_first { (s1, s2) } else { (s2, s1) };
            t_on = t_on.min(on);
            t_off = t_off.min(off);
        }
        flight_ratio = flight_ratio.min(t_on / t_off);
        if flight_ratio <= 1.02 {
            break;
        }
    }
    obskit::flight::set_enabled(true);
    obskit::flight::clear();
    println!(
        "flight-ring overhead on v_hxc gemm: {:+.2}% (budget < 2%)",
        (flight_ratio - 1.0) * 100.0
    );
    assert!(
        flight_ratio <= 1.02,
        "flight-ring overhead {:.2}% exceeds the 2% budget",
        (flight_ratio - 1.0) * 100.0
    );
}
