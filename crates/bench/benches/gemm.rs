//! Criterion bench for the packed GEMM engine against the pre-rewrite
//! column-parallel reference kernel (`bench::gemm_report::reference_gemm`).
//!
//! The headline shape is the `V_Hxc` contraction of Algorithm 1 line 7:
//! `C(128×128) = Aᵀ(32768×128)·B(32768×128)` — a 32³ grid with
//! `N_cv = 128` orbital-pair products. The acceptance bar for the engine is
//! ≥3× over the reference on this shape.

use bench::gemm_report::reference_gemm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mathkit::{Mat, Transpose};

fn operand(rows: usize, cols: usize, phase: usize) -> Mat {
    Mat::from_fn(rows, cols, |i, j| {
        (((i * 7 + j * 13 + phase) % 23) as f64) * 0.04 - 0.44
    })
}

struct Case {
    label: &'static str,
    m: usize,
    n: usize,
    k: usize,
    ta: Transpose,
    tb: Transpose,
}

fn bench_gemm(c: &mut Criterion) {
    let cases = [
        Case {
            label: "vhxc_32768x128t_x_32768x128",
            m: 128,
            n: 128,
            k: 32768,
            ta: Transpose::Yes,
            tb: Transpose::No,
        },
        Case {
            label: "vtilde_8192x256t_x_8192x256",
            m: 256,
            n: 256,
            k: 8192,
            ta: Transpose::Yes,
            tb: Transpose::No,
        },
        Case {
            label: "implicit_512x4096_x_4096x8",
            m: 512,
            n: 8,
            k: 4096,
            ta: Transpose::No,
            tb: Transpose::No,
        },
        Case { label: "square_384", m: 384, n: 384, k: 384, ta: Transpose::No, tb: Transpose::No },
    ];

    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for case in &cases {
        let (ar, ac) = match case.ta {
            Transpose::No => (case.m, case.k),
            Transpose::Yes => (case.k, case.m),
        };
        let (br, bc) = match case.tb {
            Transpose::No => (case.k, case.n),
            Transpose::Yes => (case.n, case.k),
        };
        let a = operand(ar, ac, 0);
        let b = operand(br, bc, 5);
        let mut out = Mat::zeros(case.m, case.n);

        group.bench_with_input(BenchmarkId::new("reference", case.label), case, |bch, cs| {
            bch.iter(|| reference_gemm(1.0, &a, cs.ta, &b, cs.tb, 0.0, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("packed", case.label), case, |bch, cs| {
            bch.iter(|| mathkit::gemm(1.0, &a, cs.ta, &b, cs.tb, 0.0, &mut out));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
