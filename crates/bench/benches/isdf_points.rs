//! Criterion bench for paper Table 3: interpolation-point selection,
//! QRCP vs K-Means, across N_μ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdf::{kmeans_points, pair_weights, qrcp_points, KmeansOptions};
use lrtddft::problem::silicon_like_problem;

fn bench_point_selection(c: &mut Criterion) {
    let problem = silicon_like_problem(1, 12, 8);
    let coords: Vec<[f64; 3]> = (0..problem.n_r()).map(|i| problem.grid.coords(i)).collect();
    let w = pair_weights(&problem.psi_v, &problem.psi_c);

    let mut group = c.benchmark_group("table3_point_selection");
    group.sample_size(10);
    for n_mu in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("qrcp", n_mu), &n_mu, |b, &n_mu| {
            b.iter(|| qrcp_points(&problem.psi_v, &problem.psi_c, n_mu));
        });
        group.bench_with_input(BenchmarkId::new("kmeans", n_mu), &n_mu, |b, &n_mu| {
            b.iter(|| kmeans_points(&coords, &w, n_mu, KmeansOptions::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_point_selection);
criterion_main!(benches);
