//! Criterion bench for the paper's Table 2 kernel inventory: face-splitting
//! product, FFT kernel application, GEMM contraction, dense eigensolve, and
//! the implicit Hamiltonian apply.

use criterion::{criterion_group, criterion_main, Criterion};
use isdf::face_splitting_product;
use lrtddft::problem::silicon_like_problem;
use lrtddft::versions::{build_isdf_hamiltonian, PointSelector};
use lrtddft::{HxcKernel, StageTimings};
use mathkit::{gemm_tn, syev, Mat};

fn bench_kernels(c: &mut Criterion) {
    let problem = silicon_like_problem(1, 12, 4);
    let mut group = c.benchmark_group("table2_kernels");
    group.sample_size(10);

    group.bench_function("face_splitting_product", |b| {
        b.iter(|| face_splitting_product(&problem.psi_v, &problem.psi_c));
    });

    let p_vc = face_splitting_product(&problem.psi_v, &problem.psi_c);
    let kernel = HxcKernel::new(&problem.grid, problem.fxc.clone());
    group.bench_function("fhxc_apply", |b| {
        b.iter(|| kernel.apply(&p_vc));
    });

    let f_p = kernel.apply(&p_vc);
    group.bench_function("vhxc_gemm", |b| {
        b.iter(|| gemm_tn(&p_vc, &f_p));
    });

    let mut h = gemm_tn(&p_vc, &f_p);
    h.symmetrize();
    group.bench_function("syevd_dense", |b| {
        b.iter(|| syev(&h));
    });

    let mut t = StageTimings::default();
    let ham = build_isdf_hamiltonian(&problem, PointSelector::Qrcp, problem.n_cv() / 2, &mut t);
    let x = Mat::from_fn(problem.n_cv(), 4, |i, j| ((i + 3 * j) % 7) as f64 * 0.1);
    group.bench_function("implicit_hamiltonian_apply", |b| {
        b.iter(|| ham.apply(&x));
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
