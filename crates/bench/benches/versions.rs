//! Criterion bench for paper Tables 4/6: the five solver versions on a
//! fixed silicon-like workload.

use criterion::{criterion_group, criterion_main, Criterion};
use lrtddft::{problem::silicon_like_problem, Solver, Version};

fn bench_versions(c: &mut Criterion) {
    let problem = silicon_like_problem(1, 12, 4);

    let mut group = c.benchmark_group("table6_versions");
    group.sample_size(10);
    for v in Version::all() {
        let solver = Solver::builder().version(v).n_states(3).build();
        group.bench_function(v.label(), |b| {
            b.iter(|| solver.solve(&problem).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_versions);
criterion_main!(benches);
