//! Criterion bench for the planned FFT engine against the seed transform
//! (`bench::fft_report::SeedFft3`: per-call twiddle recurrence, per-call
//! Bluestein setup, per-line allocations).
//!
//! Covers 32³–96³ grids (48³ and 96³ have non-power-of-two axes, exercising
//! the cached-Bluestein path) plus the batched vs. per-column Hxc kernel
//! application on the acceptance shape (64³ grid, 64 columns).

use bench::fft_report::{hxc_apply_per_column, SeedFft3};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fftkit::{Complex, Fft3, PoissonSolver};
use lrtddft::kernel::HxcKernel;
use mathkit::Mat;
use pwdft::{Cell, Grid};

fn complex_field(n: usize, seed: u64) -> Vec<Complex> {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3");
    group.sample_size(10);
    for n in [32usize, 48, 64, 96] {
        let seed = SeedFft3::new(n, n, n);
        let plan = Fft3::new(n, n, n);
        let mut buf = complex_field(plan.len(), 0xf3 + n as u64);
        let label = format!("{n}x{n}x{n}");

        group.bench_with_input(BenchmarkId::new("seed", &label), &n, |bch, _| {
            bch.iter(|| {
                seed.forward(&mut buf);
                seed.inverse(&mut buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("planned", &label), &n, |bch, _| {
            bch.iter(|| {
                plan.forward(&mut buf);
                plan.inverse(&mut buf);
            });
        });
    }
    group.finish();
}

fn bench_hxc_apply(c: &mut Criterion) {
    let n = 64usize;
    let cols = 64usize;
    let grid = Grid::new(Cell::cubic(n as f64 * 0.25), [n, n, n]);
    let fxc: Vec<f64> = (0..grid.len()).map(|i| -0.2 - ((i % 11) as f64) * 0.01).collect();
    let kernel = HxcKernel::new(&grid, fxc.clone());
    let solver = PoissonSolver::new(grid.plan(), grid.cell.lengths);
    let fields = Mat::from_fn(grid.len(), cols, |r, j| {
        (((r * 7 + j * 131 + 5) % 23) as f64) * 0.04 - 0.44
    });
    let mut out = Mat::zeros(grid.len(), cols);

    let mut group = c.benchmark_group("hxc_apply");
    group.sample_size(10);
    let label = format!("{n}x{n}x{n}_x{cols}");
    group.bench_with_input(BenchmarkId::new("per_column", &label), &cols, |bch, _| {
        bch.iter(|| hxc_apply_per_column(&solver, &fxc, &fields, &mut out));
    });
    group.bench_with_input(BenchmarkId::new("batched", &label), &cols, |bch, _| {
        bch.iter(|| kernel.apply_into(&fields, &mut out));
    });
    group.finish();
}

criterion_group!(benches, bench_transforms, bench_hxc_apply);
criterion_main!(benches);
