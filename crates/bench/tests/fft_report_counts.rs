//! FFT-call accounting of the two-for-one batched Hxc apply, measured through
//! obskit's process-global counters. These assertions live in their own test
//! binary (integration tests get their own process) so no unrelated test can
//! run transforms mid-measurement; within the binary they serialize on a lock.

use bench::fft_report::{self, hxc_apply_per_column};
use fftkit::PoissonSolver;
use lrtddft::kernel::HxcKernel;
use mathkit::Mat;
use pwdft::{Cell, Grid};
use std::sync::{Mutex, MutexGuard};

static OBSKIT_LOCK: Mutex<()> = Mutex::new(());

/// Serialize on the lock and drain any stale counter state.
fn exclusive() -> MutexGuard<'static, ()> {
    let g = OBSKIT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obskit::disable();
    let _ = obskit::take_trace();
    g
}

#[test]
fn two_for_one_halves_fft_calls() {
    let _g = exclusive();
    let grid = Grid::new(Cell::cubic(4.0), [8, 8, 8]);
    let fxc = vec![0.0; grid.len()];
    let kernel = HxcKernel::new(&grid, fxc.clone());
    let solver = PoissonSolver::new(grid.plan(), grid.cell.lengths);
    let fields = Mat::from_fn(grid.len(), 8, |r, j| ((r + j) % 7) as f64 - 3.0);
    let mut out = Mat::zeros(grid.len(), 8);

    obskit::enable();
    hxc_apply_per_column(&solver, &fxc, &fields, &mut out);
    obskit::disable();
    let per_column = obskit::take_trace().counters.fft_calls;

    obskit::enable();
    kernel.apply_into(&fields, &mut out);
    obskit::disable();
    let batched = obskit::take_trace().counters.fft_calls;

    assert_eq!(per_column, 16, "2 transforms per column on 8 columns");
    assert_eq!(batched, 8, "2 transforms per column pair on 4 pairs");
}

#[test]
fn odd_column_count_rounds_up_one_pair() {
    let _g = exclusive();
    let grid = Grid::new(Cell::cubic(4.0), [8, 8, 8]);
    let kernel = HxcKernel::new(&grid, vec![0.0; grid.len()]);
    let fields = Mat::from_fn(grid.len(), 5, |r, j| ((r * 3 + j) % 11) as f64 * 0.1);
    let mut out = Mat::zeros(grid.len(), 5);

    obskit::enable();
    kernel.apply_into(&fields, &mut out);
    obskit::disable();
    let batched = obskit::take_trace().counters.fft_calls;
    // ⌈5/2⌉ = 3 pairs, 2 transforms each.
    assert_eq!(batched, 6);
}

#[test]
fn quick_report_writes_json_and_passes_check() {
    let _g = exclusive();
    let dir = std::env::temp_dir().join("lrtddft_fft_report_test");
    fft_report::run(&dir, true, true).unwrap();
    let body = std::fs::read_to_string(dir.join("BENCH_fft.json")).unwrap();
    assert!(body.contains("\"benchmark\": \"fft-report\""));
    assert!(body.contains("\"fft_call_ratio\""));
    assert!(body.contains("\"grids\""));
    let _ = std::fs::remove_dir_all(&dir);
}
