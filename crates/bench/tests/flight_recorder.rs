//! End-to-end properties of the flight recorder + fault-recovery path:
//!
//! * a fault injected mid-solve trips the recovery ladder, the ladder fires
//!   the `faultkit` solve-error hook, and the hook's flight-ring dump is a
//!   well-formed Chrome trace (validated by the in-tree parser);
//! * a rank thread that panics mid-workload leaves aborted spans in the
//!   ring and a ragged trace stream, and `perfsight::critical_path` still
//!   decomposes the surviving trace exactly to its wall clock.
//!
//! Both properties drive process-global state (obskit's recorder and ring,
//! faultkit's hook), so every case runs under one test-local mutex.

use lrtddft::{silicon_like_problem, IsdfRank, SolveOptions, Version};
use obskit::Stage;
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// Reset every piece of obskit/faultkit global state a case can leak.
fn fresh() -> std::sync::MutexGuard<'static, ()> {
    let g = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
    obskit::disable();
    let _ = obskit::take_trace();
    obskit::flight::set_enabled(true);
    obskit::flight::clear();
    faultkit::clear_solve_error_hook();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// NaN-poison LOBPCG's workspace at a seeded plan: the solve must
    /// recover, the error hook must fire, and the flight dump it writes
    /// must parse and validate as a Chrome trace.
    #[test]
    fn faulted_solve_dumps_valid_flight_trace(seed in 0u64..1_000_000) {
        let _g = fresh();
        let problem = silicon_like_problem(1, 8, 2);
        let dump = std::env::temp_dir().join(format!("flight_prop_{seed}.json"));
        let _ = std::fs::remove_file(&dump);

        let fires = Arc::new(AtomicUsize::new(0));
        let hook_fires = Arc::clone(&fires);
        let hook_path = dump.clone();
        faultkit::set_solve_error_hook(move |_err| {
            hook_fires.fetch_add(1, Ordering::SeqCst);
            let _ = obskit::flight::dump_to(&hook_path);
        });
        let campaign = faultkit::arm(
            faultkit::FaultPlan::new(seed).with("lobpcg.w", 0, faultkit::FaultKind::NanPoison),
        );
        let o = SolveOptions::new().rank(IsdfRank::Fixed(problem.n_cv())).n_states(2).seed(seed);
        let solved = lrtddft::Solver::builder()
            .version(Version::ImplicitKmeansIsdfLobpcg)
            .options(o)
            .build()
            .solve(&problem);
        faultkit::clear_solve_error_hook();
        prop_assert!(campaign.fired() > 0, "fault plan never fired");
        drop(campaign);

        let solution = solved.map_err(|e| TestCaseError::fail(format!("solve failed: {e}")))?;
        prop_assert!(!solution.recovery.is_empty(), "ladder left no recovery log");
        prop_assert!(fires.load(Ordering::SeqCst) > 0, "error hook never fired");

        let text = std::fs::read_to_string(&dump)
            .map_err(|e| TestCaseError::fail(format!("dump unreadable: {e}")))?;
        let stats = obskit::chrome::validate_chrome_trace(&text)
            .map_err(|e| TestCaseError::fail(format!("dump invalid: {e}")))?;
        prop_assert!(stats.spans > 0, "flight dump carried no spans");
        let _ = std::fs::remove_file(&dump);
    }

    /// A rank that panics partway through an SPMD-shaped workload leaves a
    /// shorter stream (and aborted spans in the flight ring); the critical
    /// path over the surviving trace must still telescope to its wall
    /// clock, and the ring must still dump a valid Chrome trace.
    #[test]
    fn critical_path_tolerates_mid_solve_panic(
        ranks in 2usize..4,
        panic_rank in 0usize..2,
        panic_at in 0usize..4,
    ) {
        let _g = fresh();
        let rounds = 4usize;
        obskit::enable();
        let handles: Vec<_> = (0..ranks)
            .map(|r| {
                std::thread::spawn(move || {
                    obskit::set_rank(r);
                    for i in 0..rounds {
                        let work = obskit::span(Stage::Theta, "theta.assemble");
                        std::thread::sleep(Duration::from_micros(150 + 40 * r as u64));
                        if r == panic_rank && i == panic_at {
                            panic!("injected mid-solve panic");
                        }
                        drop(work);
                        let coll = obskit::span(Stage::Mpi, "mpi:allreduce");
                        std::thread::sleep(Duration::from_micros(120));
                        drop(coll);
                    }
                })
            })
            .collect();
        let mut panics = 0;
        for h in handles {
            panics += usize::from(h.join().is_err());
        }
        obskit::disable();
        prop_assert_eq!(panics, 1, "exactly the chosen rank must panic");

        let trace = obskit::take_trace();
        trace
            .validate()
            .map_err(|e| TestCaseError::fail(format!("unwound trace invalid: {e}")))?;
        let cp = perfsight::critical_path(&trace);
        let wall = trace.wall_seconds();
        prop_assert!(wall > 0.0);
        prop_assert!(
            (cp.total_seconds - wall).abs() <= 1e-9 + 1e-6 * wall,
            "critical path {} != wall {}",
            cp.total_seconds,
            wall
        );
        // The panicking rank truncates the matchable prefix but never below
        // the rounds it completed.
        prop_assert!(cp.matched_collectives <= rounds);

        let snap = obskit::flight::snapshot();
        prop_assert!(
            snap.iter().any(|e| e.kind == obskit::flight::FlightKind::AbortedSpan),
            "no aborted span reached the flight ring"
        );
        let dump = obskit::flight::dump_chrome_json();
        obskit::chrome::validate_chrome_trace(&dump)
            .map_err(|e| TestCaseError::fail(format!("flight dump invalid: {e}")))?;
    }
}
