//! `repro trace` / `repro trace-report` — capture and inspect span traces.
//!
//! `repro trace --version <label> [--ranks N] [--trace out.json]` runs the
//! requested solver version on the simulated MPI runtime with `obskit`
//! recording enabled, then
//!
//! * writes the Chrome Trace Event Format JSON to `--trace` (one lane per
//!   rank — load it in `chrome://tracing` or Perfetto),
//! * writes a machine-readable `BENCH_trace.json` (per-rank stage seconds,
//!   counters, per-collective byte breakdown) next to it,
//! * prints the hierarchical span summary tree, the per-collective
//!   communication breakdown, and a legacy-vs-span `StageTimings`
//!   comparison.
//!
//! `repro trace-report <path> [--check]` re-parses an exported trace and
//! prints its schema summary; with `--check` a malformed file exits
//! non-zero (used by CI).

use crate::report::{json, print_table};
use lrtddft::parallel::distributed_dense_hamiltonian_with;
use lrtddft::{silicon_like_problem, IsdfRank, SolveOptions, StageTimings, Version};
use mathkit::syev;
use parcomm::{spmd, CommStats};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Options for a `repro trace` run.
pub struct TraceOptions {
    pub version: Version,
    pub ranks: usize,
    pub trace_path: PathBuf,
    pub quick: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            version: Version::ImplicitKmeansIsdfLobpcg,
            ranks: 4,
            trace_path: PathBuf::from("trace.json"),
            quick: false,
        }
    }
}

/// Parse a `--version` label: the Table 4 names, case-insensitive.
pub fn parse_version(label: &str) -> Option<Version> {
    let want = label.to_ascii_lowercase();
    Version::all().into_iter().find(|v| v.label().to_ascii_lowercase() == want)
}

/// Run one traced solve and emit every artifact. Returns an error string on
/// failure (no panics across the CLI boundary).
pub fn run_trace(opts: &TraceOptions) -> Result<(), String> {
    let version = opts.version;
    let problem = if opts.quick {
        silicon_like_problem(1, 10, 3)
    } else {
        silicon_like_problem(1, 12, 4)
    };
    let n_mu = lrtddft::IsdfRank::default().resolve(problem.n_r(), problem.n_v(), problem.n_c());
    let k = 4.min(problem.n_cv());

    println!(
        "== trace: {} on {} ranks (N_r={}, N_cv={}, N_mu={}) ==",
        version.label(),
        opts.ranks,
        problem.n_r(),
        problem.n_cv(),
        n_mu
    );

    obskit::enable();
    let per_rank: Vec<(StageTimings, CommStats)> = match version {
        Version::ImplicitKmeansIsdfLobpcg => spmd(opts.ranks, |c| {
            let o = SolveOptions::new().rank(IsdfRank::Fixed(n_mu)).n_states(k).seed(0xcafe);
            let (_vals, t) =
                lrtddft::Solver::builder().options(o).build().solve_distributed(c, &problem);
            (t, c.stats())
        }),
        Version::Naive => spmd(opts.ranks, |c| {
            let (h, mut t) = distributed_dense_hamiltonian_with(c, &problem, &SolveOptions::new());
            let sp = obskit::span(obskit::Stage::Diag, "diag.syev");
            let t0 = std::time::Instant::now();
            let _ = syev(&h);
            t.diag += t0.elapsed().as_secs_f64();
            drop(sp);
            (t, c.stats())
        }),
        other => {
            obskit::disable();
            let _ = obskit::take_trace();
            return Err(format!(
                "no distributed pipeline for {}; supported: {}, {}",
                other.label(),
                Version::ImplicitKmeansIsdfLobpcg.label(),
                Version::Naive.label()
            ));
        }
    };
    obskit::disable();
    let trace = obskit::take_trace();
    trace.validate().map_err(|e| format!("trace failed nesting validation: {e}"))?;

    // Chrome export + schema self-check.
    let chrome = obskit::chrome::chrome_trace_json(&trace);
    let stats = obskit::chrome::validate_chrome_trace(&chrome)
        .map_err(|e| format!("exported chrome trace invalid: {e}"))?;
    std::fs::write(&opts.trace_path, &chrome)
        .map_err(|e| format!("write {}: {e}", opts.trace_path.display()))?;
    println!(
        "chrome trace: {} ({} lanes, {} spans, {} instants) -> {}",
        human_bytes(chrome.len() as u64),
        stats.lanes,
        stats.spans,
        stats.instants,
        opts.trace_path.display()
    );

    // Machine-readable companion record.
    let bench_path = opts
        .trace_path
        .parent()
        .unwrap_or(Path::new("."))
        .join("BENCH_trace.json");
    std::fs::write(&bench_path, bench_trace_json(version, opts.ranks, &trace, &per_rank))
        .map_err(|e| format!("write {}: {e}", bench_path.display()))?;
    println!("machine-readable record -> {}", bench_path.display());

    // Human-readable rollups.
    println!("\n{}", trace.summary_tree());
    print_comm_breakdown(&per_rank);
    print_timings_comparison(&trace, &per_rank);
    print_counters(&trace);
    Ok(())
}

/// The legacy-vs-span comparison: per rank, each stage from the section
/// timers next to the exclusive-time rollup of the same rank's spans.
fn print_timings_comparison(trace: &obskit::Trace, per_rank: &[(StageTimings, CommStats)]) {
    println!("== StageTimings: legacy section timers vs span rollup ==");
    let headers = ["rank", "stage", "legacy (s)", "spans (s)", "rel diff"];
    let mut rows = Vec::new();
    for (rank, (legacy, _)) in per_rank.iter().enumerate() {
        let derived = StageTimings::from_trace(trace, rank);
        for ((name, l), (_, d)) in legacy.stages().iter().zip(derived.stages().iter()) {
            if *l == 0.0 && *d == 0.0 {
                continue;
            }
            let rel = (l - d).abs() / l.abs().max(1e-9);
            rows.push(vec![
                rank.to_string(),
                (*name).to_string(),
                format!("{l:.6}"),
                format!("{d:.6}"),
                format!("{:.2}%", rel * 100.0),
            ]);
        }
    }
    print_table(&headers, &rows);
}

/// Per-collective communication table (satellite of paper Fig. 8's MPI bar).
pub fn print_comm_breakdown(per_rank: &[(StageTimings, CommStats)]) {
    println!("== per-collective communication breakdown ==");
    let headers = ["op", "calls", "bytes", "seconds"];
    let mut totals: Vec<(&'static str, u64, u64, f64)> = Vec::new();
    for (_, stats) in per_rank {
        for (i, (name, op)) in stats.per_op().into_iter().enumerate() {
            if totals.len() <= i {
                totals.push((name, 0, 0, 0.0));
            }
            totals[i].1 += op.calls;
            totals[i].2 += op.bytes;
            totals[i].3 += op.seconds;
        }
    }
    let rows: Vec<Vec<String>> = totals
        .iter()
        .filter(|(_, calls, _, _)| *calls > 0)
        .map(|(name, calls, bytes, secs)| {
            vec![
                (*name).to_string(),
                calls.to_string(),
                human_bytes(*bytes),
                format!("{secs:.6}"),
            ]
        })
        .collect();
    print_table(&headers, &rows);
}

fn print_counters(trace: &obskit::Trace) {
    let c = &trace.counters;
    println!(
        "counters: {:.3} Gflop, {} moved by collectives, {} FFT calls",
        c.flops as f64 / 1e9,
        human_bytes(c.bytes_moved),
        c.fft_calls
    );
    if !c.gemm_shapes.is_empty() {
        let headers = ["m <=", "n <=", "k <=", "calls"];
        let rows: Vec<Vec<String>> = c
            .gemm_shapes
            .iter()
            .take(12)
            .map(|b| {
                vec![
                    b.m_max.to_string(),
                    b.n_max.to_string(),
                    b.k_max.to_string(),
                    b.calls.to_string(),
                ]
            })
            .collect();
        println!("== GEMM shape histogram (log2 buckets, top {}) ==", rows.len());
        print_table(&headers, &rows);
    }
    if !c.kernel_dispatch.is_empty() {
        let headers = ["kernel path", "calls"];
        let rows: Vec<Vec<String>> = c
            .kernel_dispatch
            .iter()
            .take(12)
            .map(|(label, calls)| vec![label.clone(), calls.to_string()])
            .collect();
        println!("== kernel dispatch (top {}) ==", rows.len());
        print_table(&headers, &rows);
    }
}

/// `BENCH_trace.json`: flat machine-readable rollup of one traced run.
fn bench_trace_json(
    version: Version,
    ranks: usize,
    trace: &obskit::Trace,
    per_rank: &[(StageTimings, CommStats)],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"version\": {},", json::string(version.label()));
    let _ = writeln!(out, "  \"ranks\": {ranks},");
    let _ = writeln!(out, "  \"flops\": {},", trace.counters.flops);
    let _ = writeln!(out, "  \"bytes_moved\": {},", trace.counters.bytes_moved);
    let _ = writeln!(out, "  \"fft_calls\": {},", trace.counters.fft_calls);
    let disp: Vec<String> = trace
        .counters
        .kernel_dispatch
        .iter()
        .map(|(label, calls)| format!("{}: {calls}", json::string(label)))
        .collect();
    let _ = writeln!(out, "  \"kernel_dispatch\": {{{}}},", disp.join(", "));
    out.push_str("  \"stage_seconds_by_rank\": [\n");
    for (rank, _) in per_rank.iter().enumerate() {
        let derived = StageTimings::from_trace(trace, rank);
        let fields: Vec<String> = derived
            .stages()
            .iter()
            .map(|(name, s)| format!("{}: {}", json::string(name), json::number(*s)))
            .collect();
        let _ = write!(out, "    {{{}}}", fields.join(", "));
        out.push_str(if rank + 1 < per_rank.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"comm_by_op\": [\n");
    for (rank, (_, stats)) in per_rank.iter().enumerate() {
        let ops: Vec<String> = stats
            .per_op()
            .into_iter()
            .map(|(name, op)| {
                format!(
                    "{}: {{\"calls\": {}, \"bytes\": {}, \"seconds\": {}}}",
                    json::string(name),
                    op.calls,
                    op.bytes,
                    json::number(op.seconds)
                )
            })
            .collect();
        let _ = write!(out, "    {{{}}}", ops.join(", "));
        out.push_str(if rank + 1 < per_rank.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// `repro trace-report <path> [--check]`.
pub fn run_trace_report(path: &Path, check: bool) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    match obskit::chrome::validate_chrome_trace(&text) {
        Ok(stats) => {
            println!(
                "{}: valid chrome trace — {} lanes, {} spans, {} instants",
                path.display(),
                stats.lanes,
                stats.spans,
                stats.instants
            );
            if !stats.categories.is_empty() {
                println!("categories: {}", stats.categories.join(", "));
            }
            Ok(())
        }
        Err(e) => {
            if check {
                Err(format!("{}: INVALID — {e}", path.display()))
            } else {
                println!("{}: INVALID — {e}", path.display());
                Ok(())
            }
        }
    }
}

fn human_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.2} GB", b as f64 / 1e9)
    } else if b >= 1_000_000 {
        format!("{:.2} MB", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.2} kB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_labels_parse_case_insensitively() {
        assert_eq!(
            parse_version("implicit-kmeans-isdf-lobpcg"),
            Some(Version::ImplicitKmeansIsdfLobpcg)
        );
        assert_eq!(parse_version("NAIVE"), Some(Version::Naive));
        assert_eq!(parse_version("Kmeans-ISDF"), Some(Version::KmeansIsdf));
        assert_eq!(parse_version("nope"), None);
    }

    #[test]
    fn human_bytes_scales() {
        assert_eq!(human_bytes(17), "17 B");
        assert_eq!(human_bytes(2_500), "2.50 kB");
        assert_eq!(human_bytes(3_000_000), "3.00 MB");
    }
}
