//! `repro serve-report` — throughput, latency, and tenant-isolation gates
//! for the `served` multi-tenant scheduler, written to `BENCH_serve.json`.
//!
//! Four measurements, all on a 4-rank / 2-group service (the smallest
//! topology where two solver groups genuinely run side by side):
//!
//! 1. **Mixed-tenant workload** — ≥ 32 jobs from four tenants over three
//!    problem structures with varied seeds and state counts, submitted from
//!    one client thread per job. Reports throughput (jobs/s) and the
//!    client-observed p50/p99 latency, plus how much batching and caching
//!    the scheduler found in the mix.
//! 2. **Batched vs. unbatched same-shape throughput** — the same stream of
//!    same-shape jobs pushed through two identically configured services,
//!    one with `max_batch = 1` (every job pays its own Hamiltonian build)
//!    and one with batching on (the build is shared per batch). The result
//!    cache is disabled (zero TTL) on both sides so the comparison isolates
//!    batching. `--check` gates batched ≥ 1.3× unbatched throughput.
//! 3. **Cache-hit latency** — a cold solve vs. repeat submissions of the
//!    identical spec, which complete at admission from the result cache.
//!    `--check` gates hits ≥ 10× faster than the cold solve.
//! 4. **Fault-isolation campaign** — for each fault kind (NaN poison on the
//!    distributed build, +Inf poison, and a comm-delay "rank stall"), an
//!    attacker tenant carrying the fault plan is co-scheduled with clean
//!    victim jobs of the *same structure*. Every victim's eigenvalues must
//!    be bitwise identical to a fault-free solo `distributed_solve_with`
//!    run at the same group size, and every injected fault must actually
//!    fire inside the attacker's window. `--check` gates on zero
//!    cross-tenant contaminations and zero unfired plans.

use crate::report::{json, quantile};
use faultkit::{FaultKind, FaultPlan};
use lrtddft::{synthetic_problem, CasidaProblem, Solver};
use parcomm::spmd;
use served::{JobSpec, ServeConfig, Service};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// World size of every service in this report.
const RANKS: usize = 4;
/// Solver groups the world splits into (group size = 2).
const GROUPS: usize = 2;
/// `--check` gate: batched same-shape throughput over unbatched.
const BATCH_SPEEDUP_GATE: f64 = 1.3;
/// `--check` gate: cold-solve latency over cache-hit latency.
const CACHE_SPEEDUP_GATE: f64 = 10.0;

struct Workload {
    grid: [usize; 3],
    box_len: f64,
    n_v: usize,
    n_c: usize,
    /// Mixed-workload job count (acceptance floor: 32).
    mixed_jobs: usize,
    /// Same-shape stream length for the batching comparison.
    stream_jobs: usize,
}

fn workload(quick: bool) -> Workload {
    if quick {
        Workload { grid: [8, 8, 8], box_len: 6.0, n_v: 2, n_c: 2, mixed_jobs: 32, stream_jobs: 16 }
    } else {
        Workload {
            grid: [10, 10, 10],
            box_len: 8.0,
            n_v: 3,
            n_c: 3,
            mixed_jobs: 48,
            stream_jobs: 24,
        }
    }
}

fn config() -> ServeConfig {
    ServeConfig { ranks: RANKS, groups: GROUPS, ..Default::default() }
}

// ---- 1. mixed-tenant workload ----------------------------------------------

struct MixedResult {
    jobs: usize,
    wall_s: f64,
    throughput: f64,
    p50_s: f64,
    p99_s: f64,
    cache_hits: usize,
    /// Mean batch size over the jobs that ran on a solver group.
    mean_batch: f64,
}

/// Four tenants, three structures, varied seeds and state counts: enough
/// diversity that the scheduler sees batchable twins, cacheable repeats,
/// and singletons in one stream. One client thread per job measures the
/// submit→result latency the tenant actually observes.
fn mixed_workload(w: &Workload) -> MixedResult {
    let structures: Vec<Arc<CasidaProblem>> = (0..3)
        .map(|i| Arc::new(synthetic_problem(w.grid, w.box_len, w.n_v, w.n_c + i)))
        .collect();
    let service = Service::start(config());
    let n = w.mixed_jobs;
    let t0 = Instant::now();
    let mut outcomes: Vec<(f64, served::JobResult)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let problem = Arc::clone(&structures[i % structures.len()]);
                let service = &service;
                s.spawn(move || {
                    let solver = Solver::builder()
                        .seed(0x5eed + (i / 8) as u64)
                        .n_states(2 + i % 2)
                        .build();
                    let spec = JobSpec::new(1 + (i % 4) as u64, problem).with_solver(solver);
                    let start = Instant::now();
                    let handle = service.submit(spec).expect("mixed workload fits the quotas");
                    let result = handle.wait().expect("job completed");
                    (start.elapsed().as_secs_f64(), result)
                })
            })
            .collect();
        for h in handles {
            outcomes.push(h.join().expect("client thread"));
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    service.shutdown();

    let mut lat: Vec<f64> = outcomes.iter().map(|(l, _)| *l).collect();
    lat.sort_by(f64::total_cmp);
    let cache_hits = outcomes.iter().filter(|(_, r)| r.cache_hit).count();
    let ran: Vec<usize> =
        outcomes.iter().filter(|(_, r)| !r.cache_hit).map(|(_, r)| r.batch_size).collect();
    MixedResult {
        jobs: n,
        wall_s,
        throughput: n as f64 / wall_s,
        p50_s: quantile(&lat, 0.50),
        p99_s: quantile(&lat, 0.99),
        cache_hits,
        mean_batch: ran.iter().sum::<usize>() as f64 / ran.len().max(1) as f64,
    }
}

// ---- 2. batched vs. unbatched same-shape throughput -------------------------

/// Push `n` identical-shape jobs through a service with the given batch cap
/// and return (wall seconds, mean batch size). Zero cache TTL keeps every
/// job on a solver group, so the only variable is how many jobs share one
/// Hamiltonian build. A warm-up job runs first so pool boot (thread spawn,
/// communicator split) is not billed to either side.
fn same_shape_wall(problem: &Arc<CasidaProblem>, n: usize, max_batch: usize) -> (f64, f64) {
    let service = Service::start(ServeConfig {
        max_batch,
        cache_ttl: Duration::ZERO,
        ..config()
    });
    let spec = |tenant: u64| JobSpec::new(tenant, Arc::clone(problem));
    service.submit(spec(0)).expect("warm-up").wait().expect("warm-up completes");

    let t0 = Instant::now();
    let handles: Vec<_> =
        (0..n).map(|i| service.submit(spec(1 + i as u64)).expect("admitted")).collect();
    let results: Vec<_> = handles.iter().map(|h| h.wait().expect("completed")).collect();
    let wall = t0.elapsed().as_secs_f64();
    service.shutdown();
    let mean_batch =
        results.iter().map(|r| r.batch_size).sum::<usize>() as f64 / results.len() as f64;
    (wall, mean_batch)
}

// ---- 3. cache-hit latency ----------------------------------------------------

struct CacheResult {
    cold_s: f64,
    warm_s: f64,
    speedup: f64,
}

fn cache_latency() -> CacheResult {
    // A hit costs the same whatever the problem size, so measure against a
    // realistically sized cold solve — the quick workload's sub-millisecond
    // problems would understate what the cache buys.
    let problem = Arc::new(synthetic_problem([12, 12, 12], 8.0, 4, 4));
    let service = Service::start(config());
    let spec = || JobSpec::new(7, Arc::clone(&problem));
    // Boot warm-up on a different seed so the cold measurement below still
    // misses the cache.
    let boot = JobSpec::new(7, Arc::clone(&problem))
        .with_solver(Solver::builder().seed(0xb007).build());
    service.submit(boot).expect("warm-up").wait().expect("warm-up completes");

    let t0 = Instant::now();
    let cold = service.submit(spec()).expect("cold").wait().expect("cold completes");
    let cold_s = t0.elapsed().as_secs_f64();
    assert!(!cold.cache_hit, "first submission must miss the cache");

    // Median of five repeats — sub-microsecond timings are noisy.
    let mut warm: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            let hit = service.submit(spec()).expect("warm").wait().expect("warm completes");
            assert!(hit.cache_hit, "repeat submission must hit the cache");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    warm.sort_by(f64::total_cmp);
    let warm_s = warm[warm.len() / 2];
    service.shutdown();
    CacheResult { cold_s, warm_s, speedup: cold_s / warm_s.max(1e-9) }
}

// ---- 4. fault-isolation campaign ---------------------------------------------

struct FaultCase {
    name: &'static str,
    plan: FaultPlan,
}

fn fault_cases() -> Vec<FaultCase> {
    vec![
        FaultCase {
            name: "nan-poison build",
            plan: FaultPlan::new(0xbad).with("par.v_tilde", 0, FaultKind::NanPoison),
        },
        FaultCase {
            name: "inf-poison build",
            plan: FaultPlan::new(0xbad).with("par.v_tilde", 0, FaultKind::InfPoison),
        },
        FaultCase {
            // A "rank stall": the progress engine sleeps before the first
            // collective of each flavour the attacker's solve issues.
            name: "comm-delay stall",
            plan: FaultPlan::new(0xbad)
                .with("comm.ireduce", 0, FaultKind::CommDelay { micros: 2000 })
                .with("comm.iallreduce", 0, FaultKind::CommDelay { micros: 2000 })
                .with("comm.iallgatherv", 0, FaultKind::CommDelay { micros: 2000 }),
        },
    ]
}

struct FaultTrial {
    name: &'static str,
    fault_fired: bool,
    victims_bitwise: bool,
    attacker_events: Vec<String>,
}

/// One attacker (fault plan armed) co-scheduled with three same-structure
/// victims on a fresh service. The victims' eigenvalues are compared
/// bitwise against a fault-free solo run at the same group size — the
/// strongest isolation statement the simulated runtime can make.
fn fault_trial(case: FaultCase, problem: &Arc<CasidaProblem>, oracle: &[f64]) -> FaultTrial {
    let service = Service::start(config());
    let victim = || JobSpec::new(1, Arc::clone(problem));
    let attacker = JobSpec::new(666, Arc::clone(problem)).with_fault_plan(case.plan);

    // Interleave so the attacker genuinely shares the service (and possibly
    // a group's back-to-back schedule) with victim work.
    let v1 = service.submit(victim()).expect("victim 1");
    let a = service.submit(attacker).expect("attacker");
    let v2 = service.submit(victim()).expect("victim 2");
    let v3 = service.submit(victim()).expect("victim 3");

    let ra = a.wait().expect("attacker completes");
    let victims = [v1.wait(), v2.wait(), v3.wait()];
    service.shutdown();

    let victims_bitwise = victims.iter().all(|r| {
        let r = r.as_ref().expect("victim completes");
        r.values.len() == oracle.len()
            && r.values.iter().zip(oracle).all(|(a, b)| a.to_bits() == b.to_bits())
    });
    FaultTrial {
        name: case.name,
        fault_fired: !ra.fault_events.is_empty(),
        victims_bitwise,
        attacker_events: ra.fault_events,
    }
}

pub fn run(out_dir: &Path, quick: bool, check: bool) -> std::io::Result<()> {
    let w = workload(quick);
    println!(
        "serve-report: {} ranks / {} groups, grid {:?}, N_v={} N_c={}",
        RANKS, GROUPS, w.grid, w.n_v, w.n_c
    );

    // ---- mixed-tenant workload -------------------------------------------
    let mixed = mixed_workload(&w);
    crate::report::print_table(
        &["jobs", "wall (s)", "jobs/s", "p50 (ms)", "p99 (ms)", "cache hits", "mean batch"],
        &[vec![
            mixed.jobs.to_string(),
            format!("{:.3}", mixed.wall_s),
            format!("{:.1}", mixed.throughput),
            format!("{:.3}", mixed.p50_s * 1e3),
            format!("{:.3}", mixed.p99_s * 1e3),
            mixed.cache_hits.to_string(),
            format!("{:.2}", mixed.mean_batch),
        ]],
    );

    // ---- batched vs. unbatched ---------------------------------------------
    let stream_problem = Arc::new(synthetic_problem(w.grid, w.box_len, w.n_v, w.n_c));
    let (unbatched_s, unbatched_mean) = same_shape_wall(&stream_problem, w.stream_jobs, 1);
    let (batched_s, batched_mean) = same_shape_wall(&stream_problem, w.stream_jobs, 8);
    let batch_speedup = unbatched_s / batched_s;
    crate::report::print_table(
        &["schedule", "jobs", "wall (s)", "jobs/s", "mean batch"],
        &[
            vec![
                "unbatched (max_batch=1)".into(),
                w.stream_jobs.to_string(),
                format!("{unbatched_s:.3}"),
                format!("{:.1}", w.stream_jobs as f64 / unbatched_s),
                format!("{unbatched_mean:.2}"),
            ],
            vec![
                "batched (max_batch=8)".into(),
                w.stream_jobs.to_string(),
                format!("{batched_s:.3}"),
                format!("{:.1}", w.stream_jobs as f64 / batched_s),
                format!("{batched_mean:.2}"),
            ],
        ],
    );
    println!("same-shape batching speedup: {batch_speedup:.2}x (gate ≥ {BATCH_SPEEDUP_GATE}x)");

    // ---- cache-hit latency --------------------------------------------------
    let cache = cache_latency();
    println!(
        "cache: cold {:.3} ms, hit {:.6} ms, speedup {:.0}x (gate ≥ {CACHE_SPEEDUP_GATE}x)",
        cache.cold_s * 1e3,
        cache.warm_s * 1e3,
        cache.speedup
    );

    // ---- fault-isolation campaign -------------------------------------------
    // Fault-free oracle at the group size: what every victim must reproduce
    // bit for bit, whatever the attacker injects next to them.
    let victim_solver = JobSpec::new(1, Arc::clone(&stream_problem)).solver;
    let oracle =
        spmd(RANKS / GROUPS, |c| victim_solver.solve_distributed(c, &stream_problem).0)[0].clone();
    let trials: Vec<FaultTrial> =
        fault_cases().into_iter().map(|case| fault_trial(case, &stream_problem, &oracle)).collect();
    let rows: Vec<Vec<String>> = trials
        .iter()
        .map(|t| {
            vec![
                t.name.to_string(),
                if t.fault_fired { "yes" } else { "NO" }.to_string(),
                if t.victims_bitwise { "bitwise" } else { "CONTAMINATED" }.to_string(),
                t.attacker_events.len().to_string(),
            ]
        })
        .collect();
    crate::report::print_table(&["fault", "fired", "victims (3 each)", "events"], &rows);
    let contaminations = trials.iter().filter(|t| !t.victims_bitwise).count();
    let unfired = trials.iter().filter(|t| !t.fault_fired).count();
    println!(
        "fault campaign: {} trials, {contaminations} cross-tenant contaminations, \
         {unfired} unfired plans",
        trials.len()
    );

    // ---- BENCH_serve.json ----------------------------------------------------
    let trial_entries: Vec<String> = trials
        .iter()
        .map(|t| {
            format!(
                "    {{\"fault\": {}, \"fired\": {}, \"victims_bitwise\": {}, \"events\": {}}}",
                json::string(t.name),
                t.fault_fired,
                t.victims_bitwise,
                json::string_array(&t.attacker_events)
            )
        })
        .collect();
    let json_text = format!(
        "{{\n  \"benchmark\": \"serve-report\",\n  \"config\": {{\"ranks\": {RANKS}, \
         \"groups\": {GROUPS}, \"grid\": [{}, {}, {}], \"n_v\": {}, \"n_c\": {}}},\n  \
         \"mixed_workload\": {{\"jobs\": {}, \"wall_s\": {}, \"throughput_jobs_per_s\": {}, \
         \"p50_s\": {}, \"p99_s\": {}, \"cache_hits\": {}, \"mean_batch_size\": {}}},\n  \
         \"batching\": {{\"jobs\": {}, \"unbatched_wall_s\": {}, \"batched_wall_s\": {}, \
         \"unbatched_mean_batch\": {}, \"batched_mean_batch\": {}, \"speedup\": {}}},\n  \
         \"cache\": {{\"cold_s\": {}, \"hit_s\": {}, \"speedup\": {}}},\n  \
         \"fault_isolation\": {{\"contaminations\": {}, \"unfired\": {}, \"trials\": [\n{}\n  ]}}\n}}\n",
        w.grid[0],
        w.grid[1],
        w.grid[2],
        w.n_v,
        w.n_c,
        mixed.jobs,
        json::number(mixed.wall_s),
        json::number(mixed.throughput),
        json::number(mixed.p50_s),
        json::number(mixed.p99_s),
        mixed.cache_hits,
        json::number(mixed.mean_batch),
        w.stream_jobs,
        json::number(unbatched_s),
        json::number(batched_s),
        json::number(unbatched_mean),
        json::number(batched_mean),
        json::number(batch_speedup),
        json::number(cache.cold_s),
        json::number(cache.warm_s),
        json::number(cache.speedup),
        contaminations,
        unfired,
        trial_entries.join(",\n")
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_serve.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json_text.as_bytes())?;
    println!("wrote {}", path.display());

    if check {
        let mut failures = Vec::new();
        if batch_speedup < BATCH_SPEEDUP_GATE {
            failures.push(format!(
                "same-shape batching speedup {batch_speedup:.2}x below gate \
                 {BATCH_SPEEDUP_GATE}x ({unbatched_s:.3}s unbatched vs {batched_s:.3}s batched)"
            ));
        }
        if cache.speedup < CACHE_SPEEDUP_GATE {
            failures.push(format!(
                "cache-hit speedup {:.1}x below gate {CACHE_SPEEDUP_GATE}x \
                 (cold {:.6}s vs hit {:.6}s)",
                cache.speedup, cache.cold_s, cache.warm_s
            ));
        }
        if contaminations > 0 {
            failures.push(format!(
                "{contaminations} fault trial(s) contaminated a co-scheduled tenant \
                 (victim eigenvalues diverged from the fault-free solo run)"
            ));
        }
        if unfired > 0 {
            failures.push(format!(
                "{unfired} fault plan(s) never fired — the campaign proved nothing"
            ));
        }
        if failures.is_empty() {
            println!("serve-report --check: all gates passed");
        } else {
            for f in &failures {
                eprintln!("serve-report --check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}
