//! # bench — harness regenerating every table and figure of the paper
//!
//! The `repro` binary (this crate's `main.rs`) has one subcommand per
//! experiment; this library holds the shared machinery:
//!
//! * [`scaling`] — the calibrated strong/weak-scaling model: per-stage
//!   compute work measured from real runs, collective communication charged
//!   by the α–β model with the byte counts of the actual implementation.
//!   This is how Cori-scale rank counts (the paper runs up to 12,288 cores;
//!   this host has one) are extrapolated — see DESIGN.md §2.
//! * [`report`] — fixed-width table printing and JSON result records.

pub mod chaos_report;
pub mod comm_report;
pub mod experiments;
pub mod fault_report;
pub mod fft_report;
pub mod gemm_report;
pub mod perf_report;
pub mod report;
pub mod scaling;
pub mod serve_report;
pub mod trace_cmd;

pub use report::{print_table, ExperimentRecord};
pub use scaling::{CommPattern, ScalingStudy, Stage};
