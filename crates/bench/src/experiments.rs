//! One function per paper table/figure. Each returns an
//! [`ExperimentRecord`] (also printed) so `repro all` can assemble
//! EXPERIMENTS.md data.

use crate::report::{print_table, ExperimentRecord};
use crate::scaling::{CommPattern, ScalingStudy, Stage};
use isdf::{kmeans_points, pair_weights, qrcp_points, KmeansOptions};
use lrtddft::{
    parallel::{distributed_dense_hamiltonian_with, distributed_isdf_hamiltonian_with},
    pipeline::{gram_allreduce, gram_pipelined_reduce},
    problem::{silicon_like_problem, CasidaProblem},
    IsdfRank, SolveOptions, Solver, StageTimings, Version,
};
use mathkit::Mat;
use parcomm::{spmd, CostModel};
use pwdft::{bilayer_graphene, gaussian_dos, scf, water_in_box, Grid, ScfOptions};

/// All serial solves go through the `Solver` facade.
fn run_solve(p: &CasidaProblem, v: Version, o: &SolveOptions) -> lrtddft::Solution {
    Solver::builder().version(v).options(*o).build().solve(p).unwrap()
}
use std::time::Instant;

/// Problem scale knob for the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale default on a laptop core.
    Default,
    /// Seconds-scale smoke run (CI-friendly).
    Quick,
    /// Larger ladder (tens of minutes).
    Full,
}

fn fmt_s(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.1}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

// ---------------------------------------------------------------- Table 3

/// Paper Table 3: time to select interpolation points, QRCP vs K-Means.
pub fn table3(scale: Scale) -> ExperimentRecord {
    // Paper: Si64, N_μ ∈ {512, 1024, 2048}. Scaled: a Si64-shaped synthetic
    // workload and N_μ scaled by the same N_e ratio.
    let (problem, n_mus): (CasidaProblem, Vec<usize>) = match scale {
        Scale::Quick => (silicon_like_problem(1, 12, 8), vec![16, 32, 64]),
        Scale::Default => (silicon_like_problem(2, 16, 16), vec![32, 64, 128]),
        Scale::Full => (silicon_like_problem(2, 32, 16), vec![128, 256, 512]),
    };
    let coords: Vec<[f64; 3]> = (0..problem.n_r()).map(|i| problem.grid.coords(i)).collect();
    let w = pair_weights(&problem.psi_v, &problem.psi_c);

    let mut rows = Vec::new();
    for &n_mu in &n_mus {
        let t0 = Instant::now();
        let q = qrcp_points(&problem.psi_v, &problem.psi_c, n_mu);
        let t_qrcp = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let k = kmeans_points(&coords, &w, n_mu, KmeansOptions::default());
        let t_kmeans = t0.elapsed().as_secs_f64();
        rows.push(vec![
            n_mu.to_string(),
            fmt_s(t_qrcp),
            fmt_s(t_kmeans),
            format!("{:.1}x", t_qrcp / t_kmeans.max(1e-12)),
            q.len().to_string(),
            k.points.len().to_string(),
        ]);
    }
    let headers = ["N_mu", "QRCP (s)", "K-Means (s)", "speedup", "#pts QRCP", "#pts KM"];
    println!("\n== Table 3: interpolation-point selection time (paper: 10.12/1.61, 42.16/2.85, 147.27/5.57 s) ==");
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "table3",
        &headers,
        &rows,
        "Scaled Si64-shaped workload; paper shape: K-Means one order of magnitude faster, gap widening with N_mu.",
    )
}

// ---------------------------------------------------------------- Table 4

/// Paper Table 4: complexity model + measured stage times of all 5 versions.
pub fn table4(scale: Scale) -> ExperimentRecord {
    let problem = match scale {
        Scale::Quick => silicon_like_problem(1, 12, 4),
        _ => silicon_like_problem(1, 16, 8),
    };
    let opts = SolveOptions::new().n_states(3);
    let mut rows = Vec::new();
    for v in Version::all() {
        let t0 = Instant::now();
        let s = run_solve(&problem, v, &opts);
        let wall = t0.elapsed().as_secs_f64();
        rows.push(vec![
            v.label().to_string(),
            fmt_s(s.timings.construction()),
            fmt_s(s.timings.diag),
            fmt_s(wall),
            format!("{:.2e}", s.complexity.construct_flops),
            format!("{:.2e}", s.complexity.diag_flops),
            format!("{:.1} MB", s.complexity.total_bytes() / 1e6),
        ]);
    }
    let headers =
        ["version", "construct (s)", "diag (s)", "total (s)", "model C-flops", "model D-flops", "model mem"];
    println!("\n== Table 4: five versions, measured stages + complexity model ==");
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "table4",
        &headers,
        &rows,
        "Implicit-Kmeans-ISDF-LOBPCG should dominate both phases; model columns are the paper's Table 4 leading terms.",
    )
}

// ---------------------------------------------------------------- Table 5

/// Paper Table 5: lowest excitation energies, naive vs ISDF-LOBPCG relative
/// error, on real SCF orbitals (H2O box + Si8). Our naive dense solver plays
/// the role of the QE reference (see DESIGN.md substitution table).
pub fn table5(scale: Scale) -> ExperimentRecord {
    let mut rows = Vec::new();
    let mut run_system = |label: &str, problem: &CasidaProblem, n_mu: usize| {
        let naive = run_solve(problem, Version::Naive, &SolveOptions::new().n_states(3));
        let isdf = run_solve(
            problem,
            Version::ImplicitKmeansIsdfLobpcg,
            &SolveOptions::new().n_states(3).rank(IsdfRank::Fixed(n_mu)),
        );
        for i in 0..3.min(naive.energies.len()) {
            let e_ref = naive.energies[i];
            let e_isdf = isdf.energies[i];
            let rel = (e_ref - e_isdf) / e_ref.abs().max(1e-300);
            rows.push(vec![
                label.to_string(),
                i.to_string(),
                format!("{e_ref:.6}"),
                format!("{e_isdf:.6}"),
                format!("{:.4}%", 100.0 * rel),
            ]);
        }
    };

    // H2O in a box (paper: 11 Å box, Ecut 100 Ha; scaled grid here).
    // Power-of-two grids keep the radix-2 FFT path (24³ would fall back to
    // the ~6x slower Bluestein transform).
    let (h2o_grid_n, si_grid, scf_iters) = match scale {
        Scale::Quick => (16usize, 12usize, 8),
        Scale::Default => (16, 16, 20),
        Scale::Full => (32, 16, 35),
    };
    let water = water_in_box(14.0);
    let wgrid = Grid::new(water.cell, [h2o_grid_n, h2o_grid_n, h2o_grid_n]);
    let wgs = scf(
        &wgrid,
        &water,
        ScfOptions { n_conduction: 4, max_iter: scf_iters, ..Default::default() },
    );
    let wproblem = CasidaProblem::from_ground_state(&wgrid, &wgs);
    run_system("H2O", &wproblem, (wproblem.n_cv() * 7 / 8).max(4));

    // Si8 (scaled from the paper's Si64).
    let si = pwdft::silicon_supercell(1);
    let sgrid = Grid::new(si.cell, [si_grid, si_grid, si_grid]);
    let sgs = scf(
        &sgrid,
        &si,
        ScfOptions { n_conduction: 4, max_iter: scf_iters, ..Default::default() },
    );
    let sproblem = CasidaProblem::from_ground_state(&sgrid, &sgs);
    run_system("Si8", &sproblem, (sproblem.n_cv() * 7 / 8).max(8));

    let headers = ["system", "state", "naive (Ha)", "ISDF-LOBPCG (Ha)", "rel. error"];
    println!("\n== Table 5: excitation-energy accuracy (paper: errors 0.12%-0.92%) ==");
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "table5",
        &headers,
        &rows,
        "Reference = our dense naive solver (QE substitution per DESIGN.md); N_mu = 7/8 N_cv. Paper shape: sub-percent relative errors.",
    )
}

// ---------------------------------------------------------------- Table 6

/// Paper Table 6: wall-clock of naive vs ISDF-LOBPCG across system sizes.
pub fn table6(scale: Scale) -> ExperimentRecord {
    let ladder: Vec<(&str, usize, usize, usize)> = match scale {
        Scale::Quick => vec![("Si8-like", 1, 12, 4), ("Si8+", 1, 16, 8)],
        Scale::Default => vec![
            ("Si8-like", 1, 16, 8),
            ("Si64-like", 2, 16, 8),
            ("Si64-like+", 2, 16, 16),
        ],
        Scale::Full => vec![
            ("Si8-like", 1, 16, 8),
            ("Si64-like", 2, 16, 16),
            ("Si216-like", 3, 32, 8),
        ],
    };
    let mut rows = Vec::new();
    for (label, n_cells, grid_n, n_c) in ladder {
        let problem = silicon_like_problem(n_cells, grid_n, n_c);
        let opts = SolveOptions::new().n_states(8.min(problem.n_cv()));
        let t0 = Instant::now();
        let naive = run_solve(&problem, Version::Naive, &opts);
        let t_naive = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let fast = run_solve(&problem, Version::ImplicitKmeansIsdfLobpcg, &opts);
        let t_fast = t0.elapsed().as_secs_f64();
        let err = naive
            .energies
            .iter()
            .zip(&fast.energies)
            .map(|(a, b)| ((a - b) / a.abs().max(1e-300)).abs())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            label.to_string(),
            format!("{}", problem.n_cv()),
            fmt_s(t_naive),
            fmt_s(t_fast),
            format!("{:.2}x", t_naive / t_fast.max(1e-12)),
            format!("{:.3}%", 100.0 * err),
        ]);
    }
    let headers = ["system", "N_cv", "Naive (s)", "ISDF-LOBPCG (s)", "speedup", "max rel err"];
    println!("\n== Table 6: naive vs ISDF-LOBPCG wall-clock (paper: 13.06x / 9.89x / 7.79x / 6.26x) ==");
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "table6",
        &headers,
        &rows,
        "Paper shape: order-of-magnitude speedups, ratio drifting down as the (well-parallelized) dense parts grow.",
    )
}

// ---------------------------------------------------------------- Figure 2

/// Paper Fig. 2: K-Means interpolation points on a wavefunction projection.
pub fn fig2(_scale: Scale) -> ExperimentRecord {
    let problem = silicon_like_problem(1, 16, 4);
    let w = pair_weights(&problem.psi_v, &problem.psi_c);
    let coords: Vec<[f64; 3]> = (0..problem.n_r()).map(|i| problem.grid.coords(i)).collect();
    let out = kmeans_points(&coords, &w, 15, KmeansOptions::default());

    // Project weights and points onto the x-y plane.
    let n = problem.grid.n[0];
    let mut proj = vec![0.0f64; n * n];
    for i3 in 0..problem.grid.n[2] {
        for i2 in 0..problem.grid.n[1] {
            for i1 in 0..n {
                proj[i1 + n * i2] += w[problem.grid.idx(i1, i2, i3)];
            }
        }
    }
    let pmax = proj.iter().cloned().fold(0.0f64, f64::max);
    let mut marks = vec![false; n * n];
    for &p in &out.points {
        let i1 = p % n;
        let i2 = (p / n) % problem.grid.n[1];
        marks[i1 + n * i2] = true;
    }
    println!("\n== Figure 2: orbital-pair weight projection (shade) + K-Means points (*) ==");
    let shades = [' ', '.', ':', '-', '=', '+', 'x', '#'];
    for i2 in (0..n).rev() {
        let mut line = String::new();
        for i1 in 0..n {
            if marks[i1 + n * i2] {
                line.push('*');
            } else {
                let level = (proj[i1 + n * i2] / pmax * 7.0).round() as usize;
                line.push(shades[level.min(7)]);
            }
        }
        println!("  {line}");
    }
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .map(|&p| {
            let c = problem.grid.coords(p);
            vec![p.to_string(), format!("{:.2}", c[0]), format!("{:.2}", c[1]), format!("{:.2}", c[2])]
        })
        .collect();
    let headers = ["grid idx", "x (Bohr)", "y", "z"];
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "fig2",
        &headers,
        &rows,
        "15 interpolation points cluster on the high-weight (atom) regions, as in the paper's figure.",
    )
}

// ---------------------------------------------------------------- Figure 5

/// Paper Figs. 4–5: monolithic GEMM+Allreduce vs pipelined GEMM+Reduce.
pub fn fig5(scale: Scale) -> ExperimentRecord {
    let (nr, ncv) = match scale {
        Scale::Quick => (2048, 128),
        _ => (4096, 512),
    };
    let a = Mat::from_fn(nr, ncv, |i, j| (((i * 31 + j * 7) % 23) as f64) * 0.05 - 0.4);
    let mut rows = Vec::new();
    let mut comm_by_ranks = Vec::new();
    for ranks in [2usize, 4] {
        let res = spmd(ranks, |c| {
            let rr = parcomm::block_ranges(nr, ranks)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let t0 = Instant::now();
            let mono = gram_allreduce(c, &al, &al, 1.0);
            let t_mono = t0.elapsed().as_secs_f64();
            c.barrier();
            let t0 = Instant::now();
            let pipe = gram_pipelined_reduce(c, &al, &al, 1.0).expect("pipelined reduce");
            let t_pipe = t0.elapsed().as_secs_f64();
            (t_mono, t_pipe, mono.peak_words, pipe.peak_words, c.stats())
        });
        comm_by_ranks
            .push((ranks, res.iter().map(|r| (Default::default(), r.4)).collect::<Vec<_>>()));
        let (tm, tp, wm, wp) = res.into_iter().fold((0.0f64, 0.0f64, 0usize, 0usize), |acc, r| {
            (acc.0.max(r.0), acc.1.max(r.1), acc.2.max(r.2), acc.3.max(r.3))
        });
        rows.push(vec![
            format!("{ranks} (measured)"),
            fmt_s(tm),
            fmt_s(tp),
            format!("{:.1} MB", wm as f64 * 8.0 / 1e6),
            format!("{:.1} MB", wp as f64 * 8.0 / 1e6),
        ]);
    }
    // Modeled comm at Cori-like scales.
    let model = CostModel::default();
    for p in [128usize, 1024] {
        let bytes = ncv * ncv * 8;
        let mono = model.allreduce(p, bytes);
        let pipe = p as f64 * model.reduce(p, bytes / p);
        rows.push(vec![
            format!("{p} (alpha-beta model)"),
            fmt_s(mono),
            fmt_s(pipe),
            format!("{:.1} MB", bytes as f64 / 1e6),
            format!("{:.1} MB", bytes as f64 / p as f64 / 1e6),
        ]);
    }
    let headers = ["ranks", "monolithic (s)", "pipelined (s)", "mem/rank mono", "mem/rank pipe"];
    println!("\n== Figure 5: GEMM+reduction, monolithic vs pipelined ==");
    print_table(&headers, &rows);
    for (ranks, per_rank) in &comm_by_ranks {
        println!("\nmeasured run, {ranks} ranks:");
        crate::trace_cmd::print_comm_breakdown(per_rank);
    }
    ExperimentRecord::new(
        "fig5",
        &headers,
        &rows,
        "Pipelined variant stores 1/P of V_Hxc per rank; paper reports the GEMM+Allreduce stage at 12.87% of construction time.",
    )
}

// ------------------------------------------------------- Figures 7/8, weak

/// Calibrate per-stage serial works from real single-rank distributed runs.
pub struct Calibration {
    pub problem_label: String,
    pub n_r: usize,
    pub n_v: usize,
    pub n_c: usize,
    pub n_mu: usize,
    pub naive_t: StageTimings,
    pub isdf_t: StageTimings,
    pub t_syev: f64,
    pub t_lobpcg: f64,
    pub lobpcg_iters: usize,
}

pub fn calibrate(scale: Scale) -> Calibration {
    let (label, problem) = match scale {
        Scale::Quick => ("Si8-like(12)", silicon_like_problem(1, 12, 4)),
        _ => ("Si64-like(16)", silicon_like_problem(2, 16, 8)),
    };
    let n_mu = IsdfRank::default().resolve(problem.n_r(), problem.n_v(), problem.n_c());
    // Single-rank distributed runs give the per-stage serial works.
    let naive_t =
        spmd(1, |c| distributed_dense_hamiltonian_with(c, &problem, &SolveOptions::new()).1)
            .pop()
            .unwrap();
    let isdf_opts = SolveOptions::new().rank(IsdfRank::Fixed(n_mu));
    let isdf_t = spmd(1, |c| distributed_isdf_hamiltonian_with(c, &problem, &isdf_opts).1)
        .pop()
        .unwrap();
    // Diagonalization works measured via the versions API.
    let opts = SolveOptions::new().n_states(8.min(problem.n_cv()));
    let dense = run_solve(&problem, Version::KmeansIsdf, &opts);
    let implicit = run_solve(&problem, Version::ImplicitKmeansIsdfLobpcg, &opts);
    Calibration {
        problem_label: label.to_string(),
        n_r: problem.n_r(),
        n_v: problem.n_v(),
        n_c: problem.n_c(),
        n_mu,
        naive_t,
        isdf_t,
        t_syev: dense.timings.diag,
        t_lobpcg: implicit.timings.diag,
        lobpcg_iters: implicit.lobpcg_iterations.unwrap_or(20),
    }
}

impl Calibration {
    pub fn n_cv(&self) -> usize {
        self.n_v * self.n_c
    }

    /// Strong-scaling study for the naive version.
    pub fn naive_study(&self) -> ScalingStudy {
        let ncv = self.n_cv();
        ScalingStudy::new(
            vec![
                Stage::new("face_split", self.naive_t.face_split, vec![]),
                Stage::new(
                    "fft",
                    self.naive_t.fft,
                    vec![CommPattern::Alltoall { global_bytes: self.n_r * ncv * 8, times: 2 }],
                ),
                Stage::new(
                    "gemm",
                    self.naive_t.gemm,
                    vec![CommPattern::Allreduce { bytes: ncv * ncv * 8, times: 1 }],
                ),
                Stage::new("diag", self.t_syev, vec![CommPattern::ScalapackDiag { n: ncv }]),
            ],
            CostModel::default(),
        )
    }

    /// Strong-scaling study for Kmeans-ISDF with dense diagonalization.
    pub fn isdf_study(&self) -> ScalingStudy {
        let mut stages = self.isdf_construct_stages();
        stages.push(Stage::new("diag", self.t_syev, vec![CommPattern::ScalapackDiag { n: self.n_cv() }]));
        ScalingStudy::new(stages, CostModel::default())
    }

    /// Strong-scaling study for the implicit ISDF-LOBPCG version.
    pub fn isdf_lobpcg_study(&self) -> ScalingStudy {
        let k = 8usize;
        let mut stages = self.isdf_construct_stages();
        stages.push(Stage::new(
            "diag",
            self.t_lobpcg,
            vec![CommPattern::Allreduce {
                bytes: (3 * k) * (3 * k) * 8,
                times: self.lobpcg_iters.max(1),
            }],
        ));
        ScalingStudy::new(stages, CostModel::default())
    }

    /// The Hamiltonian-construction stages shared by the ISDF studies
    /// (paper Fig. 8 scope: K-Means / FFT / MPI / GEMM+Allreduce).
    pub fn isdf_construct_stages(&self) -> Vec<Stage> {
        let nmu = self.n_mu;
        vec![
            Stage::new(
                "kmeans",
                self.isdf_t.kmeans,
                vec![
                    CommPattern::Allgather { total_bytes: self.n_r * 8, times: 1 },
                    CommPattern::Allreduce { bytes: 4 * nmu * 8, times: 30 },
                ],
            ),
            Stage::new(
                "theta",
                self.isdf_t.theta,
                vec![CommPattern::Allreduce { bytes: nmu * (self.n_v + self.n_c) * 8, times: 2 }],
            ),
            Stage::new(
                "fft",
                self.isdf_t.fft,
                vec![CommPattern::Alltoall { global_bytes: self.n_r * nmu * 8, times: 2 }],
            ),
            Stage::new(
                "gemm",
                self.isdf_t.gemm,
                vec![CommPattern::Allreduce { bytes: nmu * nmu * 8, times: 1 }],
            ),
        ]
    }
}

/// Paper Fig. 7: strong scaling of Naive / ISDF / ISDF-LOBPCG.
pub fn fig7(scale: Scale) -> ExperimentRecord {
    let cal = calibrate(scale);
    let ranks = [128usize, 256, 512, 1024, 2048];
    let studies = [
        ("Naive", cal.naive_study()),
        ("ISDF", cal.isdf_study()),
        ("ISDF-LOBPCG", cal.isdf_lobpcg_study()),
    ];
    let mut rows = Vec::new();
    for (label, study) in &studies {
        for row in study.strong_scaling(&ranks) {
            rows.push(vec![
                label.to_string(),
                row.ranks.to_string(),
                fmt_s(row.total_seconds),
                fmt_s(row.compute_seconds),
                fmt_s(row.comm_seconds),
                format!("{:.1}%", 100.0 * row.parallel_efficiency),
            ]);
        }
    }
    let headers = ["version", "cores", "time (s)", "compute", "comm", "efficiency"];
    println!(
        "\n== Figure 7: strong scaling (calibrated on {}, alpha-beta extrapolated; paper: >50% at 2048 cores) ==",
        cal.problem_label
    );
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "fig7",
        &headers,
        &rows,
        "Works measured serially on this host; collectives charged by alpha-beta model (DESIGN.md). Shape: efficiency decays with cores, ISDF-LOBPCG fastest in absolute time.",
    )
}

/// Paper Fig. 8: per-stage strong scaling of Hamiltonian construction.
pub fn fig8(scale: Scale) -> ExperimentRecord {
    let cal = calibrate(scale);
    let study = ScalingStudy::new(cal.isdf_construct_stages(), CostModel::default());
    let ranks = [128usize, 256, 512, 1024, 2048];
    let mut rows = Vec::new();
    for row in study.strong_scaling(&ranks) {
        let mut r = vec![row.ranks.to_string()];
        for (_, secs) in &row.per_stage {
            r.push(fmt_s(*secs));
        }
        r.push(fmt_s(row.comm_seconds));
        r.push(fmt_s(row.total_seconds));
        rows.push(r);
    }
    let headers = ["cores", "kmeans", "theta", "fft", "gemm+allred", "comm(total)", "total"];
    println!("\n== Figure 8: construction-stage strong scaling (paper: all stages scale to 2048 cores; GEMM+Allreduce ~12.87% of construction) ==");
    print_table(&headers, &rows);
    let gemm_frac = cal.isdf_t.gemm / cal.isdf_t.construction().max(1e-12);
    println!("   measured GEMM share of construction at P=1: {:.1}%", 100.0 * gemm_frac);
    ExperimentRecord::new(
        "fig8",
        &headers,
        &rows,
        "Per-stage times from calibrated model; kmeans/fft/gemm scale near-ideally, comm grows with cores.",
    )
}

/// Paper §6.4: weak scaling — Si512→Si4096-shaped ladders at 1024 ranks.
pub fn weak_scaling(scale: Scale) -> ExperimentRecord {
    // Calibrate an effective flop rate from the measured GEMM stage, then
    // evaluate the Table 4 cost model for the paper ladder at P = 1024.
    let cal = calibrate(scale);
    let ncv = cal.n_cv() as f64;
    let gemm_flops = 2.0 * ncv * ncv * cal.n_r as f64; // V_Hxc contraction
    let flop_rate = gemm_flops / cal.naive_t.gemm.max(1e-9);
    let model = CostModel::default();
    let p = 1024usize;

    let ladder: [(&str, usize); 5] =
        [("Si512", 512), ("Si1000", 1000), ("Si1728", 1728), ("Si2744", 2744), ("Si4096", 4096)];
    let mut rows = Vec::new();
    for (label, atoms) in ladder {
        let ne = 2 * atoms; // 4 valence electrons/atom → N_v = 2·atoms
        let n_v = ne;
        let n_c = ne / 8; // paper keeps a modest conduction window
        let n_r = 64 * atoms; // N_r ∝ atoms (fixed E_cut); scaled prefactor
        let n_mu = 10 * atoms;
        let est = lrtddft::metrics::ComplexityEstimate::for_version(
            Version::ImplicitKmeansIsdfLobpcg,
            n_r,
            n_mu,
            n_v,
            n_c,
            8,
        );
        let compute = est.total_flops() / flop_rate / p as f64;
        let comm = model.alltoallv(p, n_r * n_mu * 8 / p) * 2.0
            + model.allreduce(p, n_mu * n_mu * 8)
            + model.allreduce(p, 4 * n_mu * 8) * 30.0;
        rows.push(vec![
            label.to_string(),
            atoms.to_string(),
            format!("{:.2e}", est.total_flops()),
            fmt_s(compute + comm),
        ]);
    }
    let headers = ["system", "atoms", "model flops", "modeled time @1024 (s)"];
    println!("\n== Weak scaling (paper §6.4: 3.58, 10.23, 26.95, 35.58, 41.89 s at 1024 cores) ==");
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "weak",
        &headers,
        &rows,
        "Times grow superlinearly in atoms, matching the paper's O(N^3)-dominated trend; absolute scale set by this host's measured flop rate.",
    )
}

// --------------------------------------------------------------- Ablations

/// Design-choice ablations called out in DESIGN.md:
/// (a) K-Means initialization strategy (the paper argues weight-guided init
///     is essential, §4.2), (b) ISDF rank vs accuracy, (c) LOBPCG vs the
///     Davidson alternative the paper cites.
pub fn ablation(scale: Scale) -> ExperimentRecord {
    use isdf::KmeansInit;
    use lrtddft::lobpcg_driver::{casida_preconditioner, initial_guess};
    use lrtddft::versions::{build_isdf_hamiltonian, PointSelector};
    use mathkit::davidson::{davidson, DavidsonOptions};
    use mathkit::lobpcg::{lobpcg, LobpcgOptions};

    let problem = match scale {
        Scale::Quick => silicon_like_problem(1, 12, 4),
        _ => silicon_like_problem(1, 16, 8),
    };
    let mut rows = Vec::new();

    // (a) K-Means initialization: iterations + objective.
    let w = pair_weights(&problem.psi_v, &problem.psi_c);
    let coords: Vec<[f64; 3]> = (0..problem.n_r()).map(|i| problem.grid.coords(i)).collect();
    let n_mu = IsdfRank::default().resolve(problem.n_r(), problem.n_v(), problem.n_c());
    for init in [KmeansInit::WeightGuided, KmeansInit::PlusPlus, KmeansInit::Random] {
        let t0 = Instant::now();
        let out = kmeans_points(&coords, &w, n_mu, KmeansOptions { init, ..Default::default() });
        rows.push(vec![
            format!("kmeans-init {init:?}"),
            format!("{} iters", out.iterations),
            format!("obj {:.3e}", out.objective),
            fmt_s(t0.elapsed().as_secs_f64()),
        ]);
    }

    // (a') snap rule: ISDF accuracy with nearest-centroid vs max-weight snap.
    {
        use lrtddft::versions::{build_isdf_hamiltonian as bih, PointSelector as PS};
        let reference =
            run_solve(&problem, Version::Naive, &SolveOptions::new().n_states(1));
        for snap in [isdf::SnapRule::NearestCentroid, isdf::SnapRule::MaxWeight] {
            let mut t = StageTimings::default();
            let ham = bih(
                &problem,
                PS::Kmeans(KmeansOptions { snap, ..Default::default() }),
                n_mu,
                &mut t,
            );
            let eig = mathkit::syev(&ham.to_dense());
            let rel = ((eig.values[0] - reference.energies[0]) / reference.energies[0]).abs();
            rows.push(vec![
                format!("kmeans-snap {snap:?}"),
                format!("lambda_0 {:.6}", eig.values[0]),
                format!("rel err {:.2e}", rel),
                String::new(),
            ]);
        }
    }

    // (b) rank sweep: relative error of the lowest excitation vs N_μ.
    let reference = run_solve(&problem, Version::Naive, &SolveOptions::new().n_states(1));
    for frac in [4usize, 8, 16, 32] {
        let n_mu = (problem.n_cv() * frac / 32).max(4);
        let s = run_solve(
            &problem,
            Version::ImplicitKmeansIsdfLobpcg,
            &SolveOptions::new().n_states(1).rank(IsdfRank::Fixed(n_mu)),
        );
        let rel = ((s.energies[0] - reference.energies[0]) / reference.energies[0]).abs();
        rows.push(vec![
            format!("rank N_mu={n_mu} ({frac}/32 N_cv)"),
            format!("lambda_0 {:.6}", s.energies[0]),
            format!("rel err {:.2e}", rel),
            String::new(),
        ]);
    }

    // (c) LOBPCG vs Davidson on the identical implicit operator.
    let mut t = StageTimings::default();
    let ham = build_isdf_hamiltonian(
        &problem,
        PointSelector::Kmeans(KmeansOptions::default()),
        n_mu,
        &mut t,
    );
    let k = 4;
    let x0 = initial_guess(&ham.diag_d, k, 3);
    let opts = LobpcgOptions { max_iter: 400, tol: 1e-8 };
    let t0 = Instant::now();
    let lob = lobpcg(|x| ham.apply(x), casida_preconditioner(&ham.diag_d, 1e-3), &x0, opts)
        .expect("lobpcg breakdown on clean benchmark input");
    let t_lob = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let dav = davidson(
        |x| ham.apply(x),
        casida_preconditioner(&ham.diag_d, 1e-3),
        &x0,
        DavidsonOptions { base: opts, max_space: 6 * k },
    );
    let t_dav = t0.elapsed().as_secs_f64();
    rows.push(vec![
        "eigensolver LOBPCG".into(),
        format!("{} iters", lob.iterations),
        format!("lambda_0 {:.6}", lob.values[0]),
        fmt_s(t_lob),
    ]);
    rows.push(vec![
        "eigensolver Davidson".into(),
        format!("{} iters", dav.iterations),
        format!("lambda_0 {:.6}", dav.values[0]),
        fmt_s(t_dav),
    ]);

    let headers = ["variant", "metric 1", "metric 2", "time (s)"];
    println!("\n== Ablations: K-Means init / ISDF rank / iterative eigensolver ==");
    print_table(&headers, &rows);
    ExperimentRecord::new(
        "ablation",
        &headers,
        &rows,
        "Weight-guided init converges fastest (paper §4.2); error falls monotonically with N_mu; LOBPCG and Davidson agree on the spectrum.",
    )
}

// ---------------------------------------------------------------- Figure 9

/// Paper Fig. 9: MATBG ground-/excited-state DOS at two interlayer
/// distances. Scaled stand-in: a Moiré-modulated bilayer-graphene cell.
pub fn fig9(scale: Scale) -> ExperimentRecord {
    let (nx, ny, grid_xy, grid_z, n_cond, scf_iters) = match scale {
        Scale::Quick => (1usize, 1usize, 8usize, 16usize, 4usize, 6),
        _ => (2, 1, 16, 32, 8, 14),
    };
    let mut rows = Vec::new();
    let mut fermi_dos = Vec::new();
    for d in [2.6f64, 4.0] {
        let s = bilayer_graphene(nx, ny, d, 18.0);
        let grid = Grid::new(s.cell, [grid_xy, grid_xy, grid_z]);
        let gs = scf(
            &grid,
            &s,
            ScfOptions { n_conduction: n_cond, max_iter: scf_iters, ..Default::default() },
        );
        // Ground-state DOS around the HOMO-LUMO region.
        let e_f = 0.5 * (gs.eps[gs.n_valence - 1] + gs.eps[gs.n_valence]);
        let lo = e_f - 0.6;
        let hi = e_f + 0.6;
        let dos = gaussian_dos(&gs.eps, None, 0.03, lo, hi, 41);
        let at_fermi = dos
            .iter()
            .min_by(|a, b| (a.0 - e_f).abs().partial_cmp(&(b.0 - e_f).abs()).unwrap())
            .unwrap()
            .1;
        fermi_dos.push(at_fermi);
        rows.push(vec![
            format!("D={d} A (ground)"),
            format!("{:.4}", gs.gap()),
            format!("{at_fermi:.3}"),
            format!("{}", gs.iterations),
        ]);
        // Excited-state DOS (paper Fig. 9b) for the close-stacked case.
        if (d - 2.6).abs() < 1e-9 {
            let problem = CasidaProblem::from_ground_state(&grid, &gs);
            let k = 8.min(problem.n_cv());
            let sol = run_solve(
                &problem,
                Version::ImplicitKmeansIsdfLobpcg,
                &SolveOptions::new().n_states(k),
            );
            let emax = sol.energies.iter().cloned().fold(0.0f64, f64::max) + 0.1;
            let xdos = gaussian_dos(&sol.energies, None, 0.02, 0.0, emax, 25);
            let peak = xdos.iter().cloned().fold((0.0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
            rows.push(vec![
                format!("D={d} A (excited)"),
                format!("{:.4}", sol.energies[0]),
                format!("peak@{:.3}", peak.0),
                format!("{k} states"),
            ]);
        }
    }
    let headers = ["case", "gap / E_1 (Ha)", "DOS(E_F) / peak", "info"];
    println!("\n== Figure 9: bilayer-graphene (MATBG stand-in) DOS vs interlayer distance ==");
    print_table(&headers, &rows);
    println!(
        "   DOS at Fermi level: D=2.6 A -> {:.3}, D=4.0 A -> {:.3} (paper: localized states appear at small D)",
        fermi_dos[0], fermi_dos[1]
    );
    ExperimentRecord::new(
        "fig9",
        &headers,
        &rows,
        "Scaled Moire bilayer; the close-stacked layer shows more mid-gap spectral weight, echoing the paper's localized-state observation.",
    )
}
