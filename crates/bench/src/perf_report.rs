//! `repro perf-report` — the performance-analytics sentinel.
//!
//! One command runs the instrumented 4-rank solve and turns six PRs of
//! raw telemetry into the numbers the paper argues with:
//!
//! 1. **Load imbalance** — per-stage max/mean/min seconds across ranks and
//!    the imbalance factor λ = max/mean ([`perfsight::stage_loads`]).
//! 2. **Critical path** — the exact compute/collective decomposition of the
//!    solve's wall clock, reporting which rank and stage bounds each
//!    segment ([`perfsight::critical_path`]).
//! 3. **α–β cost model** — least-squares latency/bandwidth fits per
//!    collective from `parcomm`'s measured `OpStats`, plus the
//!    strong-scaling comm-fraction extrapolation to 1024 ranks
//!    ([`perfsight::fit`]).
//! 4. **Roofline** — measured machine ceilings (timed GEMM peak, streaming
//!    triad bandwidth) and the traced GEMM/FFT stages placed against them
//!    ([`perfsight::place`]).
//! 5. **Flight recorder** — a fault is injected into LOBPCG, the recovery
//!    ladder fires the `faultkit` error hook, and the hook dumps
//!    `obskit`'s flight ring as a Chrome trace that is then re-validated.
//!
//! Everything lands in `BENCH_perf.json`; `--check` grades the run against
//! `perf_baselines.toml` (per-metric tolerances, TOML subset parsed by
//! [`perfsight::parse_toml`]) and cross-checks the *committed*
//! `BENCH_gemm/fft/fault.json` records, exiting non-zero on regression.

use crate::report::{json, print_table};
use lrtddft::{silicon_like_problem, IsdfRank, SolveOptions, StageTimings, Version};
use mathkit::{gemm, Mat, Transpose};
use obskit::Stage;
use parcomm::{spmd, CommStats};
use perfsight::{
    check_metrics, critical_path, fit, parse_toml, place, stage_loads, CheckReport, CostModelFit,
    CriticalPath, Machine, SegmentKind, StageLoad,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// SPMD width of the instrumented solve (matches `repro trace`).
const RANKS: usize = 4;
/// `--check` gate: critical-path total vs measured wall clock.
const CRITICAL_PATH_REL_ERR_GATE: f64 = 0.05;
/// `--check` gate: worst per-collective α–β model relative error.
const COSTMODEL_REL_ERR_GATE: f64 = 0.15;

/// Everything measured by one sentinel pass, in emission order.
struct PerfRecord {
    profile: &'static str,
    wall_seconds: f64,
    cp: CriticalPath,
    cp_rel_err: f64,
    loads: Vec<StageLoad>,
    lambda_max: f64,
    model: CostModelFit,
    machine: Machine,
    roofline: Vec<perfsight::RooflineRow>,
    flight_events: usize,
    flight_aborted: usize,
    flight_valid: bool,
    flight_dump: PathBuf,
    fault_recovered: bool,
    disabled_span_ns: f64,
    /// Per-rank collective stats from the instrumented solve (message-size
    /// histograms + deferred-reduction fusion counters).
    comm: Vec<CommStats>,
}

/// Run the sentinel. `quick` shrinks the problem and the machine-ceiling
/// microbenchmarks; `check` grades against `perf_baselines.toml` and the
/// committed BENCH records and returns `Err` on any regression.
pub fn run(out: &Path, quick: bool, check: bool) -> Result<(), String> {
    std::fs::create_dir_all(out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let profile = if quick { "quick" } else { "full" };
    let problem =
        if quick { silicon_like_problem(1, 10, 3) } else { silicon_like_problem(1, 12, 4) };
    let n_mu = IsdfRank::default().resolve(problem.n_r(), problem.n_v(), problem.n_c());
    let k = 4.min(problem.n_cv());
    println!(
        "== perf-report ({profile}): {} on {RANKS} ranks (N_r={}, N_cv={}, N_mu={}) ==",
        Version::ImplicitKmeansIsdfLobpcg.label(),
        problem.n_r(),
        problem.n_cv(),
        n_mu
    );

    // ---- 1. instrumented solve --------------------------------------------
    obskit::flight::clear();
    obskit::enable();
    let t0 = Instant::now();
    let per_rank: Vec<(StageTimings, CommStats)> = spmd(RANKS, |c| {
        let o = SolveOptions::new().rank(IsdfRank::Fixed(n_mu)).n_states(k).seed(0xcafe);
        let (_vals, t) =
            lrtddft::Solver::builder().options(o).build().solve_distributed(c, &problem);
        (t, c.stats())
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    obskit::disable();
    let trace = obskit::take_trace();
    trace.validate().map_err(|e| format!("trace failed nesting validation: {e}"))?;

    // ---- 2. analytics ------------------------------------------------------
    let loads = stage_loads(&trace);
    let lambda_max = loads.iter().map(|l| l.imbalance).fold(0.0, f64::max);
    let cp = critical_path(&trace);
    // The decomposition telescopes to the trace's span of wall time; grade
    // it against the independently measured `Instant` wall clock.
    let cp_rel_err = (cp.total_seconds - wall_seconds).abs() / wall_seconds.max(1e-12);
    let comm: Vec<CommStats> = per_rank.iter().map(|(_, s)| *s).collect();
    let model = fit(&comm);

    // ---- 3. roofline -------------------------------------------------------
    let machine = measure_machine(quick);
    let stage_total = trace.stage_seconds_total();
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    let gemm_s = stage_total[Stage::Gemm.index()];
    if gemm_s > 0.0 {
        rows.push((
            "gemm (traced solve)".to_string(),
            trace.counters.flops as f64,
            gemm_bytes_estimate(&trace.counters.gemm_shapes),
            gemm_s,
        ));
    }
    let fft_s = stage_total[Stage::Fft.index()];
    if fft_s > 0.0 && trace.counters.fft_calls > 0 {
        let n = problem.n_r() as f64;
        let calls = trace.counters.fft_calls as f64;
        // Radix-2 flop model per transform plus one read+write of the
        // complex grid — crude, but stable across runs of the same problem.
        rows.push((
            "fft (traced solve)".to_string(),
            calls * 2.5 * n * n.log2(),
            calls * 2.0 * 16.0 * n,
            fft_s,
        ));
    }
    let roofline = place(&machine, &rows);

    // ---- 4. flight-recorder dump on an injected fault ----------------------
    let flight_dump = out.join("flight_trace.json");
    let (fault_recovered, dump_fires) = fault_and_dump(&problem, &flight_dump)?;
    let dump_text = std::fs::read_to_string(&flight_dump)
        .map_err(|e| format!("read {}: {e}", flight_dump.display()))?;
    let flight_valid = obskit::chrome::validate_chrome_trace(&dump_text).is_ok();
    let snap = obskit::flight::snapshot();
    let flight_events = snap.len();
    let flight_aborted =
        snap.iter().filter(|e| e.kind == obskit::flight::FlightKind::AbortedSpan).count();

    // ---- 5. disabled-instrumentation overhead ------------------------------
    let disabled_span_ns = measure_disabled_span_ns();

    let rec = PerfRecord {
        profile,
        wall_seconds,
        cp,
        cp_rel_err,
        loads,
        lambda_max,
        model,
        machine,
        roofline,
        flight_events,
        flight_aborted,
        flight_valid,
        flight_dump,
        fault_recovered,
        disabled_span_ns,
        comm,
    };
    print_record(&rec, dump_fires);

    let bench_path = out.join("BENCH_perf.json");
    std::fs::write(&bench_path, bench_perf_json(&rec))
        .map_err(|e| format!("write {}: {e}", bench_path.display()))?;
    println!("machine-readable record -> {}", bench_path.display());

    if check {
        run_checks(out, &rec)?;
    }
    Ok(())
}

/// Measure the machine ceilings for the roofline: peak GEMM flops from a
/// timed square multiply, peak bandwidth from a streaming triad.
fn measure_machine(quick: bool) -> Machine {
    let n = if quick { 320 } else { 384 };
    let a = Mat::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 13) as f64 * 0.125 - 0.75);
    let b = Mat::from_fn(n, n, |i, j| ((i * 17 + j * 29) % 11) as f64 * 0.25 - 1.25);
    let mut c = Mat::zeros(n, n);
    let flops = 2.0 * (n * n * n) as f64;
    let mut peak_flops: f64 = 0.0;
    for _ in 0..6 {
        let t = Instant::now();
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        peak_flops = peak_flops.max(flops / t.elapsed().as_secs_f64().max(1e-12));
    }

    let len = if quick { 2 << 20 } else { 8 << 20 };
    let mut x = vec![0.0f64; len];
    let y: Vec<f64> = (0..len).map(|i| (i % 7) as f64).collect();
    let z: Vec<f64> = (0..len).map(|i| (i % 5) as f64 * 0.5).collect();
    let bytes = (3 * 8 * len) as f64;
    let mut peak_bw: f64 = 0.0;
    for _ in 0..4 {
        let t = Instant::now();
        for i in 0..len {
            x[i] = y[i] + 2.5 * z[i];
        }
        peak_bw = peak_bw.max(bytes / t.elapsed().as_secs_f64().max(1e-12));
    }
    // Keep the triad result observable so the loop cannot be elided.
    std::hint::black_box(&x);
    Machine { peak_flops, peak_bytes_per_s: peak_bw }
}

/// Estimate DRAM traffic of the traced GEMMs from the log2 shape histogram:
/// one read of A and B plus a read+write of C per call, at bucket maxima.
fn gemm_bytes_estimate(shapes: &[obskit::counters::GemmBucket]) -> f64 {
    shapes
        .iter()
        .map(|s| {
            let (m, n, k) = (s.m_max as f64, s.n_max as f64, s.k_max as f64);
            s.calls as f64 * 8.0 * (m * k + k * n + 2.0 * m * n)
        })
        .sum()
}

/// Arm a one-shot NaN poison of LOBPCG's workspace, register a solve-error
/// hook that dumps the flight ring, and run the serial solve. The ladder
/// recovers from the poison; the hook fires at the failed rung, so the dump
/// captures the ring exactly as it stood at the fault.
fn fault_and_dump(
    problem: &lrtddft::CasidaProblem,
    dump_path: &Path,
) -> Result<(bool, usize), String> {
    let fires = Arc::new(AtomicUsize::new(0));
    let hook_fires = Arc::clone(&fires);
    let hook_path = dump_path.to_path_buf();
    faultkit::set_solve_error_hook(move |_err| {
        hook_fires.fetch_add(1, Ordering::SeqCst);
        let _ = obskit::flight::dump_to(&hook_path);
    });
    let campaign = faultkit::arm(
        faultkit::FaultPlan::new(0x5eed).with("lobpcg.w", 0, faultkit::FaultKind::NanPoison),
    );
    let o = SolveOptions::new().rank(IsdfRank::Fixed(problem.n_cv())).n_states(3).seed(7);
    let solved = lrtddft::Solver::builder()
        .version(Version::ImplicitKmeansIsdfLobpcg)
        .options(o)
        .build()
        .solve(problem);
    faultkit::clear_solve_error_hook();
    let fired = campaign.fired();
    drop(campaign);
    let recovered = match solved {
        Ok(s) => !s.recovery.is_empty(),
        Err(_) => false,
    };
    if fired == 0 {
        return Err("fault plan never fired — lobpcg.w hook site unreachable?".to_string());
    }
    if fires.load(Ordering::SeqCst) == 0 {
        return Err("solve-error hook never fired — flight dump was not exercised".to_string());
    }
    Ok((recovered, fires.load(Ordering::SeqCst)))
}

/// Per-event cost of a span when tracing is disabled but the flight ring is
/// on — the always-on path whose budget is <2% of any real kernel.
fn measure_disabled_span_ns() -> f64 {
    assert!(!obskit::enabled(), "overhead probe must run with tracing disabled");
    const ITERS: u32 = 200_000;
    let t = Instant::now();
    for i in 0..ITERS {
        let sp = obskit::span(Stage::Other, "perf.overhead-probe");
        std::hint::black_box(i);
        drop(sp);
    }
    t.elapsed().as_secs_f64() * 1e9 / ITERS as f64
}

fn print_record(rec: &PerfRecord, dump_fires: usize) {
    println!("\n== per-stage load imbalance (λ = max/mean across ranks) ==");
    let headers = ["stage", "max (s)", "mean (s)", "min (s)", "λ", "bottleneck rank"];
    let rows: Vec<Vec<String>> = rec
        .loads
        .iter()
        .map(|l| {
            vec![
                l.stage.label().to_string(),
                format!("{:.6}", l.max_s),
                format!("{:.6}", l.mean_s),
                format!("{:.6}", l.min_s),
                format!("{:.3}", l.imbalance),
                l.bottleneck_rank.to_string(),
            ]
        })
        .collect();
    print_table(&headers, &rows);

    println!("\n== critical path ==");
    println!(
        "total {:.6}s = compute {:.6}s + collectives {:.6}s (comm fraction {:.1}%, {} segments, {} matched collectives)",
        rec.cp.total_seconds,
        rec.cp.compute_seconds,
        rec.cp.comm_seconds,
        rec.cp.comm_fraction() * 100.0,
        rec.cp.segments.len(),
        rec.cp.matched_collectives,
    );
    if let Some(r) = rec.cp.bottleneck_rank {
        println!("bottleneck rank: {r}");
    }
    println!(
        "measured wall clock {:.6}s, rel err {:.3}% (gate {:.0}%)",
        rec.wall_seconds,
        rec.cp_rel_err * 100.0,
        CRITICAL_PATH_REL_ERR_GATE * 100.0
    );
    let mut by_stage: Vec<(String, f64)> = Vec::new();
    for seg in &rec.cp.segments {
        let key = match &seg.kind {
            SegmentKind::Compute { stage, .. } => format!("compute:{}", stage.label()),
            SegmentKind::Collective { name } => format!("mpi:{name}"),
        };
        match by_stage.iter_mut().find(|(k, _)| *k == key) {
            Some((_, s)) => *s += seg.seconds,
            None => by_stage.push((key, seg.seconds)),
        }
    }
    by_stage.sort_by(|a, b| b.1.total_cmp(&a.1));
    let headers = ["critical-path segment", "seconds", "share"];
    let rows: Vec<Vec<String>> = by_stage
        .iter()
        .take(10)
        .map(|(k, s)| {
            vec![
                k.clone(),
                format!("{s:.6}"),
                format!("{:.1}%", s / rec.cp.total_seconds.max(1e-12) * 100.0),
            ]
        })
        .collect();
    print_table(&headers, &rows);

    println!("\n== α–β cost model (least squares over per-rank OpStats) ==");
    let headers = ["op", "calls", "α (us)", "β⁻¹ (GB/s)", "measured (s)", "predicted (s)", "rel err"];
    let rows: Vec<Vec<String>> = rec
        .model
        .ops
        .iter()
        .map(|o| {
            vec![
                o.op.to_string(),
                o.calls.to_string(),
                format!("{:.3}", o.alpha * 1e6),
                if o.beta > 0.0 { format!("{:.2}", 1.0 / o.beta / 1e9) } else { "-".to_string() },
                format!("{:.6}", o.measured_s),
                format!("{:.6}", o.predicted_s),
                format!("{:.2}%", o.rel_err * 100.0),
            ]
        })
        .collect();
    print_table(&headers, &rows);
    println!(
        "global fit: α = {:.3} us, β⁻¹ = {:.2} GB/s, worst per-op rel err {:.2}% (gate {:.0}%)",
        rec.model.global_alpha * 1e6,
        if rec.model.global_beta > 0.0 { 1.0 / rec.model.global_beta / 1e9 } else { f64::NAN },
        rec.model.worst_rel_err * 100.0,
        COSTMODEL_REL_ERR_GATE * 100.0
    );

    println!("\n== per-op message sizes (calls per ⌈log₂ bytes⌉ bucket, all ranks) ==");
    let headers = ["op", "calls", "α-dominated", "histogram"];
    let rows: Vec<Vec<String>> = op_histograms(&rec.comm)
        .into_iter()
        .map(|h| {
            vec![h.op.to_string(), h.calls.to_string(), h.alpha_calls.to_string(), h.render()]
        })
        .collect();
    print_table(&headers, &rows);
    let fused = fused_totals(&rec.comm);
    println!(
        "deferred-reduction scheduler: {} fused flushes carrying {} fields \
         ({} collectives avoided); {} of {} collective calls α-dominated (≤ {} KiB)",
        fused.flushes,
        fused.fields,
        fused.fields.saturating_sub(fused.flushes),
        fused.alpha_calls,
        fused.collective_calls,
        parcomm::ALPHA_SMALL_BYTES / 1024,
    );

    let sweep = rec.model.scale_sweep(rec.cp.compute_seconds, 1024);
    if !sweep.is_empty() {
        println!("\n== extrapolated comm fraction (α–β model, fixed per-rank work) ==");
        let headers = ["ranks", "comm (s)", "compute (s)", "comm fraction"];
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .map(|p| {
                vec![
                    p.ranks.to_string(),
                    format!("{:.6}", p.comm_s),
                    format!("{:.6}", p.compute_s),
                    format!("{:.1}%", p.comm_fraction * 100.0),
                ]
            })
            .collect();
        print_table(&headers, &rows);
    }

    println!("\n== roofline ==");
    println!(
        "machine: {:.2} GF/s peak, {:.2} GB/s peak, ridge {:.2} flop/byte",
        rec.machine.peak_flops / 1e9,
        rec.machine.peak_bytes_per_s / 1e9,
        rec.machine.ridge_intensity()
    );
    let headers = ["stage", "GF/s", "flop/byte", "attainable GF/s", "efficiency", "bound"];
    let rows: Vec<Vec<String>> = rec
        .roofline
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.2}", r.achieved_flops / 1e9),
                if r.intensity.is_finite() { format!("{:.2}", r.intensity) } else { "∞".into() },
                format!("{:.2}", r.attainable_flops / 1e9),
                format!("{:.1}%", r.efficiency * 100.0),
                r.bound.label().to_string(),
            ]
        })
        .collect();
    print_table(&headers, &rows);

    println!("\n== flight recorder ==");
    println!(
        "injected lobpcg.w NaN poison: recovered = {}, error hook fired {}x, dump -> {}",
        rec.fault_recovered,
        dump_fires,
        rec.flight_dump.display()
    );
    println!(
        "ring snapshot: {} events ({} aborted spans), dump chrome-valid = {}",
        rec.flight_events, rec.flight_aborted, rec.flight_valid
    );
    println!(
        "disabled-tracing span cost: {:.0} ns/event (flight ring on)",
        rec.disabled_span_ns
    );
}

/// One op's message-size distribution, summed across ranks.
struct OpHistogram {
    op: &'static str,
    calls: u64,
    /// Calls with ≤ 32 KiB payload (latency-dominated under the default
    /// α–β model — the ones collective fusion exists to eliminate).
    alpha_calls: u64,
    /// Nonempty `(upper-limit bytes, calls)` buckets, ascending.
    buckets: Vec<(u64, u64)>,
}

impl OpHistogram {
    fn render(&self) -> String {
        self.buckets
            .iter()
            .map(|&(limit, n)| format!("≤{}:{}", human_bytes(limit), n))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Per-op ⌈log₂ bytes⌉ histograms summed across ranks, ops with no calls
/// omitted. Bucket `b` holds payloads in `(2^(b−1), 2^b]`, so the α-dominated
/// tally (limit ≤ 32 KiB) matches `CommStats::alpha_calls` exactly.
fn op_histograms(stats: &[CommStats]) -> Vec<OpHistogram> {
    let Some(first) = stats.first() else { return Vec::new() };
    let names: Vec<&'static str> = first.per_op().iter().map(|&(n, _)| n).collect();
    let mut out = Vec::new();
    for (idx, op) in names.into_iter().enumerate() {
        let mut buckets = Vec::new();
        let (mut calls, mut alpha_calls) = (0u64, 0u64);
        for b in 0..parcomm::HIST_BUCKETS {
            let n: u64 = stats.iter().map(|s| s.hist.counts[idx][b]).sum();
            if n > 0 {
                let limit = parcomm::MsgHist::bucket_limit(b);
                calls += n;
                if limit <= parcomm::ALPHA_SMALL_BYTES {
                    alpha_calls += n;
                }
                buckets.push((limit, n));
            }
        }
        if calls > 0 {
            out.push(OpHistogram { op, calls, alpha_calls, buckets });
        }
    }
    out
}

struct FusedTotals {
    flushes: u64,
    fields: u64,
    alpha_calls: u64,
    collective_calls: u64,
}

fn fused_totals(stats: &[CommStats]) -> FusedTotals {
    FusedTotals {
        flushes: stats.iter().map(|s| s.fused_flushes).sum(),
        fields: stats.iter().map(|s| s.fused_fields).sum(),
        alpha_calls: stats.iter().map(|s| s.alpha_calls).sum(),
        collective_calls: stats.iter().map(|s| s.collective_calls).sum(),
    }
}

/// `BENCH_perf.json` — the machine-readable sentinel record.
fn bench_perf_json(rec: &PerfRecord) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"perf-report\",");
    let _ = writeln!(out, "  \"profile\": {},", json::string(rec.profile));
    let _ = writeln!(out, "  \"ranks\": {RANKS},");
    let _ = writeln!(out, "  \"wall_seconds\": {},", json::number(rec.wall_seconds));
    let _ = writeln!(out, "  \"critical_path\": {{");
    let _ = writeln!(out, "    \"total_seconds\": {},", json::number(rec.cp.total_seconds));
    let _ = writeln!(out, "    \"compute_seconds\": {},", json::number(rec.cp.compute_seconds));
    let _ = writeln!(out, "    \"comm_seconds\": {},", json::number(rec.cp.comm_seconds));
    let _ = writeln!(out, "    \"comm_fraction\": {},", json::number(rec.cp.comm_fraction()));
    let _ = writeln!(out, "    \"segments\": {},", rec.cp.segments.len());
    let _ = writeln!(out, "    \"matched_collectives\": {},", rec.cp.matched_collectives);
    let _ = writeln!(
        out,
        "    \"bottleneck_rank\": {},",
        rec.cp.bottleneck_rank.map_or("null".to_string(), |r| r.to_string())
    );
    let _ = writeln!(out, "    \"rel_err_vs_wall\": {}", json::number(rec.cp_rel_err));
    let _ = writeln!(out, "  }},");
    out.push_str("  \"stage_loads\": [\n");
    for (i, l) in rec.loads.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"stage\": {}, \"max_s\": {}, \"mean_s\": {}, \"min_s\": {}, \"imbalance\": {}, \"bottleneck_rank\": {}}}",
            json::string(l.stage.label()),
            json::number(l.max_s),
            json::number(l.mean_s),
            json::number(l.min_s),
            json::number(l.imbalance),
            l.bottleneck_rank
        );
        out.push_str(if i + 1 < rec.loads.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"costmodel\": {{");
    let _ = writeln!(out, "    \"global_alpha_s\": {},", json::number(rec.model.global_alpha));
    let _ = writeln!(out, "    \"global_beta_s_per_byte\": {},", json::number(rec.model.global_beta));
    let _ = writeln!(out, "    \"total_measured_s\": {},", json::number(rec.model.total_measured_s));
    let _ = writeln!(out, "    \"total_predicted_s\": {},", json::number(rec.model.total_predicted_s));
    let _ = writeln!(out, "    \"worst_rel_err\": {},", json::number(rec.model.worst_rel_err));
    out.push_str("    \"ops\": [\n");
    for (i, o) in rec.model.ops.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"op\": {}, \"calls\": {}, \"bytes\": {}, \"measured_s\": {}, \"alpha_s\": {}, \"beta_s_per_byte\": {}, \"predicted_s\": {}, \"rel_err\": {}}}",
            json::string(o.op),
            o.calls,
            o.bytes,
            json::number(o.measured_s),
            json::number(o.alpha),
            json::number(o.beta),
            json::number(o.predicted_s),
            json::number(o.rel_err)
        );
        out.push_str(if i + 1 < rec.model.ops.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ],\n    \"scale_sweep\": [\n");
    let sweep = rec.model.scale_sweep(rec.cp.compute_seconds, 1024);
    for (i, p) in sweep.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"ranks\": {}, \"comm_s\": {}, \"compute_s\": {}, \"comm_fraction\": {}}}",
            p.ranks,
            json::number(p.comm_s),
            json::number(p.compute_s),
            json::number(p.comm_fraction)
        );
        out.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"msg_histogram\": [\n");
    let hists = op_histograms(&rec.comm);
    for (i, h) in hists.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"op\": {}, \"calls\": {}, \"alpha_calls\": {}, \"buckets\": [",
            json::string(h.op),
            h.calls,
            h.alpha_calls
        );
        for (j, &(limit, n)) in h.buckets.iter().enumerate() {
            let _ = write!(out, "{{\"limit_bytes\": {limit}, \"calls\": {n}}}");
            if j + 1 < h.buckets.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        out.push_str(if i + 1 < hists.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let fused = fused_totals(&rec.comm);
    let _ = writeln!(
        out,
        "  \"fused\": {{\"flushes\": {}, \"fields\": {}, \"collectives_avoided\": {}, \"alpha_small_calls\": {}, \"collective_calls\": {}}},",
        fused.flushes,
        fused.fields,
        fused.fields.saturating_sub(fused.flushes),
        fused.alpha_calls,
        fused.collective_calls
    );
    let _ = writeln!(out, "  \"machine\": {{");
    let _ = writeln!(out, "    \"peak_flops\": {},", json::number(rec.machine.peak_flops));
    let _ = writeln!(out, "    \"peak_bytes_per_s\": {},", json::number(rec.machine.peak_bytes_per_s));
    let _ = writeln!(out, "    \"ridge_intensity\": {}", json::number(rec.machine.ridge_intensity()));
    let _ = writeln!(out, "  }},");
    out.push_str("  \"roofline\": [\n");
    for (i, r) in rec.roofline.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"stage\": {}, \"achieved_flops\": {}, \"intensity\": {}, \"attainable_flops\": {}, \"efficiency\": {}, \"bound\": {}}}",
            json::string(&r.label),
            json::number(r.achieved_flops),
            json::number(r.intensity),
            json::number(r.attainable_flops),
            json::number(r.efficiency),
            json::string(r.bound.label())
        );
        out.push_str(if i + 1 < rec.roofline.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"flight\": {{");
    let _ = writeln!(out, "    \"events\": {},", rec.flight_events);
    let _ = writeln!(out, "    \"aborted_spans\": {},", rec.flight_aborted);
    let _ = writeln!(out, "    \"dump_valid\": {},", rec.flight_valid);
    let _ = writeln!(out, "    \"fault_recovered\": {},", rec.fault_recovered);
    let _ = writeln!(out, "    \"dump\": {}", json::string(&rec.flight_dump.display().to_string()));
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"disabled_span_ns\": {}", json::number(rec.disabled_span_ns));
    out.push_str("}\n");
    out
}

// ---- `--check`: baselines + committed-record cross-checks ------------------

/// Locate `perf_baselines.toml`: `$PERF_BASELINES`, then the out dir, then
/// the working directory.
fn baselines_path(out: &Path) -> Result<PathBuf, String> {
    if let Ok(p) = std::env::var("PERF_BASELINES") {
        return Ok(PathBuf::from(p));
    }
    for cand in [out.join("perf_baselines.toml"), PathBuf::from("perf_baselines.toml")] {
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err("perf_baselines.toml not found (searched --out and the working directory; \
         set PERF_BASELINES to override)"
        .to_string())
}

fn run_checks(out: &Path, rec: &PerfRecord) -> Result<(), String> {
    let path = baselines_path(out)?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc = parse_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;

    let metrics: Vec<(&str, f64)> = vec![
        ("critical_path_rel_err", rec.cp_rel_err),
        ("costmodel_worst_rel_err", rec.model.worst_rel_err),
        ("comm_fraction", rec.cp.comm_fraction()),
        ("lambda_max", rec.lambda_max),
        ("flight_events", rec.flight_events as f64),
        ("flight_dump_valid", if rec.flight_valid { 1.0 } else { 0.0 }),
        ("fault_recovered", if rec.fault_recovered { 1.0 } else { 0.0 }),
        ("disabled_span_ns", rec.disabled_span_ns),
    ];
    let mut report = check_metrics(&doc, rec.profile, &metrics)?;

    // Cross-check the committed sibling records: these are deterministic
    // files, so their tolerances (profile `committed`) can be tight.
    let committed = committed_metrics(out);
    let cross = check_metrics(&doc, "committed", &committed)?;
    merge_reports(&mut report, cross);

    print_check_report(&path, &report);
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{} perf metric(s) regressed", report.failures.len()))
    }
}

fn merge_reports(into: &mut CheckReport, from: CheckReport) {
    into.passed.extend(from.passed);
    into.failures.extend(from.failures);
    into.uncovered.extend(from.uncovered);
}

fn print_check_report(path: &Path, report: &CheckReport) {
    println!("\n== --check against {} ==", path.display());
    for (metric, measured) in &report.passed {
        println!("  PASS {metric} = {measured:.6}");
    }
    for metric in &report.uncovered {
        println!("  SKIP {metric} (no baseline section)");
    }
    for failure in &report.failures {
        println!("  FAIL {failure}");
    }
}

/// Extract cross-check metrics from the committed `BENCH_gemm/fft/fault`
/// records, if present next to `--out`. Missing files contribute nothing
/// (their metrics fall out as uncovered, which never fails CI).
fn committed_metrics(out: &Path) -> Vec<(&'static str, f64)> {
    let mut metrics = Vec::new();
    if let Some(v) = load_json(&out.join("BENCH_gemm.json")) {
        let min_speedup = v
            .get("shapes")
            .and_then(|s| s.as_array())
            .map(|shapes| {
                shapes
                    .iter()
                    .filter_map(|s| s.get("speedup").and_then(|x| x.as_f64()))
                    .fold(f64::INFINITY, f64::min)
            })
            .unwrap_or(f64::INFINITY);
        if min_speedup.is_finite() {
            metrics.push(("bench_gemm_min_speedup", min_speedup));
        }
    }
    if let Some(v) = load_json(&out.join("BENCH_fft.json")) {
        if let Some(ratio) =
            v.get("hxc_apply").and_then(|h| h.get("fft_call_ratio")).and_then(|x| x.as_f64())
        {
            metrics.push(("bench_fft_call_ratio", ratio));
        }
    }
    if let Some(v) = load_json(&out.join("BENCH_fault.json")) {
        if let Some(cases) = v.get("cases").and_then(|c| c.as_array()) {
            let total = cases.len();
            let recovered = cases
                .iter()
                .filter(|c| {
                    matches!(c.get("recovered"), Some(obskit::chrome::Value::Bool(true)))
                })
                .count();
            if total > 0 {
                metrics.push(("bench_fault_recovered_fraction", recovered as f64 / total as f64));
            }
        }
    }
    metrics
}

fn load_json(path: &Path) -> Option<obskit::chrome::Value> {
    let text = std::fs::read_to_string(path).ok()?;
    obskit::chrome::parse_json(&text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_bytes_estimate_counts_all_three_operands() {
        let shapes =
            vec![obskit::counters::GemmBucket { m_max: 4, n_max: 4, k_max: 8, calls: 2 }];
        // 2 calls * 8 bytes * (4*8 + 8*4 + 2*4*4) = 2 * 8 * 96
        assert_eq!(gemm_bytes_estimate(&shapes), 2.0 * 8.0 * 96.0);
    }

    #[test]
    fn committed_metrics_survive_missing_files() {
        let dir = std::env::temp_dir().join("perf-report-missing-bench");
        let _ = std::fs::create_dir_all(&dir);
        assert!(committed_metrics(&dir).is_empty());
    }

    #[test]
    fn machine_ceilings_are_positive_and_ordered() {
        let m = measure_machine(true);
        assert!(m.peak_flops > 0.0);
        assert!(m.peak_bytes_per_s > 0.0);
        assert!(m.ridge_intensity() > 0.0);
    }
}
