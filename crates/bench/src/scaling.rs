//! Calibrated strong/weak-scaling prediction.
//!
//! A stage is (measured serial compute seconds, communication pattern).
//! `T(P) = Σ_s W_s/min(P, P_max_s) + Σ_s comm_s(P)` with collective costs
//! from [`parcomm::CostModel`]. Byte counts mirror the real implementation
//! in `lrtddft::parallel`, so the predicted efficiency decay comes from the
//! same collectives the paper's Fig. 7/8 discussion attributes it to.

use parcomm::CostModel;

/// Communication pattern of one pipeline stage, parameterized by rank count.
#[derive(Clone, Copy, Debug)]
pub enum CommPattern {
    /// No communication.
    None,
    /// `times` allreduces of a replicated buffer of `bytes`.
    Allreduce { bytes: usize, times: usize },
    /// `times` all-to-alls of a globally distributed array of `global_bytes`
    /// (each rank sends `global_bytes / P`).
    Alltoall { global_bytes: usize, times: usize },
    /// `times` allgathers totalling `total_bytes`.
    Allgather { total_bytes: usize, times: usize },
    /// ScaLAPACK-style dense eigensolve communication for an `n × n` matrix:
    /// `≈ log₂(P)/√P` panel broadcasts of the matrix.
    ScalapackDiag { n: usize },
}

impl CommPattern {
    /// Modeled communication seconds at `p` ranks.
    pub fn seconds(&self, p: usize, model: &CostModel) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        match *self {
            CommPattern::None => 0.0,
            CommPattern::Allreduce { bytes, times } => {
                times as f64 * model.allreduce(p, bytes)
            }
            CommPattern::Alltoall { global_bytes, times } => {
                times as f64 * model.alltoallv(p, global_bytes / p)
            }
            CommPattern::Allgather { total_bytes, times } => {
                times as f64 * model.allgatherv(p, total_bytes)
            }
            CommPattern::ScalapackDiag { n } => {
                let pf = p as f64;
                let panels = pf.log2().max(1.0) / pf.sqrt();
                model.bcast(p, n * n * 8) * panels
            }
        }
    }
}

/// One pipeline stage with measured serial work.
#[derive(Clone, Debug)]
pub struct Stage {
    pub label: &'static str,
    /// Serial compute seconds (measured on this host at `P = 1`).
    pub work_seconds: f64,
    /// Communication per stage execution.
    pub comm: Vec<CommPattern>,
    /// Parallelizable fraction cap: compute cannot use more than this many
    /// ranks (e.g. a stage bounded by `N_μ` independent tasks).
    pub max_parallelism: usize,
}

impl Stage {
    pub fn new(label: &'static str, work_seconds: f64, comm: Vec<CommPattern>) -> Self {
        Stage { label, work_seconds, comm, max_parallelism: usize::MAX }
    }

    /// Predicted (compute, comm) seconds at `p` ranks.
    pub fn predict(&self, p: usize, model: &CostModel) -> (f64, f64) {
        let eff_p = p.min(self.max_parallelism).max(1);
        let compute = self.work_seconds / eff_p as f64;
        let comm: f64 = self.comm.iter().map(|c| c.seconds(p, model)).sum();
        (compute, comm)
    }
}

/// A full scaling study over a pipeline of stages.
pub struct ScalingStudy {
    pub stages: Vec<Stage>,
    pub model: CostModel,
}

/// One row of a strong-scaling table.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    pub ranks: usize,
    pub total_seconds: f64,
    pub compute_seconds: f64,
    pub comm_seconds: f64,
    /// Speedup / (P / P_base), relative to the smallest rank count queried.
    pub parallel_efficiency: f64,
    /// Per-stage totals in stage order.
    pub per_stage: Vec<(&'static str, f64)>,
}

impl ScalingStudy {
    pub fn new(stages: Vec<Stage>, model: CostModel) -> Self {
        ScalingStudy { stages, model }
    }

    /// Predicted total time at `p` ranks.
    pub fn time_at(&self, p: usize) -> f64 {
        self.stages
            .iter()
            .map(|s| {
                let (c, m) = s.predict(p, &self.model);
                c + m
            })
            .sum()
    }

    /// Strong-scaling table over `rank_counts` with efficiency relative to
    /// the first entry (the paper's Fig. 7 normalizes at 128 cores).
    pub fn strong_scaling(&self, rank_counts: &[usize]) -> Vec<ScalingRow> {
        assert!(!rank_counts.is_empty());
        let base_p = rank_counts[0];
        let base_t = self.time_at(base_p);
        rank_counts
            .iter()
            .map(|&p| {
                let mut compute = 0.0;
                let mut comm = 0.0;
                let mut per_stage = Vec::with_capacity(self.stages.len());
                for s in &self.stages {
                    let (c, m) = s.predict(p, &self.model);
                    compute += c;
                    comm += m;
                    per_stage.push((s.label, c + m));
                }
                let total = compute + comm;
                let speedup = base_t / total;
                let parallel_efficiency = speedup / (p as f64 / base_p as f64);
                ScalingRow { ranks: p, total_seconds: total, compute_seconds: compute, comm_seconds: comm, parallel_efficiency, per_stage }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_study() -> ScalingStudy {
        ScalingStudy::new(
            vec![
                Stage::new("gemm", 10.0, vec![CommPattern::Allreduce { bytes: 1 << 24, times: 1 }]),
                Stage::new(
                    "fft",
                    5.0,
                    vec![CommPattern::Alltoall { global_bytes: 1 << 28, times: 2 }],
                ),
            ],
            CostModel::default(),
        )
    }

    #[test]
    fn single_rank_has_no_comm() {
        let s = toy_study();
        assert!((s.time_at(1) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_decays_monotonically_at_scale() {
        let s = toy_study();
        let rows = s.strong_scaling(&[1, 8, 64, 512, 4096]);
        assert!((rows[0].parallel_efficiency - 1.0).abs() < 1e-12);
        for w in rows.windows(2) {
            assert!(
                w[1].parallel_efficiency <= w[0].parallel_efficiency + 1e-9,
                "efficiency should decay: {:?}",
                rows.iter().map(|r| r.parallel_efficiency).collect::<Vec<_>>()
            );
        }
        // still substantial speedup at moderate scale
        assert!(rows[1].total_seconds < rows[0].total_seconds);
    }

    #[test]
    fn comm_grows_with_ranks_for_allreduce() {
        let m = CostModel::default();
        let p1 = CommPattern::Allreduce { bytes: 1 << 20, times: 1 };
        assert!(p1.seconds(256, &m) > p1.seconds(4, &m));
    }

    #[test]
    fn alltoall_per_rank_bytes_shrink() {
        // Total bytes fixed: per-rank payload shrinks with P, so the β-term
        // decreases even as the α-term grows.
        let m = CostModel { alpha: 0.0, beta: 1e-9 };
        let p = CommPattern::Alltoall { global_bytes: 1 << 30, times: 1 };
        assert!(p.seconds(64, &m) < p.seconds(2, &m));
    }

    #[test]
    fn max_parallelism_caps_speedup() {
        let mut st = Stage::new("kmeans", 8.0, vec![]);
        st.max_parallelism = 4;
        let (c, _) = st.predict(1024, &CostModel::default());
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scalapack_diag_term_positive_and_sublinear() {
        let m = CostModel::default();
        let d = CommPattern::ScalapackDiag { n: 2048 };
        let t64 = d.seconds(64, &m);
        let t1024 = d.seconds(1024, &m);
        assert!(t64 > 0.0);
        // log/√P keeps growth mild
        assert!(t1024 < t64 * 16.0);
    }

    #[test]
    fn weak_scaling_flat_when_comm_free() {
        // With zero comm cost, doubling work and ranks keeps time constant.
        let model = CostModel::free();
        let t1 = ScalingStudy::new(vec![Stage::new("w", 4.0, vec![])], model).time_at(4);
        let t2 = ScalingStudy::new(vec![Stage::new("w", 8.0, vec![])], model).time_at(8);
        assert!((t1 - t2).abs() < 1e-12);
    }
}
