//! `repro chaos-report` — the chaos soak gate for the `served` resilience
//! layer, written to `BENCH_chaos.json`.
//!
//! Four phases, all on a 4-rank / 2-group service:
//!
//! 1. **Fault-free control** — a clean mixed-tenant workload measuring the
//!    baseline client latency distribution (p50/p99/p999, shared
//!    linear-interpolated [`quantile`]) and asserting every result is
//!    bitwise identical to a solo `solve_distributed` run at the group
//!    size: the resilience machinery must leave the clean path untouched.
//! 2. **Chaos soak** — the same clean tenant co-scheduled with a fault
//!    tenant cycling NaN-poison, Inf-poison, and comm-delay plans, a
//!    deadline tenant whose zero budgets expire at claim time, and a
//!    pressured tenant whose jobs are degraded on the ladder. Reports
//!    throughput, the clean tenant's latency quantiles under fire, per-kind
//!    outcome counts, `serve.*` counter deltas, and cross-tenant
//!    contamination (clean and healed values compared bitwise against the
//!    per-seed oracles).
//! 3. **Breaker exercise** — a sequential closed → open → shed → half-open
//!    probe → closed walk on a one-strike service, recording each observed
//!    transition.
//! 4. **Reproducibility** — the whole soak runs twice with identical seeds;
//!    a digest over every job's (tenant, index, outcome kind, value bits,
//!    degrade label) must match bit for bit. Timing-dependent fields
//!    (latency, attempts, cache hits, fault-event counts) are excluded:
//!    the one-shot fault plans fire per rank thread, so a retry landing on
//!    the other group is poisoned once more — outcomes converge, schedules
//!    differ.
//!
//! `--check` gates: control bitwise-clean; all jobs terminal with their
//! expected outcome kind; zero contaminations; clean-tenant p99 under
//! chaos within 3× the control p99 (plus a 20 ms absolute slack — quick
//! solves are sub-millisecond, where a single scheduler hiccup would
//! otherwise dominate the ratio); equal same-seed digests; and the breaker
//! observed opening, shedding, and re-closing. A panic on any rank aborts
//! the report itself — reaching the gate summary is the no-panic check.

use crate::report::{json, quantile};
use faultkit::{FaultKind, FaultPlan};
use lrtddft::{synthetic_problem, CasidaProblem, Solver};
use parcomm::spmd;
use served::{
    AdmissionError, JobOutcome, JobSpec, ResilienceConfig, ServeConfig, Service,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// World size of every service in this report.
const RANKS: usize = 4;
/// Solver groups the world splits into (group size = 2).
const GROUPS: usize = 2;
/// `--check` gate: clean-tenant p99 under chaos over fault-free p99.
const P99_RATIO_GATE: f64 = 3.0;
/// Absolute slack on the p99 gate (sub-millisecond quick solves).
const P99_SLACK: Duration = Duration::from_millis(20);

struct Workload {
    grid: [usize; 3],
    box_len: f64,
    n_v: usize,
    n_c: usize,
    /// Clean jobs per soak (also the control workload size).
    clean_jobs: usize,
    /// Distinct solver seeds the clean jobs cycle over (each needs its own
    /// oracle; repeats past this exercise the result cache).
    clean_seeds: usize,
    /// Fault-tenant jobs per soak (cycling the three plan kinds).
    fault_jobs: usize,
    /// Zero-budget deadline jobs per soak.
    dead_jobs: usize,
    /// Pressured (to-be-degraded) jobs per soak.
    degrade_jobs: usize,
}

fn workload(quick: bool) -> Workload {
    if quick {
        Workload {
            grid: [8, 8, 8],
            box_len: 6.0,
            n_v: 2,
            n_c: 2,
            clean_jobs: 16,
            clean_seeds: 4,
            fault_jobs: 6,
            dead_jobs: 4,
            degrade_jobs: 4,
        }
    } else {
        Workload {
            grid: [10, 10, 10],
            box_len: 8.0,
            n_v: 3,
            n_c: 3,
            clean_jobs: 24,
            clean_seeds: 6,
            fault_jobs: 9,
            dead_jobs: 6,
            degrade_jobs: 6,
        }
    }
}

/// One service config for control and soak alike: the 60 s pressure window
/// deterministically pressures every deadline-carrying job (the degrade
/// tenant) without touching deadline-free work, and zero-budget jobs expire
/// before pressure matters.
fn config() -> ServeConfig {
    ServeConfig {
        ranks: RANKS,
        groups: GROUPS,
        resilience: ResilienceConfig {
            pressure_window: Duration::from_secs(60),
            ..Default::default()
        },
        ..Default::default()
    }
}

const T_CLEAN: u64 = 1;
const T_FAULT: u64 = 666;
const T_DEAD: u64 = 13;
const T_DEGRADE: u64 = 42;

fn clean_solver(seed: u64) -> Solver {
    Solver::builder().n_states(2).seed(0xc1ea + seed).eigensolver(lrtddft::Eig::Lobpcg).build()
}

/// The three chaos plans the fault tenant cycles through.
fn fault_plan(slot: usize) -> (&'static str, FaultPlan) {
    match slot % 3 {
        0 => ("nan-poison", FaultPlan::new(0xbad).with("par.v_tilde", 0, FaultKind::NanPoison)),
        1 => ("inf-poison", FaultPlan::new(0xbad).with("par.v_tilde", 0, FaultKind::InfPoison)),
        _ => (
            "comm-delay",
            FaultPlan::new(0xbad)
                .with("comm.ireduce", 0, FaultKind::CommDelay { micros: 1500 })
                .with("comm.iallreduce", 0, FaultKind::CommDelay { micros: 1500 })
                .with("comm.iallgatherv", 0, FaultKind::CommDelay { micros: 1500 }),
        ),
    }
}

/// What one job contributed to the soak record. Only the deterministic
/// fields (tenant, index, outcome kind, value bits, degrade label) feed the
/// reproducibility digest.
struct JobRecord {
    tenant: u64,
    index: usize,
    /// "clean" / "nan-poison" / "inf-poison" / "comm-delay" / "deadline" /
    /// "degrade".
    kind: &'static str,
    /// "completed" / "deadline-exceeded" / "failed" / "cancelled" /
    /// "aborted".
    outcome: &'static str,
    values: Vec<f64>,
    degraded: Option<String>,
    latency_s: f64,
}

fn outcome_name(o: &JobOutcome) -> &'static str {
    match o {
        JobOutcome::Completed(_) => "completed",
        JobOutcome::Failed { .. } => "failed",
        JobOutcome::DeadlineExceeded { .. } => "deadline-exceeded",
        JobOutcome::Cancelled => "cancelled",
        JobOutcome::Aborted => "aborted",
    }
}

/// FNV-1a digest over the deterministic slice of a soak's job records.
fn digest(records: &[JobRecord]) -> u64 {
    fn byte(h: u64, b: u8) -> u64 {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    }
    fn word(h: u64, v: u64) -> u64 {
        v.to_le_bytes().iter().fold(h, |h, &b| byte(h, b))
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in records {
        h = word(h, r.tenant);
        h = word(h, r.index as u64);
        h = r.kind.bytes().chain(r.outcome.bytes()).fold(h, byte);
        h = r.values.iter().fold(h, |h, v| word(h, v.to_bits()));
        h = r.degraded.as_deref().unwrap_or("").bytes().fold(h, byte);
    }
    h
}

/// Everything a client thread needs to run one job.
struct PlannedJob {
    tenant: u64,
    index: usize,
    kind: &'static str,
    spec: JobSpec,
}

/// The soak's deterministic job list: clean, fault, deadline, and degrade
/// tenants interleaved by index so every kind genuinely shares the service.
fn plan_jobs(w: &Workload, problem: &Arc<CasidaProblem>, chaos: bool) -> Vec<PlannedJob> {
    let mut jobs = Vec::new();
    for i in 0..w.clean_jobs {
        jobs.push(PlannedJob {
            tenant: T_CLEAN,
            index: i,
            kind: "clean",
            spec: JobSpec::new(T_CLEAN, Arc::clone(problem))
                .with_solver(clean_solver((i % w.clean_seeds) as u64)),
        });
    }
    if chaos {
        for i in 0..w.fault_jobs {
            let (kind, plan) = fault_plan(i);
            jobs.push(PlannedJob {
                tenant: T_FAULT,
                index: i,
                kind,
                spec: JobSpec::new(T_FAULT, Arc::clone(problem))
                    .with_solver(clean_solver(0))
                    .with_fault_plan(plan),
            });
        }
        for i in 0..w.dead_jobs {
            jobs.push(PlannedJob {
                tenant: T_DEAD,
                index: i,
                kind: "deadline",
                // Seeds disjoint from the clean tenant's: a shared cache key
                // would complete the job at admission (a hit beats any
                // deadline), and whether that happens would depend on submit
                // ordering — breaking the reproducibility digest.
                spec: JobSpec::new(T_DEAD, Arc::clone(problem))
                    .with_solver(clean_solver(200 + i as u64))
                    .with_deadline(Duration::ZERO),
            });
        }
        for i in 0..w.degrade_jobs {
            jobs.push(PlannedJob {
                tenant: T_DEGRADE,
                index: i,
                kind: "degrade",
                // Disjoint seeds for the same reason as the deadline tenant:
                // pressured degradation only happens on a solver group.
                spec: JobSpec::new(T_DEGRADE, Arc::clone(problem))
                    .with_solver(clean_solver(100 + i as u64))
                    .with_deadline(Duration::from_secs(30)),
            });
        }
        // Interleave by index so the attacker kinds land between clean work
        // rather than in one trailing burst.
        jobs.sort_by_key(|j| (j.index, j.tenant));
    }
    jobs
}

struct SoakResult {
    records: Vec<JobRecord>,
    wall_s: f64,
}

/// Run one planned workload on a fresh service, one client thread per job
/// (submit→terminal latency is what the tenant observes).
fn run_soak(jobs: Vec<PlannedJob>) -> SoakResult {
    let service = Service::start(config());
    let t0 = Instant::now();
    let mut records = Vec::with_capacity(jobs.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let service = &service;
                s.spawn(move || {
                    let start = Instant::now();
                    let handle = service.submit(job.spec).expect("soak fits the quotas");
                    let outcome = handle.outcome();
                    let latency_s = start.elapsed().as_secs_f64();
                    let (values, degraded) = match &outcome {
                        JobOutcome::Completed(r) => (r.values.clone(), r.degraded.clone()),
                        _ => (Vec::new(), None),
                    };
                    JobRecord {
                        tenant: job.tenant,
                        index: job.index,
                        kind: job.kind,
                        outcome: outcome_name(&outcome),
                        values,
                        degraded,
                        latency_s,
                    }
                })
            })
            .collect();
        for h in handles {
            records.push(h.join().expect("client thread"));
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    service.shutdown();
    // Digest order must not depend on thread-join timing.
    records.sort_by_key(|r| (r.tenant, r.index));
    SoakResult { records, wall_s }
}

/// Sorted clean-tenant latencies of a soak.
fn clean_latencies(records: &[JobRecord]) -> Vec<f64> {
    let mut lat: Vec<f64> =
        records.iter().filter(|r| r.tenant == T_CLEAN).map(|r| r.latency_s).collect();
    lat.sort_by(f64::total_cmp);
    lat
}

/// Completed values that must match an oracle bitwise: every clean job, and
/// every healed fault job (poison retried to a clean solve, delay never
/// corrupts arithmetic). Degraded jobs are labeled downgrades — excluded.
fn contaminations(records: &[JobRecord], oracles: &HashMap<u64, Vec<f64>>, w: &Workload) -> usize {
    records
        .iter()
        .filter(|r| {
            let seed = match (r.tenant, r.outcome) {
                (T_CLEAN, "completed") => (r.index % w.clean_seeds) as u64,
                (T_FAULT, "completed") => 0,
                _ => return false,
            };
            let oracle = &oracles[&seed];
            r.values.len() != oracle.len()
                || r.values.iter().zip(oracle).any(|(a, b)| a.to_bits() != b.to_bits())
        })
        .count()
}

struct BreakerTrace {
    opened: bool,
    shed_observed: bool,
    probe_completed: bool,
    probe_degraded: Option<String>,
    closed: bool,
}

/// Sequential closed → open → shed → probe → closed walk on a one-strike
/// service: a poisoned job with no retry budget fails terminally and opens
/// the tenant's breaker, a clean submit is shed with `CircuitOpen`, and
/// after the cooldown the half-open probe solves and re-closes it.
fn breaker_exercise(problem: &Arc<CasidaProblem>) -> BreakerTrace {
    let cooldown = Duration::from_millis(40);
    let service = Service::start(ServeConfig {
        resilience: ResilienceConfig {
            retry_max_attempts: 1,
            breaker_threshold: 1,
            breaker_cooldown: cooldown,
            ..Default::default()
        },
        ..config()
    });
    let poisoned = JobSpec::new(T_FAULT, Arc::clone(problem))
        .with_fault_plan(FaultPlan::new(0xbad).with("par.v_tilde", 0, FaultKind::NanPoison));
    let opened = matches!(
        service.submit(poisoned).expect("admitted").outcome(),
        JobOutcome::Failed { .. }
    );
    let shed_observed = matches!(
        service.submit(JobSpec::new(T_FAULT, Arc::clone(problem))),
        Err(AdmissionError::CircuitOpen { .. })
    );
    std::thread::sleep(cooldown + Duration::from_millis(20));
    let probe = service
        .submit(JobSpec::new(T_FAULT, Arc::clone(problem)))
        .expect("half-open breaker admits the probe")
        .wait();
    let (probe_completed, probe_degraded) = match probe {
        Some(r) => (r.values.iter().all(|v| v.is_finite()), r.degraded),
        None => (false, None),
    };
    let closed = service.submit(JobSpec::new(T_FAULT, Arc::clone(problem))).is_ok();
    service.shutdown();
    BreakerTrace { opened, shed_observed, probe_completed, probe_degraded, closed }
}

/// Count of records with the given tenant whose outcome is NOT `expect`.
fn off_script(records: &[JobRecord], tenant: u64, expect: &str) -> usize {
    records.iter().filter(|r| r.tenant == tenant && r.outcome != expect).count()
}

pub fn run(out_dir: &Path, quick: bool, check: bool) -> std::io::Result<()> {
    let w = workload(quick);
    println!(
        "chaos-report: {} ranks / {} groups, grid {:?}, N_v={} N_c={}",
        RANKS, GROUPS, w.grid, w.n_v, w.n_c
    );
    let problem = Arc::new(synthetic_problem(w.grid, w.box_len, w.n_v, w.n_c));

    // Per-seed fault-free oracles at the group size: what every clean (and
    // healed) value must reproduce bit for bit.
    let oracles: HashMap<u64, Vec<f64>> = (0..w.clean_seeds as u64)
        .map(|seed| {
            let solver = clean_solver(seed);
            let p = Arc::clone(&problem);
            (seed, spmd(RANKS / GROUPS, move |c| solver.solve_distributed(c, &p).0)[0].clone())
        })
        .collect();

    let counters_before = obskit::serve_counters();

    // ---- 1. fault-free control ------------------------------------------
    let control = run_soak(plan_jobs(&w, &problem, false));
    let control_lat = clean_latencies(&control.records);
    let control_p99 = quantile(&control_lat, 0.99);
    let control_contaminated = contaminations(&control.records, &oracles, &w);
    println!(
        "control: {} clean jobs, p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms, {} off-oracle",
        control_lat.len(),
        quantile(&control_lat, 0.50) * 1e3,
        control_p99 * 1e3,
        quantile(&control_lat, 0.999) * 1e3,
        control_contaminated
    );

    // ---- 2 + 4. chaos soak, twice with identical seeds -------------------
    let soak1 = run_soak(plan_jobs(&w, &problem, true));
    let soak2 = run_soak(plan_jobs(&w, &problem, true));
    let digest1 = digest(&soak1.records);
    let digest2 = digest(&soak2.records);
    let counters = obskit::serve_counters();

    let chaos_lat = clean_latencies(&soak1.records);
    let chaos_p99 = quantile(&chaos_lat, 0.99);
    let soak_contaminated = contaminations(&soak1.records, &oracles, &w)
        + contaminations(&soak2.records, &oracles, &w);
    let jobs_per_soak = soak1.records.len();
    let non_terminal: usize = [&soak1.records, &soak2.records]
        .iter()
        .map(|r| r.iter().filter(|j| matches!(j.outcome, "cancelled" | "aborted")).count())
        .sum();
    // Every tenant has a scripted terminal state; anything else is a finding.
    let surprises: usize = [&soak1.records, &soak2.records]
        .iter()
        .map(|r| {
            off_script(r, T_CLEAN, "completed")
                + off_script(r, T_FAULT, "completed")
                + off_script(r, T_DEAD, "deadline-exceeded")
                + off_script(r, T_DEGRADE, "completed")
        })
        .sum();
    let unlabeled_degrades: usize = [&soak1.records, &soak2.records]
        .iter()
        .map(|r| {
            r.iter()
                .filter(|j| j.tenant == T_DEGRADE && j.outcome == "completed")
                .filter(|j| j.degraded.is_none())
                .count()
        })
        .sum();

    let mut outcome_rows: Vec<Vec<String>> = Vec::new();
    for (tenant, label) in
        [(T_CLEAN, "clean"), (T_FAULT, "fault"), (T_DEAD, "deadline"), (T_DEGRADE, "degrade")]
    {
        let mut by_outcome: HashMap<&str, usize> = HashMap::new();
        for r in soak1.records.iter().filter(|r| r.tenant == tenant) {
            *by_outcome.entry(r.outcome).or_default() += 1;
        }
        let mut kinds: Vec<_> = by_outcome.into_iter().collect();
        kinds.sort();
        outcome_rows.push(vec![
            label.to_string(),
            kinds.iter().map(|(k, n)| format!("{n} {k}")).collect::<Vec<_>>().join(", "),
        ]);
    }
    crate::report::print_table(&["tenant", "soak outcomes"], &outcome_rows);
    println!(
        "soak: {} jobs in {:.3} s ({:.1} jobs/s); clean p50 {:.3} ms, p99 {:.3} ms \
         (control p99 {:.3} ms), p999 {:.3} ms",
        jobs_per_soak,
        soak1.wall_s,
        jobs_per_soak as f64 / soak1.wall_s,
        quantile(&chaos_lat, 0.50) * 1e3,
        chaos_p99 * 1e3,
        control_p99 * 1e3,
        quantile(&chaos_lat, 0.999) * 1e3,
    );
    println!(
        "serve counters over the campaign: {} retries, {} degraded, {} deadline misses, \
         {} breaker opens, {} unhealthy marks",
        counters.retries - counters_before.retries,
        counters.degraded - counters_before.degraded,
        counters.deadline_miss - counters_before.deadline_miss,
        counters.breaker_open - counters_before.breaker_open,
        counters.group_unhealthy - counters_before.group_unhealthy,
    );
    println!(
        "reproducibility: digest {digest1:016x} vs {digest2:016x} ({})",
        if digest1 == digest2 { "identical" } else { "DIVERGED" }
    );

    // ---- 3. breaker exercise ---------------------------------------------
    let breaker = breaker_exercise(&problem);
    println!(
        "breaker: opened={} shed={} probe={}{} closed={}",
        breaker.opened,
        breaker.shed_observed,
        breaker.probe_completed,
        breaker
            .probe_degraded
            .as_deref()
            .map(|l| format!(" (degraded: {l})"))
            .unwrap_or_default(),
        breaker.closed
    );

    // ---- BENCH_chaos.json -------------------------------------------------
    let json_text = format!(
        "{{\n  \"benchmark\": \"chaos-report\",\n  \"config\": {{\"ranks\": {RANKS}, \
         \"groups\": {GROUPS}, \"grid\": [{}, {}, {}], \"n_v\": {}, \"n_c\": {}}},\n  \
         \"control\": {{\"jobs\": {}, \"p50_s\": {}, \"p99_s\": {}, \"p999_s\": {}, \
         \"off_oracle\": {}}},\n  \
         \"soak\": {{\"jobs\": {}, \"wall_s\": {}, \"throughput_jobs_per_s\": {}, \
         \"clean_p50_s\": {}, \"clean_p99_s\": {}, \"clean_p999_s\": {}, \
         \"contaminations\": {}, \"non_terminal\": {}, \"off_script_outcomes\": {}, \
         \"unlabeled_degrades\": {}}},\n  \
         \"counters\": {{\"retries\": {}, \"degraded\": {}, \"deadline_miss\": {}, \
         \"breaker_open\": {}, \"group_unhealthy\": {}}},\n  \
         \"breaker\": {{\"opened\": {}, \"shed_observed\": {}, \"probe_completed\": {}, \
         \"probe_degraded\": {}, \"closed\": {}}},\n  \
         \"reproducibility\": {{\"digest1\": {}, \"digest2\": {}, \"identical\": {}}}\n}}\n",
        w.grid[0],
        w.grid[1],
        w.grid[2],
        w.n_v,
        w.n_c,
        control_lat.len(),
        json::number(quantile(&control_lat, 0.50)),
        json::number(control_p99),
        json::number(quantile(&control_lat, 0.999)),
        control_contaminated,
        jobs_per_soak,
        json::number(soak1.wall_s),
        json::number(jobs_per_soak as f64 / soak1.wall_s),
        json::number(quantile(&chaos_lat, 0.50)),
        json::number(chaos_p99),
        json::number(quantile(&chaos_lat, 0.999)),
        soak_contaminated,
        non_terminal,
        surprises,
        unlabeled_degrades,
        counters.retries - counters_before.retries,
        counters.degraded - counters_before.degraded,
        counters.deadline_miss - counters_before.deadline_miss,
        counters.breaker_open - counters_before.breaker_open,
        counters.group_unhealthy - counters_before.group_unhealthy,
        breaker.opened,
        breaker.shed_observed,
        breaker.probe_completed,
        breaker
            .probe_degraded
            .as_deref()
            .map(json::string)
            .unwrap_or_else(|| "null".to_string()),
        breaker.closed,
        json::string(&format!("{digest1:016x}")),
        json::string(&format!("{digest2:016x}")),
        digest1 == digest2,
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_chaos.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json_text.as_bytes())?;
    println!("wrote {}", path.display());

    if check {
        let mut failures = Vec::new();
        if control_contaminated > 0 {
            failures.push(format!(
                "{control_contaminated} fault-free control job(s) diverged from the solo \
                 oracle — the clean path is no longer bitwise-identical"
            ));
        }
        if non_terminal > 0 {
            failures.push(format!(
                "{non_terminal} soak job(s) ended cancelled/aborted instead of a served \
                 terminal state"
            ));
        }
        if surprises > 0 {
            failures.push(format!(
                "{surprises} soak job(s) reached an unscripted outcome (clean/fault/degrade \
                 must complete, zero-budget deadlines must expire)"
            ));
        }
        if unlabeled_degrades > 0 {
            failures.push(format!(
                "{unlabeled_degrades} pressured job(s) completed without a degrade label — \
                 silent degradation is forbidden"
            ));
        }
        if soak_contaminated > 0 {
            failures.push(format!(
                "{soak_contaminated} clean/healed soak job(s) diverged bitwise from the \
                 fault-free oracle — cross-tenant contamination"
            ));
        }
        let p99_cap = control_p99 * P99_RATIO_GATE + P99_SLACK.as_secs_f64();
        if chaos_p99 > p99_cap {
            failures.push(format!(
                "clean-tenant p99 under chaos {:.3} ms exceeds {P99_RATIO_GATE}x the \
                 fault-free p99 {:.3} ms (+{} ms slack)",
                chaos_p99 * 1e3,
                control_p99 * 1e3,
                P99_SLACK.as_millis()
            ));
        }
        if digest1 != digest2 {
            failures.push(format!(
                "same-seed soak digests diverged: {digest1:016x} vs {digest2:016x}"
            ));
        }
        if !(breaker.opened && breaker.shed_observed && breaker.probe_completed && breaker.closed)
        {
            failures.push(format!(
                "breaker walk incomplete: opened={} shed={} probe={} closed={}",
                breaker.opened, breaker.shed_observed, breaker.probe_completed, breaker.closed
            ));
        }
        if failures.is_empty() {
            println!("chaos-report --check: all gates passed");
        } else {
            for f in &failures {
                eprintln!("chaos-report --check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}
