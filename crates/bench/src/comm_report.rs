//! `repro comm-report` — the nonblocking comms engine vs. the blocking path,
//! written to `BENCH_comm.json`.
//!
//! Three measurements on the Fig.-5 `V_Hxc` contraction shape (distinct
//! `A`/`B` factors so the packed GEMM path, not SYRK, is exercised — the
//! same path the pipelined schedule chunks):
//!
//! 1. **Blocking vs. pipelined wall time** — `gram_allreduce` (monolithic
//!    GEMM + `Allreduce`) against `gram_pipelined_reduce` (chunked GEMM with
//!    each chunk's `ireduce` streaming on the progress engine), per rank
//!    count.
//! 2. **Measured overlap fraction** — each rank's request-outstanding
//!    windows intersected with the union of *every* rank's GEMM intervals
//!    (`parcomm::overlap_fraction`), averaged across ranks: the share of
//!    outstanding-communication time during which the application was
//!    computing. The global union is the right compute reference here
//!    because the SPMD ranks are threads sharing this host's cores — a
//!    single rank's own compute is bounded by `1/P` of wall-clock, which
//!    would make the per-rank measure say more about the core count than
//!    about the schedule. (The per-rank own-compute fractions are still
//!    reported as `overlap_fraction_self_mean`.) `--check` asserts `> 0.25`
//!    at 4 ranks: at least a quarter of outstanding-comm time must hide
//!    under compute.
//! 3. **Bitwise agreement** — every column chunk of the pipelined result
//!    must equal the blocking result bit-for-bit (`--check` gates on it),
//!    plus a ring vs. recursive-halving/doubling `iallreduce` comparison
//!    (reassociated tree sums agree only to rounding; reported, not gated).
//!
//! Per-op call/byte counters and the engine's segment-step statistics for
//! the pipelined schedule are included in the JSON so regressions in chunk
//! granularity (segment count collapsing to 1, say) are visible.

use crate::report::json;
use lrtddft::pipeline::{gram_allreduce, gram_pipelined_reduce};
use mathkit::Mat;
use parcomm::layout::block_ranges;
use parcomm::{
    overlap_fraction, spmd, Algorithm, CommInterval, CommStats, ComputeInterval, OverlapStats,
};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Rank counts benchmarked; `--check` gates on the last one.
const RANK_COUNTS: [usize; 2] = [2, 4];
/// Overlap-fraction gate for `--check` at 4 ranks.
const OVERLAP_GATE: f64 = 0.25;

struct Shape {
    /// Global grid rows (`N_r` of the contraction).
    nr: usize,
    /// Output dimension (`N_cv`): the Gram result is `ncv × ncv`.
    ncv: usize,
    reps: usize,
}

fn shape(quick: bool) -> Shape {
    if quick {
        Shape { nr: 2048, ncv: 128, reps: 5 }
    } else {
        Shape { nr: 4096, ncv: 256, reps: 5 }
    }
}

/// Deterministic dense factors — distinct so the Gram takes the GEMM path.
fn global_ab(nr: usize, ncv: usize) -> (Mat, Mat) {
    let a = Mat::from_fn(nr, ncv, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.1 - 0.5);
    let b = Mat::from_fn(nr, ncv, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.1 - 0.7);
    (a, b)
}

struct RankResult {
    blocking_s: f64,
    pipelined_s: f64,
    bitwise_identical: bool,
    /// Overlap against this rank's own compute intervals.
    overlap_self: OverlapStats,
    comm_intervals: Vec<CommInterval>,
    compute_intervals: Vec<ComputeInterval>,
    stats: CommStats,
}

struct CaseResult {
    ranks: usize,
    blocking_s: f64,
    pipelined_s: f64,
    bitwise_identical: bool,
    overlap_fraction_mean: f64,
    overlap_fraction_min: f64,
    overlap_fraction_self_mean: f64,
    comm_outstanding_s: f64,
    compute_busy_s: f64,
    seg_steps: u64,
    seg_bytes: u64,
    ireduce_calls: u64,
}

/// One rank count: time both schedules, verify bitwise agreement, collect
/// the engine's overlap measurement and per-op stats from one clean run.
fn bench_case(p: usize, sh: &Shape) -> CaseResult {
    let (a, b) = global_ab(sh.nr, sh.ncv);
    let reps = sh.reps;
    let per_rank = spmd(p, |c| {
        let rr = block_ranges(sh.nr, p)[c.rank()].clone();
        let al = a.row_block(rr.start, rr.end);
        let bl = b.row_block(rr.start, rr.end);

        // Warm-up: page in buffers, spawn the progress worker.
        let mono = gram_allreduce(c, &al, &bl, 1.0);
        let _ = gram_pipelined_reduce(c, &al, &bl, 1.0);

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = gram_allreduce(c, &al, &bl, 1.0);
        }
        c.barrier();
        let blocking_s = t0.elapsed().as_secs_f64() / reps as f64;

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = gram_pipelined_reduce(c, &al, &bl, 1.0);
        }
        c.barrier();
        let pipelined_s = t0.elapsed().as_secs_f64() / reps as f64;

        // One clean, stats-isolated run for overlap + per-op counters and
        // the bitwise comparison against the blocking result.
        c.reset_stats();
        let pipe = gram_pipelined_reduce(c, &al, &bl, 1.0).expect("pipelined reduce");
        let stats = c.stats();
        let mut bitwise = true;
        for (jl, j) in pipe.col_range.clone().enumerate() {
            for i in 0..sh.ncv {
                if mono.local[(i, j)].to_bits() != pipe.local[(i, jl)].to_bits() {
                    bitwise = false;
                }
            }
        }
        RankResult {
            blocking_s,
            pipelined_s,
            bitwise_identical: bitwise,
            overlap_self: pipe.overlap.expect("pipelined path measures overlap"),
            comm_intervals: pipe.comm_intervals,
            compute_intervals: pipe.compute_intervals,
            stats,
        }
    });

    // Overlap of each rank's outstanding-comm windows with the union of
    // every rank's compute: the ranks are threads on shared cores, so
    // "the application was computing" means *any* rank's GEMM was running.
    let all_compute: Vec<ComputeInterval> =
        per_rank.iter().flat_map(|r| r.compute_intervals.iter().copied()).collect();
    let global: Vec<OverlapStats> = per_rank
        .iter()
        .map(|r| overlap_fraction(&r.comm_intervals, &all_compute))
        .collect();

    let n = per_rank.len() as f64;
    CaseResult {
        ranks: p,
        // Barriers bracket the timed loops, so every rank reads ~the
        // critical path; take the max to be exact about it.
        blocking_s: per_rank.iter().map(|r| r.blocking_s).fold(0.0, f64::max),
        pipelined_s: per_rank.iter().map(|r| r.pipelined_s).fold(0.0, f64::max),
        bitwise_identical: per_rank.iter().all(|r| r.bitwise_identical),
        overlap_fraction_mean: global.iter().map(|o| o.fraction).sum::<f64>() / n,
        overlap_fraction_min: global.iter().map(|o| o.fraction).fold(f64::INFINITY, f64::min),
        overlap_fraction_self_mean: per_rank.iter().map(|r| r.overlap_self.fraction).sum::<f64>()
            / n,
        comm_outstanding_s: global.iter().map(|o| o.comm_busy).sum::<f64>(),
        compute_busy_s: per_rank.iter().map(|r| r.overlap_self.compute_busy).sum::<f64>(),
        seg_steps: per_rank.iter().map(|r| r.stats.seg.steps).sum(),
        seg_bytes: per_rank.iter().map(|r| r.stats.seg.bytes).sum(),
        ireduce_calls: per_rank.iter().map(|r| r.stats.ireduce.calls).sum(),
    }
}

struct AlgResult {
    ring_s: f64,
    tree_s: f64,
    max_abs_diff: f64,
    ring_matches_blocking_bitwise: bool,
}

/// Ring vs. recursive-halving/doubling `iallreduce` on an `ncv × ncv`
/// buffer at 4 ranks. Ring must match the blocking path bit-for-bit (same
/// fold order); the tree reassociates and agrees only to rounding.
fn bench_algorithms(sh: &Shape) -> AlgResult {
    let n = sh.ncv * sh.ncv;
    let reps = sh.reps;
    let per_rank = spmd(4, |c| {
        let mine: Vec<f64> =
            (0..n).map(|i| ((i * 31 + c.rank() * 17) % 101) as f64 * 1e-2 - 0.5).collect();

        let ring = c.iallreduce_sum_with(mine.clone(), Algorithm::Ring).wait();
        let tree = c.iallreduce_sum_with(mine.clone(), Algorithm::RecursiveDoubling).wait();
        let mut blocking = mine.clone();
        c.allreduce_sum(&mut blocking);

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = c.iallreduce_sum_with(mine.clone(), Algorithm::Ring).wait();
        }
        c.barrier();
        let ring_s = t0.elapsed().as_secs_f64() / reps as f64;

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = c.iallreduce_sum_with(mine.clone(), Algorithm::RecursiveDoubling).wait();
        }
        c.barrier();
        let tree_s = t0.elapsed().as_secs_f64() / reps as f64;

        let diff = ring
            .iter()
            .zip(&tree)
            .map(|(r, t)| (r - t).abs())
            .fold(0.0f64, f64::max);
        let bitwise = ring.iter().zip(&blocking).all(|(r, b)| r.to_bits() == b.to_bits());
        (ring_s, tree_s, diff, bitwise)
    });
    AlgResult {
        ring_s: per_rank.iter().map(|r| r.0).fold(0.0, f64::max),
        tree_s: per_rank.iter().map(|r| r.1).fold(0.0, f64::max),
        max_abs_diff: per_rank.iter().map(|r| r.2).fold(0.0, f64::max),
        ring_matches_blocking_bitwise: per_rank.iter().all(|r| r.3),
    }
}

pub fn run(out_dir: &Path, quick: bool, check: bool) -> std::io::Result<()> {
    let sh = shape(quick);
    println!(
        "comm-report: Fig.-5 contraction shape N_r={} N_cv={} ({} reps), ranks {:?}",
        sh.nr, sh.ncv, sh.reps, RANK_COUNTS
    );

    let cases: Vec<CaseResult> = RANK_COUNTS.iter().map(|&p| bench_case(p, &sh)).collect();

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.ranks.to_string(),
                format!("{:.3}", c.blocking_s * 1e3),
                format!("{:.3}", c.pipelined_s * 1e3),
                format!("{:.2}x", c.blocking_s / c.pipelined_s),
                format!("{:.3}", c.overlap_fraction_mean),
                c.seg_steps.to_string(),
                if c.bitwise_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    crate::report::print_table(
        &["ranks", "blocking (ms)", "pipelined (ms)", "speedup", "overlap", "seg steps", "bitwise"],
        &rows,
    );

    let alg = bench_algorithms(&sh);
    println!(
        "iallreduce algorithms @4 ranks, {} words: ring {:.3} ms, recursive-doubling {:.3} ms, \
         max |ring−tree| = {:.2e}, ring≡blocking bitwise: {}",
        sh.ncv * sh.ncv,
        alg.ring_s * 1e3,
        alg.tree_s * 1e3,
        alg.max_abs_diff,
        alg.ring_matches_blocking_bitwise
    );

    // --- BENCH_comm.json --------------------------------------------------
    let case_entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"ranks\": {}, \"blocking_s\": {}, \"pipelined_s\": {}, \"speedup\": {}, \
                 \"overlap_fraction\": {}, \"overlap_fraction_min\": {}, \
                 \"overlap_fraction_self_mean\": {}, \"comm_outstanding_s\": {}, \
                 \"compute_busy_s\": {}, \"seg_steps\": {}, \"seg_bytes\": {}, \
                 \"ireduce_calls\": {}, \"bitwise_identical\": {}}}",
                c.ranks,
                json::number(c.blocking_s),
                json::number(c.pipelined_s),
                json::number(c.blocking_s / c.pipelined_s),
                json::number(c.overlap_fraction_mean),
                json::number(c.overlap_fraction_min),
                json::number(c.overlap_fraction_self_mean),
                json::number(c.comm_outstanding_s),
                json::number(c.compute_busy_s),
                c.seg_steps,
                c.seg_bytes,
                c.ireduce_calls,
                c.bitwise_identical
            )
        })
        .collect();
    let json_text = format!(
        "{{\n  \"benchmark\": \"comm-report\",\n  \"shape\": {{\"nr\": {}, \"ncv\": {}, \
         \"reps\": {}}},\n  \"segment_words\": {},\n  \"cases\": [\n{}\n  ],\n  \
         \"algorithms\": {{\"ring_s\": {}, \"recursive_doubling_s\": {}, \"max_abs_diff\": {}, \
         \"ring_matches_blocking_bitwise\": {}}}\n}}\n",
        sh.nr,
        sh.ncv,
        sh.reps,
        parcomm::DEFAULT_SEGMENT_WORDS,
        case_entries.join(",\n"),
        json::number(alg.ring_s),
        json::number(alg.tree_s),
        json::number(alg.max_abs_diff),
        alg.ring_matches_blocking_bitwise
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_comm.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json_text.as_bytes())?;
    println!("wrote {}", path.display());

    if check {
        let four = cases.iter().find(|c| c.ranks == 4).expect("4-rank case present");
        let mut failures = Vec::new();
        if four.overlap_fraction_mean <= OVERLAP_GATE {
            failures.push(format!(
                "overlap fraction {:.3} at 4 ranks ≤ gate {OVERLAP_GATE}",
                four.overlap_fraction_mean
            ));
        }
        if !cases.iter().all(|c| c.bitwise_identical) {
            failures.push("pipelined result not bitwise-identical to blocking".to_string());
        }
        if !alg.ring_matches_blocking_bitwise {
            failures.push("ring iallreduce diverged from blocking allreduce".to_string());
        }
        if failures.is_empty() {
            println!("comm-report --check: all gates passed");
        } else {
            for f in &failures {
                eprintln!("comm-report --check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}
