//! `repro comm-report` — the nonblocking comms engine vs. the blocking path,
//! written to `BENCH_comm.json`.
//!
//! Three measurements on the Fig.-5 `V_Hxc` contraction shape (distinct
//! `A`/`B` factors so the packed GEMM path, not SYRK, is exercised — the
//! same path the pipelined schedule chunks):
//!
//! 1. **Blocking vs. pipelined wall time** — `gram_allreduce` (monolithic
//!    GEMM + `Allreduce`) against `gram_pipelined_reduce` (chunked GEMM with
//!    each chunk's `ireduce` streaming on the progress engine), per rank
//!    count.
//! 2. **Measured overlap fraction** — each rank's request-outstanding
//!    windows intersected with the union of *every* rank's GEMM intervals
//!    (`parcomm::overlap_fraction`), averaged across ranks: the share of
//!    outstanding-communication time during which the application was
//!    computing. The global union is the right compute reference here
//!    because the SPMD ranks are threads sharing this host's cores — a
//!    single rank's own compute is bounded by `1/P` of wall-clock, which
//!    would make the per-rank measure say more about the core count than
//!    about the schedule. (The per-rank own-compute fractions are still
//!    reported as `overlap_fraction_self_mean`.) `--check` asserts `> 0.25`
//!    at 4 ranks: at least a quarter of outstanding-comm time must hide
//!    under compute.
//! 3. **Bitwise agreement** — every column chunk of the pipelined result
//!    must equal the blocking result bit-for-bit (`--check` gates on it),
//!    plus a ring vs. recursive-halving/doubling `iallreduce` comparison
//!    (reassociated tree sums agree only to rounding; reported, not gated).
//!
//! Per-op call/byte counters and the engine's segment-step statistics for
//! the pipelined schedule are included in the JSON so regressions in chunk
//! granularity (segment count collapsing to 1, say) are visible.
//!
//! 4. **Fused vs. unfused solve** — the full ISDF solve (the `repro
//!    perf-report` quick workload) run twice at 4 ranks, once with the
//!    deferred-reduction scheduler fusing collectives and once forced
//!    unfused. `--check` gates on: eigenvalues bitwise identical, the fused
//!    schedule issuing ≤ 60% of the unfused α-dominated (≤ 32 KiB)
//!    collective calls, and the α–β-modeled 1024-rank comm seconds beating
//!    the *committed* `BENCH_perf.json` baseline under that record's own
//!    fitted constants.

use crate::report::json;
use lrtddft::pipeline::{gram_allreduce, gram_pipelined_reduce};
use lrtddft::{silicon_like_problem, IsdfRank, SolveOptions};
use mathkit::Mat;
use parcomm::layout::block_ranges;
use parcomm::{
    overlap_fraction, spmd, Algorithm, CommInterval, CommStats, CommTuning, ComputeInterval,
    OverlapStats,
};
use perfsight::{CostModelFit, OpFit};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Rank counts benchmarked; `--check` gates on the last one.
const RANK_COUNTS: [usize; 2] = [2, 4];
/// Overlap-fraction gate for `--check` at 4 ranks.
const OVERLAP_GATE: f64 = 0.25;
/// `--check` gate: the fused solve must issue at most this fraction of the
/// unfused solve's α-dominated collective calls (≥ 40% reduction).
const ALPHA_CALL_RATIO_GATE: f64 = 0.6;
/// Extrapolation rank count for the modeled comm-seconds gate.
const MODEL_RANKS: usize = 1024;

struct Shape {
    /// Global grid rows (`N_r` of the contraction).
    nr: usize,
    /// Output dimension (`N_cv`): the Gram result is `ncv × ncv`.
    ncv: usize,
    reps: usize,
}

fn shape(quick: bool) -> Shape {
    if quick {
        Shape { nr: 2048, ncv: 128, reps: 5 }
    } else {
        Shape { nr: 4096, ncv: 256, reps: 5 }
    }
}

/// Deterministic dense factors — distinct so the Gram takes the GEMM path.
fn global_ab(nr: usize, ncv: usize) -> (Mat, Mat) {
    let a = Mat::from_fn(nr, ncv, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.1 - 0.5);
    let b = Mat::from_fn(nr, ncv, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.1 - 0.7);
    (a, b)
}

struct RankResult {
    blocking_s: f64,
    pipelined_s: f64,
    bitwise_identical: bool,
    /// Overlap against this rank's own compute intervals.
    overlap_self: OverlapStats,
    comm_intervals: Vec<CommInterval>,
    compute_intervals: Vec<ComputeInterval>,
    stats: CommStats,
}

struct CaseResult {
    ranks: usize,
    blocking_s: f64,
    pipelined_s: f64,
    bitwise_identical: bool,
    overlap_fraction_mean: f64,
    overlap_fraction_min: f64,
    overlap_fraction_self_mean: f64,
    comm_outstanding_s: f64,
    compute_busy_s: f64,
    seg_steps: u64,
    seg_bytes: u64,
    ireduce_calls: u64,
}

/// One rank count: time both schedules, verify bitwise agreement, collect
/// the engine's overlap measurement and per-op stats from one clean run.
fn bench_case(p: usize, sh: &Shape) -> CaseResult {
    let (a, b) = global_ab(sh.nr, sh.ncv);
    let reps = sh.reps;
    let per_rank = spmd(p, |c| {
        let rr = block_ranges(sh.nr, p)[c.rank()].clone();
        let al = a.row_block(rr.start, rr.end);
        let bl = b.row_block(rr.start, rr.end);

        // Warm-up: page in buffers, spawn the progress worker.
        let mono = gram_allreduce(c, &al, &bl, 1.0);
        let _ = gram_pipelined_reduce(c, &al, &bl, 1.0);

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = gram_allreduce(c, &al, &bl, 1.0);
        }
        c.barrier();
        let blocking_s = t0.elapsed().as_secs_f64() / reps as f64;

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = gram_pipelined_reduce(c, &al, &bl, 1.0);
        }
        c.barrier();
        let pipelined_s = t0.elapsed().as_secs_f64() / reps as f64;

        // One clean, stats-isolated run for overlap + per-op counters and
        // the bitwise comparison against the blocking result.
        c.reset_stats();
        let pipe = gram_pipelined_reduce(c, &al, &bl, 1.0).expect("pipelined reduce");
        let stats = c.stats();
        let mut bitwise = true;
        for (jl, j) in pipe.col_range.clone().enumerate() {
            for i in 0..sh.ncv {
                if mono.local[(i, j)].to_bits() != pipe.local[(i, jl)].to_bits() {
                    bitwise = false;
                }
            }
        }
        RankResult {
            blocking_s,
            pipelined_s,
            bitwise_identical: bitwise,
            overlap_self: pipe.overlap.expect("pipelined path measures overlap"),
            comm_intervals: pipe.comm_intervals,
            compute_intervals: pipe.compute_intervals,
            stats,
        }
    });

    // Overlap of each rank's outstanding-comm windows with the union of
    // every rank's compute: the ranks are threads on shared cores, so
    // "the application was computing" means *any* rank's GEMM was running.
    let all_compute: Vec<ComputeInterval> =
        per_rank.iter().flat_map(|r| r.compute_intervals.iter().copied()).collect();
    let global: Vec<OverlapStats> = per_rank
        .iter()
        .map(|r| overlap_fraction(&r.comm_intervals, &all_compute))
        .collect();

    let n = per_rank.len() as f64;
    CaseResult {
        ranks: p,
        // Barriers bracket the timed loops, so every rank reads ~the
        // critical path; take the max to be exact about it.
        blocking_s: per_rank.iter().map(|r| r.blocking_s).fold(0.0, f64::max),
        pipelined_s: per_rank.iter().map(|r| r.pipelined_s).fold(0.0, f64::max),
        bitwise_identical: per_rank.iter().all(|r| r.bitwise_identical),
        overlap_fraction_mean: global.iter().map(|o| o.fraction).sum::<f64>() / n,
        overlap_fraction_min: global.iter().map(|o| o.fraction).fold(f64::INFINITY, f64::min),
        overlap_fraction_self_mean: per_rank.iter().map(|r| r.overlap_self.fraction).sum::<f64>()
            / n,
        comm_outstanding_s: global.iter().map(|o| o.comm_busy).sum::<f64>(),
        compute_busy_s: per_rank.iter().map(|r| r.overlap_self.compute_busy).sum::<f64>(),
        seg_steps: per_rank.iter().map(|r| r.stats.seg.steps).sum(),
        seg_bytes: per_rank.iter().map(|r| r.stats.seg.bytes).sum(),
        ireduce_calls: per_rank.iter().map(|r| r.stats.ireduce.calls).sum(),
    }
}

struct AlgResult {
    ring_s: f64,
    tree_s: f64,
    max_abs_diff: f64,
    ring_matches_blocking_bitwise: bool,
}

/// Ring vs. recursive-halving/doubling `iallreduce` on an `ncv × ncv`
/// buffer at 4 ranks. Ring must match the blocking path bit-for-bit (same
/// fold order); the tree reassociates and agrees only to rounding.
fn bench_algorithms(sh: &Shape) -> AlgResult {
    let n = sh.ncv * sh.ncv;
    let reps = sh.reps;
    let per_rank = spmd(4, |c| {
        let mine: Vec<f64> =
            (0..n).map(|i| ((i * 31 + c.rank() * 17) % 101) as f64 * 1e-2 - 0.5).collect();

        let ring = c.iallreduce_sum_with(mine.clone(), Algorithm::Ring).wait();
        let tree = c.iallreduce_sum_with(mine.clone(), Algorithm::RecursiveDoubling).wait();
        let mut blocking = mine.clone();
        c.allreduce_sum(&mut blocking);

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = c.iallreduce_sum_with(mine.clone(), Algorithm::Ring).wait();
        }
        c.barrier();
        let ring_s = t0.elapsed().as_secs_f64() / reps as f64;

        c.barrier();
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = c.iallreduce_sum_with(mine.clone(), Algorithm::RecursiveDoubling).wait();
        }
        c.barrier();
        let tree_s = t0.elapsed().as_secs_f64() / reps as f64;

        let diff = ring
            .iter()
            .zip(&tree)
            .map(|(r, t)| (r - t).abs())
            .fold(0.0f64, f64::max);
        let bitwise = ring.iter().zip(&blocking).all(|(r, b)| r.to_bits() == b.to_bits());
        (ring_s, tree_s, diff, bitwise)
    });
    AlgResult {
        ring_s: per_rank.iter().map(|r| r.0).fold(0.0, f64::max),
        tree_s: per_rank.iter().map(|r| r.1).fold(0.0, f64::max),
        max_abs_diff: per_rank.iter().map(|r| r.2).fold(0.0, f64::max),
        ring_matches_blocking_bitwise: per_rank.iter().all(|r| r.3),
    }
}

// ---- fused vs. unfused solve -----------------------------------------------

/// One side (fused or forced-unfused) of the deferred-reduction comparison.
struct SolveSide {
    /// Replicated eigenvalues (identical across ranks; checked bitwise
    /// against the other side).
    eigenvalues: Vec<f64>,
    /// Total collectives issued across ranks (blocking + nonblocking).
    collective_calls: u64,
    /// Collectives with ≤ 32 KiB payload — the latency-dominated ones the
    /// scheduler exists to eliminate.
    alpha_calls: u64,
    fused_flushes: u64,
    fused_fields: u64,
    /// Per-op `(name, calls, bytes)` totals across ranks, for the α–β model.
    op_totals: Vec<(&'static str, u64, u64)>,
    stats: Vec<CommStats>,
}

/// Run the perf-report quick workload (same problem, states, and seed as the
/// committed `BENCH_perf.json`) at 4 ranks with fusion forced on or off.
fn solve_side(fused: bool) -> SolveSide {
    let problem = silicon_like_problem(1, 10, 3);
    let n_mu = IsdfRank::default().resolve(problem.n_r(), problem.n_v(), problem.n_c());
    let k = 4.min(problem.n_cv());
    let was = parcomm::fusion_enabled();
    parcomm::set_fusion_enabled(fused);
    let per_rank = spmd(4, |c| {
        let o = SolveOptions::new().rank(IsdfRank::Fixed(n_mu)).n_states(k).seed(0xcafe);
        let (vals, _t) =
            lrtddft::Solver::builder().options(o).build().solve_distributed(c, &problem);
        (vals, c.stats())
    });
    parcomm::set_fusion_enabled(was);

    let eigenvalues = per_rank[0].0.clone();
    assert!(
        per_rank.iter().all(|(v, _)| v == &eigenvalues),
        "solve eigenvalues must be replicated across ranks"
    );
    let stats: Vec<CommStats> = per_rank.iter().map(|(_, s)| *s).collect();
    let mut op_totals: Vec<(&'static str, u64, u64)> = Vec::new();
    for (idx, &(op, _)) in stats[0].per_op().iter().enumerate() {
        let calls: u64 = stats.iter().map(|s| s.per_op()[idx].1.calls).sum();
        let bytes: u64 = stats.iter().map(|s| s.per_op()[idx].1.bytes).sum();
        if calls > 0 {
            op_totals.push((op, calls, bytes));
        }
    }
    SolveSide {
        eigenvalues,
        collective_calls: stats.iter().map(|s| s.collective_calls).sum(),
        alpha_calls: stats.iter().map(|s| s.alpha_calls).sum(),
        fused_flushes: stats.iter().map(|s| s.fused_flushes).sum(),
        fused_fields: stats.iter().map(|s| s.fused_fields).sum(),
        op_totals,
        stats,
    }
}

/// The committed `BENCH_perf.json` costmodel block: fitted global (α, β) and
/// the per-op call/byte totals it was fitted on.
struct CommittedModel {
    ranks: usize,
    alpha: f64,
    beta: f64,
    ops: Vec<(&'static str, u64, u64)>,
}

/// Parse the committed record. Searched in `--out`, then
/// the working directory (CI runs from the repo root, where it is committed).
fn committed_costmodel(out_dir: &Path) -> Option<CommittedModel> {
    let path = [out_dir.join("BENCH_perf.json"), PathBuf::from("BENCH_perf.json")]
        .into_iter()
        .find(|p| p.is_file())?;
    let text = std::fs::read_to_string(&path).ok()?;
    let v = obskit::chrome::parse_json(&text).ok()?;
    let ranks = v.get("ranks").and_then(|x| x.as_f64())? as usize;
    let cm = v.get("costmodel")?;
    let alpha = cm.get("global_alpha_s").and_then(|x| x.as_f64())?;
    let beta = cm.get("global_beta_s_per_byte").and_then(|x| x.as_f64())?;
    let mut ops = Vec::new();
    for o in cm.get("ops").and_then(|x| x.as_array())? {
        let name = o.get("op").and_then(|x| x.as_str())?;
        let Some(op) = op_name_static(name) else { continue };
        let calls = o.get("calls").and_then(|x| x.as_f64())? as u64;
        let bytes = o.get("bytes").and_then(|x| x.as_f64())? as u64;
        ops.push((op, calls, bytes));
    }
    Some(CommittedModel { ranks, alpha, beta, ops })
}

/// Map a JSON op label back to the `'static` name `OpFit` carries.
fn op_name_static(s: &str) -> Option<&'static str> {
    [
        "allreduce",
        "reduce",
        "bcast",
        "allgatherv",
        "alltoallv",
        "barrier",
        "ireduce",
        "iallreduce",
        "ibcast",
        "iallgatherv",
        "ialltoallv",
    ]
    .iter()
    .find(|&&n| n == s)
    .copied()
}

/// Hockney-extrapolated comm seconds at [`MODEL_RANKS`] for a per-op
/// call/byte profile measured at `ranks`, under fixed global (α, β).
fn modeled_comm_at_scale(
    ranks: usize,
    alpha: f64,
    beta: f64,
    ops: &[(&'static str, u64, u64)],
) -> f64 {
    let fitlike = CostModelFit {
        ranks,
        ops: ops
            .iter()
            .map(|&(op, calls, bytes)| OpFit {
                op,
                calls,
                bytes,
                measured_s: 0.0,
                alpha: 0.0,
                beta: 0.0,
                predicted_s: 0.0,
                rel_err: 0.0,
            })
            .collect(),
        global_alpha: alpha,
        global_beta: beta,
        total_measured_s: 0.0,
        total_predicted_s: 0.0,
        worst_rel_err: 0.0,
    };
    fitlike.comm_seconds_at(MODEL_RANKS)
}

pub fn run(out_dir: &Path, quick: bool, check: bool) -> std::io::Result<()> {
    let sh = shape(quick);
    println!(
        "comm-report: Fig.-5 contraction shape N_r={} N_cv={} ({} reps), ranks {:?}",
        sh.nr, sh.ncv, sh.reps, RANK_COUNTS
    );

    let cases: Vec<CaseResult> = RANK_COUNTS.iter().map(|&p| bench_case(p, &sh)).collect();

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.ranks.to_string(),
                format!("{:.3}", c.blocking_s * 1e3),
                format!("{:.3}", c.pipelined_s * 1e3),
                format!("{:.2}x", c.blocking_s / c.pipelined_s),
                format!("{:.3}", c.overlap_fraction_mean),
                c.seg_steps.to_string(),
                if c.bitwise_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    crate::report::print_table(
        &["ranks", "blocking (ms)", "pipelined (ms)", "speedup", "overlap", "seg steps", "bitwise"],
        &rows,
    );

    let alg = bench_algorithms(&sh);
    println!(
        "iallreduce algorithms @4 ranks, {} words: ring {:.3} ms, recursive-doubling {:.3} ms, \
         max |ring−tree| = {:.2e}, ring≡blocking bitwise: {}",
        sh.ncv * sh.ncv,
        alg.ring_s * 1e3,
        alg.tree_s * 1e3,
        alg.max_abs_diff,
        alg.ring_matches_blocking_bitwise
    );

    // ---- fused vs. unfused solve ----------------------------------------
    println!("\nfused vs unfused solve (perf-report quick workload, 4 ranks):");
    let unfused = solve_side(false);
    let fused = solve_side(true);
    let values_bitwise = fused.eigenvalues.len() == unfused.eigenvalues.len()
        && fused
            .eigenvalues
            .iter()
            .zip(&unfused.eigenvalues)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let alpha_ratio = fused.alpha_calls as f64 / unfused.alpha_calls.max(1) as f64;
    let committed = committed_costmodel(out_dir);
    // Model both schedules' 1024-rank comm time under the *committed*
    // record's fitted constants: the committed per-op profile is the
    // "before", the measured fused profile the "after".
    let (comm_at_scale_baseline, comm_at_scale_fused) = match &committed {
        Some(cm) => (
            Some(modeled_comm_at_scale(cm.ranks, cm.alpha, cm.beta, &cm.ops)),
            Some(modeled_comm_at_scale(4, cm.alpha, cm.beta, &fused.op_totals)),
        ),
        None => (None, None),
    };
    let fmt_s = |v: Option<f64>| v.map_or("n/a".to_string(), |s| format!("{s:.6}"));
    crate::report::print_table(
        &["metric", "unfused", "fused"],
        &[
            vec![
                "collective calls".into(),
                unfused.collective_calls.to_string(),
                fused.collective_calls.to_string(),
            ],
            vec![
                "α-dominated calls (≤32 KiB)".into(),
                unfused.alpha_calls.to_string(),
                format!("{} ({:.0}%)", fused.alpha_calls, alpha_ratio * 100.0),
            ],
            vec![
                "fused flushes / fields".into(),
                format!("{} / {}", unfused.fused_flushes, unfused.fused_fields),
                format!("{} / {}", fused.fused_flushes, fused.fused_fields),
            ],
            vec![
                format!("modeled comm_s @{MODEL_RANKS} (committed α–β)"),
                fmt_s(comm_at_scale_baseline),
                fmt_s(comm_at_scale_fused),
            ],
        ],
    );
    println!(
        "eigenvalues fused ≡ unfused bitwise: {}",
        if values_bitwise { "yes" } else { "NO" }
    );
    // Feed the hierarchical-collective policy from perfsight's fit of the
    // fused run: would a two-level schedule win for this workload's mean
    // small-message allreduce at scale?
    let fused_fit = perfsight::fit(&fused.stats);
    let mean_small_bytes = {
        let (calls, bytes) = fused
            .op_totals
            .iter()
            .filter(|(op, _, _)| matches!(*op, "allreduce" | "iallreduce"))
            .fold((0u64, 0u64), |(c, b), &(_, calls, bytes)| (c + calls, b + bytes));
        (bytes / calls.max(1)).max(8) as usize
    };
    let tuning = CommTuning {
        alpha: fused_fit.global_alpha,
        beta: fused_fit.global_beta,
        allow_reassociation: true,
    };
    let group = (MODEL_RANKS as f64).sqrt() as usize;
    println!(
        "hierarchy policy (perfsight-fitted α = {:.3} us, β⁻¹ = {:.2} GB/s): two-level @{} ranks \
         (g = {group}) for {}-byte allreduce: {} (flat {:.3} ms vs two-level {:.3} ms)",
        tuning.alpha * 1e6,
        if tuning.beta > 0.0 { 1.0 / tuning.beta / 1e9 } else { f64::NAN },
        MODEL_RANKS,
        mean_small_bytes,
        if tuning.picks_two_level(MODEL_RANKS, group, mean_small_bytes) { "yes" } else { "no" },
        tuning.flat_cost(MODEL_RANKS, mean_small_bytes) * 1e3,
        tuning.two_level_cost(MODEL_RANKS, group, mean_small_bytes) * 1e3,
    );

    // --- BENCH_comm.json --------------------------------------------------
    let case_entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"ranks\": {}, \"blocking_s\": {}, \"pipelined_s\": {}, \"speedup\": {}, \
                 \"overlap_fraction\": {}, \"overlap_fraction_min\": {}, \
                 \"overlap_fraction_self_mean\": {}, \"comm_outstanding_s\": {}, \
                 \"compute_busy_s\": {}, \"seg_steps\": {}, \"seg_bytes\": {}, \
                 \"ireduce_calls\": {}, \"bitwise_identical\": {}}}",
                c.ranks,
                json::number(c.blocking_s),
                json::number(c.pipelined_s),
                json::number(c.blocking_s / c.pipelined_s),
                json::number(c.overlap_fraction_mean),
                json::number(c.overlap_fraction_min),
                json::number(c.overlap_fraction_self_mean),
                json::number(c.comm_outstanding_s),
                json::number(c.compute_busy_s),
                c.seg_steps,
                c.seg_bytes,
                c.ireduce_calls,
                c.bitwise_identical
            )
        })
        .collect();
    let json_text = format!(
        "{{\n  \"benchmark\": \"comm-report\",\n  \"shape\": {{\"nr\": {}, \"ncv\": {}, \
         \"reps\": {}}},\n  \"segment_words\": {},\n  \"cases\": [\n{}\n  ],\n  \
         \"algorithms\": {{\"ring_s\": {}, \"recursive_doubling_s\": {}, \"max_abs_diff\": {}, \
         \"ring_matches_blocking_bitwise\": {}}},\n  \"fused_solve\": {{\n    \
         \"eigenvalues_bitwise\": {},\n    \"collective_calls_unfused\": {},\n    \
         \"collective_calls_fused\": {},\n    \"alpha_calls_unfused\": {},\n    \
         \"alpha_calls_fused\": {},\n    \"alpha_call_ratio\": {},\n    \
         \"fused_flushes\": {},\n    \"fused_fields\": {},\n    \
         \"modeled_comm_s_at_{}_committed\": {},\n    \
         \"modeled_comm_s_at_{}_fused\": {}\n  }}\n}}\n",
        sh.nr,
        sh.ncv,
        sh.reps,
        parcomm::DEFAULT_SEGMENT_WORDS,
        case_entries.join(",\n"),
        json::number(alg.ring_s),
        json::number(alg.tree_s),
        json::number(alg.max_abs_diff),
        alg.ring_matches_blocking_bitwise,
        values_bitwise,
        unfused.collective_calls,
        fused.collective_calls,
        unfused.alpha_calls,
        fused.alpha_calls,
        json::number(alpha_ratio),
        fused.fused_flushes,
        fused.fused_fields,
        MODEL_RANKS,
        comm_at_scale_baseline.map_or("null".to_string(), json::number),
        MODEL_RANKS,
        comm_at_scale_fused.map_or("null".to_string(), json::number),
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_comm.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json_text.as_bytes())?;
    println!("wrote {}", path.display());

    if check {
        let four = cases.iter().find(|c| c.ranks == 4).expect("4-rank case present");
        let mut failures = Vec::new();
        if four.overlap_fraction_mean <= OVERLAP_GATE {
            failures.push(format!(
                "overlap fraction {:.3} at 4 ranks ≤ gate {OVERLAP_GATE}",
                four.overlap_fraction_mean
            ));
        }
        if !cases.iter().all(|c| c.bitwise_identical) {
            failures.push("pipelined result not bitwise-identical to blocking".to_string());
        }
        if !alg.ring_matches_blocking_bitwise {
            failures.push("ring iallreduce diverged from blocking allreduce".to_string());
        }
        if !values_bitwise {
            failures.push(
                "fused solve eigenvalues not bitwise-identical to unfused solve".to_string(),
            );
        }
        if alpha_ratio > ALPHA_CALL_RATIO_GATE {
            failures.push(format!(
                "fused solve still issues {:.0}% of the unfused α-dominated collective calls \
                 ({} vs {}, gate ≤ {:.0}%)",
                alpha_ratio * 100.0,
                fused.alpha_calls,
                unfused.alpha_calls,
                ALPHA_CALL_RATIO_GATE * 100.0
            ));
        }
        match (comm_at_scale_baseline, comm_at_scale_fused) {
            (Some(before), Some(after)) => {
                if after >= before {
                    failures.push(format!(
                        "modeled comm_s at {MODEL_RANKS} ranks did not improve: \
                         {after:.6} (fused) vs {before:.6} (committed BENCH_perf.json)"
                    ));
                }
            }
            _ => failures.push(
                "committed BENCH_perf.json not found (searched --out and the working \
                 directory) — cannot grade modeled comm seconds at scale"
                    .to_string(),
            ),
        }
        if failures.is_empty() {
            println!("comm-report --check: all gates passed");
        } else {
            for f in &failures {
                eprintln!("comm-report --check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}
