//! `repro fault-report` — deterministic fault-injection campaign over the
//! LR-TDDFT pipeline, written to `BENCH_fault.json`.
//!
//! Each case arms one [`faultkit::FaultPlan`], runs the solver through the
//! recovery ladders ([`SolveOptions::run`] serially, or
//! `distributed_solve_with` under SPMD for the comm faults), and grades the
//! outcome against a fault-free baseline computed once up front:
//!
//! * **recovered** — the run completed without panicking and every
//!   eigenvalue agrees with the baseline to [`AGREEMENT_TOL`].
//! * **fired** — the planned fault actually triggered (a case whose fault
//!   never fires exercises nothing and is reported as such, not as a pass).
//! * **bit-reproducible** — the whole campaign is run twice with identical
//!   seeds; fault-event logs and recovered eigenvalues must match exactly.
//!
//! `--check` gates on: recovery rate ≥ [`RECOVERY_GATE`], zero panics,
//! every fault fired, and bitwise campaign reproducibility — the ISSUE's
//! acceptance criteria for the self-healing ladders.

use crate::report::json;
use faultkit::{arm, FaultKind, FaultPlan};
use lrtddft::problem::{synthetic_problem, CasidaProblem};
use lrtddft::{IsdfRank, SolveOptions, Solver, Version};
use parcomm::spmd;
use std::io::Write;
use std::path::Path;

/// Recovered eigenvalues must match the fault-free run this closely.
const AGREEMENT_TOL: f64 = 1e-8;
/// `--check` gate on the fraction of fired faults that recover.
const RECOVERY_GATE: f64 = 0.95;
/// SPMD width for the communication-fault cases.
const COMM_RANKS: usize = 2;

/// One planned fault case.
struct Case {
    name: &'static str,
    site: &'static str,
    occurrence: u64,
    kind: FaultKind,
    version: Version,
    /// Run under `spmd(COMM_RANKS)` through the distributed solver.
    distributed: bool,
}

fn campaign_cases(quick: bool) -> Vec<Case> {
    let mut cases = vec![
        Case {
            name: "nan-ham-c",
            site: "ham.c",
            occurrence: 0,
            kind: FaultKind::NanPoison,
            version: Version::KmeansIsdf,
            distributed: false,
        },
        Case {
            name: "inf-vtilde",
            site: "ham.v_tilde",
            occurrence: 0,
            kind: FaultKind::InfPoison,
            version: Version::KmeansIsdf,
            distributed: false,
        },
        Case {
            name: "lobpcg-w-poison",
            site: "lobpcg.w",
            occurrence: 0,
            kind: FaultKind::NanPoison,
            version: Version::ImplicitKmeansIsdfLobpcg,
            distributed: false,
        },
        Case {
            name: "rank-starvation",
            site: "isdf.points",
            occurrence: 0,
            kind: FaultKind::RankStarvation,
            version: Version::KmeansIsdf,
            distributed: false,
        },
        Case {
            name: "kmeans-degenerate",
            site: "kmeans.init",
            occurrence: 0,
            kind: FaultKind::DegenerateSeeding,
            version: Version::KmeansIsdf,
            distributed: false,
        },
        Case {
            name: "comm-drop-reduce",
            site: "comm.ireduce",
            occurrence: 1,
            kind: FaultKind::CommDrop,
            version: Version::ImplicitKmeansIsdfLobpcg,
            distributed: true,
        },
        Case {
            name: "comm-delay-allreduce",
            site: "comm.iallreduce",
            occurrence: 0,
            kind: FaultKind::CommDelay { micros: 2_000 },
            version: Version::ImplicitKmeansIsdfLobpcg,
            distributed: true,
        },
        Case {
            name: "comm-stall-allreduce",
            site: "comm.iallreduce",
            occurrence: 0,
            // Longer than one wait deadline (60 ms) but far inside the
            // retry budget: exercises wait-with-deadline + re-wait.
            kind: FaultKind::CommStall { micros: 80_000 },
            version: Version::ImplicitKmeansIsdfLobpcg,
            distributed: true,
        },
    ];
    if !quick {
        cases.push(Case {
            name: "lobpcg-w-poison-qrcp",
            site: "lobpcg.w",
            occurrence: 0,
            kind: FaultKind::NanPoison,
            version: Version::KmeansIsdfLobpcg,
            distributed: false,
        });
        cases.push(Case {
            name: "nan-vtilde-lobpcg",
            site: "ham.v_tilde",
            occurrence: 0,
            kind: FaultKind::NanPoison,
            version: Version::ImplicitKmeansIsdfLobpcg,
            distributed: false,
        });
    }
    cases
}

/// Per-case outcome of one campaign pass.
#[derive(Clone)]
struct CaseOutcome {
    name: &'static str,
    fired: usize,
    panicked: bool,
    recovered: bool,
    max_abs_err: f64,
    /// Recovery-log lines (serial path) for the JSON record.
    recovery: Vec<String>,
    /// Stable renderings of the fired fault events.
    events: Vec<String>,
    /// Recovered eigenvalue bits, for the reproducibility comparison.
    value_bits: Vec<u64>,
}

fn opts(p: &CasidaProblem, seed: u64) -> SolveOptions {
    SolveOptions::new().rank(IsdfRank::Fixed(p.n_cv())).n_states(3).seed(seed)
}

/// Fault-free eigenvalues for `version` on the campaign problem.
fn baseline(p: &CasidaProblem, case: &Case, seed: u64) -> Vec<f64> {
    if case.distributed {
        let o = opts(p, seed);
        let solver = Solver::builder().options(o.pipelined(true)).build();
        let mut vals = spmd(COMM_RANKS, |c| solver.solve_distributed(c, p).0);
        vals.pop().expect("at least one rank")
    } else {
        o_run(p, case.version, seed).expect("fault-free baseline must solve").0
    }
}

fn o_run(
    p: &CasidaProblem,
    version: Version,
    seed: u64,
) -> Result<(Vec<f64>, Vec<String>), String> {
    match Solver::builder().version(version).options(opts(p, seed)).build().solve(p) {
        Ok(s) => Ok((s.energies, s.recovery)),
        Err(e) => Err(e.to_string()),
    }
}

/// Run one case with its fault armed and grade against `base`.
fn run_case(p: &CasidaProblem, case: &Case, base: &[f64], plan_seed: u64) -> CaseOutcome {
    let plan = FaultPlan::new(plan_seed).with(case.site, case.occurrence, case.kind);
    let campaign = arm(plan);
    let solved: Result<(Vec<f64>, Vec<String>), String> = if case.distributed {
        // `spmd` re-installs this thread's armed plan on every rank thread,
        // so the drops/delays fire symmetrically from the one shared plan.
        let solver = Solver::builder().options(opts(p, plan_seed).pipelined(true)).build();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut vals = spmd(COMM_RANKS, |c| solver.solve_distributed(c, p).0);
            vals.pop().expect("at least one rank")
        }));
        match caught {
            Ok(vals) => Ok((vals, Vec::new())),
            Err(_) => Err("panic".to_string()),
        }
    } else {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            o_run(p, case.version, plan_seed)
        }));
        match caught {
            Ok(r) => r,
            Err(_) => Err("panic".to_string()),
        }
    };
    let fired = campaign.fired();
    let events: Vec<String> = campaign.events().iter().map(|e| e.render()).collect();
    drop(campaign);

    match solved {
        Ok((vals, recovery)) => {
            let max_abs_err = base
                .iter()
                .zip(&vals)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
                .max(if vals.len() == base.len() { 0.0 } else { f64::INFINITY });
            CaseOutcome {
                name: case.name,
                fired,
                panicked: false,
                recovered: max_abs_err < AGREEMENT_TOL,
                max_abs_err,
                recovery,
                events,
                value_bits: vals.iter().map(|v| v.to_bits()).collect(),
            }
        }
        Err(why) => CaseOutcome {
            name: case.name,
            fired,
            panicked: why == "panic",
            recovered: false,
            max_abs_err: f64::INFINITY,
            recovery: vec![why],
            events,
            value_bits: Vec::new(),
        },
    }
}

/// One full campaign pass: every case, graded. The same `plan_seed` must
/// yield a bitwise-identical pass.
fn run_campaign(p: &CasidaProblem, cases: &[Case], plan_seed: u64) -> Vec<CaseOutcome> {
    cases
        .iter()
        .map(|case| {
            let base = baseline(p, case, plan_seed);
            run_case(p, case, &base, plan_seed)
        })
        .collect()
}

pub fn run(out_dir: &Path, quick: bool, check: bool) -> std::io::Result<()> {
    let p = if quick {
        synthetic_problem([8, 8, 8], 6.0, 2, 2)
    } else {
        synthetic_problem([12, 12, 12], 8.0, 3, 3)
    };
    let cases = campaign_cases(quick);
    println!(
        "fault-report: {} cases on a {} pair-product problem (N_cv = {})",
        cases.len(),
        if quick { "quick" } else { "default" },
        p.n_cv()
    );

    let plan_seed = 42;
    let pass1 = run_campaign(&p, &cases, plan_seed);
    let pass2 = run_campaign(&p, &cases, plan_seed);

    let bit_reproducible = pass1
        .iter()
        .zip(&pass2)
        .all(|(a, b)| a.events == b.events && a.value_bits == b.value_bits);

    let fired = pass1.iter().filter(|c| c.fired > 0).count();
    let recovered = pass1.iter().filter(|c| c.recovered).count();
    let panics = pass1.iter().filter(|c| c.panicked).count();
    let recovery_rate = recovered as f64 / pass1.len() as f64;

    let rows: Vec<Vec<String>> = pass1
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.fired.to_string(),
                if c.recovered { "yes" } else { "NO" }.to_string(),
                if c.max_abs_err.is_finite() {
                    format!("{:.2e}", c.max_abs_err)
                } else {
                    "inf".to_string()
                },
                c.recovery.first().cloned().unwrap_or_default(),
            ]
        })
        .collect();
    crate::report::print_table(&["case", "fired", "recovered", "max |Δλ|", "first log line"], &rows);
    println!(
        "recovery {recovered}/{} ({:.0}%), {panics} panic(s), fired {fired}/{}, \
         bit-reproducible: {bit_reproducible}",
        pass1.len(),
        recovery_rate * 100.0,
        pass1.len()
    );

    // --- BENCH_fault.json -------------------------------------------------
    let case_entries: Vec<String> = pass1
        .iter()
        .map(|c| {
            let logs: Vec<String> =
                c.recovery.iter().map(|l| format!("\"{}\"", l.replace('"', "'"))).collect();
            let events: Vec<String> =
                c.events.iter().map(|l| format!("\"{}\"", l.replace('"', "'"))).collect();
            format!(
                "    {{\"name\": \"{}\", \"fired\": {}, \"recovered\": {}, \"panicked\": {}, \
                 \"max_abs_err\": {}, \"recovery_log\": [{}], \"events\": [{}]}}",
                c.name,
                c.fired,
                c.recovered,
                c.panicked,
                if c.max_abs_err.is_finite() {
                    json::number(c.max_abs_err)
                } else {
                    "\"inf\"".to_string()
                },
                logs.join(", "),
                events.join(", ")
            )
        })
        .collect();
    let json_text = format!(
        "{{\n  \"benchmark\": \"fault-report\",\n  \"plan_seed\": {},\n  \
         \"agreement_tol\": {},\n  \"cases\": [\n{}\n  ],\n  \
         \"recovery_rate\": {},\n  \"panics\": {},\n  \"fired\": {},\n  \
         \"bit_reproducible\": {}\n}}\n",
        plan_seed,
        json::number(AGREEMENT_TOL),
        case_entries.join(",\n"),
        json::number(recovery_rate),
        panics,
        fired,
        bit_reproducible
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_fault.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json_text.as_bytes())?;
    println!("wrote {}", path.display());

    if check {
        let mut failures = Vec::new();
        if recovery_rate < RECOVERY_GATE {
            failures.push(format!(
                "recovery rate {recovery_rate:.2} below gate {RECOVERY_GATE}"
            ));
        }
        if panics > 0 {
            failures.push(format!("{panics} case(s) panicked instead of degrading"));
        }
        if fired < pass1.len() {
            failures.push(format!("only {fired}/{} planned faults fired", pass1.len()));
        }
        if !bit_reproducible {
            failures.push("same-seed campaigns were not bit-reproducible".to_string());
        }
        if failures.is_empty() {
            println!("fault-report --check: all gates passed");
        } else {
            for f in &failures {
                eprintln!("fault-report --check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}
