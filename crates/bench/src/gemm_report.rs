//! `repro gemm-report` — throughput of the packed GEMM engine vs. the
//! pre-rewrite reference kernel, written to `BENCH_gemm.json`.
//!
//! The reference ([`reference_gemm`]) is the column-parallel dot-product
//! kernel this repo shipped before the BLIS-style packed engine landed in
//! `mathkit::gemm`: per output column, a scalar inner loop over the shared
//! dimension with no packing and no register tiling. Benchmarking it from
//! here (instead of an old git checkout) keeps the comparison runnable in
//! one build.

use crate::report::json;
use mathkit::{Mat, Transpose};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// The pre-rewrite GEMM: parallel over output columns, scalar dot products,
/// operands read in place (strided for the transposed cases).
pub fn reference_gemm(
    alpha: f64,
    a: &Mat,
    ta: Transpose,
    b: &Mat,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, ka) = match ta {
        Transpose::No => (a.nrows(), a.ncols()),
        Transpose::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.nrows(), b.ncols()),
        Transpose::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "inner dimensions must agree");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    let k = ka;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let (a_rows, b_rows) = (a.nrows(), b.nrows());

    c.par_cols_mut().enumerate().for_each(|(j, c_col)| {
        if beta == 0.0 {
            c_col.fill(0.0);
        } else if beta != 1.0 {
            for x in c_col.iter_mut() {
                *x *= beta;
            }
        }
        match (ta, tb) {
            (Transpose::No, Transpose::No) => {
                let b_col = &b_data[j * b_rows..(j + 1) * b_rows];
                for l in 0..k {
                    let blj = alpha * b_col[l];
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &a_data[l * a_rows..(l + 1) * a_rows];
                    for i in 0..m {
                        c_col[i] += blj * a_col[i];
                    }
                }
            }
            (Transpose::Yes, Transpose::No) => {
                let b_col = &b_data[j * b_rows..(j + 1) * b_rows];
                for i in 0..m {
                    let a_col = &a_data[i * a_rows..(i + 1) * a_rows];
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a_col[l] * b_col[l];
                    }
                    c_col[i] += alpha * s;
                }
            }
            (Transpose::No, Transpose::Yes) => {
                for l in 0..k {
                    let blj = alpha * b_data[j + l * b_rows];
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &a_data[l * a_rows..(l + 1) * a_rows];
                    for i in 0..m {
                        c_col[i] += blj * a_col[i];
                    }
                }
            }
            (Transpose::Yes, Transpose::Yes) => {
                for i in 0..m {
                    let a_col = &a_data[i * a_rows..(i + 1) * a_rows];
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a_col[l] * b_data[j + l * b_rows];
                    }
                    c_col[i] += alpha * s;
                }
            }
        }
    });
}

/// One benchmark shape: `C(m×n) = op(A)·op(B)` with shared dimension `k`.
struct Shape {
    name: String,
    role: &'static str,
    m: usize,
    n: usize,
    k: usize,
    ta: Transpose,
    tb: Transpose,
}

fn shapes(quick: bool) -> Vec<Shape> {
    let d = if quick { 4 } else { 1 };
    vec![
        // The acceptance shape: V_Hxc = P_vcᵀ (f_Hxc P_vc) on a 32³ grid
        // slab with N_cv = 128 pair products (Algorithm 1 line 7).
        Shape {
            name: format!("vhxc_{0}x128t_x_{0}x128", 32768 / d),
            role: "V_Hxc contraction (paper Alg. 1 line 7)",
            m: 128,
            n: 128,
            k: 32768 / d,
            ta: Transpose::Yes,
            tb: Transpose::No,
        },
        // Ṽ = ΔV Θᵀ(f_Hxc Θ): the ISDF projected kernel (paper Eq. 7).
        Shape {
            name: format!("vtilde_{0}x256t_x_{0}x256", 8192 / d),
            role: "ISDF projected kernel (paper Eq. 7)",
            m: 256,
            n: 256,
            k: 8192 / d,
            ta: Transpose::Yes,
            tb: Transpose::No,
        },
        // Implicit apply C·X: tall-skinny NN (paper §4.3).
        Shape {
            name: format!("implicit_512x{0}_x_{0}x8", 4096 / d),
            role: "implicit H·X block (paper §4.3)",
            m: 512,
            n: 8,
            k: 4096 / d,
            ta: Transpose::No,
            tb: Transpose::No,
        },
        // Square NN, e.g. Ṽ·(CX) at large N_μ.
        Shape {
            name: "square_384".to_string(),
            role: "square NN (Ṽ·CX at large N_μ)",
            m: 384,
            n: 384,
            k: 384,
            ta: Transpose::No,
            tb: Transpose::No,
        },
    ]
}

/// Best-of-reps wall time of `f`, in seconds (1 warmup, then up to `reps`
/// timed runs, stopping early past a 2 s budget).
fn best_seconds<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f();
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        if budget.elapsed().as_secs_f64() > 2.0 {
            break;
        }
    }
    best
}

fn operand(rows: usize, cols: usize, phase: usize) -> Mat {
    Mat::from_fn(rows, cols, |i, j| {
        (((i * 7 + j * 13 + phase) % 23) as f64) * 0.04 - 0.44
    })
}

/// Run the report and write `BENCH_gemm.json` into `out_dir`.
pub fn run(out_dir: &Path, quick: bool) -> std::io::Result<()> {
    let mut entries = Vec::new();
    let mut rows = Vec::new();
    for s in shapes(quick) {
        let (ar, ac) = match s.ta {
            Transpose::No => (s.m, s.k),
            Transpose::Yes => (s.k, s.m),
        };
        let (br, bc) = match s.tb {
            Transpose::No => (s.k, s.n),
            Transpose::Yes => (s.n, s.k),
        };
        let a = operand(ar, ac, 0);
        let b = operand(br, bc, 5);
        let mut c = Mat::zeros(s.m, s.n);
        let flops = 2.0 * s.m as f64 * s.n as f64 * s.k as f64;

        let t_ref =
            best_seconds(|| reference_gemm(1.0, &a, s.ta, &b, s.tb, 0.0, &mut c), 10);
        let reference = c.clone();
        let t_packed =
            best_seconds(|| mathkit::gemm(1.0, &a, s.ta, &b, s.tb, 0.0, &mut c), 10);
        assert!(
            c.max_abs_diff(&reference) < 1e-9 * flops.sqrt(),
            "packed engine disagrees with reference on {}",
            s.name
        );

        let gf_ref = flops / t_ref / 1e9;
        let gf_packed = flops / t_packed / 1e9;
        let speedup = t_ref / t_packed;
        rows.push(vec![
            s.name.to_string(),
            format!("{gf_ref:.2}"),
            format!("{gf_packed:.2}"),
            format!("{speedup:.2}x"),
        ]);
        entries.push(format!(
            "    {{\"shape\": {}, \"role\": {}, \"m\": {}, \"n\": {}, \"k\": {}, \
             \"gflops_reference\": {}, \"gflops_packed\": {}, \"speedup\": {}}}",
            json::string(&s.name),
            json::string(s.role),
            s.m,
            s.n,
            s.k,
            json::number(gf_ref),
            json::number(gf_packed),
            json::number(speedup)
        ));
    }

    crate::report::print_table(
        &["shape", "reference GF/s", "packed GF/s", "speedup"],
        &rows,
    );

    let body = format!(
        "{{\n  \"benchmark\": \"gemm-report\",\n  \"threads\": {},\n  \"shapes\": [\n{}\n  ]\n}}",
        rayon::current_num_threads(),
        entries.join(",\n")
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_gemm.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    println!("\nReport written to {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_gemm_matches_packed_engine() {
        let a = operand(37, 19, 1);
        let b = operand(37, 23, 2);
        let mut c1 = operand(19, 23, 3);
        let mut c2 = c1.clone();
        reference_gemm(0.7, &a, Transpose::Yes, &b, Transpose::No, 0.3, &mut c1);
        mathkit::gemm(0.7, &a, Transpose::Yes, &b, Transpose::No, 0.3, &mut c2);
        assert!(c1.max_abs_diff(&c2) < 1e-11);
    }

    #[test]
    fn report_writes_json_with_all_shapes() {
        let dir = std::env::temp_dir().join("lrtddft_gemm_report_test");
        run(&dir, true).unwrap();
        let body = std::fs::read_to_string(dir.join("BENCH_gemm.json")).unwrap();
        assert!(body.contains("\"benchmark\": \"gemm-report\""));
        for s in shapes(true) {
            assert!(body.contains(&s.name), "missing shape {}", s.name);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
