//! `repro gemm-report [--check]` — throughput of the packed GEMM engine vs.
//! the pre-rewrite reference kernel, written to `BENCH_gemm.json`.
//!
//! The reference ([`reference_gemm`]) is the column-parallel dot-product
//! kernel this repo shipped before the BLIS-style packed engine landed in
//! `mathkit::gemm`: per output column, a scalar inner loop over the shared
//! dimension with no packing and no register tiling. Benchmarking it from
//! here (instead of an old git checkout) keeps the comparison runnable in
//! one build.
//!
//! Beyond throughput, the report now records per shape which runtime-
//! dispatched kernel path ran (via the obskit dispatch counter) and the
//! maximum ulp distance between a forced-scalar and a forced-SIMD run of the
//! same call — the explicit microkernels are built to be *bitwise* identical
//! to the scalar fallback, so this is expected to be 0 and `--check` gates
//! it at ≤ 1. A final section benchmarks the mixed-precision refined LOBPCG
//! solve (f32-storage inner iterations, f64 polish) against the full-f64
//! solve on a synthetic factored Casida Hamiltonian; `--check` requires
//! eigenvalue agreement ≤ 1e-8 in both modes and ≥ 1.5x end-to-end speedup
//! on the quick problem (the acceptance benchmark), plus every GEMM shape
//! at ≥ 1.0x over the reference.

use crate::report::json;
use lrtddft::IsdfHamiltonian;
use mathkit::lobpcg::{lobpcg, lobpcg_refined, LobpcgOptions};
use mathkit::{Mat, Transpose};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// The pre-rewrite GEMM: parallel over output columns, scalar dot products,
/// operands read in place (strided for the transposed cases).
pub fn reference_gemm(
    alpha: f64,
    a: &Mat,
    ta: Transpose,
    b: &Mat,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, ka) = match ta {
        Transpose::No => (a.nrows(), a.ncols()),
        Transpose::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.nrows(), b.ncols()),
        Transpose::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "inner dimensions must agree");
    assert_eq!(c.shape(), (m, n), "output shape mismatch");
    let k = ka;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let (a_rows, b_rows) = (a.nrows(), b.nrows());

    c.par_cols_mut().enumerate().for_each(|(j, c_col)| {
        if beta == 0.0 {
            c_col.fill(0.0);
        } else if beta != 1.0 {
            for x in c_col.iter_mut() {
                *x *= beta;
            }
        }
        match (ta, tb) {
            (Transpose::No, Transpose::No) => {
                let b_col = &b_data[j * b_rows..(j + 1) * b_rows];
                for l in 0..k {
                    let blj = alpha * b_col[l];
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &a_data[l * a_rows..(l + 1) * a_rows];
                    for i in 0..m {
                        c_col[i] += blj * a_col[i];
                    }
                }
            }
            (Transpose::Yes, Transpose::No) => {
                let b_col = &b_data[j * b_rows..(j + 1) * b_rows];
                for i in 0..m {
                    let a_col = &a_data[i * a_rows..(i + 1) * a_rows];
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a_col[l] * b_col[l];
                    }
                    c_col[i] += alpha * s;
                }
            }
            (Transpose::No, Transpose::Yes) => {
                for l in 0..k {
                    let blj = alpha * b_data[j + l * b_rows];
                    if blj == 0.0 {
                        continue;
                    }
                    let a_col = &a_data[l * a_rows..(l + 1) * a_rows];
                    for i in 0..m {
                        c_col[i] += blj * a_col[i];
                    }
                }
            }
            (Transpose::Yes, Transpose::Yes) => {
                for i in 0..m {
                    let a_col = &a_data[i * a_rows..(i + 1) * a_rows];
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a_col[l] * b_data[j + l * b_rows];
                    }
                    c_col[i] += alpha * s;
                }
            }
        }
    });
}

/// One benchmark shape: `C(m×n) = op(A)·op(B)` with shared dimension `k`.
struct Shape {
    name: String,
    role: &'static str,
    m: usize,
    n: usize,
    k: usize,
    ta: Transpose,
    tb: Transpose,
}

fn shapes(quick: bool) -> Vec<Shape> {
    let d = if quick { 4 } else { 1 };
    vec![
        // The acceptance shape: V_Hxc = P_vcᵀ (f_Hxc P_vc) on a 32³ grid
        // slab with N_cv = 128 pair products (Algorithm 1 line 7).
        Shape {
            name: format!("vhxc_{0}x128t_x_{0}x128", 32768 / d),
            role: "V_Hxc contraction (paper Alg. 1 line 7)",
            m: 128,
            n: 128,
            k: 32768 / d,
            ta: Transpose::Yes,
            tb: Transpose::No,
        },
        // Ṽ = ΔV Θᵀ(f_Hxc Θ): the ISDF projected kernel (paper Eq. 7).
        Shape {
            name: format!("vtilde_{0}x256t_x_{0}x256", 8192 / d),
            role: "ISDF projected kernel (paper Eq. 7)",
            m: 256,
            n: 256,
            k: 8192 / d,
            ta: Transpose::Yes,
            tb: Transpose::No,
        },
        // Implicit apply C·X: tall-skinny NN (paper §4.3).
        Shape {
            name: format!("implicit_512x{0}_x_{0}x8", 4096 / d),
            role: "implicit H·X block (paper §4.3)",
            m: 512,
            n: 8,
            k: 4096 / d,
            ta: Transpose::No,
            tb: Transpose::No,
        },
        // Square NN, e.g. Ṽ·(CX) at large N_μ.
        Shape {
            name: "square_384".to_string(),
            role: "square NN (Ṽ·CX at large N_μ)",
            m: 384,
            n: 384,
            k: 384,
            ta: Transpose::No,
            tb: Transpose::No,
        },
    ]
}

/// Best-of-reps wall time of `f`, in seconds (1 warmup, then up to `reps`
/// timed runs, stopping early past a 2 s budget).
fn best_seconds<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f();
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        if budget.elapsed().as_secs_f64() > 2.0 {
            break;
        }
    }
    best
}

fn operand(rows: usize, cols: usize, phase: usize) -> Mat {
    Mat::from_fn(rows, cols, |i, j| {
        (((i * 7 + j * 13 + phase) % 23) as f64) * 0.04 - 0.44
    })
}

/// Maximum ulp distance between two equal-length f64 slices (0 when bitwise
/// identical; +0 and −0 count as equal).
fn max_ulp(a: &[f64], b: &[f64]) -> u64 {
    // Monotonic bit mapping: flip all bits of negatives, the sign bit of
    // non-negatives — then ulp distance is plain integer distance.
    fn key(x: f64) -> u64 {
        let b = x.to_bits();
        if b >> 63 == 1 {
            !b
        } else {
            b | (1u64 << 63)
        }
    }
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| if x == y { 0 } else { key(x).abs_diff(key(y)) })
        .max()
        .unwrap_or(0)
}

/// Which dispatch label `mathkit::gemm` records for this call, via a single
/// traced invocation.
fn dispatched_label(a: &Mat, ta: Transpose, b: &Mat, tb: Transpose, c: &mut Mat) -> String {
    let _ = obskit::take_trace(); // drop anything a previous section left behind
    obskit::enable();
    mathkit::gemm(1.0, a, ta, b, tb, 0.0, c);
    obskit::disable();
    let trace = obskit::take_trace();
    trace
        .counters
        .kernel_dispatch
        .iter()
        .find(|(l, _)| l.starts_with("gemm"))
        .map(|(l, _)| l.clone())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Results of the mixed-precision refined LOBPCG benchmark.
struct MixedBench {
    ncv: usize,
    n_mu: usize,
    k_states: usize,
    t_full: f64,
    t_mixed: f64,
    speedup: f64,
    max_abs_err: f64,
    full_iterations: usize,
    inner_iterations: usize,
    polish_iterations: usize,
}

/// Benchmark the mixed-precision refined LOBPCG solve against the full-f64
/// solve on a synthetic factored Casida Hamiltonian `H = D + 2CᵀṼC` sized so
/// the implicit applies dominate (the paper's Table 4 row-5 regime).
fn mixed_lobpcg_bench(quick: bool) -> MixedBench {
    // `N_μ/N_cv = 1/2` keeps the factored applies (the part the f32 storage
    // accelerates) dominant over the shared f64 Rayleigh–Ritz work; the tight
    // diagonal spacing (scaled so both sizes span the same spectrum) plus
    // strong coupling makes the solve take tens of iterations, so the cheap
    // inner phase amortizes the f64 polish (a solve that converges in a
    // handful of iterations caps the refinement speedup at ~1.2x no matter
    // how fast the low-precision apply is).
    let (ncv, n_mu, k_states) = if quick { (1024, 512, 6) } else { (2048, 1024, 8) };
    let dstep = 0.2048 / ncv as f64;
    let diag_d: Vec<f64> = (0..ncv).map(|i| 1.0 + dstep * i as f64).collect();
    let scale = 10.0 / n_mu as f64;
    let c = Mat::from_fn(n_mu, ncv, |i, j| {
        (((i * 13 + j * 7) % 29) as f64 * 0.07 - 1.0) * scale
    });
    let mut v_tilde =
        Mat::from_fn(n_mu, n_mu, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.025 - 0.2);
    v_tilde.symmetrize();
    let ham = IsdfHamiltonian { diag_d, c, v_tilde };
    let low = ham.to_mixed();

    // Casida-style guess (unit vectors on the k lowest transitions with a
    // deterministic dressing) and the Eq. 17 diagonal preconditioner.
    let x0 = Mat::from_fn(ncv, k_states, |i, j| {
        if i == j {
            1.0
        } else {
            1e-3 * ((((i * 31 + j * 17) % 19) as f64) * 0.1 - 0.9)
        }
    });
    let diag = ham.diag_d.clone();
    let precond = move |r: &Mat, theta: &[f64]| {
        let mut w = r.clone();
        for (j, &th) in theta.iter().enumerate().take(w.ncols()) {
            for (i, v) in w.col_mut(j).iter_mut().enumerate() {
                let mut den = diag[i] - th;
                if den.abs() < 1e-3 {
                    den = 1e-3f64.copysign(if den == 0.0 { 1.0 } else { den });
                }
                *v /= den;
            }
        }
        w
    };
    let opts = LobpcgOptions { max_iter: 300, tol: 1e-8 };

    let mut full = lobpcg(|x| ham.apply(x), &precond, &x0, opts).expect("full-f64 lobpcg");
    let t_full = best_seconds(
        || full = lobpcg(|x| ham.apply(x), &precond, &x0, opts).expect("full-f64 lobpcg"),
        5,
    );
    assert!(full.converged, "full-f64 solve unconverged (residual {:.3e})", full.residual);

    let mut refined = lobpcg_refined(|x| low.apply(x), |x| ham.apply(x), &precond, &x0, 1e-6, opts)
        .expect("mixed refined lobpcg");
    let t_mixed = best_seconds(
        || {
            refined =
                lobpcg_refined(|x| low.apply(x), |x| ham.apply(x), &precond, &x0, 1e-6, opts)
                    .expect("mixed refined lobpcg")
        },
        5,
    );
    assert!(
        refined.result.converged,
        "mixed refined solve unconverged (residual {:.3e})",
        refined.result.residual
    );

    let max_abs_err = full
        .values
        .iter()
        .zip(&refined.result.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    MixedBench {
        ncv,
        n_mu,
        k_states,
        t_full,
        t_mixed,
        speedup: t_full / t_mixed,
        max_abs_err,
        full_iterations: full.iterations,
        inner_iterations: refined.inner_iterations,
        polish_iterations: refined.polish_iterations,
    }
}

/// Run the report and write `BENCH_gemm.json` into `out_dir`. With `check`,
/// exit with an error if any shape regresses below 1.0x over the reference,
/// the forced-scalar/-SIMD runs disagree beyond 1 ulp, or the mixed-
/// precision solve misses its accuracy (≤ 1e-8, both modes) or speedup
/// (≥ 1.5x, quick mode) gates.
pub fn run(out_dir: &Path, quick: bool, check: bool) -> std::io::Result<()> {
    let mut entries = Vec::new();
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for s in shapes(quick) {
        let (ar, ac) = match s.ta {
            Transpose::No => (s.m, s.k),
            Transpose::Yes => (s.k, s.m),
        };
        let (br, bc) = match s.tb {
            Transpose::No => (s.k, s.n),
            Transpose::Yes => (s.n, s.k),
        };
        let a = operand(ar, ac, 0);
        let b = operand(br, bc, 5);
        let mut c = Mat::zeros(s.m, s.n);
        let flops = 2.0 * s.m as f64 * s.n as f64 * s.k as f64;

        let t_ref =
            best_seconds(|| reference_gemm(1.0, &a, s.ta, &b, s.tb, 0.0, &mut c), 10);
        let reference = c.clone();
        let t_packed =
            best_seconds(|| mathkit::gemm(1.0, &a, s.ta, &b, s.tb, 0.0, &mut c), 10);
        assert!(
            c.max_abs_diff(&reference) < 1e-9 * flops.sqrt(),
            "packed engine disagrees with reference on {}",
            s.name
        );

        let kernel = dispatched_label(&a, s.ta, &b, s.tb, &mut c);

        // Forced-fallback agreement: the explicit SIMD microkernels keep the
        // scalar fold order, so the two runs must agree bitwise (0 ulp).
        let ulp = if mathkit::simd::avx2_available() {
            let mut c_simd = Mat::zeros(s.m, s.n);
            let mut c_scalar = Mat::zeros(s.m, s.n);
            mathkit::force_kernel(Some(mathkit::Kernel::Avx2));
            mathkit::gemm(1.0, &a, s.ta, &b, s.tb, 0.0, &mut c_simd);
            mathkit::force_kernel(Some(mathkit::Kernel::Scalar));
            mathkit::gemm(1.0, &a, s.ta, &b, s.tb, 0.0, &mut c_scalar);
            mathkit::force_kernel(None);
            max_ulp(c_simd.as_slice(), c_scalar.as_slice())
        } else {
            0
        };

        let gf_ref = flops / t_ref / 1e9;
        let gf_packed = flops / t_packed / 1e9;
        let speedup = t_ref / t_packed;
        if speedup < 1.0 {
            failures.push(format!("shape {}: speedup {speedup:.2}x < 1.0x", s.name));
        }
        if ulp > 1 {
            failures.push(format!("shape {}: SIMD vs scalar differ by {ulp} ulp", s.name));
        }
        rows.push(vec![
            s.name.to_string(),
            format!("{gf_ref:.2}"),
            format!("{gf_packed:.2}"),
            format!("{speedup:.2}x"),
            kernel.clone(),
            ulp.to_string(),
        ]);
        entries.push(format!(
            "    {{\"shape\": {}, \"role\": {}, \"m\": {}, \"n\": {}, \"k\": {}, \
             \"gflops_reference\": {}, \"gflops_packed\": {}, \"speedup\": {}, \
             \"kernel\": {}, \"max_ulp_simd_vs_scalar\": {}}}",
            json::string(&s.name),
            json::string(s.role),
            s.m,
            s.n,
            s.k,
            json::number(gf_ref),
            json::number(gf_packed),
            json::number(speedup),
            json::string(&kernel),
            ulp
        ));
    }

    crate::report::print_table(
        &["shape", "reference GF/s", "packed GF/s", "speedup", "kernel", "max ulp"],
        &rows,
    );

    let mixed = mixed_lobpcg_bench(quick);
    println!(
        "\n== mixed-precision refined LOBPCG (N_cv={}, N_mu={}, k={}) ==",
        mixed.ncv, mixed.n_mu, mixed.k_states
    );
    println!(
        "full f64: {:.3}s ({} iters)   mixed refined: {:.3}s ({} inner + {} polish)   \
         speedup {:.2}x   max |dlambda| {:.3e}",
        mixed.t_full,
        mixed.full_iterations,
        mixed.t_mixed,
        mixed.inner_iterations,
        mixed.polish_iterations,
        mixed.speedup,
        mixed.max_abs_err
    );
    if mixed.max_abs_err > 1e-8 {
        failures.push(format!(
            "mixed lobpcg: eigenvalue error {:.3e} > 1e-8",
            mixed.max_abs_err
        ));
    }
    // The ≥1.5x speedup gate is defined on the quick problem (the acceptance
    // benchmark). The full-size problem is reported but not speedup-gated:
    // its iteration count — and with it how far the cheap inner phase can
    // amortize the f64 polish — is set by the spectrum, not by the kernels
    // this report guards.
    if quick && mixed.speedup < 1.5 {
        failures.push(format!("mixed lobpcg: speedup {:.2}x < 1.5x", mixed.speedup));
    }

    let mixed_json = format!(
        "  \"mixed_lobpcg\": {{\"ncv\": {}, \"n_mu\": {}, \"k_states\": {}, \
         \"seconds_full\": {}, \"seconds_mixed\": {}, \"speedup\": {}, \
         \"max_abs_eigenvalue_error\": {}, \"full_iterations\": {}, \
         \"inner_iterations\": {}, \"polish_iterations\": {}}}",
        mixed.ncv,
        mixed.n_mu,
        mixed.k_states,
        json::number(mixed.t_full),
        json::number(mixed.t_mixed),
        json::number(mixed.speedup),
        json::number(mixed.max_abs_err),
        mixed.full_iterations,
        mixed.inner_iterations,
        mixed.polish_iterations
    );

    let body = format!(
        "{{\n  \"benchmark\": \"gemm-report\",\n  \"threads\": {},\n  \"simd\": {},\n  \"shapes\": [\n{}\n  ],\n{}\n}}",
        rayon::current_num_threads(),
        json::string(mathkit::active_kernel().name()),
        entries.join(",\n"),
        mixed_json
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_gemm.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    println!("\nReport written to {}", path.display());

    if check {
        if failures.is_empty() {
            println!("check: all gates passed");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            return Err(std::io::Error::other(format!(
                "{} gemm-report gate(s) failed",
                failures.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_gemm_matches_packed_engine() {
        let a = operand(37, 19, 1);
        let b = operand(37, 23, 2);
        let mut c1 = operand(19, 23, 3);
        let mut c2 = c1.clone();
        reference_gemm(0.7, &a, Transpose::Yes, &b, Transpose::No, 0.3, &mut c1);
        mathkit::gemm(0.7, &a, Transpose::Yes, &b, Transpose::No, 0.3, &mut c2);
        assert!(c1.max_abs_diff(&c2) < 1e-11);
    }

    #[test]
    fn report_writes_json_with_all_shapes() {
        let dir = std::env::temp_dir().join("lrtddft_gemm_report_test");
        run(&dir, true, false).unwrap();
        let body = std::fs::read_to_string(dir.join("BENCH_gemm.json")).unwrap();
        assert!(body.contains("\"benchmark\": \"gemm-report\""));
        for s in shapes(true) {
            assert!(body.contains(&s.name), "missing shape {}", s.name);
        }
        assert!(body.contains("\"kernel\""));
        assert!(body.contains("\"max_ulp_simd_vs_scalar\""));
        assert!(body.contains("\"mixed_lobpcg\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(max_ulp(&[1.0, -2.0, 0.0], &[1.0, -2.0, -0.0]), 0);
        assert_eq!(max_ulp(&[1.0], &[1.0 + f64::EPSILON]), 1);
        assert_eq!(max_ulp(&[1.0], &[1.0 + 2.0 * f64::EPSILON]), 2);
        // Across zero: ±smallest subnormals are 3 steps apart under the
        // monotonic mapping (−tiny → −0 → +0 → +tiny).
        let tiny = f64::from_bits(1);
        assert_eq!(max_ulp(&[tiny], &[-tiny]), 3);
    }
}
