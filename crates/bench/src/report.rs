//! Table printing and JSON experiment records.
//!
//! JSON is emitted by hand (see [`json`]) — the record shape is flat
//! (strings, string arrays, and nested string arrays), so a serializer
//! dependency buys nothing here.

use std::io::Write;
use std::path::Path;

/// Print a fixed-width table with a header row.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let mut s = String::new();
        for (i, w) in widths.iter().enumerate() {
            s.push_str(if i == 0 { "+" } else { sep });
            s.push_str(&"-".repeat(w + 2));
        }
        s.push('+');
        s
    };
    println!("{}", line("+"));
    let mut h = String::new();
    for (hd, w) in headers.iter().zip(&widths) {
        h.push_str(&format!("| {hd:<w$} "));
    }
    println!("{h}|");
    println!("{}", line("+"));
    for row in rows {
        let mut r = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            r.push_str(&format!("| {cell:>w$} "));
        }
        println!("{r}|");
    }
    println!("{}", line("+"));
}

/// Minimal JSON emission helpers for the flat shapes this crate writes.
pub mod json {
    /// Escape a string per RFC 8259 (quotes, backslash, control chars).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// `"s"` with escaping.
    pub fn string(s: &str) -> String {
        format!("\"{}\"", escape(s))
    }

    /// `["a", "b", ...]` of strings.
    pub fn string_array(items: &[String]) -> String {
        let inner: Vec<String> = items.iter().map(|s| string(s)).collect();
        format!("[{}]", inner.join(", "))
    }

    /// A finite f64 as a JSON number (nan/inf map to null).
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
}

/// Linear-interpolated quantile of an ascending-sorted sample (the R-7 /
/// NumPy `linear` definition): `q` in `[0, 1]` maps to fractional index
/// `h = q·(n−1)`, and the value interpolates between the two bracketing
/// order statistics. Unlike nearest-rank, small samples do not snap p99 to
/// the max and p50 interpolates between the middle pair for even `n`.
/// `NaN` for an empty sample; `sorted` must be ascending.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// A JSON-serializable record of one experiment run (appended to
/// `results/<experiment>.json` by the harness).
pub struct ExperimentRecord {
    pub experiment: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: String,
}

impl ExperimentRecord {
    pub fn new(experiment: &str, headers: &[&str], rows: &[Vec<String>], notes: &str) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: rows.to_vec(),
            notes: notes.to_string(),
        }
    }

    /// Pretty-printed JSON object for this record.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> =
            self.rows.iter().map(|r| format!("    {}", json::string_array(r))).collect();
        format!(
            "{{\n  \"experiment\": {},\n  \"headers\": {},\n  \"rows\": [\n{}\n  ],\n  \"notes\": {}\n}}",
            json::string(&self.experiment),
            json::string_array(&self.headers),
            rows.join(",\n"),
            json::string(&self.notes)
        )
    }

    /// Write to `dir/<experiment>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let r = ExperimentRecord::new(
            "table3",
            &["n_mu", "qrcp", "kmeans"],
            &[vec!["512".into(), "10.12".into(), "1.61".into()]],
            "scaled",
        );
        let s = r.to_json();
        assert!(s.contains("table3"));
        assert!(s.contains("10.12"));
    }

    #[test]
    fn record_saves_to_disk() {
        let dir = std::env::temp_dir().join("lrtddft_report_test");
        let r = ExperimentRecord::new("t", &["a"], &[vec!["1".into()]], "");
        r.save(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(content.contains("\"experiment\": \"t\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json::string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json::number(f64::NAN), "null");
        assert_eq!(json::number(1.5), "1.5");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn quantile_interpolates_known_small_samples() {
        // R-7 reference values (same as numpy.quantile(..., method="linear")).
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
        assert_eq!(quantile(&s, 0.5), 2.5, "even n interpolates the middle pair");
        assert!((quantile(&s, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&s, 0.99) - 3.97).abs() < 1e-12, "p99 does not snap to max");
        let odd = [10.0, 20.0, 40.0];
        assert_eq!(quantile(&odd, 0.5), 20.0);
        assert_eq!(quantile(&odd, 0.75), 30.0);
        assert_eq!(quantile(&[7.5], 0.99), 7.5, "singleton is its own quantile");
        assert!(quantile(&[], 0.5).is_nan());
    }
}
