//! Table printing and JSON experiment records.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Print a fixed-width table with a header row.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let mut s = String::new();
        for (i, w) in widths.iter().enumerate() {
            s.push_str(if i == 0 { "+" } else { sep });
            s.push_str(&"-".repeat(w + 2));
        }
        s.push('+');
        s
    };
    println!("{}", line("+"));
    let mut h = String::new();
    for (hd, w) in headers.iter().zip(&widths) {
        h.push_str(&format!("| {hd:<w$} "));
    }
    println!("{h}|");
    println!("{}", line("+"));
    for row in rows {
        let mut r = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            r.push_str(&format!("| {cell:>w$} "));
        }
        println!("{r}|");
    }
    println!("{}", line("+"));
}

/// A JSON-serializable record of one experiment run (appended to
/// `results/<experiment>.json` by the harness).
#[derive(Serialize)]
pub struct ExperimentRecord {
    pub experiment: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: String,
}

impl ExperimentRecord {
    pub fn new(experiment: &str, headers: &[&str], rows: &[Vec<String>], notes: &str) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: rows.to_vec(),
            notes: notes.to_string(),
        }
    }

    /// Write to `dir/<experiment>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        let mut f = std::fs::File::create(path)?;
        let json = serde_json::to_string_pretty(self).expect("serializable record");
        f.write_all(json.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let r = ExperimentRecord::new(
            "table3",
            &["n_mu", "qrcp", "kmeans"],
            &[vec!["512".into(), "10.12".into(), "1.61".into()]],
            "scaled",
        );
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("table3"));
        assert!(s.contains("10.12"));
    }

    #[test]
    fn record_saves_to_disk() {
        let dir = std::env::temp_dir().join("lrtddft_report_test");
        let r = ExperimentRecord::new("t", &["a"], &[vec!["1".into()]], "");
        r.save(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(content.contains("\"experiment\": \"t\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
