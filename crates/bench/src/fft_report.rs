//! `repro fft-report` — the planned/batched FFT engine vs. the seed
//! implementation, written to `BENCH_fft.json`.
//!
//! Three measurements:
//!
//! 1. **Transform time per grid** — forward+inverse round trip of a complex
//!    field, seed engine ([`SeedFft3`]: per-call twiddle recurrence, per-call
//!    Bluestein setup, per-line `Vec` allocations) vs. the planned engine
//!    (`fftkit::Fft3`: cached tables, tiled per-worker scratch).
//! 2. **Batched vs. per-column Hxc apply** — `HxcKernel::apply_into` through
//!    the fused two-for-one Hartree path vs. the per-column complex-transform
//!    loop it replaced (reconstructed here as [`hxc_apply_per_column`]).
//! 3. **FFT-call counts** — obskit's `fft_calls` counter for both Hxc paths;
//!    the two-for-one packing must cut the count to `⌈k/2⌉/k` (≤ 55 % for the
//!    benchmarked column counts), which `--check` asserts.
//!
//! The seed transform is benchmarked from a faithful in-tree copy (same
//! pattern as `gemm_report::reference_gemm`) so the comparison runs in one
//! build instead of an old git checkout.

use crate::report::json;
use fftkit::{Complex, Fft3, PoissonSolver};
use lrtddft::kernel::HxcKernel;
use mathkit::Mat;
use pwdft::{Cell, Grid};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Seed engine: the pre-plan FFT implementation, copied from the growth seed.
// ---------------------------------------------------------------------------

/// Per-call radix-2 with the twiddle recurrence (`w *= wlen`) the seed used —
/// no precomputed tables, accuracy drifting with line length.
fn seed_radix2(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = x[i + k];
                let v = x[i + k + half] * w;
                x[i + k] = u + v;
                x[i + k + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Per-call Bluestein: chirp and convolution kernel rebuilt on every line.
fn seed_bluestein(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut chirp = Vec::with_capacity(n);
    for j in 0..n {
        let jj = (j * j) % (2 * n);
        chirp.push(Complex::cis(sign * std::f64::consts::PI * jj as f64 / n as f64));
    }
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for j in 0..n {
        a[j] = x[j] * chirp[j];
        b[j] = chirp[j].conj();
    }
    for j in 1..n {
        b[m - j] = chirp[j].conj();
    }
    seed_radix2(&mut a, false);
    seed_radix2(&mut b, false);
    for (av, bv) in a.iter_mut().zip(b.iter()) {
        *av *= *bv;
    }
    seed_radix2(&mut a, true);
    let minv = 1.0 / m as f64;
    for j in 0..n {
        x[j] = a[j].scale(minv) * chirp[j];
    }
}

fn seed_fft_inplace(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        seed_radix2(x, inverse);
    } else {
        seed_bluestein(x, inverse);
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in x.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// The seed 3-D transform: unplanned 1-D lines, one `Vec` allocation per
/// contiguous line in pass 1 and one scratch line per plane/row in passes
/// 2–3, gathered element by element with no tiling.
pub struct SeedFft3 {
    pub n1: usize,
    pub n2: usize,
    pub n3: usize,
}

impl SeedFft3 {
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        SeedFft3 { n1, n2, n3 }
    }

    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn forward(&self, data: &mut [Complex]) {
        self.transform(data, false);
    }

    pub fn inverse(&self, data: &mut [Complex]) {
        self.transform(data, true);
    }

    fn transform(&self, data: &mut [Complex], inverse: bool) {
        assert_eq!(data.len(), self.len());
        let (n1, n2, n3) = (self.n1, self.n2, self.n3);
        // Pass 1: contiguous axis-1 lines — with the seed's per-line copy.
        for chunk in data.chunks_mut(n1) {
            let mut line = chunk.to_vec();
            seed_fft_inplace(&mut line, inverse);
            chunk.copy_from_slice(&line);
        }
        // Pass 2: axis-2 lines, stride n1 within each i3-plane.
        let plane = n1 * n2;
        for i3 in 0..n3 {
            let base = i3 * plane;
            let mut line = vec![Complex::ZERO; n2];
            for i1 in 0..n1 {
                for (i2, l) in line.iter_mut().enumerate() {
                    *l = data[base + i1 + i2 * n1];
                }
                seed_fft_inplace(&mut line, inverse);
                for (i2, &l) in line.iter().enumerate() {
                    data[base + i1 + i2 * n1] = l;
                }
            }
        }
        // Pass 3: axis-3 lines, stride n1*n2.
        for i2 in 0..n2 {
            let mut line = vec![Complex::ZERO; n3];
            for i1 in 0..n1 {
                let off = i1 + i2 * n1;
                for (i3, l) in line.iter_mut().enumerate() {
                    *l = data[off + i3 * plane];
                }
                seed_fft_inplace(&mut line, inverse);
                for (i3, &l) in line.iter().enumerate() {
                    data[off + i3 * plane] = l;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-column Hxc reference: the pre-rewrite kernel application.
// ---------------------------------------------------------------------------

/// The Hxc apply `HxcKernel::apply_into` shipped before the batched engine:
/// per column, one full complex forward transform, the diagonal `4π/|G|²`
/// scale, and one inverse — two 3-D FFTs per column, with freshly allocated
/// spectra. Runs on the *planned* transform so the FFT-call comparison
/// isolates the two-for-one packing (not table caching).
pub fn hxc_apply_per_column(
    solver: &PoissonSolver,
    fxc: &[f64],
    fields: &Mat,
    out: &mut Mat,
) {
    let plan = solver.plan();
    let n = plan.len();
    assert_eq!(fields.nrows(), n);
    for j in 0..fields.ncols() {
        let col = fields.col(j);
        let out_col = out.col_mut(j);
        for ((o, &f), &x) in out_col.iter_mut().zip(fxc.iter()).zip(col.iter()) {
            *o = f * x;
        }
        let mut spec: Vec<Complex> = col.iter().map(|&v| Complex::from_re(v)).collect();
        plan.forward(&mut spec);
        solver.apply_in_reciprocal(&mut spec);
        plan.inverse(&mut spec);
        for (o, z) in out_col.iter_mut().zip(spec.iter()) {
            *o += z.re;
        }
    }
}

// ---------------------------------------------------------------------------
// Measurement harness.
// ---------------------------------------------------------------------------

/// Best-of-reps wall time of `f`, in seconds (1 warmup, then up to `reps`
/// timed runs, stopping early past a 2 s budget).
fn best_seconds<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f();
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        if budget.elapsed().as_secs_f64() > 2.0 {
            break;
        }
    }
    best
}

fn complex_field(n: usize, seed: u64) -> Vec<Complex> {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

/// Grid shapes for the transform comparison. 48 and 96 have non-power-of-two
/// axes (16·3, 32·3) so the Bluestein path is exercised alongside radix-2.
fn transform_grids(quick: bool) -> Vec<[usize; 3]> {
    if quick {
        vec![[12, 12, 12], [16, 16, 16]]
    } else {
        vec![[32, 32, 32], [48, 48, 48], [64, 64, 64]]
    }
}

struct HxcCase {
    n: usize,
    cols: usize,
}

fn hxc_case(quick: bool) -> HxcCase {
    if quick {
        HxcCase { n: 16, cols: 16 }
    } else {
        // The acceptance shape: 64³ grid, 64 columns.
        HxcCase { n: 64, cols: 64 }
    }
}

/// Run the report, write `BENCH_fft.json` into `out_dir`, and (with `check`)
/// assert the acceptance gates: batched output equals the per-column path to
/// ≤ 1e-8 and the two-for-one FFT-call count is ≤ 55 % of per-column.
pub fn run(out_dir: &Path, quick: bool, check: bool) -> std::io::Result<()> {
    // --- 1. seed vs planned transform times per grid ----------------------
    let mut grid_entries = Vec::new();
    let mut grid_rows = Vec::new();
    for [n1, n2, n3] in transform_grids(quick) {
        let seed = SeedFft3::new(n1, n2, n3);
        let plan = Fft3::new(n1, n2, n3);
        let field = complex_field(plan.len(), 0x5eed + (n1 * n2 * n3) as u64);

        let mut buf = field.clone();
        let t_seed = best_seconds(
            || {
                seed.forward(&mut buf);
                seed.inverse(&mut buf);
            },
            8,
        );
        let seed_result = buf.clone();

        buf.copy_from_slice(&field);
        let t_planned = best_seconds(
            || {
                plan.forward(&mut buf);
                plan.inverse(&mut buf);
            },
            8,
        );
        // Both engines compute the same DFT: round trips must agree.
        let diff = buf
            .iter()
            .zip(seed_result.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9, "planned engine disagrees with seed on {n1}x{n2}x{n3}: {diff}");

        let speedup = t_seed / t_planned;
        let label = format!("{n1}x{n2}x{n3}");
        grid_rows.push(vec![
            label.clone(),
            format!("{:.3}", t_seed * 1e3),
            format!("{:.3}", t_planned * 1e3),
            format!("{speedup:.2}x"),
        ]);
        grid_entries.push(format!(
            "    {{\"grid\": {}, \"seed_roundtrip_s\": {}, \"planned_roundtrip_s\": {}, \
             \"speedup\": {}}}",
            json::string(&label),
            json::number(t_seed),
            json::number(t_planned),
            json::number(speedup)
        ));
    }
    crate::report::print_table(
        &["grid", "seed fwd+inv (ms)", "planned fwd+inv (ms)", "speedup"],
        &grid_rows,
    );

    // --- 2. batched vs per-column Hxc apply + FFT-call counts -------------
    let case = hxc_case(quick);
    let grid = Grid::new(Cell::cubic(case.n as f64 * 0.25), [case.n, case.n, case.n]);
    let fxc: Vec<f64> = (0..grid.len()).map(|i| -0.2 - ((i % 11) as f64) * 0.01).collect();
    let kernel = HxcKernel::new(&grid, fxc.clone());
    let solver = PoissonSolver::new(grid.plan(), grid.cell.lengths);
    let fields = Mat::from_fn(grid.len(), case.cols, |r, j| {
        (((r * 7 + j * 131 + 5) % 23) as f64) * 0.04 - 0.44
    });
    let mut out_ref = Mat::zeros(grid.len(), case.cols);
    let mut out_batched = Mat::zeros(grid.len(), case.cols);

    // FFT-call counts, one application each (measured before timing so the
    // counters aren't inflated by benchmark repetitions). Drain any stale
    // counter state first — the counters are process-global.
    let _ = obskit::take_trace();
    obskit::enable();
    hxc_apply_per_column(&solver, &fxc, &fields, &mut out_ref);
    obskit::disable();
    let calls_ref = obskit::take_trace().counters.fft_calls;
    obskit::enable();
    kernel.apply_into(&fields, &mut out_batched);
    obskit::disable();
    let calls_batched = obskit::take_trace().counters.fft_calls;
    let call_ratio = calls_batched as f64 / calls_ref as f64;

    let diff = out_batched.max_abs_diff(&out_ref);
    assert!(
        diff < 1e-8,
        "batched Hxc apply disagrees with per-column path: max |Δ| = {diff}"
    );

    let t_ref = best_seconds(|| hxc_apply_per_column(&solver, &fxc, &fields, &mut out_ref), 6);
    let t_batched = best_seconds(|| kernel.apply_into(&fields, &mut out_batched), 6);
    let hxc_speedup = t_ref / t_batched;

    let hxc_label = format!("{0}x{0}x{0}", case.n);
    crate::report::print_table(
        &["hxc apply", "per-column (ms)", "batched (ms)", "speedup", "fft calls", "ratio"],
        &[vec![
            format!("{hxc_label} x{}", case.cols),
            format!("{:.3}", t_ref * 1e3),
            format!("{:.3}", t_batched * 1e3),
            format!("{hxc_speedup:.2}x"),
            format!("{calls_ref} -> {calls_batched}"),
            format!("{call_ratio:.3}"),
        ]],
    );

    if check {
        assert!(
            call_ratio <= 0.55,
            "two-for-one FFT-call ratio {call_ratio:.3} exceeds 0.55 \
             ({calls_batched} of {calls_ref} calls)"
        );
        println!(
            "check passed: fft-call ratio {call_ratio:.3} <= 0.55, outputs agree to {diff:.2e}"
        );
    }

    // --- JSON report ------------------------------------------------------
    let body = format!(
        "{{\n  \"benchmark\": \"fft-report\",\n  \"threads\": {},\n  \"grids\": [\n{}\n  ],\n  \
         \"hxc_apply\": {{\n    \"grid\": {}, \"columns\": {},\n    \"per_column_s\": {}, \
         \"batched_s\": {}, \"speedup\": {},\n    \"fft_calls_per_column\": {}, \
         \"fft_calls_batched\": {}, \"fft_call_ratio\": {},\n    \"max_abs_diff\": {}\n  }}\n}}",
        rayon::current_num_threads(),
        grid_entries.join(",\n"),
        json::string(&hxc_label),
        case.cols,
        json::number(t_ref),
        json::number(t_batched),
        json::number(hxc_speedup),
        calls_ref,
        calls_batched,
        json::number(call_ratio),
        json::number(diff),
    );
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("BENCH_fft.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    println!("\nReport written to {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_engine_matches_planned_engine() {
        for [n1, n2, n3] in [[8usize, 8, 8], [6, 8, 4]] {
            let seed = SeedFft3::new(n1, n2, n3);
            let plan = Fft3::new(n1, n2, n3);
            let field = complex_field(plan.len(), 42);
            let mut a = field.clone();
            let mut b = field.clone();
            seed.forward(&mut a);
            plan.forward(&mut b);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((*x - *y).abs() < 1e-9);
            }
            seed.inverse(&mut a);
            plan.inverse(&mut b);
            for ((x, y), z) in a.iter().zip(b.iter()).zip(field.iter()) {
                assert!((*x - *y).abs() < 1e-9);
                assert!((*x - *z).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn per_column_reference_matches_batched_kernel() {
        let grid = Grid::new(Cell::cubic(5.0), [8, 8, 8]);
        let fxc: Vec<f64> = (0..grid.len()).map(|i| -0.1 - 0.001 * (i % 17) as f64).collect();
        let kernel = HxcKernel::new(&grid, fxc.clone());
        let solver = PoissonSolver::new(grid.plan(), grid.cell.lengths);
        let fields = Mat::from_fn(grid.len(), 3, |r, j| ((r + 5 * j) % 13) as f64 * 0.2 - 1.2);
        let mut a = Mat::zeros(grid.len(), 3);
        let mut b = Mat::zeros(grid.len(), 3);
        hxc_apply_per_column(&solver, &fxc, &fields, &mut a);
        kernel.apply_into(&fields, &mut b);
        assert!(a.max_abs_diff(&b) < 1e-10);
    }

    // The obskit counters are process-global, so the FFT-call-count and
    // full-report assertions live in their own integration test binary
    // (`tests/fft_report_counts.rs`) where no unrelated test can pollute
    // the counts mid-measurement.
}
