//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--quick|--full] [--out results/]
//! experiments: table3 table4 table5 table6 fig2 fig5 fig7 fig8 weak fig9 all
//! ```
//!
//! The `*-report` subcommands (gemm, fft, comm, fault, perf) all take the
//! same `[--quick|--full] [--out DIR] [--check]` flags, so they share one
//! parser ([`ReportArgs`]) and one dispatch table ([`REPORTS`]) — adding a
//! report is one table row, and the usage string regenerates itself.

use bench::experiments::{self, Scale};
use bench::report::ExperimentRecord;
use std::path::{Path, PathBuf};

/// Shared arguments of every `repro <name>-report` subcommand.
struct ReportArgs {
    quick: bool,
    check: bool,
    out: PathBuf,
}

impl ReportArgs {
    /// Parse `[--quick|--full] [--out DIR] [--check]`; exits with status 2
    /// on an unknown flag, naming the subcommand in the message.
    fn parse(subcommand: &str, args: &[String]) -> ReportArgs {
        let mut parsed = ReportArgs {
            quick: false,
            check: false,
            // Default to the working directory so `BENCH_<name>.json` lands
            // at the repo root when run as `cargo run -p bench -- <name>`.
            out: PathBuf::from("."),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => parsed.quick = true,
                "--full" => parsed.quick = false,
                "--check" => parsed.check = true,
                "--out" => match it.next() {
                    Some(p) => parsed.out = PathBuf::from(p),
                    None => {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("unknown {subcommand} argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        parsed
    }
}

/// Entry point shared by every report: `run(out, quick, check)`.
type ReportFn = fn(&Path, bool, bool) -> Result<(), String>;

/// Every report subcommand: name → entry point. The usage string below is
/// generated from this table, so it cannot drift.
const REPORTS: &[(&str, ReportFn)] = &[
    ("chaos-report", |o, q, c| bench::chaos_report::run(o, q, c).map_err(|e| e.to_string())),
    ("fft-report", |o, q, c| bench::fft_report::run(o, q, c).map_err(|e| e.to_string())),
    ("comm-report", |o, q, c| bench::comm_report::run(o, q, c).map_err(|e| e.to_string())),
    ("fault-report", |o, q, c| bench::fault_report::run(o, q, c).map_err(|e| e.to_string())),
    ("gemm-report", |o, q, c| bench::gemm_report::run(o, q, c).map_err(|e| e.to_string())),
    ("serve-report", |o, q, c| bench::serve_report::run(o, q, c).map_err(|e| e.to_string())),
    ("perf-report", bench::perf_report::run),
];

fn usage() -> String {
    let mut u = String::from(
        "usage: repro <table3|table4|table5|table6|fig2|fig5|fig7|fig8|weak|fig9|ablation|all> [--quick|--full] [--out DIR]\n       repro trace [--version LABEL] [--ranks N] [--trace PATH] [--quick]\n       repro trace-report <PATH> [--check]",
    );
    for (name, _) in REPORTS {
        u.push_str(&format!("\n       repro {name} [--quick|--full] [--out DIR] [--check]"));
    }
    u
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `trace`, `trace-report`, and the report table take their own flags
    // (--version/--ranks/--trace/--check) that the experiment arg loop would
    // reject, so they are dispatched before it.
    match args.first().map(String::as_str) {
        Some("trace") => {
            run_trace_cli(&args[1..]);
            return;
        }
        Some("trace-report") => {
            run_trace_report_cli(&args[1..]);
            return;
        }
        Some(name) => {
            if let Some((sub, run)) = REPORTS.iter().find(|(n, _)| *n == name) {
                let a = ReportArgs::parse(sub, &args[1..]);
                if let Err(e) = run(&a.out, a.quick, a.check) {
                    eprintln!("{sub} failed: {e}");
                    std::process::exit(1);
                }
                return;
            }
        }
        None => {}
    }
    let mut experiment = None;
    let mut scale = Scale::Default;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            name if experiment.is_none() => experiment = Some(name.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let experiment = experiment.unwrap_or_else(|| {
        eprintln!("{}", usage());
        std::process::exit(2);
    });

    let out = out.unwrap_or_else(|| PathBuf::from("results"));

    let run = |name: &str, scale: Scale| -> ExperimentRecord {
        match name {
            "table3" => experiments::table3(scale),
            "table4" => experiments::table4(scale),
            "table5" => experiments::table5(scale),
            "table6" => experiments::table6(scale),
            "fig2" => experiments::fig2(scale),
            "fig5" => experiments::fig5(scale),
            "fig7" => experiments::fig7(scale),
            "fig8" => experiments::fig8(scale),
            "weak" => experiments::weak_scaling(scale),
            "fig9" => experiments::fig9(scale),
            "ablation" => experiments::ablation(scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    };

    if experiment == "all" {
        for name in
            [
                "table3", "table4", "table5", "table6", "fig2", "fig5", "fig7", "fig8", "weak",
                "fig9", "ablation",
            ]
        {
            let rec = run(name, scale);
            rec.save(&out).expect("write record");
        }
        println!("\nAll experiment records written to {}", out.display());
    } else {
        let rec = run(&experiment, scale);
        rec.save(&out).expect("write record");
        println!("\nRecord written to {}", out.join(format!("{experiment}.json")).display());
    }
}

fn run_trace_cli(args: &[String]) {
    let mut opts = bench::trace_cmd::TraceOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--version" => match it.next() {
                Some(label) => match bench::trace_cmd::parse_version(label) {
                    Some(v) => opts.version = v,
                    None => {
                        eprintln!("unknown version label: {label}");
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("--version needs a label");
                    std::process::exit(2);
                }
            },
            "--ranks" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.ranks = n,
                _ => {
                    eprintln!("--ranks needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--trace" => match it.next() {
                Some(p) => opts.trace_path = PathBuf::from(p),
                None => {
                    eprintln!("--trace needs a path");
                    std::process::exit(2);
                }
            },
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            other => {
                eprintln!("unknown trace argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = bench::trace_cmd::run_trace(&opts) {
        eprintln!("trace failed: {e}");
        std::process::exit(1);
    }
}

fn run_trace_report_cli(args: &[String]) {
    let mut path: Option<PathBuf> = None;
    let mut check = false;
    for a in args {
        match a.as_str() {
            "--check" => check = true,
            p if path.is_none() => path = Some(PathBuf::from(p)),
            other => {
                eprintln!("unknown trace-report argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: repro trace-report <PATH> [--check]");
        std::process::exit(2);
    };
    if let Err(e) = bench::trace_cmd::run_trace_report(&path, check) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
