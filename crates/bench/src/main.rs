//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--quick|--full] [--out results/]
//! experiments: table3 table4 table5 table6 fig2 fig5 fig7 fig8 weak fig9 all
//! ```

use bench::experiments::{self, Scale};
use bench::report::ExperimentRecord;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `trace`, `trace-report`, and `fft-report` take their own flags
    // (--version/--ranks/--trace/--check) that the experiment arg loop would
    // reject, so they are dispatched before it.
    match args.first().map(String::as_str) {
        Some("trace") => {
            run_trace_cli(&args[1..]);
            return;
        }
        Some("trace-report") => {
            run_trace_report_cli(&args[1..]);
            return;
        }
        Some("fft-report") => {
            run_fft_report_cli(&args[1..]);
            return;
        }
        Some("comm-report") => {
            run_comm_report_cli(&args[1..]);
            return;
        }
        Some("fault-report") => {
            run_fault_report_cli(&args[1..]);
            return;
        }
        Some("gemm-report") => {
            run_gemm_report_cli(&args[1..]);
            return;
        }
        _ => {}
    }
    let mut experiment = None;
    let mut scale = Scale::Default;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            name if experiment.is_none() => experiment = Some(name.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let experiment = experiment.unwrap_or_else(|| {
        eprintln!(
            "usage: repro <table3|table4|table5|table6|fig2|fig5|fig7|fig8|weak|fig9|ablation|all> [--quick|--full] [--out DIR]\n       repro trace [--version LABEL] [--ranks N] [--trace PATH] [--quick]\n       repro trace-report <PATH> [--check]\n       repro fft-report [--quick|--full] [--out DIR] [--check]\n       repro comm-report [--quick|--full] [--out DIR] [--check]\n       repro fault-report [--quick|--full] [--out DIR] [--check]\n       repro gemm-report [--quick|--full] [--out DIR] [--check]"
        );
        std::process::exit(2);
    });

    let out = out.unwrap_or_else(|| PathBuf::from("results"));

    let run = |name: &str, scale: Scale| -> ExperimentRecord {
        match name {
            "table3" => experiments::table3(scale),
            "table4" => experiments::table4(scale),
            "table5" => experiments::table5(scale),
            "table6" => experiments::table6(scale),
            "fig2" => experiments::fig2(scale),
            "fig5" => experiments::fig5(scale),
            "fig7" => experiments::fig7(scale),
            "fig8" => experiments::fig8(scale),
            "weak" => experiments::weak_scaling(scale),
            "fig9" => experiments::fig9(scale),
            "ablation" => experiments::ablation(scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    };

    if experiment == "all" {
        for name in
            [
                "table3", "table4", "table5", "table6", "fig2", "fig5", "fig7", "fig8", "weak",
                "fig9", "ablation",
            ]
        {
            let rec = run(name, scale);
            rec.save(&out).expect("write record");
        }
        println!("\nAll experiment records written to {}", out.display());
    } else {
        let rec = run(&experiment, scale);
        rec.save(&out).expect("write record");
        println!("\nRecord written to {}", out.join(format!("{experiment}.json")).display());
    }
}

fn run_fft_report_cli(args: &[String]) {
    let mut quick = false;
    let mut check = false;
    let mut out = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown fft-report argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = bench::fft_report::run(&out, quick, check) {
        eprintln!("fft-report failed: {e}");
        std::process::exit(1);
    }
}

fn run_comm_report_cli(args: &[String]) {
    let mut quick = false;
    let mut check = false;
    let mut out = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown comm-report argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = bench::comm_report::run(&out, quick, check) {
        eprintln!("comm-report failed: {e}");
        std::process::exit(1);
    }
}

fn run_fault_report_cli(args: &[String]) {
    let mut quick = false;
    let mut check = false;
    let mut out = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown fault-report argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = bench::fault_report::run(&out, quick, check) {
        eprintln!("fault-report failed: {e}");
        std::process::exit(1);
    }
}

fn run_gemm_report_cli(args: &[String]) {
    let mut quick = false;
    let mut check = false;
    // Default to the working directory so `BENCH_gemm.json` lands at the
    // repo root when run as `cargo run -p bench -- gemm-report`.
    let mut out = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown gemm-report argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = bench::gemm_report::run(&out, quick, check) {
        eprintln!("gemm-report failed: {e}");
        std::process::exit(1);
    }
}

fn run_trace_cli(args: &[String]) {
    let mut opts = bench::trace_cmd::TraceOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--version" => match it.next() {
                Some(label) => match bench::trace_cmd::parse_version(label) {
                    Some(v) => opts.version = v,
                    None => {
                        eprintln!("unknown version label: {label}");
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("--version needs a label");
                    std::process::exit(2);
                }
            },
            "--ranks" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.ranks = n,
                _ => {
                    eprintln!("--ranks needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--trace" => match it.next() {
                Some(p) => opts.trace_path = PathBuf::from(p),
                None => {
                    eprintln!("--trace needs a path");
                    std::process::exit(2);
                }
            },
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            other => {
                eprintln!("unknown trace argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = bench::trace_cmd::run_trace(&opts) {
        eprintln!("trace failed: {e}");
        std::process::exit(1);
    }
}

fn run_trace_report_cli(args: &[String]) {
    let mut path: Option<PathBuf> = None;
    let mut check = false;
    for a in args {
        match a.as_str() {
            "--check" => check = true,
            p if path.is_none() => path = Some(PathBuf::from(p)),
            other => {
                eprintln!("unknown trace-report argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: repro trace-report <PATH> [--check]");
        std::process::exit(2);
    };
    if let Err(e) = bench::trace_cmd::run_trace_report(&path, check) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
