//! The five solver versions of paper Table 4, behind one entry point.

use crate::kernel::HxcKernel;
use crate::metrics::ComplexityEstimate;
use crate::problem::CasidaProblem;
use crate::timers::StageTimings;
use faultkit::{NumericalError, SolveError};
use isdf::{
    kmeans_points_checked, pair_weights, qrcp_points, IsdfDecomposition, KmeansOptions,
};
use mathkit::gemm::{gemm, Transpose};
use mathkit::{gemm_mixed_packed, simd, Mat, MatF32, PackedF32};
use std::time::Instant;

/// Interpolation-point selector for the ISDF versions.
#[derive(Clone, Copy, Debug)]
pub enum PointSelector {
    /// Traditional pivoted QR on `Zᵀ` (paper §4.1.1).
    Qrcp,
    /// Weighted K-Means clustering (paper §4.2).
    Kmeans(KmeansOptions),
}

/// The five versions of paper Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Version {
    /// (1) explicit construction + dense SYEV.
    Naive,
    /// (2) QRCP-ISDF + dense SYEV.
    QrcpIsdf,
    /// (3) K-Means-ISDF + dense SYEV.
    KmeansIsdf,
    /// (4) K-Means-ISDF + explicit H + LOBPCG.
    KmeansIsdfLobpcg,
    /// (5) K-Means-ISDF + matrix-free H + LOBPCG.
    ImplicitKmeansIsdfLobpcg,
}

impl Version {
    /// All five, in Table 4 order.
    pub fn all() -> [Version; 5] {
        [
            Version::Naive,
            Version::QrcpIsdf,
            Version::KmeansIsdf,
            Version::KmeansIsdfLobpcg,
            Version::ImplicitKmeansIsdfLobpcg,
        ]
    }

    pub fn label(&self) -> &'static str {
        match self {
            Version::Naive => "Naive",
            Version::QrcpIsdf => "QRCP-ISDF",
            Version::KmeansIsdf => "Kmeans-ISDF",
            Version::KmeansIsdfLobpcg => "Kmeans-ISDF-LOBPCG",
            Version::ImplicitKmeansIsdfLobpcg => "Implicit-Kmeans-ISDF-LOBPCG",
        }
    }

    pub fn uses_isdf(&self) -> bool {
        !matches!(self, Version::Naive)
    }

    pub fn uses_lobpcg(&self) -> bool {
        matches!(self, Version::KmeansIsdfLobpcg | Version::ImplicitKmeansIsdfLobpcg)
    }
}

/// What a solve returns.
pub struct Solution {
    /// Lowest `k` excitation energies, ascending.
    pub energies: Vec<f64>,
    /// Excitation coefficients (`N_cv × k`).
    pub coefficients: Mat,
    /// Stage timing breakdown.
    pub timings: StageTimings,
    /// ISDF rank actually used (0 for the naive version).
    pub n_mu: usize,
    /// LOBPCG iterations (None for dense solves).
    pub lobpcg_iterations: Option<usize>,
    /// Analytic complexity estimate at these dimensions (paper Table 4).
    pub complexity: ComplexityEstimate,
    /// Recovery-ladder rungs taken during this solve, in order — empty on a
    /// clean run. Each entry names what failed and how it was healed.
    pub recovery: Vec<String>,
}

/// The factored ISDF Hamiltonian pieces: `H = D + 2 Cᵀ Ṽ C`.
pub struct IsdfHamiltonian {
    /// Bare transition diagonal (`N_cv`).
    pub diag_d: Vec<f64>,
    /// Coefficients `C` (`N_μ × N_cv`).
    pub c: Mat,
    /// Projected kernel `Ṽ_Hxc = ΔV·Θᵀ(f_Hxc Θ)` (`N_μ × N_μ`, symmetric).
    pub v_tilde: Mat,
}

impl IsdfHamiltonian {
    /// Matrix-free application `H·X = D∘X + 2 Cᵀ(Ṽ(C·X))` (paper §4.3) —
    /// cost `k·O(N_μ N_v N_c)` per call, memory `O(N_μ²)`.
    pub fn apply(&self, x: &Mat) -> Mat {
        let ncv = self.diag_d.len();
        assert_eq!(x.nrows(), ncv);
        // CX: N_μ × k
        let mut cx = Mat::zeros(self.c.nrows(), x.ncols());
        gemm(1.0, &self.c, Transpose::No, x, Transpose::No, 0.0, &mut cx);
        // Ṽ (CX)
        let mut vcx = Mat::zeros(self.c.nrows(), x.ncols());
        gemm(1.0, &self.v_tilde, Transpose::No, &cx, Transpose::No, 0.0, &mut vcx);
        // 2 Cᵀ (·) + D∘X
        let mut out = Mat::zeros(ncv, x.ncols());
        gemm(2.0, &self.c, Transpose::Yes, &vcx, Transpose::No, 0.0, &mut out);
        for j in 0..x.ncols() {
            simd::pointwise_muladd(out.col_mut(j), &self.diag_d, x.col(j));
        }
        out
    }

    /// Demote the ISDF factors to f32 storage for the mixed-precision inner
    /// solve. The bare diagonal stays f64 — it is cheap and sets the energy
    /// scale.
    pub fn to_mixed(&self) -> MixedIsdfHamiltonian {
        let c32 = MatF32::from_mat(&self.c);
        MixedIsdfHamiltonian {
            diag_d: self.diag_d.clone(),
            n_mu: self.c.nrows(),
            c_pack: c32.pack(Transpose::No),
            ct_pack: c32.pack(Transpose::Yes),
            v_pack: MatF32::from_mat(&self.v_tilde).pack(Transpose::No),
        }
    }

    /// Materialize the dense `H` (versions 2–4).
    pub fn to_dense(&self) -> Mat {
        let ncv = self.diag_d.len();
        // VC = Ṽ C, then H₂ = Cᵀ (VC)
        let mut vc = Mat::zeros(self.c.nrows(), ncv);
        gemm(1.0, &self.v_tilde, Transpose::No, &self.c, Transpose::No, 0.0, &mut vc);
        let mut h = Mat::zeros(ncv, ncv);
        gemm(2.0, &self.c, Transpose::Yes, &vc, Transpose::No, 0.0, &mut h);
        for (i, d) in self.diag_d.iter().enumerate() {
            h[(i, i)] += d;
        }
        h.symmetrize();
        h
    }
}

/// f32-storage twin of [`IsdfHamiltonian`] for the mixed-precision inner
/// LOBPCG iterations (`SolveOptions::precision = MixedRefined`): `C` and `Ṽ`
/// are demoted to f32 (halving the working-set bytes of the dominant
/// contractions) and pre-packed once into the strip layout of
/// [`mathkit::gemm_mixed_packed`] — the operators are fixed across a solve,
/// so the per-apply pack cost would otherwise dominate this memory-bound
/// path. Every GEMM accumulates in f64; the bare diagonal stays f64. `C` is
/// stored in both orientations, which together cost the same bytes as the
/// one f64 copy in [`IsdfHamiltonian`].
pub struct MixedIsdfHamiltonian {
    /// Bare transition diagonal (`N_cv`), kept in f64.
    pub diag_d: Vec<f64>,
    /// Interpolation-point count `N_μ` (rows of `C`).
    n_mu: usize,
    /// `C` (`N_μ × N_cv`), packed for `C·X`.
    c_pack: PackedF32,
    /// `Cᵀ` (`N_cv × N_μ`), packed for `Cᵀ·(ṼCX)`.
    ct_pack: PackedF32,
    /// Projected kernel `Ṽ_Hxc` (`N_μ × N_μ`), packed for `Ṽ·(CX)`.
    v_pack: PackedF32,
}

impl MixedIsdfHamiltonian {
    /// Interpolation-point count `N_μ`.
    pub fn n_mu(&self) -> usize {
        self.n_mu
    }

    /// Matrix-free `H·X = D∘X + 2 Cᵀ(Ṽ(C·X))` with f32 operands and f64
    /// accumulation. Intermediates round through f32 between stages — the
    /// ~1e-7 relative error this introduces is exactly what the outer f64
    /// polish of the refined solve removes.
    pub fn apply(&self, x: &Mat) -> Mat {
        let ncv = self.diag_d.len();
        assert_eq!(x.nrows(), ncv);
        let xf = MatF32::from_mat(x);
        // CX: N_μ × k
        let mut cx = Mat::zeros(self.n_mu, x.ncols());
        gemm_mixed_packed(1.0, &self.c_pack, &xf, Transpose::No, 0.0, &mut cx);
        // Ṽ (CX)
        let cxf = MatF32::from_mat(&cx);
        let mut vcx = Mat::zeros(self.n_mu, x.ncols());
        gemm_mixed_packed(1.0, &self.v_pack, &cxf, Transpose::No, 0.0, &mut vcx);
        // 2 Cᵀ (·) + D∘X, diagonal term in full f64
        let vcxf = MatF32::from_mat(&vcx);
        let mut out = Mat::zeros(ncv, x.ncols());
        gemm_mixed_packed(2.0, &self.ct_pack, &vcxf, Transpose::No, 0.0, &mut out);
        for j in 0..x.ncols() {
            simd::pointwise_muladd(out.col_mut(j), &self.diag_d, x.col(j));
        }
        out
    }
}

/// Fit-residual guard for [`try_build_isdf_hamiltonian`]: a sampled relative
/// fit residual at or above this means the low-rank basis carries essentially
/// no signal (healthy fits — even aggressively rank-reduced ones — sit orders
/// of magnitude below it), so the build escalates the rank and retries.
pub const FIT_RESIDUAL_GUARD: f64 = 1.0;

/// Run the ISDF pipeline up to the factored Hamiltonian.
///
/// Panics if the build fails even after its internal recovery (rank
/// escalation, point re-selection); see [`try_build_isdf_hamiltonian`].
pub fn build_isdf_hamiltonian(
    problem: &CasidaProblem,
    selector: PointSelector,
    n_mu: usize,
    timings: &mut StageTimings,
) -> IsdfHamiltonian {
    let mut recovery = Vec::new();
    match try_build_isdf_hamiltonian(problem, selector, n_mu, timings, &mut recovery) {
        Ok(ham) => ham,
        Err(e) => panic!("{e}"),
    }
}

/// Interpolation points per the selector, with the K-Means degenerate-start
/// recovery: a run that had to reseed empty clusters is retried once cleanly
/// (injected seeding faults are one-shot, so the retry is pristine).
fn select_isdf_points(
    problem: &CasidaProblem,
    selector: PointSelector,
    n_mu: usize,
    timings: &mut StageTimings,
    recovery: &mut Vec<String>,
) -> Result<Vec<usize>, SolveError> {
    match selector {
        PointSelector::Qrcp => {
            let sp = obskit::span(obskit::Stage::Qrcp, "isdf.qrcp_points");
            let t0 = Instant::now();
            let pts = qrcp_points(&problem.psi_v, &problem.psi_c, n_mu);
            timings.qrcp += t0.elapsed().as_secs_f64();
            drop(sp);
            Ok(pts)
        }
        PointSelector::Kmeans(opts) => {
            let sp = obskit::span(obskit::Stage::Kmeans, "isdf.kmeans_points");
            let t0 = Instant::now();
            let w = pair_weights(&problem.psi_v, &problem.psi_c);
            let coords: Vec<[f64; 3]> =
                (0..problem.n_r()).map(|i| problem.grid.coords(i)).collect();
            let mut out = kmeans_points_checked(&coords, &w, n_mu, opts)?;
            if out.reseeded > 0 {
                recovery.push(format!(
                    "kmeans: {} empty cluster(s) reseeded — degenerate start, clean retry",
                    out.reseeded
                ));
                out = kmeans_points_checked(&coords, &w, n_mu, opts)?;
            }
            timings.kmeans += t0.elapsed().as_secs_f64();
            drop(sp);
            Ok(out.points)
        }
    }
}

/// Θ fit for a point set (Galerkin LS with separable Gram matrices).
fn fit_isdf(
    problem: &CasidaProblem,
    points: &[usize],
    timings: &mut StageTimings,
) -> Result<IsdfDecomposition, SolveError> {
    let sp = obskit::span(obskit::Stage::Theta, "isdf.theta");
    let t0 = Instant::now();
    let isdf = IsdfDecomposition::try_build(&problem.psi_v, &problem.psi_c, points)?;
    timings.theta += t0.elapsed().as_secs_f64();
    drop(sp);
    Ok(isdf)
}

/// [`build_isdf_hamiltonian`] with typed failure reporting and built-in
/// recovery: point-starvation re-selection, a sampled fit-residual guard
/// with one rank-escalation retry, and finiteness guards on the assembled
/// `C` / `Ṽ` factors. Rungs taken are appended to `recovery`.
pub fn try_build_isdf_hamiltonian(
    problem: &CasidaProblem,
    selector: PointSelector,
    n_mu: usize,
    timings: &mut StageTimings,
    recovery: &mut Vec<String>,
) -> Result<IsdfHamiltonian, SolveError> {
    problem.validate();
    let dv = problem.grid.dv();

    // Interpolation points, with the rank-starvation guard: a selector that
    // comes back short (here, only via injection — natural K-Means dedup
    // shrinkage is accepted downstream as n_mu_eff) is re-run at the
    // requested rank.
    let mut points = select_isdf_points(problem, selector, n_mu, timings, recovery)?;
    if faultkit::starve_points("isdf.points", &mut points) {
        recovery.push(format!(
            "isdf.points: starved to {} of {n_mu}, re-selecting",
            points.len()
        ));
        points = select_isdf_points(problem, selector, n_mu, timings, recovery)?;
    }

    // Interpolation vectors Θ, guarded by the sampled fit residual with one
    // rank-escalation retry.
    let mut isdf = fit_isdf(problem, &points, timings)?;
    // NaN residuals must trip the guard too, hence the is_nan arm.
    let fit_res = isdf.sampled_relative_error(&problem.psi_v, &problem.psi_c);
    if fit_res.is_nan() || fit_res >= FIT_RESIDUAL_GUARD {
        let n_esc = (n_mu + n_mu.div_ceil(2)).min(problem.n_cv());
        recovery.push(format!(
            "isdf.fit: residual {fit_res:.3e} breaches guard, escalating rank {n_mu} -> {n_esc}"
        ));
        let points_esc = select_isdf_points(problem, selector, n_esc, timings, recovery)?;
        isdf = fit_isdf(problem, &points_esc, timings)?;
        let second = isdf.sampled_relative_error(&problem.psi_v, &problem.psi_c);
        if second.is_nan() || second >= FIT_RESIDUAL_GUARD {
            return Err(NumericalError::FitResidual {
                residual: second,
                tolerance: FIT_RESIDUAL_GUARD,
            }
            .into());
        }
    }

    // Ṽ_Hxc = ΔV · Θᵀ (f_Hxc Θ) (paper Eq. 7).
    let sp = obskit::span(obskit::Stage::Fft, "kernel.apply");
    let t0 = Instant::now();
    let kernel = HxcKernel::for_problem(problem);
    let f_theta = kernel.apply(&isdf.theta);
    timings.fft += t0.elapsed().as_secs_f64();
    drop(sp);
    let sp = obskit::span(obskit::Stage::Gemm, "v_tilde.contract");
    let t0 = Instant::now();
    // ΔV folds into the contraction's alpha — no separate scale pass.
    let mut v_tilde = Mat::zeros(isdf.theta.ncols(), f_theta.ncols());
    gemm(dv, &isdf.theta, Transpose::Yes, &f_theta, Transpose::No, 0.0, &mut v_tilde);
    v_tilde.symmetrize();
    let mut c = isdf.coefficients();
    timings.gemm += t0.elapsed().as_secs_f64();
    drop(sp);

    // Fault-injection hooks on the assembled factors, backed by real
    // finiteness guards — corruption here (from whatever source) must become
    // a typed error, not NaN excitation energies.
    faultkit::inject_slice("ham.v_tilde", v_tilde.as_mut_slice());
    faultkit::inject_slice("ham.c", c.as_mut_slice());
    if let Some(bad) = v_tilde.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(NumericalError::NonFinite { site: "ham.v_tilde".into(), index: bad }.into());
    }
    if let Some(bad) = c.as_slice().iter().position(|v| !v.is_finite()) {
        return Err(NumericalError::NonFinite { site: "ham.c".into(), index: bad }.into());
    }

    Ok(IsdfHamiltonian { diag_d: problem.diag_d(), c, v_tilde })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SolveOptions;
    use crate::rank::IsdfRank;
    use crate::problem::synthetic_problem;
    use crate::solver::Solver;

    fn full_rank_opts(p: &CasidaProblem) -> SolveOptions {
        SolveOptions::new().rank(IsdfRank::Fixed(p.n_cv()))
    }

    /// All solves in this module go through the `Solver` facade.
    fn run(p: &CasidaProblem, v: Version, o: &SolveOptions) -> Solution {
        Solver::builder().version(v).options(*o).build().solve(p).unwrap()
    }

    #[test]
    fn all_versions_agree_at_full_rank() {
        // With N_μ = N_cv the ISDF fit is (numerically) exact, so versions
        // 2–5 must reproduce the naive spectrum.
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 2);
        let opts = full_rank_opts(&p);
        let reference = run(&p, Version::Naive, &opts);
        for v in [
            Version::QrcpIsdf,
            Version::KmeansIsdf,
            Version::KmeansIsdfLobpcg,
            Version::ImplicitKmeansIsdfLobpcg,
        ] {
            let s = run(&p, v, &opts);
            for i in 0..3 {
                let rel = (s.energies[i] - reference.energies[i]).abs()
                    / reference.energies[i].abs().max(1e-12);
                assert!(rel < 1e-5, "{:?} λ_{i}: {} vs {}", v, s.energies[i], reference.energies[i]);
            }
        }
    }

    #[test]
    fn explicit_and_implicit_hamiltonians_identical() {
        let p = synthetic_problem([8, 8, 8], 7.0, 2, 3);
        let mut t = StageTimings::default();
        let ham = build_isdf_hamiltonian(&p, PointSelector::Qrcp, p.n_cv(), &mut t);
        let dense = ham.to_dense();
        // Apply to random block and compare.
        let mut s = 5u64;
        let x = Mat::from_fn(p.n_cv(), 4, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        });
        let implicit = ham.apply(&x);
        let mut explicit = Mat::zeros(p.n_cv(), 4);
        gemm(1.0, &dense, Transpose::No, &x, Transpose::No, 0.0, &mut explicit);
        assert!(implicit.max_abs_diff(&explicit) < 1e-9);
    }

    #[test]
    fn mixed_hamiltonian_tracks_full_precision_apply() {
        let p = synthetic_problem([8, 8, 8], 7.0, 2, 3);
        let mut t = StageTimings::default();
        let ham = build_isdf_hamiltonian(&p, PointSelector::Qrcp, p.n_cv(), &mut t);
        let mixed = ham.to_mixed();
        let x = Mat::from_fn(p.n_cv(), 3, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.1 - 0.6);
        let full = ham.apply(&x);
        let approx = mixed.apply(&x);
        // f32 storage: relative error should sit near f32 epsilon, far below
        // the inner tolerance the refined solve uses.
        let scale = full.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        assert!(
            full.max_abs_diff(&approx) / scale < 1e-5,
            "mixed apply drifted: {}",
            full.max_abs_diff(&approx) / scale
        );
        // ... but must NOT be exactly the f64 result (it really ran in f32).
        assert!(full.max_abs_diff(&approx) > 0.0);
    }

    #[test]
    fn reduced_rank_keeps_small_error() {
        // The paper's headline accuracy claim: low-rank + iterative introduces
        // only tiny relative errors (Table 5: ~0.001%–1%).
        let p = synthetic_problem([8, 8, 8], 6.0, 4, 3);
        let reference = run(&p, Version::Naive, &full_rank_opts(&p));
        let reduced = SolveOptions::new().rank(IsdfRank::Fixed(p.n_cv() * 3 / 4));
        let s = run(&p, Version::ImplicitKmeansIsdfLobpcg, &reduced);
        for i in 0..3 {
            let rel = (s.energies[i] - reference.energies[i]).abs()
                / reference.energies[i].abs().max(1e-12);
            assert!(rel < 0.05, "λ_{i} relative error {rel}");
        }
    }

    #[test]
    fn timing_stages_populated_per_version() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let opts = full_rank_opts(&p);
        let naive = run(&p, Version::Naive, &opts);
        assert!(naive.timings.face_split > 0.0);
        assert!(naive.timings.kmeans == 0.0);
        let km = run(&p, Version::KmeansIsdf, &opts);
        assert!(km.timings.kmeans > 0.0);
        assert!(km.timings.qrcp == 0.0);
        assert!(km.timings.theta > 0.0);
        let qr = run(&p, Version::QrcpIsdf, &opts);
        assert!(qr.timings.qrcp > 0.0);
        let imp = run(&p, Version::ImplicitKmeansIsdfLobpcg, &opts);
        assert!(imp.lobpcg_iterations.is_some());
        assert!(imp.timings.diag > 0.0);
    }

    #[test]
    fn n_mu_reported() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let s = run(&p, Version::KmeansIsdf, &SolveOptions::new().rank(IsdfRank::Fixed(3)));
        assert_eq!(s.n_mu, 3);
        let s = run(&p, Version::Naive, &SolveOptions::default());
        assert_eq!(s.n_mu, 0);
    }

    #[test]
    fn triplet_channel_lowers_excitations() {
        // Dropping the (repulsive) Hartree term must lower the lowest
        // excitation relative to the singlet channel.
        let mut p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let opts = full_rank_opts(&p);
        let singlet = run(&p, Version::Naive, &opts);
        p.kernel_kind = crate::problem::KernelKind::Triplet;
        let triplet = run(&p, Version::Naive, &opts);
        assert!(
            triplet.energies[0] < singlet.energies[0],
            "triplet {} should lie below singlet {}",
            triplet.energies[0],
            singlet.energies[0]
        );
        // and the ISDF path honours the channel too
        let triplet_isdf = run(&p, Version::ImplicitKmeansIsdfLobpcg, &opts);
        let rel = (triplet_isdf.energies[0] - triplet.energies[0]).abs()
            / triplet.energies[0].abs().max(1e-12);
        assert!(rel < 1e-5, "ISDF triplet mismatch: rel {rel}");
    }

    #[test]
    fn version_labels_and_flags() {
        assert_eq!(Version::all().len(), 5);
        assert!(!Version::Naive.uses_isdf());
        assert!(Version::QrcpIsdf.uses_isdf());
        assert!(Version::ImplicitKmeansIsdfLobpcg.uses_lobpcg());
        assert!(!Version::KmeansIsdf.uses_lobpcg());
        assert_eq!(Version::ImplicitKmeansIsdfLobpcg.label(), "Implicit-Kmeans-ISDF-LOBPCG");
    }
}
