//! The naïve explicit LR-TDDFT path (paper Algorithm 1):
//! face-splitting product → `f_Hxc` application → `V_Hxc` GEMM → dense SYEV.
//!
//! Complexity `O(N_v²N_c²N_r)` construction + `O(N_v³N_c³)` diagonalization
//! (paper Table 2) — the baseline all speedups are measured against.

use crate::kernel::HxcKernel;
use crate::problem::CasidaProblem;
use crate::timers::StageTimings;
use isdf::face_splitting_product;
use mathkit::{syev, Mat, Transpose};
use std::time::Instant;

/// Build the dense TDA Hamiltonian `H = D + 2 V_Hxc` (`N_cv × N_cv`).
pub fn build_dense_hamiltonian(problem: &CasidaProblem, timings: &mut StageTimings) -> Mat {
    problem.validate();
    let dv = problem.grid.dv();

    // Face-splitting product P_vc (Algorithm 1 line 2).
    let sp = obskit::span(obskit::Stage::FaceSplit, "face_split");
    let t0 = Instant::now();
    let p_vc = face_splitting_product(&problem.psi_v, &problem.psi_c);
    timings.face_split += t0.elapsed().as_secs_f64();
    drop(sp);

    // Apply f_Hxc (lines 4–5: FFT Hartree + real-space f_xc).
    let sp = obskit::span(obskit::Stage::Fft, "kernel.apply");
    let t0 = Instant::now();
    let kernel = HxcKernel::for_problem(problem);
    let f_p = kernel.apply(&p_vc);
    timings.fft += t0.elapsed().as_secs_f64();
    drop(sp);

    // V_Hxc = ΔV · P_vcᵀ (f_Hxc P_vc) (line 7). The TDA singlet factor 2
    // (paper Eq. 2) and ΔV fold into the GEMM's alpha — no scale pass.
    let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.contract");
    let t0 = Instant::now();
    let mut h = Mat::zeros(p_vc.ncols(), f_p.ncols());
    mathkit::gemm(2.0 * dv, &p_vc, Transpose::Yes, &f_p, Transpose::No, 0.0, &mut h);
    timings.gemm += t0.elapsed().as_secs_f64();
    drop(sp);

    // H = D + 2 V_Hxc (line 10).
    let d = problem.diag_d();
    for (i, di) in d.iter().enumerate() {
        h[(i, i)] += di;
    }
    h.symmetrize();
    h
}

/// Solve for the lowest `k` excitations with the dense pipeline. Returns
/// `(energies, eigenvector coefficients N_cv × k)`.
pub fn solve_naive(
    problem: &CasidaProblem,
    k: usize,
    timings: &mut StageTimings,
) -> (Vec<f64>, Mat) {
    let h = build_dense_hamiltonian(problem, timings);
    let sp = obskit::span(obskit::Stage::Diag, "diag.syev");
    let t0 = Instant::now();
    let eig = syev(&h);
    timings.diag += t0.elapsed().as_secs_f64();
    drop(sp);
    let k = k.min(eig.values.len());
    let cols: Vec<usize> = (0..k).collect();
    (eig.values[..k].to_vec(), eig.vectors.select_cols(&cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic_problem;

    #[test]
    fn hamiltonian_is_symmetric_with_positive_diagonal_shift() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let mut t = StageTimings::default();
        let h = build_dense_hamiltonian(&p, &mut t);
        assert_eq!(h.shape(), (4, 4));
        assert!(h.max_abs_diff(&h.transpose()) < 1e-12);
        assert!(t.face_split > 0.0 && t.fft > 0.0 && t.gemm > 0.0);
    }

    #[test]
    fn two_level_system_analytic() {
        // N_v = N_c = 1: H is 1×1 with H = Δε + 2⟨ρ|f_Hxc|ρ⟩, ρ = ψ_v ψ_c.
        let p = synthetic_problem([8, 8, 8], 6.0, 1, 1);
        let mut t = StageTimings::default();
        let (vals, vecs) = solve_naive(&p, 1, &mut t);
        let dv = p.grid.dv();
        let rho = p.psi_v.hadamard(&p.psi_c);
        let kern = HxcKernel::new(&p.grid, p.fxc.clone());
        let coupling = kern.matrix_elements(&rho, &rho, dv)[(0, 0)];
        let expect = (p.eps_c[0] - p.eps_v[0]) + 2.0 * coupling;
        assert!((vals[0] - expect).abs() < 1e-10, "{} vs {expect}", vals[0]);
        assert!((vecs[(0, 0)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energies_ascending_and_k_truncation() {
        let p = synthetic_problem([8, 8, 8], 7.0, 3, 2);
        let mut t = StageTimings::default();
        let (vals, vecs) = solve_naive(&p, 4, &mut t);
        assert_eq!(vals.len(), 4);
        assert_eq!(vecs.shape(), (6, 4));
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn kernel_coupling_shifts_bare_transitions() {
        // With f_Hxc ≠ 0 the excitations differ from the bare ε differences.
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let mut t = StageTimings::default();
        let (vals, _) = solve_naive(&p, 4, &mut t);
        let d = p.diag_d();
        let mut bare = d.clone();
        bare.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let diff: f64 = vals.iter().zip(bare.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "kernel had no effect");
    }

    #[test]
    fn k_larger_than_ncv_is_clamped() {
        let p = synthetic_problem([4, 4, 4], 5.0, 1, 2);
        let mut t = StageTimings::default();
        let (vals, _) = solve_naive(&p, 100, &mut t);
        assert_eq!(vals.len(), 2);
    }
}
