//! Transition dipoles, oscillator strengths and absorption spectra.
//!
//! Downstream users of an LR-TDDFT code almost always want the optical
//! absorption spectrum, not just eigenvalues: the oscillator strength
//!
//! ```text
//! f_n = (2/3) ω_n Σ_α |Σ_{vc} X_n(vc) √2 ⟨ψ_v| r_α |ψ_c⟩|²
//! ```
//!
//! with the TDA excitation vectors `X_n`. Position matrix elements use the
//! supercell (sawtooth) position operator — standard practice for
//! finite/molecular systems in a box; for metallic periodic systems a
//! velocity-gauge treatment would be needed (out of scope here, as in the
//! paper).

use crate::problem::CasidaProblem;
use faultkit::NumericalError;
use mathkit::Mat;

/// Dipole matrix elements `μ(vc, α) = ∫ ψ_v(r) r_α ψ_c(r) dr`
/// (`N_cv × 3`, pair index valence-major).
pub fn transition_dipoles(problem: &CasidaProblem) -> Mat {
    let nr = problem.n_r();
    let (n_v, n_c) = (problem.n_v(), problem.n_c());
    let dv = problem.grid.dv();
    let mut mu = Mat::zeros(n_v * n_c, 3);
    // Precompute coordinates once.
    let coords: Vec<[f64; 3]> = (0..nr).map(|i| problem.grid.coords(i)).collect();
    for iv in 0..n_v {
        let v = problem.psi_v.col(iv);
        for ic in 0..n_c {
            let c = problem.psi_c.col(ic);
            let mut acc = [0.0f64; 3];
            for r in 0..nr {
                let p = v[r] * c[r];
                acc[0] += p * coords[r][0];
                acc[1] += p * coords[r][1];
                acc[2] += p * coords[r][2];
            }
            let row = iv * n_c + ic;
            for a in 0..3 {
                mu[(row, a)] = acc[a] * dv;
            }
        }
    }
    mu
}

/// Oscillator strengths of the excitations in `(energies, coefficients)`
/// (as returned by [`crate::solve`]); `coefficients` is `N_cv × k`.
///
/// Panicking wrapper over [`try_oscillator_strengths`] for callers that
/// treat a shape mismatch as a programming error.
pub fn oscillator_strengths(
    problem: &CasidaProblem,
    energies: &[f64],
    coefficients: &Mat,
) -> Vec<f64> {
    match try_oscillator_strengths(problem, energies, coefficients) {
        Ok(f) => f,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`oscillator_strengths`]: dimension bookkeeping errors
/// surface as [`NumericalError::ShapeMismatch`] instead of a panic, so
/// post-processing pipelines fed by an external solver can reject a bad
/// solution and continue.
pub fn try_oscillator_strengths(
    problem: &CasidaProblem,
    energies: &[f64],
    coefficients: &Mat,
) -> Result<Vec<f64>, NumericalError> {
    let expected = (problem.n_cv(), energies.len());
    let got = coefficients.shape();
    if got != expected {
        return Err(NumericalError::ShapeMismatch { stage: "spectrum.strengths", expected, got });
    }
    let mu = transition_dipoles(problem);
    let sqrt2 = std::f64::consts::SQRT_2; // closed-shell singlet normalization
    Ok(energies
        .iter()
        .enumerate()
        .map(|(n, &omega)| {
            let x = coefficients.col(n);
            let mut d2 = 0.0;
            for a in 0..3 {
                let mut d = 0.0;
                for (vc, &xv) in x.iter().enumerate() {
                    d += xv * mu[(vc, a)];
                }
                d2 += (sqrt2 * d).powi(2);
            }
            (2.0 / 3.0) * omega * d2
        })
        .collect())
}

/// Gaussian-broadened absorption spectrum `σ(ω) = Σ_n f_n g(ω − ω_n)`,
/// returned as `(ω, σ)` pairs.
///
/// Panicking wrapper over [`try_absorption_spectrum`].
pub fn absorption_spectrum(
    energies: &[f64],
    strengths: &[f64],
    sigma: f64,
    omega_min: f64,
    omega_max: f64,
    npts: usize,
) -> Vec<(f64, f64)> {
    match try_absorption_spectrum(energies, strengths, sigma, omega_min, omega_max, npts) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`absorption_spectrum`]: mismatched energy/strength
/// lengths surface as [`NumericalError::ShapeMismatch`]. Grid-parameter
/// misuse (`sigma <= 0`, fewer than two points, inverted window) is still a
/// plain panic — those are caller bugs, not data-dependent failures.
pub fn try_absorption_spectrum(
    energies: &[f64],
    strengths: &[f64],
    sigma: f64,
    omega_min: f64,
    omega_max: f64,
    npts: usize,
) -> Result<Vec<(f64, f64)>, NumericalError> {
    if energies.len() != strengths.len() {
        return Err(NumericalError::ShapeMismatch {
            stage: "spectrum.broaden",
            expected: (energies.len(), 1),
            got: (strengths.len(), 1),
        });
    }
    assert!(sigma > 0.0 && npts >= 2 && omega_max > omega_min);
    let norm = 1.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt());
    Ok((0..npts)
        .map(|i| {
            let w = omega_min + (omega_max - omega_min) * i as f64 / (npts - 1) as f64;
            let mut s = 0.0;
            for (e, f) in energies.iter().zip(strengths.iter()) {
                let x = (w - e) / sigma;
                s += f * norm * (-0.5 * x * x).exp();
            }
            (w, s)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic_problem;
    use crate::{Solver, Version};

    #[test]
    fn dipoles_have_expected_shape_and_are_finite() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 3);
        let mu = transition_dipoles(&p);
        assert_eq!(mu.shape(), (6, 3));
        assert!(mu.as_slice().iter().all(|x| x.is_finite()));
        // orbital pairs on a box of side 6 → dipoles bounded by the box size
        assert!(mu.norm_max() < 6.0);
    }

    #[test]
    fn oscillator_strengths_nonnegative_for_positive_excitations() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let sol =
            Solver::builder().version(Version::Naive).n_states(4).build().solve(&p).unwrap();
        let f = oscillator_strengths(&p, &sol.energies, &sol.coefficients);
        assert_eq!(f.len(), 4);
        for (i, fi) in f.iter().enumerate() {
            assert!(*fi >= 0.0, "f_{i} = {fi}");
        }
    }

    #[test]
    fn strengths_scale_linearly_with_energy() {
        // Same coefficient vector at two claimed energies: f ∝ ω.
        let p = synthetic_problem([8, 8, 8], 6.0, 1, 2);
        let mut x = Mat::zeros(2, 1);
        x[(0, 0)] = 1.0;
        let f1 = oscillator_strengths(&p, &[0.5], &x);
        let f2 = oscillator_strengths(&p, &[1.0], &x);
        assert!((f2[0] - 2.0 * f1[0]).abs() < 1e-12);
    }

    #[test]
    fn spectrum_integrates_to_total_strength() {
        let energies = [0.3, 0.6];
        let strengths = [0.8, 0.4];
        let spec = absorption_spectrum(&energies, &strengths, 0.02, 0.0, 1.0, 2001);
        let dw = 1.0 / 2000.0;
        let integral: f64 = spec.iter().map(|(_, s)| s * dw).sum();
        assert!((integral - 1.2).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn dark_state_contributes_nothing() {
        // A coefficient vector orthogonal to every dipole column is dark.
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let mu = transition_dipoles(&p);
        // Orthonormalize the dipole columns, then project x out of their span
        // (sequential projection against the *raw* columns would leave
        // residual components because they are not mutually orthogonal).
        let q = mathkit::ortho::modified_gram_schmidt(&mu, 1e-12);
        let mut x = vec![0.5, -0.3, 0.7, 0.1];
        for a in 0..q.ncols() {
            let col = q.col(a);
            let dot: f64 = x.iter().zip(col.iter()).map(|(a, b)| a * b).sum();
            for (xi, ci) in x.iter_mut().zip(col.iter()) {
                *xi -= dot * ci;
            }
        }
        let xm = Mat::from_vec(4, 1, x);
        let f = oscillator_strengths(&p, &[0.4], &xm);
        assert!(f[0].abs() < 1e-20, "dark state has f = {}", f[0]);
    }

    #[test]
    fn shape_mismatch_is_typed_not_a_panic() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        // 4 pair rows expected; hand a 3-row coefficient block instead.
        let bad = Mat::zeros(3, 1);
        let err = try_oscillator_strengths(&p, &[0.4], &bad).expect_err("shape mismatch");
        assert!(err.to_string().contains("shape mismatch"), "{err}");

        let err = try_absorption_spectrum(&[0.1, 0.2], &[1.0], 0.02, 0.0, 1.0, 10)
            .expect_err("length mismatch");
        assert!(matches!(err, NumericalError::ShapeMismatch { stage: "spectrum.broaden", .. }));
    }
}
