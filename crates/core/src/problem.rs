//! The Casida/TDA problem data: everything the five solver versions consume.

use mathkit::Mat;
use pwdft::{Grid, GroundState};

/// Spin channel of the TDA kernel for closed-shell systems.
///
/// Singlet excitations couple through the full `f_H + f_xc`; in the triplet
/// channel the Hartree term cancels between spin components and only the
/// (spin-flip) `f_xc` survives — the standard closed-shell Casida reduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelKind {
    #[default]
    Singlet,
    Triplet,
}

/// Inputs of an LR-TDDFT calculation (paper §3): ground-state valence and
/// conduction orbitals with their Kohn–Sham energies, the real-space grid,
/// and the `f_xc` kernel evaluated at the ground-state density.
pub struct CasidaProblem {
    /// Valence orbitals, `N_r × N_v`, grid-orthonormal (`∫ψ_iψ_j dr = δ`).
    pub psi_v: Mat,
    /// Conduction orbitals, `N_r × N_c`.
    pub psi_c: Mat,
    /// Valence Kohn–Sham energies (`N_v`).
    pub eps_v: Vec<f64>,
    /// Conduction Kohn–Sham energies (`N_c`).
    pub eps_c: Vec<f64>,
    /// `f_xc(r)` at the ground-state density (`N_r`).
    pub fxc: Vec<f64>,
    /// Real-space grid (provides the FFT plan, `ΔV`, and cell for `f_H`).
    pub grid: Grid,
    /// Spin channel of the coupling kernel.
    pub kernel_kind: KernelKind,
}

impl CasidaProblem {
    /// Assemble from a converged ground state.
    pub fn from_ground_state(grid: &Grid, gs: &GroundState) -> Self {
        CasidaProblem {
            psi_v: gs.psi_valence(),
            psi_c: gs.psi_conduction(),
            eps_v: gs.eps[..gs.n_valence].to_vec(),
            eps_c: gs.eps[gs.n_valence..gs.n_valence + gs.n_conduction].to_vec(),
            fxc: gs.fxc.clone(),
            grid: grid.clone(),
            kernel_kind: KernelKind::Singlet,
        }
    }

    /// Number of valence orbitals `N_v`.
    #[inline]
    pub fn n_v(&self) -> usize {
        self.psi_v.ncols()
    }

    /// Number of conduction orbitals `N_c`.
    #[inline]
    pub fn n_c(&self) -> usize {
        self.psi_c.ncols()
    }

    /// Pair count `N_cv = N_v · N_c` — the Casida Hamiltonian dimension.
    #[inline]
    pub fn n_cv(&self) -> usize {
        self.n_v() * self.n_c()
    }

    /// Grid points `N_r`.
    #[inline]
    pub fn n_r(&self) -> usize {
        self.grid.len()
    }

    /// Flatten a `(i_v, i_c)` pair to the Hamiltonian index (valence-major,
    /// matching [`isdf::face_splitting_product`]).
    #[inline]
    pub fn pair_index(&self, iv: usize, ic: usize) -> usize {
        iv * self.n_c() + ic
    }

    /// The diagonal `D(i_v i_c) = ε_{i_c} − ε_{i_v}` (paper Eq. 1).
    pub fn diag_d(&self) -> Vec<f64> {
        let mut d = Vec::with_capacity(self.n_cv());
        for &ev in &self.eps_v {
            for &ec in &self.eps_c {
                d.push(ec - ev);
            }
        }
        d
    }

    /// Sanity checks used by tests and debug builds.
    pub fn validate(&self) {
        assert_eq!(self.psi_v.nrows(), self.grid.len());
        assert_eq!(self.psi_c.nrows(), self.grid.len());
        assert_eq!(self.eps_v.len(), self.n_v());
        assert_eq!(self.eps_c.len(), self.n_c());
        assert_eq!(self.fxc.len(), self.grid.len());
        assert!(self.n_v() > 0 && self.n_c() > 0);
    }
}

/// Build a synthetic problem with smooth, grid-orthonormalized orbitals and a
/// mildly attractive constant-plus-modulated `f_xc` — used by unit tests and
/// benches that don't want the SCF cost.
pub fn synthetic_problem(n_grid: [usize; 3], box_len: f64, n_v: usize, n_c: usize) -> CasidaProblem {
    use mathkit::ortho::modified_gram_schmidt;
    use pwdft::Cell;

    let grid = Grid::new(Cell::cubic(box_len), n_grid);
    let nr = grid.len();
    let nb = n_v + n_c;
    assert!(nb <= 27, "synthetic generator supports at most 27 independent bands");
    // Tensor products of phase-shifted fundamentals: each band lives in the
    // 27-dimensional space {1, cos τx, sin τx}⊗{…y}⊗{…z}; distinct per-band
    // phases make any ≤27 of them generically independent, and the lowest
    // spatial frequency avoids aliasing even on 4-point-per-axis test grids.
    let raw = Mat::from_fn(nr, nb, |r, b| {
        let c = grid.coords(r);
        let tau = std::f64::consts::TAU / box_len;
        let bf = b as f64;
        (1.0 + 0.6 * (tau * c[0] + 0.9 * bf + 0.2).cos())
            * (1.0 + 0.5 * (tau * c[1] + 1.7 * bf + 1.1).cos())
            * (1.0 + 0.4 * (tau * c[2] + 2.3 * bf + 0.5).cos())
    });
    let q = modified_gram_schmidt(&raw, 1e-10);
    assert_eq!(q.ncols(), nb, "synthetic bands must be independent");
    // Grid-orthonormal: scale by 1/√ΔV.
    let mut psi = q;
    psi.scale(1.0 / grid.dv().sqrt());

    let psi_v = psi.col_block(0, n_v);
    let psi_c = psi.col_block(n_v, nb);
    let eps_v: Vec<f64> = (0..n_v).map(|i| -0.5 + 0.02 * i as f64).collect();
    let eps_c: Vec<f64> = (0..n_c).map(|i| 0.1 + 0.03 * i as f64).collect();
    let fxc: Vec<f64> = (0..nr)
        .map(|r| {
            let c = grid.coords(r);
            -0.3 - 0.05 * (std::f64::consts::TAU * c[0] / box_len).cos()
        })
        .collect();
    CasidaProblem { psi_v, psi_c, eps_v, eps_c, fxc, grid, kernel_kind: KernelKind::Singlet }
}

/// Build a silicon-supercell-shaped workload *without* running SCF: one
/// localized pseudo-orbital per valence state (Gaussians at atom sites with
/// per-orbital modulations), broader modulated Gaussians for conduction
/// states, all grid-orthonormalized.
///
/// This is the benchmark stand-in for the paper's Si₆₄…Si₄₀₉₆ ladder: it has
/// the *dimensions* (`N_r`, `N_v = 2·atoms`, `N_c`) and the *locality*
/// (ISDF-compressible pair products, atom-centered K-Means weights) of real
/// Kohn–Sham orbitals at a tiny fraction of the setup cost. Accuracy
/// experiments (paper Table 5) use real SCF orbitals instead.
pub fn silicon_like_problem(n_cells: usize, grid_n: usize, n_c: usize) -> CasidaProblem {
    use mathkit::ortho::modified_gram_schmidt;
    use pwdft::{silicon_supercell, xc::fxc_lda};

    let structure = silicon_supercell(n_cells);
    let grid = Grid::new(structure.cell, [grid_n, grid_n, grid_n]);
    let nr = grid.len();
    let n_v = structure.n_valence();
    let nb = n_v + n_c;
    assert!(nb < nr, "need more grid points than bands");

    let atoms = &structure.atoms;
    let coords: Vec<[f64; 3]> = (0..nr).map(|i| grid.coords(i)).collect();
    let raw = Mat::from_fn(nr, nb, |r, b| {
        let c = coords[r];
        if b < n_v {
            // Valence: tight Gaussian on atom b % n_atoms, modulated so two
            // orbitals on the same atom stay independent.
            let a = &atoms[b % atoms.len()];
            let d = grid.cell.min_image(a.pos, c);
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            let phase = 0.7 * b as f64;
            (-0.35 * r2).exp()
                * (1.0 + 0.4 * (0.9 * d[0] + 1.3 * d[1] + 0.5 * d[2] + phase).cos())
        } else {
            // Conduction: broader Gaussian with higher-frequency modulation.
            let bc = b - n_v;
            let a = &atoms[(bc * 3 + 1) % atoms.len()];
            let d = grid.cell.min_image(a.pos, c);
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            let phase = 1.1 * bc as f64 + 0.3;
            (-0.12 * r2).exp()
                * ((1.7 * d[0] + phase).cos() + 0.6 * (2.3 * d[1] - phase).sin())
        }
    });
    let q = modified_gram_schmidt(&raw, 1e-9);
    assert_eq!(q.ncols(), nb, "silicon-like bands must be independent");
    let mut psi = q;
    psi.scale(1.0 / grid.dv().sqrt());

    let psi_v = psi.col_block(0, n_v);
    let psi_c = psi.col_block(n_v, nb);
    let eps_v: Vec<f64> = (0..n_v).map(|i| -0.35 + 0.2 * i as f64 / n_v.max(1) as f64).collect();
    let eps_c: Vec<f64> = (0..n_c).map(|i| 0.08 + 0.3 * i as f64 / n_c.max(1) as f64).collect();

    // Plausible density → LDA kernel: superposed atomic Gaussians.
    let fxc: Vec<f64> = (0..nr)
        .map(|r| {
            let mut n = 1e-3;
            for a in atoms {
                let d = grid.cell.min_image(a.pos, coords[r]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                n += 0.8 * (-0.5 * r2).exp();
            }
            fxc_lda(n)
        })
        .collect();

    CasidaProblem { psi_v, psi_c, eps_v, eps_c, fxc, grid, kernel_kind: KernelKind::Singlet }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::gemm_tn;

    #[test]
    fn synthetic_problem_is_valid_and_orthonormal() {
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 2);
        p.validate();
        assert_eq!(p.n_cv(), 6);
        let all = {
            let mut m = Mat::zeros(p.n_r(), 5);
            for j in 0..3 {
                m.col_mut(j).copy_from_slice(p.psi_v.col(j));
            }
            for j in 0..2 {
                m.col_mut(3 + j).copy_from_slice(p.psi_c.col(j));
            }
            m
        };
        let mut overlap = gemm_tn(&all, &all);
        overlap.scale(p.grid.dv());
        assert!(overlap.max_abs_diff(&Mat::eye(5)) < 1e-10);
    }

    #[test]
    fn diag_d_ordering_is_valence_major() {
        let p = synthetic_problem([4, 4, 4], 5.0, 2, 3);
        let d = p.diag_d();
        assert_eq!(d.len(), 6);
        // pair (iv=1, ic=2) at index 1*3+2 = 5
        assert_eq!(p.pair_index(1, 2), 5);
        assert!((d[5] - (p.eps_c[2] - p.eps_v[1])).abs() < 1e-15);
        // all excitations positive for a gapped spectrum
        assert!(d.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn silicon_like_dimensions_and_orthonormality() {
        let p = silicon_like_problem(1, 12, 4);
        p.validate();
        assert_eq!(p.n_v(), 16);
        assert_eq!(p.n_c(), 4);
        assert_eq!(p.n_r(), 12 * 12 * 12);
        let mut overlap = gemm_tn(&p.psi_v, &p.psi_v);
        overlap.scale(p.grid.dv());
        assert!(overlap.max_abs_diff(&Mat::eye(16)) < 1e-8);
        // localized valence orbitals → localized (prunable) weights
        let w = isdf::pair_weights(&p.psi_v, &p.psi_c);
        let wmax = w.iter().cloned().fold(0.0f64, f64::max);
        let heavy = w.iter().filter(|&&x| x > 1e-6 * wmax).count();
        assert!(heavy < p.n_r(), "weights should have prunable tails");
        // attractive LDA kernel everywhere
        assert!(p.fxc.iter().all(|&f| f < 0.0));
    }

    #[test]
    fn from_ground_state_wires_dimensions() {
        use pwdft::{scf, silicon_supercell, ScfOptions};
        let s = silicon_supercell(1);
        let grid = Grid::new(s.cell, [8, 8, 8]);
        let gs = scf(
            &grid,
            &s,
            ScfOptions { n_conduction: 2, max_iter: 3, band_max_iter: 10, ..Default::default() },
        );
        let p = CasidaProblem::from_ground_state(&grid, &gs);
        p.validate();
        assert_eq!(p.n_v(), 16);
        assert_eq!(p.n_c(), 2);
        assert_eq!(p.n_r(), 512);
    }
}
