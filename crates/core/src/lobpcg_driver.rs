//! LOBPCG driving for the Casida eigenproblem (paper §4.3).
//!
//! Wraps the generic `mathkit` LOBPCG with the paper's specifics:
//! * initial guess: unit vectors on the `k` smallest bare transitions
//!   `D = ε_c − ε_v` (plus a whiff of noise to decouple degeneracies),
//! * the diagonal preconditioner `K_i = ε_{i_c} − ε_{i_v} − θ` (Eq. 17),
//!   applied as `W = K⁻¹(HX − XΘ)` (Eq. 16) with a safeguard floor.

use faultkit::SolveError;
use mathkit::lobpcg::{lobpcg, LobpcgOptions, LobpcgResult};
use mathkit::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build the paper's initial block: for each of the `k` lowest entries of
/// `diag_d`, a coordinate vector with small random dressing.
pub fn initial_guess(diag_d: &[f64], k: usize, seed: u64) -> Mat {
    let n = diag_d.len();
    let k = k.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| diag_d[a].partial_cmp(&diag_d[b]).unwrap());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x0 = Mat::from_fn(n, k, |_, _| 1e-3 * rng.gen_range(-1.0..1.0));
    for (j, &idx) in order.iter().take(k).enumerate() {
        x0[(idx, j)] = 1.0;
    }
    x0
}

/// The Eq. 17 preconditioner: `w = r / (D − θ)` componentwise, floored at
/// `|denominator| ≥ guard` to survive near-resonant Ritz values.
pub fn casida_preconditioner(diag_d: &[f64], guard: f64) -> impl Fn(&Mat, &[f64]) -> Mat + '_ {
    move |r: &Mat, theta: &[f64]| {
        let mut w = r.clone();
        for (j, &th) in theta.iter().enumerate().take(w.ncols()) {
            let col = w.col_mut(j);
            for (i, v) in col.iter_mut().enumerate() {
                let mut den = diag_d[i] - th;
                if den.abs() < guard {
                    den = guard.copysign(if den == 0.0 { 1.0 } else { den });
                }
                *v /= den;
            }
        }
        w
    }
}

/// Solve the lowest `k` eigenpairs of the (possibly implicit) Casida
/// Hamiltonian `apply`, with the paper's guess and preconditioner.
///
/// `Ok` with `converged == false` reports honest non-convergence; `Err` is an
/// iteration breakdown (non-finite quantities, lost subspace) — the caller's
/// recovery ladder decides whether to resume, restart or fall back.
pub fn solve_casida_lobpcg<FA>(
    apply: FA,
    diag_d: &[f64],
    k: usize,
    opts: LobpcgOptions,
    seed: u64,
) -> Result<LobpcgResult, SolveError>
where
    FA: Fn(&Mat) -> Mat,
{
    let x0 = initial_guess(diag_d, k, seed);
    let precond = casida_preconditioner(diag_d, 1e-3);
    lobpcg(apply, precond, &x0, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::gemm::matmul;
    use mathkit::syev;

    #[test]
    fn guess_hits_lowest_transitions() {
        let d = vec![5.0, 1.0, 3.0, 0.5];
        let x0 = initial_guess(&d, 2, 1);
        assert_eq!(x0.shape(), (4, 2));
        // first column peaks at index 3 (smallest D), second at index 1
        assert!((x0[(3, 0)] - 1.0).abs() < 1e-12);
        assert!((x0[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preconditioner_divides_by_shifted_diagonal() {
        let d = vec![2.0, 4.0];
        let pre = casida_preconditioner(&d, 1e-6);
        let r = Mat::from_rows(&[&[1.0], &[1.0]]);
        let w = pre(&r, &[1.0]);
        assert!((w[(0, 0)] - 1.0).abs() < 1e-12); // 1/(2-1)
        assert!((w[(1, 0)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn preconditioner_guard_prevents_blowup() {
        let d = vec![1.0];
        let pre = casida_preconditioner(&d, 1e-3);
        let r = Mat::from_rows(&[&[1.0]]);
        let w = pre(&r, &[1.0]); // resonant: D − θ = 0
        assert!(w[(0, 0)].abs() <= 1.0 / 1e-3 + 1e-9);
        assert!(w[(0, 0)].is_finite());
    }

    #[test]
    fn casida_like_matrix_lowest_k_match_dense() {
        // H = diag(D) + low-rank coupling — the structure LOBPCG sees.
        let n = 40;
        let d: Vec<f64> = (0..n).map(|i| 0.5 + 0.05 * i as f64).collect();
        let mut h = Mat::zeros(n, n);
        for i in 0..n {
            h[(i, i)] = d[i];
            for j in 0..n {
                let u = ((i + 1) as f64).sin() * ((j + 1) as f64).sin();
                h[(i, j)] += 0.02 * u;
            }
        }
        h.symmetrize();
        let dense = syev(&h);
        let res = solve_casida_lobpcg(
            |x| matmul(&h, x),
            &d,
            3,
            LobpcgOptions { max_iter: 300, tol: 1e-9 },
            42,
        )
        .expect("lobpcg");
        assert!(res.converged, "residual {}", res.residual);
        for i in 0..3 {
            assert!(
                (res.values[i] - dense.values[i]).abs() < 1e-7,
                "λ_{i}: {} vs {}",
                res.values[i],
                dense.values[i]
            );
        }
    }

    #[test]
    fn preconditioned_converges_faster_than_identity() {
        let n = 100;
        let d: Vec<f64> = (0..n).map(|i| 1.0 + 0.1 * i as f64).collect();
        let mut h = Mat::zeros(n, n);
        for i in 0..n {
            h[(i, i)] = d[i];
            h[(i, (i + 1) % n)] += 0.05;
            h[((i + 1) % n, i)] += 0.05;
        }
        h.symmetrize();
        let opts = LobpcgOptions { max_iter: 200, tol: 1e-8 };
        let x0 = initial_guess(&d, 2, 7);
        let plain = lobpcg(|x| matmul(&h, x), mathkit::no_precond, &x0, opts).expect("lobpcg");
        let pre = solve_casida_lobpcg(|x| matmul(&h, x), &d, 2, opts, 7).expect("lobpcg");
        assert!(pre.converged);
        assert!(pre.iterations <= plain.iterations + 2);
    }
}
