//! Choice of the ISDF rank `N_μ`.
//!
//! The paper operates at `N_μ ≈ 10 × N_e` (Table 4 caption). With
//! `N_v ≈ N_c ≈ N_e`, we parameterize the rank either absolutely or as a
//! multiple of the orbital count.

/// How many interpolation points to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IsdfRank {
    /// Exactly this many points.
    Fixed(usize),
    /// `N_μ = ceil(factor · (N_v + N_c))` — the paper's `N_μ ≈ 10·N_e`
    /// corresponds to `Factor(≈5.0)` when `N_v = N_c = N_e`.
    Factor(f64),
}

impl IsdfRank {
    /// Resolve to a concrete count, clamped to `[1, min(N_r, N_v·N_c)]`
    /// (the mathematical rank bound of the pair matrix).
    pub fn resolve(&self, n_r: usize, n_v: usize, n_c: usize) -> usize {
        let raw = match self {
            IsdfRank::Fixed(n) => *n,
            IsdfRank::Factor(f) => ((n_v + n_c) as f64 * f).ceil() as usize,
        };
        raw.clamp(1, n_r.min(n_v * n_c))
    }
}

impl Default for IsdfRank {
    fn default() -> Self {
        IsdfRank::Factor(5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_clamped() {
        assert_eq!(IsdfRank::Fixed(100).resolve(1000, 4, 4), 16); // N_cv bound
        assert_eq!(IsdfRank::Fixed(100).resolve(10, 40, 40), 10); // N_r bound
        assert_eq!(IsdfRank::Fixed(0).resolve(10, 4, 4), 1);
        assert_eq!(IsdfRank::Fixed(7).resolve(1000, 10, 10), 7);
    }

    #[test]
    fn factor_scales_with_orbitals() {
        assert_eq!(IsdfRank::Factor(2.0).resolve(10_000, 8, 8), 32);
        assert_eq!(IsdfRank::Factor(5.0).resolve(10_000, 16, 16), 160);
    }

    #[test]
    fn default_matches_paper_regime() {
        // N_v = N_c = N_e → N_μ = 5·2·N_e = 10·N_e.
        let n_mu = IsdfRank::default().resolve(usize::MAX, 12, 12);
        assert_eq!(n_mu, 120);
    }
}
