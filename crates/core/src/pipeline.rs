//! The GEMM + reduction overlap optimization of paper Figs. 4–5.
//!
//! Baseline (Algorithm 1 lines 7–8): every rank GEMMs its full local
//! contribution to `V_Hxc`, then one big `MPI_Allreduce` hands every rank the
//! whole matrix — full memory on every rank, and the reduction cannot start
//! until the whole GEMM is done.
//!
//! Optimized (Fig. 4 partitioning + Fig. 5 pipelining): the output columns
//! are split into per-rank chunks; each chunk is GEMMed *and immediately
//! `MPI_Reduce`d to its owning rank*. Each rank stores only `1/P` of
//! `V_Hxc`, and reduction of chunk `q` overlaps (in a real network) with the
//! GEMM of chunk `q+1`.

use mathkit::gemm::{gemm, syrk_tn_scaled, Transpose};
use mathkit::Mat;
use parcomm::layout::block_ranges;
use parcomm::Comm;

/// Result of a distributed Gram-matrix build.
pub struct GramResult {
    /// This rank's piece: the full matrix (monolithic) or its column chunk
    /// (pipelined).
    pub local: Mat,
    /// Column range owned (pipelined) or `0..n` (monolithic).
    pub col_range: std::ops::Range<usize>,
    /// Peak output words held by this rank.
    pub peak_words: usize,
}

/// Monolithic path: full local GEMM `Aᵀ_local·B_local`, then `Allreduce`.
/// Every rank returns the complete `m × n` matrix.
pub fn gram_allreduce(comm: &Comm, a_local: &Mat, b_local: &Mat, scale: f64) -> GramResult {
    let (m, n) = (a_local.ncols(), b_local.ncols());
    // A Gram of a block with itself is symmetric — the packed rank-k engine
    // computes only the lower triangle and mirrors it.
    let mut v = if std::ptr::eq(a_local, b_local) {
        syrk_tn_scaled(scale, a_local)
    } else {
        let mut v = Mat::zeros(m, n);
        gemm(scale, a_local, Transpose::Yes, b_local, Transpose::No, 0.0, &mut v);
        v
    };
    comm.allreduce_sum(v.as_mut_slice());
    GramResult { local: v, col_range: 0..n, peak_words: m * n }
}

/// Pipelined path: per-destination column chunks, each GEMMed then
/// `Reduce`d to its owner. Rank `r` returns only columns
/// `block_ranges(n, P)[r]`.
pub fn gram_pipelined_reduce(
    comm: &Comm,
    a_local: &Mat,
    b_local: &Mat,
    scale: f64,
) -> GramResult {
    let p = comm.size();
    let (m, n) = (a_local.ncols(), b_local.ncols());
    let ranges = block_ranges(n, p);
    let my_range = ranges[comm.rank()].clone();
    let mut mine = Mat::zeros(m, my_range.len());
    let mut peak_words = 0usize;
    for (owner, range) in ranges.iter().enumerate() {
        if range.is_empty() {
            // Zero-length reduce keeps the collective schedule aligned.
            let mut empty: [f64; 0] = [];
            comm.reduce_sum(&mut empty, owner);
            continue;
        }
        // GEMM only this chunk of output columns.
        let b_chunk = b_local.col_block(range.start, range.end);
        let mut v_chunk = Mat::zeros(m, range.len());
        gemm(scale, a_local, Transpose::Yes, &b_chunk, Transpose::No, 0.0, &mut v_chunk);
        peak_words = peak_words.max(v_chunk.as_slice().len() + mine.as_slice().len());
        // Immediately reduce the finished chunk to its owner (Fig. 5).
        comm.reduce_sum(v_chunk.as_mut_slice(), owner);
        if owner == comm.rank() {
            mine = v_chunk;
        }
    }
    GramResult { local: mine, col_range: my_range, peak_words }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::gemm_tn;
    use parcomm::layout::block_ranges;
    use parcomm::spmd;

    fn global_ab(nr: usize, m: usize, n: usize) -> (Mat, Mat) {
        let a = Mat::from_fn(nr, m, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.1 - 0.5);
        let b = Mat::from_fn(nr, n, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.1 - 0.7);
        (a, b)
    }

    #[test]
    fn allreduce_path_matches_serial() {
        let (nr, m, n, p) = (24, 5, 7, 4);
        let (a, b) = global_ab(nr, m, n);
        let expect = {
            let mut e = gemm_tn(&a, &b);
            e.scale(2.0);
            e
        };
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            gram_allreduce(c, &al, &bl, 2.0).local
        });
        for r in res {
            assert!(r.max_abs_diff(&expect) < 1e-10);
        }
    }

    #[test]
    fn pipelined_path_matches_serial_chunks() {
        let (nr, m, n, p) = (30, 4, 9, 3);
        let (a, b) = global_ab(nr, m, n);
        let expect = gemm_tn(&a, &b);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            gram_pipelined_reduce(c, &al, &bl, 1.0)
        });
        for (rank, r) in res.iter().enumerate() {
            let cr = block_ranges(n, p)[rank].clone();
            assert_eq!(r.col_range, cr);
            assert_eq!(r.local.shape(), (m, cr.len()));
            for (jl, j) in cr.clone().enumerate() {
                for i in 0..m {
                    assert!((r.local[(i, jl)] - expect[(i, j)]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn pipelined_uses_less_memory_per_rank() {
        let (nr, m, n, p) = (40, 16, 16, 4);
        let (a, b) = global_ab(nr, m, n);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            let mono = gram_allreduce(c, &al, &bl, 1.0);
            let pipe = gram_pipelined_reduce(c, &al, &bl, 1.0);
            (mono.peak_words, pipe.peak_words)
        });
        for (mono, pipe) in res {
            assert!(pipe < mono, "pipelined {pipe} should beat monolithic {mono}");
        }
    }

    #[test]
    fn more_ranks_than_columns() {
        let (nr, m, n, p) = (12, 3, 2, 5);
        let (a, b) = global_ab(nr, m, n);
        let expect = gemm_tn(&a, &b);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            gram_pipelined_reduce(c, &al, &bl, 1.0)
        });
        // ranks 2..5 own nothing; ranks 0,1 own one column each
        let mut recovered = Mat::zeros(m, n);
        for (rank, r) in res.iter().enumerate() {
            let cr = block_ranges(n, p)[rank].clone();
            for (jl, j) in cr.clone().enumerate() {
                for i in 0..m {
                    recovered[(i, j)] = r.local[(i, jl)];
                }
            }
        }
        assert!(recovered.max_abs_diff(&expect) < 1e-10);
    }
}
