//! The GEMM + reduction overlap optimization of paper Figs. 4–5.
//!
//! Baseline (Algorithm 1 lines 7–8): every rank GEMMs its full local
//! contribution to `V_Hxc`, then one big `MPI_Allreduce` hands every rank the
//! whole matrix — full memory on every rank, and the reduction cannot start
//! until the whole GEMM is done.
//!
//! Optimized (Fig. 4 partitioning + Fig. 5 pipelining): the output columns
//! are split into per-rank chunks; each chunk is GEMMed and its `ireduce` to
//! the owning rank is issued **nonblocking**, so the reduction of chunk `q`
//! streams on the progress engine while this rank GEMMs chunk `q+1`. The
//! in-flight window is bounded at one chunk, which preserves the `1/P`
//! peak-memory property, and the engine's per-segment timestamps yield a
//! measured compute/communication [`OverlapStats`] for the schedule.

use faultkit::CommError;
use mathkit::gemm::{gemm, syrk_tn_scaled, Transpose};
use mathkit::Mat;
use parcomm::layout::block_ranges;
use parcomm::{
    overlap_fraction, Comm, CommInterval, ComputeInterval, OverlapStats, Request, RetryPolicy,
};

/// Result of a distributed Gram-matrix build.
pub struct GramResult {
    /// This rank's piece: the full matrix (monolithic) or its column chunk
    /// (pipelined).
    pub local: Mat,
    /// Column range owned (pipelined) or `0..n` (monolithic).
    pub col_range: std::ops::Range<usize>,
    /// Peak output words held by this rank.
    pub peak_words: usize,
    /// Measured comm/compute overlap of the pipelined schedule (`None` on
    /// the monolithic path, where nothing can overlap by construction),
    /// against *this rank's own* compute intervals. On a host where rank
    /// threads share cores, a rank's own compute is bounded by `1/P` of
    /// wall-clock, so schedule-level overlap is better judged from the raw
    /// intervals below against the union of every rank's compute.
    pub overlap: Option<OverlapStats>,
    /// Request-outstanding windows of this schedule's `ireduce`s (pipelined
    /// path only).
    pub comm_intervals: Vec<CommInterval>,
    /// The chunk-GEMM intervals of this rank (pipelined path only).
    pub compute_intervals: Vec<ComputeInterval>,
}

/// Monolithic path: full local GEMM `Aᵀ_local·B_local`, then `Allreduce`.
/// Every rank returns the complete `m × n` matrix.
pub fn gram_allreduce(comm: &Comm, a_local: &Mat, b_local: &Mat, scale: f64) -> GramResult {
    let (m, n) = (a_local.ncols(), b_local.ncols());
    // A Gram of a block with itself is symmetric — the packed rank-k engine
    // computes only the lower triangle and mirrors it.
    let mut v = if std::ptr::eq(a_local, b_local) {
        syrk_tn_scaled(scale, a_local)
    } else {
        let mut v = Mat::zeros(m, n);
        gemm(scale, a_local, Transpose::Yes, b_local, Transpose::No, 0.0, &mut v);
        v
    };
    comm.allreduce_sum(v.as_mut_slice());
    GramResult {
        local: v,
        col_range: 0..n,
        peak_words: m * n,
        overlap: None,
        comm_intervals: Vec::new(),
        compute_intervals: Vec::new(),
    }
}

/// Pipelined path: per-destination column chunks, each GEMMed and then
/// `ireduce`d to its owner while the *next* chunk's GEMM runs (Fig. 5).
/// Rank `r` returns only columns `block_ranges(n, P)[r]`.
///
/// Each in-flight reduce is settled with a deadline/backoff wait; a request
/// dropped by fault injection is re-issued from the retained chunk (drop
/// decisions fire symmetrically across ranks, so the re-issue stays
/// collective). An exhausted retry budget surfaces [`CommError::Stalled`]
/// or [`CommError::Dropped`].
pub fn gram_pipelined_reduce(
    comm: &Comm,
    a_local: &Mat,
    b_local: &Mat,
    scale: f64,
) -> Result<GramResult, CommError> {
    let p = comm.size();
    let (m, n) = (a_local.ncols(), b_local.ncols());
    let ranges = block_ranges(n, p);
    let my_range = ranges[comm.rank()].clone();
    // Comm windows from earlier phases must not count toward this
    // schedule's overlap measurement.
    let _ = comm.drain_comm_intervals();
    let mut compute: Vec<ComputeInterval> = Vec::with_capacity(p);
    let mut mine = Mat::zeros(m, my_range.len());
    let mut peak_words = 0usize;
    let policy = RetryPolicy::default();
    // Window-2 pipeline: at most one chunk's reduce in flight while the
    // next chunk is GEMMed. Bounding the window keeps peak memory at
    // ~2 chunks + my piece, still `O(1/P)` of the full matrix. The tuple
    // retains the chunk data for drop re-issue — only while a fault plan is
    // armed (drops cannot occur otherwise), so the fault-free hot path pays
    // no copy.
    let mut in_flight: Option<(usize, usize, Vec<f64>, Request)> = None;
    let settle =
        |slot: Option<(usize, usize, Vec<f64>, Request)>, mine: &mut Mat| -> Result<(), CommError> {
            if let Some((owner, cols, chunk, rq)) = slot {
                let out = comm.settle(rq, &policy, |c| c.ireduce_sum(chunk.clone(), owner))?;
                if owner == comm.rank() {
                    *mine = Mat::from_vec(m, cols, out);
                }
            }
            Ok(())
        };
    for (owner, range) in ranges.iter().enumerate() {
        // GEMM only this chunk of output columns (overlaps the in-flight
        // reduce of the previous chunk on the progress engine).
        let t0 = comm.now_secs();
        let v_chunk = if range.is_empty() {
            // Zero-length ireduce keeps the op-id schedule aligned.
            Vec::new()
        } else {
            let b_chunk = b_local.col_block(range.start, range.end);
            let mut v = Mat::zeros(m, range.len());
            gemm(scale, a_local, Transpose::Yes, &b_chunk, Transpose::No, 0.0, &mut v);
            v.into_vec()
        };
        compute.push(ComputeInterval::new(t0, comm.now_secs()));
        let prev_words = in_flight.as_ref().map_or(0, |(_, len, _, _)| m * *len);
        peak_words = peak_words.max(v_chunk.len() + prev_words + mine.as_slice().len());
        settle(in_flight.take(), &mut mine)?;
        let retained = if faultkit::is_armed() { v_chunk.clone() } else { Vec::new() };
        in_flight = Some((owner, range.len(), retained, comm.ireduce_sum(v_chunk, owner)));
    }
    settle(in_flight.take(), &mut mine)?;
    let segs = comm.drain_comm_intervals();
    let overlap = Some(overlap_fraction(&segs, &compute));
    Ok(GramResult {
        local: mine,
        col_range: my_range,
        peak_words,
        overlap,
        comm_intervals: segs,
        compute_intervals: compute,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::gemm_tn;
    use parcomm::layout::block_ranges;
    use parcomm::spmd;

    fn global_ab(nr: usize, m: usize, n: usize) -> (Mat, Mat) {
        let a = Mat::from_fn(nr, m, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.1 - 0.5);
        let b = Mat::from_fn(nr, n, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.1 - 0.7);
        (a, b)
    }

    #[test]
    fn allreduce_path_matches_serial() {
        let (nr, m, n, p) = (24, 5, 7, 4);
        let (a, b) = global_ab(nr, m, n);
        let expect = {
            let mut e = gemm_tn(&a, &b);
            e.scale(2.0);
            e
        };
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            gram_allreduce(c, &al, &bl, 2.0).local
        });
        for r in res {
            assert!(r.max_abs_diff(&expect) < 1e-10);
        }
    }

    #[test]
    fn pipelined_path_matches_serial_chunks() {
        let (nr, m, n, p) = (30, 4, 9, 3);
        let (a, b) = global_ab(nr, m, n);
        let expect = gemm_tn(&a, &b);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            gram_pipelined_reduce(c, &al, &bl, 1.0).expect("pipelined reduce")
        });
        for (rank, r) in res.iter().enumerate() {
            let cr = block_ranges(n, p)[rank].clone();
            assert_eq!(r.col_range, cr);
            assert_eq!(r.local.shape(), (m, cr.len()));
            for (jl, j) in cr.clone().enumerate() {
                for i in 0..m {
                    assert!((r.local[(i, jl)] - expect[(i, j)]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn pipelined_matches_allreduce_bitwise() {
        // Same ring fold order per element on both paths ⇒ exact equality.
        let (nr, m, n, p) = (32, 6, 8, 4);
        let (a, b) = global_ab(nr, m, n);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            let mono = gram_allreduce(c, &al, &bl, 1.5);
            let pipe = gram_pipelined_reduce(c, &al, &bl, 1.5).expect("pipelined reduce");
            (mono, pipe)
        });
        for (rank, (mono, pipe)) in res.iter().enumerate() {
            let cr = block_ranges(n, p)[rank].clone();
            for (jl, j) in cr.clone().enumerate() {
                for i in 0..m {
                    let full = mono.local[(i, j)];
                    let chunk = pipe.local[(i, jl)];
                    assert!(
                        full.to_bits() == chunk.to_bits(),
                        "({i},{j}): {full:e} != {chunk:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn pipelined_uses_less_memory_per_rank() {
        let (nr, m, n, p) = (40, 16, 16, 4);
        let (a, b) = global_ab(nr, m, n);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            let mono = gram_allreduce(c, &al, &bl, 1.0);
            let pipe = gram_pipelined_reduce(c, &al, &bl, 1.0).expect("pipelined reduce");
            (mono.peak_words, pipe.peak_words)
        });
        for (mono, pipe) in res {
            assert!(pipe < mono, "pipelined {pipe} should beat monolithic {mono}");
        }
    }

    #[test]
    fn pipelined_reports_overlap_stats() {
        let (nr, m, n, p) = (64, 24, 24, 3);
        let (a, b) = global_ab(nr, m, n);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            gram_pipelined_reduce(c, &al, &bl, 1.0).expect("pipelined reduce").overlap
        });
        for ov in res {
            let ov = ov.expect("pipelined path must measure overlap");
            assert!(ov.comm_busy > 0.0, "engine must have run segment steps");
            assert!(ov.compute_busy > 0.0);
            assert!((0.0..=1.0).contains(&ov.fraction), "fraction {}", ov.fraction);
            assert!(ov.overlapped <= ov.comm_busy + 1e-12);
        }
    }

    #[test]
    fn more_ranks_than_columns() {
        let (nr, m, n, p) = (12, 3, 2, 5);
        let (a, b) = global_ab(nr, m, n);
        let expect = gemm_tn(&a, &b);
        let res = spmd(p, |c| {
            let rr = block_ranges(nr, p)[c.rank()].clone();
            let al = a.row_block(rr.start, rr.end);
            let bl = b.row_block(rr.start, rr.end);
            gram_pipelined_reduce(c, &al, &bl, 1.0).expect("pipelined reduce")
        });
        // ranks 2..5 own nothing; ranks 0,1 own one column each
        let mut recovered = Mat::zeros(m, n);
        for (rank, r) in res.iter().enumerate() {
            let cr = block_ranges(n, p)[rank].clone();
            for (jl, j) in cr.clone().enumerate() {
                for i in 0..m {
                    recovered[(i, j)] = r.local[(i, jl)];
                }
            }
        }
        assert!(recovered.max_abs_diff(&expect) < 1e-10);
    }

    #[test]
    fn dropped_reduce_heals_by_reissue_bitwise() {
        // Every rank arms the same plan, so the injected drop fires
        // symmetrically and the re-issue stays a collective. The healed run
        // must match the clean run bit-for-bit (same ring fold order).
        let (nr, m, n, p) = (24, 4, 6, 3);
        let (a, b) = global_ab(nr, m, n);
        let run = |with_fault: bool| {
            spmd(p, |c| {
                let campaign = with_fault.then(|| {
                    faultkit::arm(
                        faultkit::FaultPlan::new(17)
                            .with("comm.ireduce", 1, faultkit::FaultKind::CommDrop),
                    )
                });
                let rr = block_ranges(nr, p)[c.rank()].clone();
                let al = a.row_block(rr.start, rr.end);
                let bl = b.row_block(rr.start, rr.end);
                let r = gram_pipelined_reduce(c, &al, &bl, 1.0).expect("drop must heal");
                if let Some(campaign) = campaign {
                    assert_eq!(campaign.fired(), 1, "rank {} drop did not fire", c.rank());
                }
                r.local
            })
        };
        let clean = run(false);
        let healed = run(true);
        for (c, h) in clean.iter().zip(&healed) {
            for (x, y) in c.as_slice().iter().zip(h.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
