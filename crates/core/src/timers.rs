//! Per-stage wall-clock accounting, mirroring the breakdown of paper Fig. 8:
//! K-Means / FFT / MPI / GEMM(+Allreduce), plus point selection and
//! diagonalization stages.

/// Stage timings in seconds. Fields are cumulative; a solver adds into them.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimings {
    /// Weighted K-Means clustering (interpolation point selection).
    pub kmeans: f64,
    /// QRCP interpolation point selection (when that selector is used).
    pub qrcp: f64,
    /// Face-splitting product construction.
    pub face_split: f64,
    /// ISDF interpolation-vector (Θ) solve.
    pub theta: f64,
    /// FFT work: f_Hxc kernel applications.
    pub fft: f64,
    /// Dense contractions (GEMM) building V_Hxc / Ṽ_Hxc / H.
    pub gemm: f64,
    /// Communication (collectives) — measured inside the simulated MPI.
    pub mpi: f64,
    /// Diagonalization (SYEV or LOBPCG).
    pub diag: f64,
}

impl StageTimings {
    /// Total across all stages.
    pub fn total(&self) -> f64 {
        self.kmeans
            + self.qrcp
            + self.face_split
            + self.theta
            + self.fft
            + self.gemm
            + self.mpi
            + self.diag
    }

    /// Hamiltonian-construction subtotal (everything but diagonalization) —
    /// the scope of paper Fig. 8.
    pub fn construction(&self) -> f64 {
        self.total() - self.diag
    }

    /// Elementwise sum.
    pub fn merge(&mut self, other: &StageTimings) {
        self.kmeans += other.kmeans;
        self.qrcp += other.qrcp;
        self.face_split += other.face_split;
        self.theta += other.theta;
        self.fft += other.fft;
        self.gemm += other.gemm;
        self.mpi += other.mpi;
        self.diag += other.diag;
    }

    /// `(label, seconds)` pairs for reports, in pipeline order.
    pub fn stages(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("kmeans", self.kmeans),
            ("qrcp", self.qrcp),
            ("face_split", self.face_split),
            ("theta", self.theta),
            ("fft", self.fft),
            ("gemm", self.gemm),
            ("mpi", self.mpi),
            ("diag", self.diag),
        ]
    }

    /// Compatibility view over the span subsystem: derive the same
    /// per-stage breakdown from one rank's recorded trace. Spans roll up by
    /// *exclusive* time (a `gemm` span's nested `mpi:*` children are charged
    /// to `mpi`, not `gemm`), which is exactly what the legacy section
    /// timers measure — the two views agree to within timer noise.
    pub fn from_trace(trace: &obskit::Trace, rank: usize) -> StageTimings {
        let s = trace.stage_seconds_for_rank(rank);
        StageTimings {
            kmeans: s[obskit::Stage::Kmeans.index()],
            qrcp: s[obskit::Stage::Qrcp.index()],
            face_split: s[obskit::Stage::FaceSplit.index()],
            theta: s[obskit::Stage::Theta.index()],
            fft: s[obskit::Stage::Fft.index()],
            gemm: s[obskit::Stage::Gemm.index()],
            mpi: s[obskit::Stage::Mpi.index()],
            diag: s[obskit::Stage::Diag.index()],
        }
    }

    /// [`StageTimings::from_trace`] summed over every rank in the trace.
    pub fn from_trace_all_ranks(trace: &obskit::Trace) -> StageTimings {
        let mut out = StageTimings::default();
        for r in &trace.ranks {
            out.merge(&StageTimings::from_trace(trace, r.rank));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_construction() {
        let t = StageTimings {
            kmeans: 1.0,
            qrcp: 0.0,
            face_split: 2.0,
            theta: 0.5,
            fft: 3.0,
            gemm: 4.0,
            mpi: 0.25,
            diag: 10.0,
        };
        assert!((t.total() - 20.75).abs() < 1e-12);
        assert!((t.construction() - 10.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageTimings { fft: 1.0, ..Default::default() };
        let b = StageTimings { fft: 2.0, gemm: 3.0, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.fft, 3.0);
        assert_eq!(a.gemm, 3.0);
    }

    #[test]
    fn stage_labels_cover_every_field() {
        let t = StageTimings {
            kmeans: 1.0,
            qrcp: 2.0,
            face_split: 3.0,
            theta: 4.0,
            fft: 5.0,
            gemm: 6.0,
            mpi: 7.0,
            diag: 8.0,
        };
        let sum: f64 = t.stages().iter().map(|(_, s)| s).sum();
        assert!((sum - t.total()).abs() < 1e-12);
    }
}
