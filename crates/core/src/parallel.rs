//! Distributed LR-TDDFT pipeline (paper §5, Algorithm 1) on the simulated
//! MPI runtime.
//!
//! Data distributions follow paper Fig. 3: wavefunctions and orbital-pair
//! products live in **row-block** layout for the face-splitting product and
//! GEMM stages, are re-shuffled to **column-block** layout via `Alltoallv`
//! for the FFT stage (each rank then owns whole grids of a column subset),
//! and shuffled back. The `V_Hxc` contraction uses either the monolithic
//! GEMM+`Allreduce` or the pipelined GEMM+`Reduce` of [`crate::pipeline`].
//!
//! Every function here is SPMD-collective: all ranks call it with the same
//! global problem; each rank works on its slab and the returned data is
//! replicated (suitable for the replicated diagonalization step).

use crate::kernel::HxcKernel;
use crate::options::{Eig, SolveOptions};
use crate::parallel_eig::DistributedEigResult;
use crate::problem::CasidaProblem;
use crate::timers::StageTimings;
use crate::versions::IsdfHamiltonian;
use faultkit::NumericalError;
use isdf::face_splitting_product;
use mathkit::chol::solve_spd;
use mathkit::gemm::{gemm, Transpose};
use mathkit::{syev, Mat};
use parcomm::layout::block_ranges;
use parcomm::redist::{col_to_row_blocks, row_to_col_blocks};
use parcomm::{Comm, ReduceBatch, ReducePlan};
use std::time::Instant;

/// Charge the communication time accrued since `mark` to `timings.mpi`.
fn charge_mpi(comm: &Comm, mark: &mut f64, timings: &mut StageTimings) {
    let now = comm.stats().measured_seconds;
    timings.mpi += now - *mark;
    *mark = now;
}

/// Apply `f_Hxc` to a row-block-distributed field batch: redistribute to
/// column blocks, FFT-apply locally, redistribute back. Returns the local
/// row-block piece of the transformed batch.
pub fn distributed_kernel_apply(
    comm: &Comm,
    problem: &CasidaProblem,
    local_rows: &Mat,
    n_cols_global: usize,
    timings: &mut StageTimings,
) -> Mat {
    let nr = problem.n_r();
    let mut mark = comm.stats().measured_seconds;

    // Row-block → column-block (Algorithm 1 line 3).
    let col_piece = row_to_col_blocks(comm, local_rows.as_slice(), nr, n_cols_global);
    charge_mpi(comm, &mut mark, timings);

    // FFT + f_xc on my full-grid columns (lines 4–5).
    let sp = obskit::span(obskit::Stage::Fft, "kernel.apply");
    let t0 = Instant::now();
    let my_cols = block_ranges(n_cols_global, comm.size())[comm.rank()].len();
    let cols_mat = Mat::from_vec(nr, my_cols, col_piece);
    let kernel = HxcKernel::for_problem(problem);
    let mut transformed = Mat::zeros(nr, my_cols);
    kernel.apply_into(&cols_mat, &mut transformed);
    timings.fft += t0.elapsed().as_secs_f64();
    drop(sp);

    // Column-block → row-block (line 6).
    let back = col_to_row_blocks(comm, transformed.as_slice(), nr, n_cols_global);
    charge_mpi(comm, &mut mark, timings);
    Mat::from_vec(local_rows.nrows(), n_cols_global, back)
}

/// Distributed naive Hamiltonian construction (Algorithm 1). Returns the
/// replicated dense `H` plus this rank's stage timings. `opts.pipelined`
/// selects the GEMM+`Reduce` overlap schedule for the `V_Hxc` contraction.
pub fn distributed_dense_hamiltonian_with(
    comm: &Comm,
    problem: &CasidaProblem,
    opts: &SolveOptions,
) -> (Mat, StageTimings) {
    let pipelined = opts.pipelined;
    let mut timings = StageTimings::default();
    let nr = problem.n_r();
    let ncv = problem.n_cv();
    let dv = problem.grid.dv();
    let my_rows = block_ranges(nr, comm.size())[comm.rank()].clone();

    // Local face-splitting product on my grid slab (line 2).
    let sp = obskit::span(obskit::Stage::FaceSplit, "face_split");
    let t0 = Instant::now();
    let psi_v_loc = problem.psi_v.row_block(my_rows.start, my_rows.end);
    let psi_c_loc = problem.psi_c.row_block(my_rows.start, my_rows.end);
    let z_loc = face_splitting_product(&psi_v_loc, &psi_c_loc);
    timings.face_split += t0.elapsed().as_secs_f64();
    drop(sp);

    // f_Hxc through the FFT layout dance (lines 3–6).
    let fz_loc = distributed_kernel_apply(comm, problem, &z_loc, ncv, &mut timings);

    // V_Hxc: local GEMM + reduction (lines 7–8 / Figs. 4–5).
    let mut mark = comm.stats().measured_seconds;
    let mut h = if pipelined {
        // NOTE: legacy accounting double-charges the comm hidden inside the
        // pipelined reduce (elapsed → gemm AND stats delta → mpi). The span
        // rollup charges it exclusively (nested mpi:* children subtract from
        // gemm), so the two views diverge on this branch by design.
        let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.pipelined_reduce");
        let t0 = Instant::now();
        let res = crate::pipeline::gram_pipelined_reduce(comm, &z_loc, &fz_loc, 2.0 * dv)
            .unwrap_or_else(|e| panic!("v_hxc pipelined reduce: {e}"));
        timings.gemm += t0.elapsed().as_secs_f64();
        drop(sp);
        // Re-assemble the replicated matrix for the (replicated) eigensolve.
        let gathered = comm.allgatherv(res.local.as_slice());
        charge_mpi(comm, &mut mark, &mut timings);
        Mat::from_vec(ncv, ncv, gathered)
    } else {
        let sp = obskit::span(obskit::Stage::Gemm, "v_hxc.contract");
        let t0 = Instant::now();
        let mut v = Mat::zeros(ncv, ncv);
        gemm(2.0 * dv, &z_loc, Transpose::Yes, &fz_loc, Transpose::No, 0.0, &mut v);
        timings.gemm += t0.elapsed().as_secs_f64();
        drop(sp);
        comm.allreduce_sum(v.as_mut_slice());
        charge_mpi(comm, &mut mark, &mut timings);
        v
    };
    charge_mpi(comm, &mut mark, &mut timings);

    // H = D + 2 V_Hxc (line 10).
    for (i, d) in problem.diag_d().iter().enumerate() {
        h[(i, i)] += d;
    }
    h.symmetrize();
    (h, timings)
}

/// Distributed weighted K-Means (paper §4.2 parallel design): every rank
/// classifies its own grid slab; cluster sums are `Allreduce`d each Lloyd
/// step. Returns the replicated interpolation-point list.
pub fn distributed_kmeans(
    comm: &Comm,
    problem: &CasidaProblem,
    n_mu: usize,
    max_iter: usize,
    timings: &mut StageTimings,
) -> Vec<usize> {
    let nr = problem.n_r();
    let my_rows = block_ranges(nr, comm.size())[comm.rank()].clone();
    let mut mark = comm.stats().measured_seconds;

    // Local weights, gathered so every rank can run the identical
    // deterministic initialization.
    let sp = obskit::span(obskit::Stage::Kmeans, "kmeans.weights");
    let t0 = Instant::now();
    let psi_v_loc = problem.psi_v.row_block(my_rows.start, my_rows.end);
    let psi_c_loc = problem.psi_c.row_block(my_rows.start, my_rows.end);
    let w_loc = isdf::pair_weights(&psi_v_loc, &psi_c_loc);
    timings.kmeans += t0.elapsed().as_secs_f64();
    drop(sp);
    let w_all = comm.allgatherv(&w_loc);
    charge_mpi(comm, &mut mark, timings);

    let sp = obskit::span(obskit::Stage::Kmeans, "kmeans.init");
    let t0 = Instant::now();
    let wmax = w_all.iter().cloned().fold(0.0f64, f64::max);
    let cutoff = 1e-6 * wmax;
    // Deterministic weight-guided init (identical on every rank).
    let mut order: Vec<usize> = (0..nr).filter(|&i| w_all[i] > cutoff).collect();
    order.sort_by(|&a, &b| w_all[b].partial_cmp(&w_all[a]).unwrap());
    if order.is_empty() {
        panic!("{}", NumericalError::AllZeroWeights);
    }
    // Degrade rather than die: if pruning leaves fewer candidates than N_μ,
    // proceed at the reduced rank. The weights are replicated, so every rank
    // clamps identically and the collective schedule stays aligned;
    // downstream consumes `points.len()` as the effective rank.
    let n_mu = n_mu.min(order.len());
    let vol: f64 = problem.grid.cell.volume();
    let mut dmin = 0.5 * (vol / n_mu as f64).powf(1.0 / 3.0);
    let mut centroids: Vec<[f64; 3]> = Vec::new();
    loop {
        centroids.clear();
        for &gi in &order {
            let c = problem.grid.coords(gi);
            if centroids.iter().all(|&cc| dist2(cc, c) >= dmin * dmin) {
                centroids.push(c);
                if centroids.len() == n_mu {
                    break;
                }
            }
        }
        if centroids.len() == n_mu || dmin < 1e-12 {
            while centroids.len() < n_mu {
                centroids.push(problem.grid.coords(order[centroids.len() % order.len()]));
            }
            break;
        }
        dmin *= 0.5;
    }
    // Local active points.
    let active: Vec<usize> = my_rows.clone().filter(|&gi| w_all[gi] > cutoff).collect();
    timings.kmeans += t0.elapsed().as_secs_f64();
    drop(sp);

    // Lloyd iterations: local classification + ONE fused reduction per sweep.
    // The persistent plan carries three fields — per-cluster weighted
    // coordinate sums, per-cluster weight counts, and the scalar Lloyd
    // objective Σ w·d² — that the unfused schedule pays three collective
    // latencies for.
    let mut assign = vec![0usize; active.len()];
    let mut plan = ReducePlan::new(&[3 * n_mu, n_mu, 1]);
    for sweep in 0..max_iter {
        let sp = obskit::span(obskit::Stage::Kmeans, "kmeans.classify");
        let t0 = Instant::now();
        plan.clear();
        for (a, &gi) in assign.iter_mut().zip(active.iter()) {
            let w = w_all[gi];
            let c = problem.grid.coords(gi);
            let (cluster, d2) = nearest(&centroids, c);
            *a = cluster;
            let sums = plan.field_mut(0);
            sums[3 * cluster] += w * c[0];
            sums[3 * cluster + 1] += w * c[1];
            sums[3 * cluster + 2] += w * c[2];
            plan.field_mut(1)[cluster] += w;
            plan.field_mut(2)[0] += w * d2;
        }
        timings.kmeans += t0.elapsed().as_secs_f64();
        drop(sp);
        plan.execute(comm).unwrap_or_else(|e| panic!("kmeans cluster reduction: {e}"));
        charge_mpi(comm, &mut mark, timings);

        let sp = obskit::span(obskit::Stage::Kmeans, "kmeans.update");
        let t0 = Instant::now();
        obskit::instant(
            obskit::Stage::Kmeans,
            "kmeans.sweep",
            &[("sweep", sweep as f64), ("objective", plan.field(2)[0])],
        );
        let mut movement = 0.0;
        for k in 0..n_mu {
            let wsum = plan.field(1)[k];
            if wsum > 0.0 {
                let sums = plan.field(0);
                let new =
                    [sums[3 * k] / wsum, sums[3 * k + 1] / wsum, sums[3 * k + 2] / wsum];
                movement += dist2(centroids[k], new);
                centroids[k] = new;
            }
        }
        timings.kmeans += t0.elapsed().as_secs_f64();
        drop(sp);
        if movement < 1e-12 {
            break;
        }
    }

    // Snap to grid points: global argmin per cluster via allreduce on
    // (negated distance, encoded index) — implemented as min over gathered
    // per-rank candidates.
    let sp = obskit::span(obskit::Stage::Kmeans, "kmeans.snap");
    let t0 = Instant::now();
    let mut local_best = vec![f64::INFINITY; n_mu];
    let mut local_idx = vec![-1.0; n_mu];
    for (a, &gi) in assign.iter().zip(active.iter()) {
        let d = dist2(centroids[*a], problem.grid.coords(gi));
        if d < local_best[*a] {
            local_best[*a] = d;
            local_idx[*a] = gi as f64;
        }
    }
    let mut cand = Vec::with_capacity(2 * n_mu);
    cand.extend_from_slice(&local_best);
    cand.extend_from_slice(&local_idx);
    timings.kmeans += t0.elapsed().as_secs_f64();
    drop(sp);
    let all_cand = comm.allgatherv(&cand);
    charge_mpi(comm, &mut mark, timings);

    let sp = obskit::span(obskit::Stage::Kmeans, "kmeans.select");
    let t0 = Instant::now();
    let p = comm.size();
    let mut points = Vec::with_capacity(n_mu);
    for k in 0..n_mu {
        let mut best = f64::INFINITY;
        let mut idx: i64 = -1;
        for r in 0..p {
            let base = r * 2 * n_mu;
            let d = all_cand[base + k];
            let gi = all_cand[base + n_mu + k];
            if gi >= 0.0 && d < best {
                best = d;
                idx = gi as i64;
            }
        }
        if idx >= 0 {
            points.push(idx as usize);
        }
    }
    points.sort_unstable();
    points.dedup();
    timings.kmeans += t0.elapsed().as_secs_f64();
    drop(sp);
    points
}

/// Distributed ISDF Hamiltonian construction: K-Means points, row-block Θ
/// solve, FFT layout dance, monolithic or pipelined Ṽ reduction
/// (`opts.pipelined`). Returns the replicated factored Hamiltonian plus this
/// rank's timings.
pub fn distributed_isdf_hamiltonian_with(
    comm: &Comm,
    problem: &CasidaProblem,
    opts: &SolveOptions,
) -> (IsdfHamiltonian, StageTimings) {
    let mut timings = StageTimings::default();
    let nr = problem.n_r();
    let dv = problem.grid.dv();
    let n_mu = opts.rank.resolve(nr, problem.n_v(), problem.n_c());
    let my_rows = block_ranges(nr, comm.size())[comm.rank()].clone();

    // 1. Interpolation points (distributed K-Means).
    let points = distributed_kmeans(comm, problem, n_mu, 100, &mut timings);
    let n_mu_eff = points.len();
    let mut mark = comm.stats().measured_seconds;

    // 2. Sampled orbital rows, assembled by summation (each point's row
    // lives on exactly one rank).
    let sp = obskit::span(obskit::Stage::Theta, "theta.sample_rows");
    let t0 = Instant::now();
    let (n_v, n_c) = (problem.n_v(), problem.n_c());
    let mut psi_hat = Mat::zeros(n_mu_eff, n_v);
    let mut phi_hat = Mat::zeros(n_mu_eff, n_c);
    for (mu, &gi) in points.iter().enumerate() {
        if my_rows.contains(&gi) {
            for j in 0..n_v {
                psi_hat[(mu, j)] = problem.psi_v[(gi, j)];
            }
            for j in 0..n_c {
                phi_hat[(mu, j)] = problem.psi_c[(gi, j)];
            }
        }
    }
    timings.theta += t0.elapsed().as_secs_f64();
    drop(sp);
    // Both sampled-row reductions ride ONE fused collective (each point's
    // row lives on exactly one rank, so summation assembles them); the
    // unfused fallback issues them per field with the same fold order.
    let mut batch = ReduceBatch::new(comm);
    let f_psi = batch.push(psi_hat.as_slice());
    let f_phi = batch.push(phi_hat.as_slice());
    let fused = batch.flush().unwrap_or_else(|e| panic!("sampled-row reduction: {e}"));
    let psi_hat = Mat::from_vec(n_mu_eff, n_v, fused.field(f_psi).to_vec());
    let phi_hat = Mat::from_vec(n_mu_eff, n_c, fused.field(f_phi).to_vec());
    charge_mpi(comm, &mut mark, &mut timings);

    // 3. Θ rows on my slab: (ZCᵀ)_loc ∘-factored, solved against CCᵀ.
    let sp = obskit::span(obskit::Stage::Theta, "theta.solve");
    let t0 = Instant::now();
    let psi_v_loc = problem.psi_v.row_block(my_rows.start, my_rows.end);
    let psi_c_loc = problem.psi_c.row_block(my_rows.start, my_rows.end);
    let pair = isdf::interp::gram_pair(&psi_v_loc, &psi_c_loc, &psi_hat, &phi_hat);
    // CCᵀ is built from replicated sampled rows — identical on every rank.
    let mut cc_t = pair.cc_t;
    let trace: f64 = (0..n_mu_eff).map(|i| cc_t[(i, i)]).sum();
    for i in 0..n_mu_eff {
        cc_t[(i, i)] += 1e-12 * (trace / n_mu_eff.max(1) as f64).max(1e-300);
    }
    // CCᵀ can lose positive definiteness to roundoff (or injected faults);
    // escalate the Tikhonov floor a few times before giving up. The matrix is
    // replicated, so every rank escalates through the identical ladder.
    let mut floor = 1e-12 * (trace / n_mu_eff.max(1) as f64).max(1e-300);
    let mut theta_loc_t = None;
    let mut last_pivot = 0;
    for _ in 0..3 {
        match solve_spd(&cc_t, &pair.zc_t.transpose()) {
            Ok(t) => {
                theta_loc_t = Some(t);
                break;
            }
            Err(pivot) => {
                last_pivot = pivot;
                let bump = floor * 1e3 - floor;
                for i in 0..n_mu_eff {
                    cc_t[(i, i)] += bump;
                }
                floor *= 1e3;
            }
        }
    }
    let theta_loc_t = theta_loc_t.unwrap_or_else(|| {
        panic!(
            "{}",
            NumericalError::GramNotSpd { stage: "theta.cc_t", pivot: last_pivot, floor }
        )
    });
    let theta_loc = theta_loc_t.transpose();
    timings.theta += t0.elapsed().as_secs_f64();
    drop(sp);

    // 4. f_Hxc Θ through the FFT layout dance.
    let f_theta_loc = distributed_kernel_apply(comm, problem, &theta_loc, n_mu_eff, &mut timings);

    // 5. Ṽ = ΔV Θᵀ(fΘ): monolithic GEMM+Allreduce, or the chunked
    // GEMM+Reduce overlap schedule (bitwise-identical) followed by a tiny
    // allgather to re-replicate.
    let mut mark = comm.stats().measured_seconds;
    let mut v_tilde = if opts.pipelined {
        let sp = obskit::span(obskit::Stage::Gemm, "v_tilde.pipelined_reduce");
        let t0 = Instant::now();
        let res = crate::pipeline::gram_pipelined_reduce(comm, &theta_loc, &f_theta_loc, dv)
            .unwrap_or_else(|e| panic!("v_tilde pipelined reduce: {e}"));
        timings.gemm += t0.elapsed().as_secs_f64();
        drop(sp);
        let gathered = comm.allgatherv(res.local.as_slice());
        charge_mpi(comm, &mut mark, &mut timings);
        Mat::from_vec(n_mu_eff, n_mu_eff, gathered)
    } else {
        let sp = obskit::span(obskit::Stage::Gemm, "v_tilde.contract");
        let t0 = Instant::now();
        let mut v = Mat::zeros(n_mu_eff, n_mu_eff);
        gemm(dv, &theta_loc, Transpose::Yes, &f_theta_loc, Transpose::No, 0.0, &mut v);
        timings.gemm += t0.elapsed().as_secs_f64();
        drop(sp);
        comm.allreduce_sum(v.as_mut_slice());
        charge_mpi(comm, &mut mark, &mut timings);
        v
    };
    v_tilde.symmetrize();
    // Fault-injection point for the distributed build (mirrors the serial
    // "ham.v_tilde" site): the poison lands on the same element of every
    // rank's replicated copy, so the matrix stays replicated.
    faultkit::inject_slice("par.v_tilde", v_tilde.as_mut_slice());

    // 6. Coefficients (replicated, from the replicated sampled rows).
    let sp = obskit::span(obskit::Stage::Gemm, "coefficients");
    let t0 = Instant::now();
    let c = face_splitting_product(&psi_hat, &phi_hat);
    timings.gemm += t0.elapsed().as_secs_f64();
    drop(sp);

    (IsdfHamiltonian { diag_d: problem.diag_d(), c, v_tilde }, timings)
}

/// Full distributed solve: ISDF construction (Algorithm 1 + §4) followed by
/// the eigensolver `opts.eigensolver` picks — distributed matrix-free
/// LOBPCG ([`Eig::Lobpcg`], paper Table 4 row 5) or a replicated dense SYEV
/// on the factored Hamiltonian ([`Eig::Syev`]). Returns replicated
/// eigenvalues plus this rank's timings. External callers go through
/// [`crate::Solver::solve_distributed`], which fronts this.
pub(crate) fn distributed_solve_with(
    comm: &Comm,
    problem: &CasidaProblem,
    opts: &SolveOptions,
) -> (Vec<f64>, StageTimings) {
    let (ham, mut timings) = distributed_isdf_hamiltonian_with(comm, problem, opts);
    let k = opts.n_states.min(problem.n_cv());
    let values = distributed_eigensolve(comm, &ham, k, opts, &mut timings);
    (values, timings)
}

/// The eigensolver half of [`distributed_solve_with`], split out so the
/// serving scheduler can amortize one Hamiltonian build across a batch of
/// same-structure jobs while keeping each job's eigensolve — and therefore
/// its results — bitwise identical to a solo [`distributed_solve_with`]
/// run with the same options.
pub fn distributed_eigensolve(
    comm: &Comm,
    ham: &IsdfHamiltonian,
    k: usize,
    opts: &SolveOptions,
    timings: &mut StageTimings,
) -> Vec<f64> {
    match opts.eigensolver {
        Eig::Lobpcg => {
            let res = crate::parallel_eig::distributed_casida_lobpcg(
                comm,
                ham,
                k,
                opts.lobpcg,
                opts.seed,
                timings,
            )
            .and_then(DistributedEigResult::into_converged);
            match res {
                Ok(r) => r.values,
                Err(_) => {
                    // Every breakdown/convergence guard in the distributed
                    // solver tests replicated quantities, so all ranks land
                    // here together — fall back to the replicated dense
                    // solve rather than abort the whole calculation.
                    let sp = obskit::span(obskit::Stage::Diag, "diag.syev.fallback");
                    let t0 = Instant::now();
                    let eig = syev(&ham.to_dense());
                    timings.diag += t0.elapsed().as_secs_f64();
                    drop(sp);
                    eig.values[..k].to_vec()
                }
            }
        }
        Eig::Syev => {
            // The factored H is replicated, so every rank runs the same
            // dense solve — exact while N_cv stays small.
            let sp = obskit::span(obskit::Stage::Diag, "diag.syev.replicated");
            let t0 = Instant::now();
            let eig = syev(&ham.to_dense());
            timings.diag += t0.elapsed().as_secs_f64();
            drop(sp);
            eig.values[..k].to_vec()
        }
    }
}

#[inline]
fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

#[inline]
fn nearest(centroids: &[[f64; 3]], p: [f64; 3]) -> (usize, f64) {
    let mut bi = 0;
    let mut bd = f64::INFINITY;
    for (k, &c) in centroids.iter().enumerate() {
        let d = dist2(c, p);
        if d < bd {
            bd = d;
            bi = k;
        }
    }
    (bi, bd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::IsdfRank;
    use crate::naive::build_dense_hamiltonian;
    use crate::problem::synthetic_problem;
    use mathkit::syev;
    use parcomm::spmd;

    #[test]
    fn distributed_dense_matches_serial() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let mut t = StageTimings::default();
        let serial = build_dense_hamiltonian(&p, &mut t);
        for ranks in [1usize, 2, 4] {
            for pipelined in [false, true] {
                let opts = SolveOptions::new().pipelined(pipelined);
                let res =
                    spmd(ranks, |c| distributed_dense_hamiltonian_with(c, &p, &opts).0);
                for h in res {
                    assert!(
                        h.max_abs_diff(&serial) < 1e-9,
                        "ranks={ranks} pipelined={pipelined}"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_kernel_apply_matches_serial() {
        let p = synthetic_problem([8, 8, 8], 5.0, 2, 1);
        let kernel = HxcKernel::new(&p.grid, p.fxc.clone());
        let fields = Mat::from_fn(p.n_r(), 3, |r, j| ((r * (j + 1)) % 9) as f64 * 0.1);
        let serial = kernel.apply(&fields);
        let ranks = 3;
        let res = spmd(ranks, |c| {
            let rr = block_ranges(p.n_r(), ranks)[c.rank()].clone();
            let loc = fields.row_block(rr.start, rr.end);
            let mut t = StageTimings::default();
            let out = distributed_kernel_apply(c, &p, &loc, 3, &mut t);
            assert!(t.fft > 0.0);
            (rr, out)
        });
        for (rr, out) in res {
            let expect = serial.row_block(rr.start, rr.end);
            assert!(out.max_abs_diff(&expect) < 1e-10);
        }
    }

    #[test]
    fn distributed_kmeans_replicated_and_plausible() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let n_mu = 6;
        let res = spmd(3, |c| {
            let mut t = StageTimings::default();
            let pts = distributed_kmeans(c, &p, n_mu, 50, &mut t);
            assert!(t.kmeans > 0.0);
            pts
        });
        // identical on every rank
        assert_eq!(res[0], res[1]);
        assert_eq!(res[1], res[2]);
        assert!(!res[0].is_empty() && res[0].len() <= n_mu);
        assert!(res[0].iter().all(|&gi| gi < p.n_r()));
    }

    #[test]
    fn distributed_isdf_spectrum_matches_serial() {
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 2);
        let n_mu = p.n_cv(); // full rank → exact
        // Serial reference spectrum via the naive dense Hamiltonian.
        let mut t = StageTimings::default();
        let serial_h = build_dense_hamiltonian(&p, &mut t);
        let serial_eig = syev(&serial_h);
        let opts = SolveOptions::new().rank(IsdfRank::Fixed(n_mu));
        for ranks in [1usize, 2, 4] {
            let res =
                spmd(ranks, |c| distributed_isdf_hamiltonian_with(c, &p, &opts).0.to_dense());
            for h in res {
                let eig = syev(&h);
                for i in 0..3 {
                    let rel = (eig.values[i] - serial_eig.values[i]).abs()
                        / serial_eig.values[i].abs().max(1e-12);
                    assert!(rel < 1e-4, "ranks={ranks} λ_{i} rel {rel}");
                }
            }
        }
    }

    #[test]
    fn full_distributed_solve_matches_serial_implicit() {
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 2);
        let n_mu = p.n_cv();
        let k = 3;
        let serial = crate::Solver::builder()
            .version(crate::Version::ImplicitKmeansIsdfLobpcg)
            .n_states(k)
            .rank(IsdfRank::Fixed(n_mu))
            .build()
            .solve(&p)
            .unwrap();
        let opts = SolveOptions::new().n_states(k).rank(IsdfRank::Fixed(n_mu)).seed(9);
        for ranks in [1usize, 3] {
            let res = spmd(ranks, |c| distributed_solve_with(c, &p, &opts).0);
            for vals in &res {
                for (i, v) in vals.iter().enumerate().take(k) {
                    let rel =
                        (v - serial.energies[i]).abs() / serial.energies[i].abs().max(1e-12);
                    assert!(
                        rel < 1e-5,
                        "ranks={ranks} state {i}: {} vs {}",
                        v,
                        serial.energies[i]
                    );
                }
            }
        }
    }

    #[test]
    fn timings_accumulate_mpi_for_multirank() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let res = spmd(4, |c| distributed_dense_hamiltonian_with(c, &p, &SolveOptions::new()).1);
        for t in res {
            assert!(t.mpi > 0.0, "collectives must register comm time");
            assert!(t.fft > 0.0 && t.gemm > 0.0 && t.face_split > 0.0);
        }
    }

    #[test]
    fn pipelined_solve_bitwise_matches_blocking() {
        // The overlap schedule reorders nothing: every distributed solve must
        // produce bitwise-identical eigenvalues either way.
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let base = SolveOptions::new().n_states(2).rank(IsdfRank::Fixed(p.n_cv())).seed(7);
        for ranks in [2usize, 4] {
            let blocking = spmd(ranks, |c| distributed_solve_with(c, &p, &base).0);
            let pipelined =
                spmd(ranks, |c| distributed_solve_with(c, &p, &base.pipelined(true)).0);
            for (b, q) in blocking.iter().zip(&pipelined) {
                assert_eq!(b.len(), q.len());
                for (x, y) in b.iter().zip(q) {
                    assert_eq!(x.to_bits(), y.to_bits(), "ranks={ranks}: {x:e} vs {y:e}");
                }
            }
        }
    }

    #[test]
    fn distributed_syev_matches_lobpcg_spectrum() {
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 2);
        let base = SolveOptions::new().n_states(3).rank(IsdfRank::Fixed(p.n_cv()));
        let dense = spmd(2, |c| distributed_solve_with(c, &p, &base.eigensolver(Eig::Syev)).0);
        let iter = spmd(2, |c| distributed_solve_with(c, &p, &base).0);
        for (d, l) in dense.iter().zip(&iter) {
            for (x, y) in d.iter().zip(l) {
                let rel = (x - y).abs() / x.abs().max(1e-12);
                assert!(rel < 1e-6, "syev {x} vs lobpcg {y}");
            }
        }
    }

    #[test]
    fn lobpcg_fallback_to_dense_on_nonconvergence() {
        // One iteration at an impossible tolerance cannot converge, so the
        // Lobpcg arm must fall back to the replicated dense solve — which is
        // exactly what the Syev arm runs, hence bitwise equality.
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 2);
        let base = SolveOptions::new().n_states(3).rank(IsdfRank::Fixed(p.n_cv()));
        let starved = base.lobpcg(mathkit::LobpcgOptions { max_iter: 1, tol: 1e-14 });
        let fell_back = spmd(2, |c| distributed_solve_with(c, &p, &starved).0);
        let dense = spmd(2, |c| distributed_solve_with(c, &p, &base.eigensolver(Eig::Syev)).0);
        for (f, d) in fell_back.iter().zip(&dense) {
            for (x, y) in f.iter().zip(d) {
                assert_eq!(x.to_bits(), y.to_bits(), "fallback {x:e} vs syev {y:e}");
            }
        }
    }

    #[test]
    fn shared_build_eigensolve_bitwise_matches_solo_solve() {
        // The serving scheduler's batching contract: one Hamiltonian build
        // shared by several jobs, each finishing with its own
        // `distributed_eigensolve`, must be bitwise identical to each job
        // running the whole `distributed_solve_with` alone.
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let opts_a = SolveOptions::new().rank(IsdfRank::Fixed(p.n_cv())).n_states(2).seed(9);
        let opts_b = opts_a.n_states(3).eigensolver(Eig::Syev);
        let solo_a = spmd(2, |c| distributed_solve_with(c, &p, &opts_a).0);
        let solo_b = spmd(2, |c| distributed_solve_with(c, &p, &opts_b).0);
        let batched = spmd(2, |c| {
            // Build once with the batch-key options (rank/seed/pipelined
            // agree between the two jobs), then eigensolve per job.
            let (ham, mut t) = distributed_isdf_hamiltonian_with(c, &p, &opts_a);
            let a = distributed_eigensolve(c, &ham, 2, &opts_a, &mut t);
            let b = distributed_eigensolve(c, &ham, 3, &opts_b, &mut t);
            (a, b)
        });
        for (rank, (a, b)) in batched.iter().enumerate() {
            for (x, y) in a.iter().zip(&solo_a[rank]) {
                assert_eq!(x.to_bits(), y.to_bits(), "job A diverged under batching");
            }
            for (x, y) in b.iter().zip(&solo_b[rank]) {
                assert_eq!(x.to_bits(), y.to_bits(), "job B diverged under batching");
            }
        }
    }
}
