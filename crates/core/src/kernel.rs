//! The Hartree-exchange-correlation kernel `f_Hxc = f_H + f_xc` (paper Eq. 4)
//! applied to batches of real-space fields.
//!
//! `f_H = 1/|r−r'|` is diagonal in reciprocal space (`4π/|G|²`, applied via
//! FFT), `f_xc[n](r)` diagonal in real space — exactly the dual-space split
//! of Algorithm 1 lines 4–5.

use fftkit::PoissonSolver;
use mathkit::{Mat, Transpose};
use pwdft::Grid;

/// Grid-bound applier of `f_Hxc`.
pub struct HxcKernel {
    poisson: PoissonSolver,
    fxc: Vec<f64>,
    /// Include the Hartree term (disabled for `f_xc`-only ablations).
    pub with_hartree: bool,
}

impl HxcKernel {
    pub fn new(grid: &Grid, fxc: Vec<f64>) -> Self {
        assert_eq!(fxc.len(), grid.len());
        let poisson = PoissonSolver::new(grid.plan(), grid.cell.lengths);
        HxcKernel { poisson, fxc, with_hartree: true }
    }

    /// Kernel matching a problem's spin channel: the triplet channel drops
    /// the Hartree term (see [`crate::problem::KernelKind`]).
    pub fn for_problem(problem: &crate::problem::CasidaProblem) -> Self {
        let mut k = HxcKernel::new(&problem.grid, problem.fxc.clone());
        k.with_hartree = problem.kernel_kind == crate::problem::KernelKind::Singlet;
        k
    }

    /// Apply `f_Hxc` to every column of `fields` (`N_r × k`):
    /// `out[:, j] = f_H * fields[:, j] + f_xc ∘ fields[:, j]`.
    pub fn apply(&self, fields: &Mat) -> Mat {
        let mut out = Mat::zeros(fields.nrows(), fields.ncols());
        self.apply_into(fields, &mut out);
        out
    }

    /// [`HxcKernel::apply`] writing into a caller-owned `out` (`N_r × k`).
    ///
    /// The `f_xc` term is pointwise per column; the Hartree term goes through
    /// the fused batched solver [`PoissonSolver::hartree_many`], which packs
    /// pairs of real columns into single complex grids (two-for-one real
    /// transforms) — two 3-D FFTs per column pair instead of four, with the
    /// FFT engine's per-worker tile scratch replacing per-column temporaries.
    pub fn apply_into(&self, fields: &Mat, out: &mut Mat) {
        let nr = fields.nrows();
        assert_eq!(nr, self.fxc.len());
        assert_eq!(out.shape(), fields.shape(), "apply_into shape mismatch");
        out.par_cols_mut().enumerate().for_each(|(j, out_col)| {
            // `out = f_xc ∘ x`: elementwise product through the dispatched
            // SIMD kernel (bitwise identical to the scalar loop).
            mathkit::simd::pointwise_mul(out_col, self.fxc.as_slice(), fields.col(j));
        });
        if self.with_hartree {
            self.poisson.hartree_many(fields.as_slice(), out.as_mut_slice(), true);
        }
    }

    /// Matrix elements `M = ΔV · Aᵀ (f_Hxc B)` for field batches `A`, `B` —
    /// the discrete double integral `∫∫ a(r) f_Hxc(r,r') b(r') dr dr'`
    /// (one `ΔV` lives in the Fourier-space convolution, the other here).
    pub fn matrix_elements(&self, a: &Mat, b: &Mat, dv: f64) -> Mat {
        let fb = self.apply(b);
        let mut m = Mat::zeros(a.ncols(), fb.ncols());
        // ΔV folds into the contraction's alpha — no separate scale pass.
        mathkit::gemm(dv, a, Transpose::Yes, &fb, Transpose::No, 0.0, &mut m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic_problem;
    use pwdft::Cell;

    #[test]
    fn fxc_only_is_pointwise_multiplication() {
        let grid = Grid::new(Cell::cubic(5.0), [4, 4, 4]);
        let fxc: Vec<f64> = (0..grid.len()).map(|i| -0.1 - 0.001 * i as f64).collect();
        let mut k = HxcKernel::new(&grid, fxc.clone());
        k.with_hartree = false;
        let f = Mat::from_fn(grid.len(), 2, |r, j| ((r + j) % 5) as f64 - 2.0);
        let out = k.apply(&f);
        for j in 0..2 {
            for r in 0..grid.len() {
                assert!((out[(r, j)] - fxc[r] * f[(r, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn kernel_is_symmetric_operator() {
        // ⟨a|f_Hxc b⟩ = ⟨f_Hxc a|b⟩ — V_Hxc must come out symmetric.
        let p = synthetic_problem([8, 8, 8], 7.0, 2, 2);
        let k = HxcKernel::new(&p.grid, p.fxc.clone());
        let a = Mat::from_fn(p.n_r(), 3, |r, j| ((r * (j + 2)) % 11) as f64 * 0.1 - 0.5);
        let m = k.matrix_elements(&a, &a, p.grid.dv());
        assert!(m.max_abs_diff(&m.transpose()) < 1e-9);
    }

    #[test]
    fn hartree_part_matches_poisson_solver() {
        let grid = Grid::new(Cell::cubic(6.0), [8, 8, 8]);
        let zero_fxc = vec![0.0; grid.len()];
        let k = HxcKernel::new(&grid, zero_fxc);
        let rho = Mat::from_fn(grid.len(), 1, |r, _| {
            let c = grid.coords(r);
            (std::f64::consts::TAU * c[0] / 6.0).cos()
        });
        let out = k.apply(&rho);
        let vh = fftkit::solve_poisson(grid.plan(), grid.cell.lengths, rho.col(0));
        for r in 0..grid.len() {
            assert!((out[(r, 0)] - vh[r]).abs() < 1e-10);
        }
    }

    #[test]
    fn matrix_elements_scale_with_dv() {
        let p = synthetic_problem([4, 4, 4], 5.0, 2, 1);
        let k = HxcKernel::new(&p.grid, p.fxc.clone());
        let a = Mat::from_fn(p.n_r(), 2, |r, j| ((r + 3 * j) % 7) as f64 * 0.2);
        let m1 = k.matrix_elements(&a, &a, 1.0);
        let m2 = k.matrix_elements(&a, &a, 2.0);
        for idx in 0..4 {
            let (i, j) = (idx / 2, idx % 2);
            assert!((m2[(i, j)] - 2.0 * m1[(i, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn hartree_interaction_positive_definite() {
        // ⟨ρ|f_H ρ⟩ > 0 for any non-uniform density.
        let grid = Grid::new(Cell::cubic(5.0), [8, 8, 8]);
        let k = HxcKernel::new(&grid, vec![0.0; grid.len()]);
        let rho = Mat::from_fn(grid.len(), 1, |r, _| {
            let c = grid.coords(r);
            (-((c[0] - 2.5).powi(2) + (c[1] - 2.5).powi(2) + (c[2] - 2.5).powi(2))).exp()
        });
        let m = k.matrix_elements(&rho, &rho, grid.dv());
        assert!(m[(0, 0)] > 0.0);
    }
}
