//! Distributed implicit LOBPCG: the eigensolver side of the paper's parallel
//! design, restructured for **communication avoidance**.
//!
//! The excitation-vector block `X` (`N_cv × k`) is distributed by **pair
//! rows** across ranks. The seed schedule issued five latency-bound
//! collectives per iteration (Gram, residual norms, Cholesky-QR Gram, one
//! inside `H·S`, subspace Gram); this version issues **two**:
//!
//! 1. `H·W` — only the preconditioned-residual block pays an operator
//!    application (`H·X`, `H·P` are carried forward as local linear
//!    combinations of the previous `H·S`); the `C·W` partial-product
//!    reduction inside it streams on the progress engine;
//! 2. one **fused** allreduce (a persistent [`ReducePlan`]) carrying
//!    `SᵀS`, `SᵀHS`, *and* the residual-norm partials of the current
//!    iterate in a single packed payload.
//!
//! Orthonormalization moved out of the collective schedule entirely: instead
//! of a distributed Cholesky-QR per iteration, the Rayleigh–Ritz step solves
//! the *generalized* problem `(SᵀHS) y = λ (SᵀS) y` from the already-reduced
//! Grams (`G = LLᵀ`, `M = L⁻¹(SᵀHS)L⁻ᵀ`, replicated and tiny), so the new
//! `X = S·(L⁻ᵀY)` is orthonormal by construction.
//!
//! The convergence test is **one-iteration-delayed**: residual-norm partials
//! are summed locally when the residual is formed, but ride the *next*
//! iteration's fused reduce. The test still grades exactly the iterate it
//! returns (the norms are that iterate's exact global norms — only the
//! collective moved), so the converged answer is never changed; the delay
//! costs at most one speculative `H·W` application.
//!
//! This is exactly why the implicit form scales: every collective carries
//! `O(N_μ·m)` or `O(m²)` doubles, never the `O(N_cv²)` Hamiltonian — and now
//! each iteration pays two latencies instead of five.

use crate::lobpcg_driver::initial_guess;
use crate::timers::StageTimings;
use crate::versions::IsdfHamiltonian;
use faultkit::SolveError;
use mathkit::chol::{
    cholesky, solve_lower, solve_lower_transpose, solve_right_lower_transpose, solve_spd,
};
use mathkit::gemm::{gemm, gemm_tn, syrk_tn, Transpose};
use mathkit::lobpcg::LobpcgOptions;
use mathkit::{syev, Mat};
use parcomm::layout::block_ranges;
use parcomm::{Comm, ReducePlan, RetryPolicy};
use std::ops::Range;
use std::time::Instant;

/// Result of the distributed eigensolve.
pub struct DistributedEigResult {
    pub values: Vec<f64>,
    /// This rank's row block of the eigenvectors (`my_rows × k`).
    pub local_vectors: Mat,
    pub iterations: usize,
    pub residual: f64,
    pub converged: bool,
}

impl DistributedEigResult {
    /// Convert honest non-convergence into the typed error, for callers that
    /// require a converged result.
    pub fn into_converged(self) -> Result<Self, SolveError> {
        if self.converged {
            Ok(self)
        } else {
            Err(SolveError::NotConverged {
                stage: "dist_lobpcg",
                residual: self.residual,
                iterations: self.iterations,
            })
        }
    }
}

/// Apply the implicit Hamiltonian to a row-distributed block:
/// `out_loc = D_loc ∘ X_loc + 2 C_locᵀ (Ṽ (ΣC_loc X_loc))`.
fn apply_distributed(
    comm: &Comm,
    ham: &IsdfHamiltonian,
    rows: &Range<usize>,
    x_loc: &Mat,
) -> Result<Mat, SolveError> {
    let n_mu = ham.c.nrows();
    let m = x_loc.ncols();
    // C restricted to my pair columns.
    let c_loc = ham.c.col_block(rows.start, rows.end);
    let mut cx = Mat::zeros(n_mu, m);
    gemm(1.0, &c_loc, Transpose::No, x_loc, Transpose::No, 0.0, &mut cx);
    // The CX reduction streams on the progress engine while the diagonal
    // term (independent of CX) is computed. The partial product is retained
    // so a dropped request can be re-issued (drop faults fire symmetrically
    // across ranks, so the re-issue stays collective).
    let cx_vec = cx.into_vec();
    let rq = comm.iallreduce_sum(cx_vec.clone());
    let mut diag_term = Mat::zeros(rows.len(), m);
    for j in 0..m {
        let xc = x_loc.col(j);
        let dc = diag_term.col_mut(j);
        for (il, i) in rows.clone().enumerate() {
            dc[il] = ham.diag_d[i] * xc[il];
        }
    }
    let data = comm.settle(rq, &RetryPolicy::default(), |c| c.iallreduce_sum(cx_vec.clone()))?;
    let cx = Mat::from_vec(n_mu, m, data);
    let mut vcx = Mat::zeros(n_mu, m);
    gemm(1.0, &ham.v_tilde, Transpose::No, &cx, Transpose::No, 0.0, &mut vcx);
    let mut out = Mat::zeros(rows.len(), m);
    gemm(2.0, &c_loc, Transpose::Yes, &vcx, Transpose::No, 0.0, &mut out);
    for j in 0..m {
        let dc = diag_term.col(j);
        let oc = out.col_mut(j);
        for (o, d) in oc.iter_mut().zip(dc) {
            *o += d;
        }
    }
    Ok(out)
}

/// Distributed Gram matrix `AᵀB` of row-distributed blocks (replicated result).
fn dist_gram(comm: &Comm, a_loc: &Mat, b_loc: &Mat) -> Mat {
    let mut g = gemm_tn(a_loc, b_loc);
    comm.allreduce_sum(g.as_mut_slice());
    g
}

/// Cholesky-QR of a row-distributed block; `None` if the Gram matrix
/// degenerates. Returns the orthonormalized local block. Used once on the
/// initial guess — the iteration itself orthonormalizes through the
/// generalized Rayleigh–Ritz step and needs no per-iteration collective.
fn dist_cholesky_qr(comm: &Comm, s_loc: &Mat) -> Option<Mat> {
    // SᵀS is a symmetric Gram — the packed rank-k engine computes only the
    // lower triangle and mirrors it; one small Allreduce replicates it.
    let mut g = syrk_tn(s_loc);
    comm.allreduce_sum(g.as_mut_slice());
    match cholesky(&g) {
        Ok(l) => Some(solve_right_lower_transpose(s_loc, &l)),
        Err(_) => None,
    }
}

/// Local residual block `R = HX − X·diag(θ)`.
fn residual(x: &Mat, hx: &Mat, theta: &[f64]) -> Mat {
    let mut r = hx.clone();
    for (j, &th) in theta.iter().enumerate() {
        let xc = x.col(j);
        for (rv, xv) in r.col_mut(j).iter_mut().zip(xc.iter()) {
            *rv -= th * xv;
        }
    }
    r
}

/// Diagonal preconditioner (paper Eq. 17), in place on the local block.
fn precondition(w: &mut Mat, rows: &Range<usize>, diag_d: &[f64], theta: &[f64]) {
    for (j, &th) in theta.iter().enumerate() {
        let col = w.col_mut(j);
        for (il, i) in rows.clone().enumerate() {
            let mut den = diag_d[i] - th;
            if den.abs() < 1e-3 {
                den = 1e-3f64.copysign(if den == 0.0 { 1.0 } else { den });
            }
            col[il] /= den;
        }
    }
}

/// Leading `n × n` principal submatrix (replicated, tiny).
fn principal(a: &Mat, n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| a[(i, j)])
}

/// Generalized Rayleigh–Ritz from the already-reduced replicated Grams
/// `G = SᵀS`, `A = SᵀHS`: factor `G = LLᵀ`, diagonalize `M = L⁻¹AL⁻ᵀ`, and
/// return the `k` lowest Ritz values with basis coefficients `C = L⁻ᵀY`
/// (so `CᵀGC = I` — the updated block is orthonormal with **no** extra
/// collective). `None` when `G` has lost positive definiteness.
fn rr_step(g: &Mat, a: &Mat, k: usize) -> Option<(Vec<f64>, Mat)> {
    let l = cholesky(g).ok()?;
    let half = solve_lower(&l, a);
    let mut m = solve_right_lower_transpose(&half, &l);
    m.symmetrize();
    let eig = syev(&m);
    let cols: Vec<usize> = (0..k).collect();
    let y = eig.vectors.select_cols(&cols);
    let c = solve_lower_transpose(&l, &y);
    Some((eig.values[..k].to_vec(), c))
}

/// Distributed implicit LOBPCG for the lowest `k` eigenpairs of the
/// (replicated) factored Hamiltonian. SPMD-collective; every rank gets the
/// same eigenvalues and its own row block of eigenvectors.
///
/// `Ok` with `converged == false` is honest non-convergence (see
/// [`DistributedEigResult::into_converged`]); `Err` is an iteration breakdown
/// or an exhausted communication retry. Breakdown guards test replicated
/// quantities (fused-allreduced norms and Gram matrices), so every rank takes
/// the same branch and the SPMD collective order never diverges.
pub fn distributed_casida_lobpcg(
    comm: &Comm,
    ham: &IsdfHamiltonian,
    k: usize,
    opts: LobpcgOptions,
    seed: u64,
    timings: &mut StageTimings,
) -> Result<DistributedEigResult, SolveError> {
    let ncv = ham.diag_d.len();
    let k = k.min(ncv);
    let rows = block_ranges(ncv, comm.size())[comm.rank()].clone();
    // One span over the whole solve: the nested mpi:* spans from the
    // collectives subtract out in the exclusive rollup, reproducing the
    // legacy "diag = elapsed − comm" accounting below.
    let sp = obskit::span(obskit::Stage::Diag, "diag.lobpcg.dist");
    let t_start = Instant::now();
    let comm_start = comm.stats().measured_seconds;

    // Replicated deterministic guess, then slice my rows.
    let x0 = initial_guess(&ham.diag_d, k, seed);
    let mut x = x0.row_block(rows.start, rows.end);
    if let Some(q) = dist_cholesky_qr(comm, &x) {
        x = q;
    }
    let mut hx = apply_distributed(comm, ham, &rows, &x)?;
    // θ₀ from one small Gram (X orthonormal ⇒ diagonal = Rayleigh quotients).
    let g0 = dist_gram(comm, &x, &hx);
    let mut theta: Vec<f64> = (0..k).map(|i| g0[(i, i)]).collect();
    // Current local residual; its norm partials ride the next fused reduce.
    let mut r = residual(&x, &hx, &theta);
    let mut p_blk: Option<(Mat, Mat)> = None; // (P, H·P), carried locally
    let mut prev_norms: Option<Vec<f64>> = None; // previous global ‖r‖²
    let mut best_residual = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    // Persistent fused plan; rebuilt only when the subspace width changes
    // (once when P first appears).
    let mut plan: Option<ReducePlan> = None;
    let mut plan_m = 0usize;

    for it in 0..opts.max_iter {
        iterations = it + 1;
        // W = preconditioned residual. Columns are scaled by the previous
        // iteration's global residual norms — replicated, already paid for,
        // and within a convergence factor of the current norms — to keep the
        // subspace Gram well-conditioned without a fresh collective.
        let mut w = r.clone();
        precondition(&mut w, &rows, &ham.diag_d, &theta);
        if let Some(n2) = &prev_norms {
            for (j, n2j) in n2.iter().enumerate().take(k) {
                let s = n2j.sqrt();
                if s > 1e-300 {
                    let inv = 1.0 / s;
                    for v in w.col_mut(j) {
                        *v *= inv;
                    }
                }
            }
        }
        // Collective 1 of 2: H·W (the only operator application — H·X and
        // H·P are linear combinations of the previous H·S, formed locally).
        let hw = apply_distributed(comm, ham, &rows, &w)?;

        // S = [X, W, P], HS = [HX, HW, HP].
        let pn = p_blk.as_ref().map_or(0, |(pm, _)| pm.ncols());
        let m = 2 * k + pn;
        let mut s = Mat::zeros(rows.len(), m);
        let mut hs = Mat::zeros(rows.len(), m);
        for j in 0..k {
            s.col_mut(j).copy_from_slice(x.col(j));
            s.col_mut(k + j).copy_from_slice(w.col(j));
            hs.col_mut(j).copy_from_slice(hx.col(j));
            hs.col_mut(k + j).copy_from_slice(hw.col(j));
        }
        if let Some((pm, hpm)) = &p_blk {
            for j in 0..pn {
                s.col_mut(2 * k + j).copy_from_slice(pm.col(j));
                hs.col_mut(2 * k + j).copy_from_slice(hpm.col(j));
            }
        }

        // Collective 2 of 2: ONE fused reduce carrying SᵀS, SᵀHS, and the
        // residual-norm partials of the current X — what the seed spent
        // three separate latency-bound allreduces on.
        let plan_ref = match &mut plan {
            Some(pl) if plan_m == m => {
                pl.clear();
                pl
            }
            _ => {
                plan = Some(ReducePlan::new(&[m * m, m * m, k]));
                plan_m = m;
                plan.as_mut().expect("plan just installed")
            }
        };
        let g_loc = syrk_tn(&s);
        let a_loc = gemm_tn(&s, &hs);
        plan_ref.field_mut(0).copy_from_slice(g_loc.as_slice());
        plan_ref.field_mut(1).copy_from_slice(a_loc.as_slice());
        for j in 0..k {
            plan_ref.field_mut(2)[j] = r.col(j).iter().map(|v| v * v).sum::<f64>();
        }
        plan_ref.execute(comm)?;

        // Delayed convergence test: these are the exact global norms of the
        // residual of the *current* X/θ — the same quantity the seed tested,
        // one collective later. Passing it returns exactly this iterate.
        let norms = plan_ref.field(2).to_vec();
        let resid = norms
            .iter()
            .zip(theta.iter())
            .map(|(n2, th)| n2.sqrt() / th.abs().max(1.0))
            .fold(0.0f64, f64::max);
        // Replicated (fused-allreduced) quantity: every rank sees the same
        // value and errors out together.
        if !resid.is_finite() {
            return Err(SolveError::Breakdown {
                stage: "dist_lobpcg",
                iteration: iterations,
                reason: "non-finite residual norm".to_string(),
            });
        }
        best_residual = best_residual.min(resid);
        obskit::instant(
            obskit::Stage::Diag,
            "lobpcg.iter",
            &[
                ("iter", it as f64),
                ("resid", resid),
                ("theta_min", theta.iter().cloned().fold(f64::INFINITY, f64::min)),
            ],
        );
        if resid < opts.tol {
            converged = true;
            break;
        }

        let g = Mat::from_vec(m, m, plan_ref.field(0).to_vec());
        let a = Mat::from_vec(m, m, plan_ref.field(1).to_vec());
        // Also replicated — a poisoned subspace Gram would send syev into
        // NaN soup on every rank simultaneously; fail typed instead.
        if g.as_slice().iter().chain(a.as_slice().iter()).any(|v| !v.is_finite()) {
            return Err(SolveError::Breakdown {
                stage: "dist_lobpcg",
                iteration: iterations,
                reason: "non-finite subspace Gram matrix".to_string(),
            });
        }
        // Generalized Rayleigh–Ritz; on Cholesky breakdown drop the P block
        // (the leading 2k×2k principal blocks of the *already-reduced* Grams
        // — recovery costs no collective), else bail with best known.
        let (msub, step) = match rr_step(&g, &a, k) {
            Some(st) => (m, st),
            None => match rr_step(&principal(&g, 2 * k), &principal(&a, 2 * k), k) {
                Some(st) => (2 * k, st),
                None => break,
            },
        };
        let (theta_new, coef) = step;
        let s_use = if msub == m { s } else { s.col_block(0, msub) };
        let hs_use = if msub == m { hs } else { hs.col_block(0, msub) };

        let mut x_new = Mat::zeros(rows.len(), k);
        gemm(1.0, &s_use, Transpose::No, &coef, Transpose::No, 0.0, &mut x_new);
        let mut hx_new = Mat::zeros(rows.len(), k);
        gemm(1.0, &hs_use, Transpose::No, &coef, Transpose::No, 0.0, &mut hx_new);

        // P = S·C_p with the X-block rows of C zeroed (the classic LOBPCG
        // direction), column-normalized through the replicated Gram:
        // ‖P_j‖² = (C_pᵀ G C_p)_jj — again no collective.
        let mut c_p = coef.clone();
        for j in 0..k {
            for i in 0..k {
                c_p[(i, j)] = 0.0;
            }
        }
        let g_use = if msub == m { g } else { principal(&g, msub) };
        let mut gc_p = Mat::zeros(msub, k);
        gemm(1.0, &g_use, Transpose::No, &c_p, Transpose::No, 0.0, &mut gc_p);
        for j in 0..k {
            let n2: f64 = c_p.col(j).iter().zip(gc_p.col(j)).map(|(a, b)| a * b).sum();
            if n2 > 1e-300 {
                let inv = 1.0 / n2.sqrt();
                for v in c_p.col_mut(j) {
                    *v *= inv;
                }
            }
        }
        let mut p_new = Mat::zeros(rows.len(), k);
        gemm(1.0, &s_use, Transpose::No, &c_p, Transpose::No, 0.0, &mut p_new);
        let mut hp_new = Mat::zeros(rows.len(), k);
        gemm(1.0, &hs_use, Transpose::No, &c_p, Transpose::No, 0.0, &mut hp_new);

        x = x_new;
        hx = hx_new;
        p_blk = Some((p_new, hp_new));
        theta = theta_new;
        r = residual(&x, &hx, &theta);
        prev_norms = Some(norms);
    }

    // θ are exact Ritz values of the returned X already (CᵀGC = I in the
    // generalized step; θ₀ came from the explicit Gram) — the seed's
    // post-loop Gram collective is gone. Sort ascending (replicated).
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| theta[a].partial_cmp(&theta[b]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| theta[i]).collect();
    let local_vectors = x.select_cols(&order);

    let comm_spent = comm.stats().measured_seconds - comm_start;
    timings.mpi += comm_spent;
    timings.diag += (t_start.elapsed().as_secs_f64() - comm_spent).max(0.0);
    drop(sp);

    Ok(DistributedEigResult {
        values,
        local_vectors,
        iterations,
        residual: best_residual,
        converged,
    })
}

/// Distributed SPD solve helper kept for parity with ScaLAPACK-style flows
/// (used in tests to validate replicated small solves).
pub fn replicated_spd_solve(a: &Mat, b: &Mat) -> Mat {
    solve_spd(a, b).expect("replicated SPD solve")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lobpcg_driver::solve_casida_lobpcg;
    use crate::problem::synthetic_problem;
    use crate::versions::{build_isdf_hamiltonian, PointSelector};
    use parcomm::spmd;

    fn test_ham() -> IsdfHamiltonian {
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 3);
        let mut t = StageTimings::default();
        build_isdf_hamiltonian(&p, PointSelector::Qrcp, p.n_cv(), &mut t)
    }

    #[test]
    fn distributed_matches_serial_eigenvalues() {
        let ham = test_ham();
        let k = 3;
        let serial = solve_casida_lobpcg(
            |x| ham.apply(x),
            &ham.diag_d,
            k,
            LobpcgOptions { max_iter: 300, tol: 1e-9 },
            42,
        )
        .expect("serial solve");
        for ranks in [1usize, 2, 4] {
            let res = spmd(ranks, |c| {
                let mut t = StageTimings::default();
                distributed_casida_lobpcg(
                    c,
                    &ham,
                    k,
                    LobpcgOptions { max_iter: 300, tol: 1e-9 },
                    42,
                    &mut t,
                )
                .and_then(DistributedEigResult::into_converged)
                .map(|r| r.values)
            });
            for r in &res {
                let vals = match r {
                    Ok(vals) => vals,
                    Err(e) => panic!("ranks={ranks}: {e}"),
                };
                for (i, v) in vals.iter().enumerate().take(k) {
                    let rel =
                        (v - serial.values[i]).abs() / serial.values[i].abs().max(1e-12);
                    assert!(
                        rel < 1e-6,
                        "ranks={ranks} state {i}: {} vs {}",
                        v,
                        serial.values[i]
                    );
                }
            }
        }
    }

    #[test]
    fn local_vector_blocks_reassemble_orthonormal() {
        let ham = test_ham();
        let k = 2;
        let ncv = ham.diag_d.len();
        let ranks = 3;
        let res = spmd(ranks, |c| {
            let mut t = StageTimings::default();
            let r = distributed_casida_lobpcg(
                c,
                &ham,
                k,
                LobpcgOptions { max_iter: 300, tol: 1e-8 },
                7,
                &mut t,
            )
            .expect("distributed solve");
            (c.rank(), r.local_vectors)
        });
        let mut full = Mat::zeros(ncv, k);
        for (rank, block) in &res {
            let rr = block_ranges(ncv, ranks)[*rank].clone();
            for j in 0..k {
                for (il, i) in rr.clone().enumerate() {
                    full[(i, j)] = block[(il, j)];
                }
            }
        }
        let g = gemm_tn(&full, &full);
        assert!(g.max_abs_diff(&Mat::eye(k)) < 1e-6, "Gram:\n{g:?}");
    }

    #[test]
    fn timings_report_mpi_share_for_multirank() {
        let ham = test_ham();
        let res = spmd(4, |c| {
            let mut t = StageTimings::default();
            let _ = distributed_casida_lobpcg(
                c,
                &ham,
                2,
                LobpcgOptions { max_iter: 50, tol: 1e-7 },
                1,
                &mut t,
            );
            t
        });
        for t in res {
            assert!(t.mpi > 0.0, "distributed solve must register comm time");
        }
    }

    #[test]
    fn two_collectives_per_iteration() {
        // The communication-avoiding schedule: after warmup, each iteration
        // costs exactly one H·W reduction plus one fused Gram/norm reduce.
        let ham = test_ham();
        let res = spmd(2, |c| {
            let mut t = StageTimings::default();
            let short = distributed_casida_lobpcg(
                c,
                &ham,
                2,
                LobpcgOptions { max_iter: 3, tol: 1e-300 },
                11,
                &mut t,
            )
            .expect("short run");
            let calls_short = c.stats().collective_calls;
            c.reset_stats();
            let long = distributed_casida_lobpcg(
                c,
                &ham,
                2,
                LobpcgOptions { max_iter: 8, tol: 1e-300 },
                11,
                &mut t,
            )
            .expect("long run");
            (calls_short, c.stats().collective_calls, short.iterations, long.iterations)
        });
        // Under `PARCOMM_NO_FUSE=1` the plan degrades to one collective per
        // field (H·W apply + SᵀS + SᵀHS + norms = 4), same iteration count.
        let per_iter = if parcomm::fusion_enabled() { 2 } else { 4 };
        for (calls_short, calls_long, it_short, it_long) in res {
            assert_eq!(it_short, 3);
            assert_eq!(it_long, 8);
            assert_eq!(
                (calls_long - calls_short) as usize,
                per_iter * (it_long - it_short),
                "each extra iteration must cost exactly {per_iter} collectives"
            );
        }
    }
}
