//! Distributed implicit LOBPCG: the eigensolver side of the paper's parallel
//! design.
//!
//! The excitation-vector block `X` (`N_cv × k`) is distributed by **pair
//! rows** across ranks. Each LOBPCG ingredient then needs exactly one small
//! `Allreduce` per iteration:
//!
//! * `H·X` — `C·X` is a sum of per-rank partial products (`Allreduce` of an
//!   `N_μ × m` block), after which `Cᵀ(Ṽ·CX)` and the diagonal term are
//!   row-local;
//! * Gram matrices `SᵀS`, `SᵀHS` — local contributions, `Allreduce`;
//! * Cholesky-QR / Rayleigh–Ritz — tiny replicated solves on every rank.
//!
//! This is exactly why the implicit form scales: every collective carries
//! `O(N_μ·m)` or `O(m²)` doubles, never the `O(N_cv²)` Hamiltonian.

use crate::lobpcg_driver::initial_guess;
use crate::timers::StageTimings;
use crate::versions::IsdfHamiltonian;
use faultkit::SolveError;
use mathkit::chol::{cholesky, solve_right_lower_transpose, solve_spd};
use mathkit::gemm::{gemm, gemm_tn, syrk_tn, Transpose};
use mathkit::lobpcg::LobpcgOptions;
use mathkit::{syev, Mat};
use parcomm::layout::block_ranges;
use parcomm::{Comm, RetryPolicy};
use std::time::Instant;

/// Result of the distributed eigensolve.
pub struct DistributedEigResult {
    pub values: Vec<f64>,
    /// This rank's row block of the eigenvectors (`my_rows × k`).
    pub local_vectors: Mat,
    pub iterations: usize,
    pub residual: f64,
    pub converged: bool,
}

impl DistributedEigResult {
    /// Convert honest non-convergence into the typed error, for callers that
    /// require a converged result.
    pub fn into_converged(self) -> Result<Self, SolveError> {
        if self.converged {
            Ok(self)
        } else {
            Err(SolveError::NotConverged {
                stage: "dist_lobpcg",
                residual: self.residual,
                iterations: self.iterations,
            })
        }
    }
}

/// Apply the implicit Hamiltonian to a row-distributed block:
/// `out_loc = D_loc ∘ X_loc + 2 C_locᵀ (Ṽ (ΣC_loc X_loc))`.
fn apply_distributed(
    comm: &Comm,
    ham: &IsdfHamiltonian,
    rows: &std::ops::Range<usize>,
    x_loc: &Mat,
) -> Result<Mat, SolveError> {
    let n_mu = ham.c.nrows();
    let m = x_loc.ncols();
    // C restricted to my pair columns.
    let c_loc = ham.c.col_block(rows.start, rows.end);
    let mut cx = Mat::zeros(n_mu, m);
    gemm(1.0, &c_loc, Transpose::No, x_loc, Transpose::No, 0.0, &mut cx);
    // The CX reduction streams on the progress engine while the diagonal
    // term (independent of CX) is computed. The partial product is retained
    // so a dropped request can be re-issued (drop faults fire symmetrically
    // across ranks, so the re-issue stays collective).
    let cx_vec = cx.into_vec();
    let rq = comm.iallreduce_sum(cx_vec.clone());
    let mut diag_term = Mat::zeros(rows.len(), m);
    for j in 0..m {
        let xc = x_loc.col(j);
        let dc = diag_term.col_mut(j);
        for (il, i) in rows.clone().enumerate() {
            dc[il] = ham.diag_d[i] * xc[il];
        }
    }
    let data = comm.settle(rq, &RetryPolicy::default(), |c| c.iallreduce_sum(cx_vec.clone()))?;
    let cx = Mat::from_vec(n_mu, m, data);
    let mut vcx = Mat::zeros(n_mu, m);
    gemm(1.0, &ham.v_tilde, Transpose::No, &cx, Transpose::No, 0.0, &mut vcx);
    let mut out = Mat::zeros(rows.len(), m);
    gemm(2.0, &c_loc, Transpose::Yes, &vcx, Transpose::No, 0.0, &mut out);
    for j in 0..m {
        let dc = diag_term.col(j);
        let oc = out.col_mut(j);
        for (o, d) in oc.iter_mut().zip(dc) {
            *o += d;
        }
    }
    Ok(out)
}

/// Distributed Gram matrix `AᵀB` of row-distributed blocks (replicated result).
fn dist_gram(comm: &Comm, a_loc: &Mat, b_loc: &Mat) -> Mat {
    let mut g = gemm_tn(a_loc, b_loc);
    comm.allreduce_sum(g.as_mut_slice());
    g
}

/// Cholesky-QR of a row-distributed block; falls back to a jittered diagonal
/// if the Gram matrix degenerates. Returns the orthonormalized local block.
fn dist_cholesky_qr(comm: &Comm, s_loc: &Mat) -> Option<Mat> {
    // SᵀS is a symmetric Gram — the packed rank-k engine computes only the
    // lower triangle and mirrors it; one small Allreduce replicates it.
    let mut g = syrk_tn(s_loc);
    comm.allreduce_sum(g.as_mut_slice());
    match cholesky(&g) {
        Ok(l) => Some(solve_right_lower_transpose(s_loc, &l)),
        Err(_) => None,
    }
}

/// Distributed implicit LOBPCG for the lowest `k` eigenpairs of the
/// (replicated) factored Hamiltonian. SPMD-collective; every rank gets the
/// same eigenvalues and its own row block of eigenvectors.
///
/// `Ok` with `converged == false` is honest non-convergence (see
/// [`DistributedEigResult::into_converged`]); `Err` is an iteration breakdown
/// or an exhausted communication retry. Breakdown guards test replicated
/// quantities (allreduced norms and Gram matrices), so every rank takes the
/// same branch and the SPMD collective order never diverges.
pub fn distributed_casida_lobpcg(
    comm: &Comm,
    ham: &IsdfHamiltonian,
    k: usize,
    opts: LobpcgOptions,
    seed: u64,
    timings: &mut StageTimings,
) -> Result<DistributedEigResult, SolveError> {
    let ncv = ham.diag_d.len();
    let k = k.min(ncv);
    let rows = block_ranges(ncv, comm.size())[comm.rank()].clone();
    // One span over the whole solve: the nested mpi:* spans from the
    // collectives subtract out in the exclusive rollup, reproducing the
    // legacy "diag = elapsed − comm" accounting below.
    let sp = obskit::span(obskit::Stage::Diag, "diag.lobpcg.dist");
    let t_start = Instant::now();
    let comm_start = comm.stats().measured_seconds;

    // Replicated deterministic guess, then slice my rows.
    let x0 = initial_guess(&ham.diag_d, k, seed);
    let mut x = x0.row_block(rows.start, rows.end);
    if let Some(q) = dist_cholesky_qr(comm, &x) {
        x = q;
    }
    let mut ax = apply_distributed(comm, ham, &rows, &x)?;
    let mut p: Option<Mat> = None;
    let mut theta = vec![0.0; k];
    let mut best_residual = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;

    for it in 0..opts.max_iter {
        iterations = it + 1;
        let xtax = dist_gram(comm, &x, &ax);
        for (i, t) in theta.iter_mut().enumerate() {
            *t = xtax[(i, i)];
        }
        // Residuals and their global norms.
        let mut r = ax.clone();
        for (j, &th) in theta.iter().enumerate().take(k) {
            let xc = x.col(j);
            for (rv, xv) in r.col_mut(j).iter_mut().zip(xc.iter()) {
                *rv -= th * xv;
            }
        }
        let mut norms: Vec<f64> =
            (0..k).map(|j| r.col(j).iter().map(|v| v * v).sum::<f64>()).collect();
        comm.allreduce_sum(&mut norms);
        let resid = norms
            .iter()
            .zip(theta.iter())
            .map(|(n2, th)| n2.sqrt() / th.abs().max(1.0))
            .fold(0.0f64, f64::max);
        // Replicated (allreduced) quantity: every rank sees the same value
        // and errors out together.
        if !resid.is_finite() {
            return Err(SolveError::Breakdown {
                stage: "dist_lobpcg",
                iteration: iterations,
                reason: "non-finite residual norm".to_string(),
            });
        }
        best_residual = best_residual.min(resid);
        obskit::instant(
            obskit::Stage::Diag,
            "lobpcg.iter",
            &[
                ("iter", it as f64),
                ("resid", resid),
                ("theta_min", theta.iter().cloned().fold(f64::INFINITY, f64::min)),
            ],
        );
        if resid < opts.tol {
            converged = true;
            break;
        }

        // Preconditioned residuals (diagonal, row-local; paper Eq. 17).
        let mut w = r;
        for (j, &th) in theta.iter().enumerate().take(k) {
            let col = w.col_mut(j);
            for (il, i) in rows.clone().enumerate() {
                let mut den = ham.diag_d[i] - th;
                if den.abs() < 1e-3 {
                    den = 1e-3f64.copysign(if den == 0.0 { 1.0 } else { den });
                }
                col[il] /= den;
            }
        }

        // S = [X, W, P], distributed Cholesky-QR.
        let pn = p.as_ref().map_or(0, Mat::ncols);
        let mut s = Mat::zeros(rows.len(), 2 * k + pn);
        for j in 0..k {
            s.col_mut(j).copy_from_slice(x.col(j));
            s.col_mut(k + j).copy_from_slice(w.col(j));
        }
        if let Some(pm) = &p {
            for j in 0..pn {
                s.col_mut(2 * k + j).copy_from_slice(pm.col(j));
            }
        }
        let s_orth = match dist_cholesky_qr(comm, &s) {
            Some(q) => q,
            None => {
                // Drop the P block and retry once; else bail with best known.
                let s2 = s.col_block(0, 2 * k);
                match dist_cholesky_qr(comm, &s2) {
                    Some(q) => q,
                    None => break,
                }
            }
        };

        // Rayleigh–Ritz.
        let a_s = apply_distributed(comm, ham, &rows, &s_orth)?;
        let mut hs = dist_gram(comm, &s_orth, &a_s);
        hs.symmetrize();
        // Also replicated — a poisoned subspace Gram would send syev into
        // NaN soup on every rank simultaneously; fail typed instead.
        if hs.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(SolveError::Breakdown {
                stage: "dist_lobpcg",
                iteration: iterations,
                reason: "non-finite subspace Gram matrix".to_string(),
            });
        }
        let eig = syev(&hs);
        let cols: Vec<usize> = (0..k).collect();
        let coef = eig.vectors.select_cols(&cols);

        let mut x_new = Mat::zeros(rows.len(), k);
        gemm(1.0, &s_orth, Transpose::No, &coef, Transpose::No, 0.0, &mut x_new);
        let mut ax_new = Mat::zeros(rows.len(), k);
        gemm(1.0, &a_s, Transpose::No, &coef, Transpose::No, 0.0, &mut ax_new);
        let cx_blk = coef.row_block(0, k);
        let mut p_new = x_new.clone();
        gemm(-1.0, &x, Transpose::No, &cx_blk, Transpose::No, 1.0, &mut p_new);
        x = x_new;
        ax = ax_new;
        p = Some(p_new);
    }

    // Final Rayleigh quotients.
    let xtax = dist_gram(comm, &x, &ax);
    for (i, t) in theta.iter_mut().enumerate() {
        *t = xtax[(i, i)];
    }
    // Sort ascending (replicated, deterministic).
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| theta[a].partial_cmp(&theta[b]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| theta[i]).collect();
    let local_vectors = x.select_cols(&order);

    let comm_spent = comm.stats().measured_seconds - comm_start;
    timings.mpi += comm_spent;
    timings.diag += (t_start.elapsed().as_secs_f64() - comm_spent).max(0.0);
    drop(sp);

    Ok(DistributedEigResult {
        values,
        local_vectors,
        iterations,
        residual: best_residual,
        converged,
    })
}

/// Distributed SPD solve helper kept for parity with ScaLAPACK-style flows
/// (used in tests to validate replicated small solves).
pub fn replicated_spd_solve(a: &Mat, b: &Mat) -> Mat {
    solve_spd(a, b).expect("replicated SPD solve")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lobpcg_driver::solve_casida_lobpcg;
    use crate::problem::synthetic_problem;
    use crate::versions::{build_isdf_hamiltonian, PointSelector};
    use parcomm::spmd;

    fn test_ham() -> IsdfHamiltonian {
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 3);
        let mut t = StageTimings::default();
        build_isdf_hamiltonian(&p, PointSelector::Qrcp, p.n_cv(), &mut t)
    }

    #[test]
    fn distributed_matches_serial_eigenvalues() {
        let ham = test_ham();
        let k = 3;
        let serial = solve_casida_lobpcg(
            |x| ham.apply(x),
            &ham.diag_d,
            k,
            LobpcgOptions { max_iter: 300, tol: 1e-9 },
            42,
        )
        .expect("serial solve");
        for ranks in [1usize, 2, 4] {
            let res = spmd(ranks, |c| {
                let mut t = StageTimings::default();
                distributed_casida_lobpcg(
                    c,
                    &ham,
                    k,
                    LobpcgOptions { max_iter: 300, tol: 1e-9 },
                    42,
                    &mut t,
                )
                .and_then(DistributedEigResult::into_converged)
                .map(|r| r.values)
            });
            for r in &res {
                let vals = match r {
                    Ok(vals) => vals,
                    Err(e) => panic!("ranks={ranks}: {e}"),
                };
                for (i, v) in vals.iter().enumerate().take(k) {
                    let rel =
                        (v - serial.values[i]).abs() / serial.values[i].abs().max(1e-12);
                    assert!(
                        rel < 1e-6,
                        "ranks={ranks} state {i}: {} vs {}",
                        v,
                        serial.values[i]
                    );
                }
            }
        }
    }

    #[test]
    fn local_vector_blocks_reassemble_orthonormal() {
        let ham = test_ham();
        let k = 2;
        let ncv = ham.diag_d.len();
        let ranks = 3;
        let res = spmd(ranks, |c| {
            let mut t = StageTimings::default();
            let r = distributed_casida_lobpcg(
                c,
                &ham,
                k,
                LobpcgOptions { max_iter: 300, tol: 1e-8 },
                7,
                &mut t,
            )
            .expect("distributed solve");
            (c.rank(), r.local_vectors)
        });
        let mut full = Mat::zeros(ncv, k);
        for (rank, block) in &res {
            let rr = block_ranges(ncv, ranks)[*rank].clone();
            for j in 0..k {
                for (il, i) in rr.clone().enumerate() {
                    full[(i, j)] = block[(il, j)];
                }
            }
        }
        let g = gemm_tn(&full, &full);
        assert!(g.max_abs_diff(&Mat::eye(k)) < 1e-6, "Gram:\n{g:?}");
    }

    #[test]
    fn timings_report_mpi_share_for_multirank() {
        let ham = test_ham();
        let res = spmd(4, |c| {
            let mut t = StageTimings::default();
            let _ = distributed_casida_lobpcg(
                c,
                &ham,
                2,
                LobpcgOptions { max_iter: 50, tol: 1e-7 },
                1,
                &mut t,
            );
            t
        });
        for t in res {
            assert!(t.mpi > 0.0, "distributed solve must register comm time");
        }
    }
}
