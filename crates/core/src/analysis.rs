//! Post-processing of excitation vectors: dominant orbital-pair character,
//! participation ratios, and compact state summaries — what a user reads
//! after the solver finishes (QE/NWChem print exactly these tables).

use crate::problem::CasidaProblem;
use mathkit::Mat;

/// One contribution to an excitation: pair `(i_v → i_c)` with weight `|x|²`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairContribution {
    pub i_v: usize,
    pub i_c: usize,
    /// Squared amplitude (fraction of the normalized excitation vector).
    pub weight: f64,
}

/// Summary of a single excited state.
#[derive(Clone, Debug)]
pub struct StateCharacter {
    pub energy: f64,
    /// Leading pair contributions, sorted by weight descending.
    pub leading: Vec<PairContribution>,
    /// Inverse participation ratio: 1 = single-pair transition,
    /// `N_cv` = fully delocalized over pairs.
    pub participation: f64,
}

/// Analyze the excitations in `(energies, coefficients)` (`N_cv × k`).
/// `n_leading` caps how many pair contributions each state reports.
pub fn analyze_states(
    problem: &CasidaProblem,
    energies: &[f64],
    coefficients: &Mat,
    n_leading: usize,
) -> Vec<StateCharacter> {
    assert_eq!(coefficients.ncols(), energies.len());
    assert_eq!(coefficients.nrows(), problem.n_cv());
    let n_c = problem.n_c();
    energies
        .iter()
        .enumerate()
        .map(|(n, &energy)| {
            let x = coefficients.col(n);
            let norm2: f64 = x.iter().map(|v| v * v).sum();
            let mut weights: Vec<PairContribution> = x
                .iter()
                .enumerate()
                .map(|(p, &v)| PairContribution {
                    i_v: p / n_c,
                    i_c: p % n_c,
                    weight: v * v / norm2.max(1e-300),
                })
                .collect();
            // IPR = 1 / Σ w_p² over the normalized weights.
            let ipr = 1.0 / weights.iter().map(|c| c.weight * c.weight).sum::<f64>().max(1e-300);
            weights.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
            weights.truncate(n_leading);
            StateCharacter { energy, leading: weights, participation: ipr }
        })
        .collect()
}

/// Render a one-line description like `"0.0432 Ha: 3→0 (82%) + 2→1 (11%)"`.
pub fn describe_state(state: &StateCharacter) -> String {
    let parts: Vec<String> = state
        .leading
        .iter()
        .filter(|c| c.weight > 0.01)
        .map(|c| format!("{}→{} ({:.0}%)", c.i_v, c.i_c, 100.0 * c.weight))
        .collect();
    format!("{:.4} Ha: {}", state.energy, parts.join(" + "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic_problem;
    use crate::{Solver, Version};

    #[test]
    fn pure_single_pair_state() {
        let p = synthetic_problem([4, 4, 4], 5.0, 2, 3);
        let mut x = Mat::zeros(6, 1);
        x[(p.pair_index(1, 2), 0)] = 1.0;
        let states = analyze_states(&p, &[0.5], &x, 3);
        assert_eq!(states.len(), 1);
        let s = &states[0];
        assert!((s.participation - 1.0).abs() < 1e-12);
        assert_eq!(s.leading[0].i_v, 1);
        assert_eq!(s.leading[0].i_c, 2);
        assert!((s.leading[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_state_maximal_participation() {
        let p = synthetic_problem([4, 4, 4], 5.0, 2, 2);
        let x = Mat::from_fn(4, 1, |_, _| 0.5);
        let states = analyze_states(&p, &[0.3], &x, 4);
        assert!((states[0].participation - 4.0).abs() < 1e-10);
        // all weights equal 0.25
        for c in &states[0].leading {
            assert!((c.weight - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_sum_to_one_for_solver_output() {
        let p = synthetic_problem([8, 8, 8], 6.0, 3, 2);
        let sol =
            Solver::builder().version(Version::Naive).n_states(4).build().solve(&p).unwrap();
        let states = analyze_states(&p, &sol.energies, &sol.coefficients, p.n_cv());
        for s in &states {
            let total: f64 = s.leading.iter().map(|c| c.weight).sum();
            assert!((total - 1.0).abs() < 1e-10, "weights sum to {total}");
            assert!(s.participation >= 1.0 - 1e-12);
            assert!(s.participation <= p.n_cv() as f64 + 1e-9);
        }
        // leading contributions sorted descending
        for s in &states {
            for w in s.leading.windows(2) {
                assert!(w[0].weight >= w[1].weight - 1e-15);
            }
        }
    }

    #[test]
    fn describe_formats_sensibly() {
        let s = StateCharacter {
            energy: 0.0432,
            leading: vec![
                PairContribution { i_v: 3, i_c: 0, weight: 0.82 },
                PairContribution { i_v: 2, i_c: 1, weight: 0.11 },
                PairContribution { i_v: 0, i_c: 0, weight: 0.005 }, // filtered
            ],
            participation: 1.4,
        };
        let txt = describe_state(&s);
        assert!(txt.contains("3→0 (82%)"));
        assert!(txt.contains("2→1 (11%)"));
        assert!(!txt.contains("0→0"));
    }
}
