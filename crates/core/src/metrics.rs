//! Analytic complexity accounting — paper Table 4 evaluated at concrete
//! dimensions, so the `repro table4` harness can print measured-vs-model.

use crate::versions::Version;

/// Floating-point-operation and memory estimates for one version at given
/// problem dimensions (leading terms of the paper's Table 4 rows).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComplexityEstimate {
    pub version_label: &'static str,
    /// Construction flops (leading order).
    pub construct_flops: f64,
    /// Construction working-set memory in f64 words.
    pub construct_words: f64,
    /// Diagonalization flops.
    pub diag_flops: f64,
    /// Diagonalization memory in f64 words.
    pub diag_words: f64,
}

impl ComplexityEstimate {
    /// Evaluate the Table 4 row for `version` with `N_r`, `N_μ`, `N_v`,
    /// `N_c`, `k`. `n_r_prime` (the post-pruning K-Means point count) is
    /// conservatively taken as `N_r/10`, the regime the paper reports.
    pub fn for_version(
        version: Version,
        n_r: usize,
        n_mu: usize,
        n_v: usize,
        n_c: usize,
        k: usize,
    ) -> Self {
        let (nr, nmu, nv, nc, k) = (n_r as f64, n_mu as f64, n_v as f64, n_c as f64, k as f64);
        let ncv = nv * nc;
        let nr_prime = nr / 10.0;
        match version {
            Version::Naive => ComplexityEstimate {
                version_label: version.label(),
                construct_flops: ncv * ncv * nr + ncv * nr,
                construct_words: ncv * ncv + nr * ncv,
                diag_flops: ncv * ncv * ncv,
                diag_words: ncv * ncv,
            },
            Version::QrcpIsdf => ComplexityEstimate {
                version_label: version.label(),
                construct_flops: nr * nmu * nmu + nmu * ncv * ncv + nmu * nr * nr,
                construct_words: ncv * ncv + nmu * ncv,
                diag_flops: ncv * ncv * ncv,
                diag_words: ncv * ncv,
            },
            Version::KmeansIsdf => ComplexityEstimate {
                version_label: version.label(),
                construct_flops: nr * nmu * nmu + nmu * ncv * ncv + nmu * nr_prime * nr_prime,
                construct_words: ncv * ncv + nmu * ncv,
                diag_flops: ncv * ncv * ncv,
                diag_words: ncv * ncv,
            },
            Version::KmeansIsdfLobpcg => ComplexityEstimate {
                version_label: version.label(),
                construct_flops: nr * nmu * nmu + nmu * ncv * ncv + nmu * nr_prime * nr_prime,
                construct_words: ncv * ncv + nmu * ncv,
                diag_flops: k * ncv * ncv,
                diag_words: ncv * ncv,
            },
            Version::ImplicitKmeansIsdfLobpcg => ComplexityEstimate {
                version_label: version.label(),
                construct_flops: nr * nmu * nmu + nmu * ncv + nmu * nr_prime * nr_prime,
                construct_words: ncv + nmu * ncv,
                diag_flops: k * nmu * ncv,
                diag_words: nmu * nmu,
            },
        }
    }

    /// Total estimated flops.
    pub fn total_flops(&self) -> f64 {
        self.construct_flops + self.diag_flops
    }

    /// Total estimated memory in bytes (f64).
    pub fn total_bytes(&self) -> f64 {
        8.0 * (self.construct_words + self.diag_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper regime: N_r = 1000·N_e, N_μ = 10·N_e, N_v = N_c = N_e, k ≪ N_e.
    fn paper_dims(ne: usize) -> (usize, usize, usize, usize, usize) {
        (1000 * ne, 10 * ne, ne, ne, 8)
    }

    #[test]
    fn implicit_version_is_cheapest_in_both_phases() {
        let (nr, nmu, nv, nc, k) = paper_dims(64);
        let naive = ComplexityEstimate::for_version(Version::Naive, nr, nmu, nv, nc, k);
        let imp =
            ComplexityEstimate::for_version(Version::ImplicitKmeansIsdfLobpcg, nr, nmu, nv, nc, k);
        assert!(imp.construct_flops < naive.construct_flops);
        assert!(imp.diag_flops < naive.diag_flops);
        assert!(imp.total_bytes() < naive.total_bytes());
    }

    #[test]
    fn paper_two_orders_of_magnitude_claim() {
        // "reduce the cost of computation and memory by nearly 2 orders of
        // magnitude" — check the model reproduces ≥ 50× at N_e = 128.
        let (nr, nmu, nv, nc, k) = paper_dims(128);
        let naive = ComplexityEstimate::for_version(Version::Naive, nr, nmu, nv, nc, k);
        let imp =
            ComplexityEstimate::for_version(Version::ImplicitKmeansIsdfLobpcg, nr, nmu, nv, nc, k);
        let flop_ratio = naive.total_flops() / imp.total_flops();
        assert!(flop_ratio > 50.0, "flop ratio {flop_ratio}");
    }

    #[test]
    fn kmeans_cheaper_than_qrcp_selection() {
        let (nr, nmu, nv, nc, k) = paper_dims(64);
        let qr = ComplexityEstimate::for_version(Version::QrcpIsdf, nr, nmu, nv, nc, k);
        let km = ComplexityEstimate::for_version(Version::KmeansIsdf, nr, nmu, nv, nc, k);
        assert!(km.construct_flops < qr.construct_flops);
    }

    #[test]
    fn lobpcg_reduces_diag_phase() {
        let (nr, nmu, nv, nc, k) = paper_dims(32);
        let dense = ComplexityEstimate::for_version(Version::KmeansIsdf, nr, nmu, nv, nc, k);
        let iter = ComplexityEstimate::for_version(Version::KmeansIsdfLobpcg, nr, nmu, nv, nc, k);
        assert!(iter.diag_flops < dense.diag_flops);
        // but same construction cost
        assert_eq!(iter.construct_flops, dense.construct_flops);
    }

    #[test]
    fn memory_drop_is_ncv_squared_to_nmu_squared() {
        let (nr, nmu, nv, nc, k) = paper_dims(64);
        let dense = ComplexityEstimate::for_version(Version::KmeansIsdfLobpcg, nr, nmu, nv, nc, k);
        let imp =
            ComplexityEstimate::for_version(Version::ImplicitKmeansIsdfLobpcg, nr, nmu, nv, nc, k);
        assert_eq!(dense.diag_words, (nv * nc * nv * nc) as f64);
        assert_eq!(imp.diag_words, (nmu * nmu) as f64);
    }
}
