//! # lrtddft — linear-response TDDFT with K-Means ISDF low-rank compression
//!
//! Rust reproduction of *"Accelerating Parallel First-Principles
//! Excited-State Calculation by Low-Rank Approximation with K-Means
//! Clustering"* (ICPP '22). The crate solves the Casida equation in the
//! Tamm–Dancoff approximation,
//!
//! ```text
//! H = D + 2 V_Hxc,     H x_i = λ_i x_i              (paper Eq. 2)
//! D(i_v i_c, j_v j_c) = (ε_{i_c} − ε_{i_v}) δ δ
//! V_Hxc = P_vcᵀ f_Hxc P_vc                           (paper Eq. 3)
//! ```
//!
//! in five versions of increasing sophistication (paper Table 4):
//!
//! 1. [`Version::Naive`] — explicit `P_vc`, dense `V_Hxc`, full `SYEV`;
//! 2. [`Version::QrcpIsdf`] — ISDF with QRCP points, dense eigensolve;
//! 3. [`Version::KmeansIsdf`] — ISDF with K-Means points, dense eigensolve;
//! 4. [`Version::KmeansIsdfLobpcg`] — explicit low-rank `H`, iterative
//!    LOBPCG for the lowest `k` excitations;
//! 5. [`Version::ImplicitKmeansIsdfLobpcg`] — matrix-free
//!    `H·X = D∘X + 2Cᵀ(Ṽ_Hxc(C·X))`, never forming the `N_cv × N_cv`
//!    Hamiltonian.
//!
//! [`parallel`] reproduces the paper's MPI pipeline (Algorithm 1) on the
//! simulated-MPI runtime: row/column-block redistributions via `Alltoallv`,
//! distributed weighted K-Means, and the pipelined GEMM+`Reduce` overlap of
//! paper Figs. 4–5.

pub mod analysis;
pub mod kernel;
pub mod lobpcg_driver;
pub mod metrics;
pub mod naive;
pub mod options;
pub mod parallel;
pub mod parallel_eig;
pub mod pipeline;
pub mod problem;
pub mod rank;
pub mod recover;
pub mod solver;
pub mod spectrum;
pub mod timers;
pub mod versions;

pub use analysis::{analyze_states, describe_state, StateCharacter};
pub use kernel::HxcKernel;
pub use metrics::ComplexityEstimate;
pub use naive::{build_dense_hamiltonian, solve_naive};
pub use problem::{silicon_like_problem, synthetic_problem, CasidaProblem, KernelKind};
pub use options::{Eig, FusionPolicy, KernelChoice, Precision, SolveOptions};
pub use rank::IsdfRank;
pub use recover::degrade;
pub use solver::{Solver, SolverBuilder};
pub use spectrum::{
    absorption_spectrum, oscillator_strengths, transition_dipoles, try_absorption_spectrum,
    try_oscillator_strengths,
};
pub use timers::StageTimings;
pub use versions::{
    build_isdf_hamiltonian, try_build_isdf_hamiltonian, IsdfHamiltonian, MixedIsdfHamiltonian,
    PointSelector, Solution, Version, FIT_RESIDUAL_GUARD,
};
pub use faultkit::{CommError, NumericalError, SolveError};
