//! Self-healing solver ladders: the `Result`-returning solve entry point.
//!
//! `SolveOptions::run` (reached through [`crate::Solver::solve`]) executes
//! the solve pipeline, reports failures as typed [`SolveError`]s, and heals
//! transient ones along two ladders:
//!
//! * **build ladder** — the ISDF Hamiltonian assembly
//!   ([`try_build_isdf_hamiltonian`]) already recovers point starvation and
//!   fit-residual breaches internally; a typed failure that still escapes
//!   (poisoned factors, non-SPD Gram) gets one clean rebuild — injected
//!   faults are one-shot, so the retry runs pristine — before
//!   [`SolveError::LadderExhausted`].
//! * **eigensolver ladder** — LOBPCG breakdown → resume from the last-good
//!   checkpointed iterate → clean restart (same seed) → block Davidson →
//!   dense SYEV floor. The dense floor always succeeds, so versions 4–5
//!   degrade gracefully to version 3 cost instead of panicking.
//!
//! Every rung taken is recorded in [`Solution::recovery`] so campaigns (and
//! users) can see *how* a solve healed, not just that it did.
//!
//! The fault-free path is bitwise-identical to the pre-ladder solver: rung 1
//! performs exactly the operations the old code performed, and later rungs
//! only engage after a failure.

use crate::lobpcg_driver::{casida_preconditioner, initial_guess, solve_casida_lobpcg};
use crate::metrics::ComplexityEstimate;
use crate::naive::solve_naive;
use crate::options::{Eig, Precision, SolveOptions};
use crate::rank::IsdfRank;
use crate::problem::CasidaProblem;
use crate::timers::StageTimings;
use crate::versions::{
    try_build_isdf_hamiltonian, IsdfHamiltonian, PointSelector, Solution, Version,
};
use faultkit::SolveError;
use mathkit::davidson::{davidson, DavidsonOptions};
use mathkit::gemm::{gemm, Transpose};
use mathkit::lobpcg::{
    lobpcg, lobpcg_refined, LobpcgOptions, LobpcgResult, LOBPCG_CHECKPOINT,
};
use mathkit::{syev, Mat};
use std::time::Instant;

/// Inner tolerance of the mixed-precision refined solve: loose enough that
/// f32 storage (~1e-7 relative operator error) can reach it, tight enough
/// that the f64 polish only needs a few iterations.
const MIXED_INNER_TOL: f64 = 1e-6;

impl SolveOptions {
    /// Solve `problem` with the requested `version`, healing transient
    /// failures through the recovery ladders and reporting unrecoverable
    /// ones as typed errors.
    ///
    /// On a clean run this is bitwise-identical to the pre-ladder solver;
    /// rungs taken are listed in [`Solution::recovery`]. External callers
    /// reach this through the [`crate::Solver`] facade.
    pub(crate) fn run(
        &self,
        problem: &CasidaProblem,
        version: Version,
    ) -> Result<Solution, SolveError> {
        let mut timings = StageTimings::default();
        let mut recovery = Vec::new();
        // A degraded option set must never produce a silently-degraded
        // answer: the marker lands in the recovery log before anything runs.
        if let Some(label) = self.degraded {
            recovery.push(format!("degraded: {label}"));
        }
        let k = self.n_states.min(problem.n_cv());
        let n_mu = self.rank.resolve(problem.n_r(), problem.n_v(), problem.n_c());
        let complexity = ComplexityEstimate::for_version(
            version,
            problem.n_r(),
            n_mu,
            problem.n_v(),
            problem.n_c(),
            k,
        );

        match version {
            Version::Naive => {
                let (energies, coefficients) = solve_naive(problem, k, &mut timings);
                Ok(Solution {
                    energies,
                    coefficients,
                    timings,
                    n_mu: 0,
                    lobpcg_iterations: None,
                    complexity,
                    recovery,
                })
            }
            Version::QrcpIsdf | Version::KmeansIsdf => {
                let selector = if version == Version::QrcpIsdf {
                    PointSelector::Qrcp
                } else {
                    PointSelector::Kmeans(isdf::KmeansOptions {
                        seed: self.seed,
                        ..Default::default()
                    })
                };
                let ham = build_ladder(problem, selector, n_mu, &mut timings, &mut recovery)?;
                let sp = obskit::span(obskit::Stage::Diag, "diag.syev");
                let t0 = Instant::now();
                let h = ham.to_dense();
                let eig = syev(&h);
                timings.diag += t0.elapsed().as_secs_f64();
                drop(sp);
                let cols: Vec<usize> = (0..k).collect();
                Ok(Solution {
                    energies: eig.values[..k].to_vec(),
                    coefficients: eig.vectors.select_cols(&cols),
                    timings,
                    n_mu,
                    lobpcg_iterations: None,
                    complexity,
                    recovery,
                })
            }
            Version::KmeansIsdfLobpcg | Version::ImplicitKmeansIsdfLobpcg => {
                let selector = PointSelector::Kmeans(isdf::KmeansOptions {
                    seed: self.seed,
                    ..Default::default()
                });
                let ham = build_ladder(problem, selector, n_mu, &mut timings, &mut recovery)?;
                let sp = obskit::span(obskit::Stage::Diag, "diag.lobpcg");
                let t0 = Instant::now();
                let res = if version == Version::KmeansIsdfLobpcg {
                    // Explicit H, iterative eigensolve (Table 4 row 4).
                    let h = ham.to_dense();
                    let apply = |x: &Mat| {
                        let mut y = Mat::zeros(h.nrows(), x.ncols());
                        gemm(1.0, &h, Transpose::No, x, Transpose::No, 0.0, &mut y);
                        y
                    };
                    let mixed = if self.precision == Precision::MixedRefined {
                        mixed_refined(&ham, apply, k, self.lobpcg, self.seed, &mut recovery)
                    } else {
                        None
                    };
                    match mixed {
                        Some(res) => res,
                        None => eig_ladder(
                            apply,
                            || h.clone(),
                            &ham.diag_d,
                            k,
                            self.lobpcg,
                            self.seed,
                            &mut recovery,
                        ),
                    }
                } else {
                    // Matrix-free (Table 4 row 5): H never materialized
                    // unless the ladder bottoms out at the dense floor.
                    let apply = |x: &Mat| ham.apply(x);
                    let mixed = if self.precision == Precision::MixedRefined {
                        mixed_refined(&ham, apply, k, self.lobpcg, self.seed, &mut recovery)
                    } else {
                        None
                    };
                    match mixed {
                        Some(res) => res,
                        None => eig_ladder(
                            apply,
                            || ham.to_dense(),
                            &ham.diag_d,
                            k,
                            self.lobpcg,
                            self.seed,
                            &mut recovery,
                        ),
                    }
                };
                timings.diag += t0.elapsed().as_secs_f64();
                drop(sp);
                Ok(Solution {
                    energies: res.values,
                    coefficients: res.vectors,
                    timings,
                    n_mu,
                    lobpcg_iterations: Some(res.iterations),
                    complexity,
                    recovery,
                })
            }
        }
    }
}

/// One rung down the graceful-degradation ladder: the next-cheaper
/// configuration for `opts` at `problem`'s dimensions, or `None` when every
/// rung has been taken. This is what the serving scheduler walks under
/// deadline pressure or for a circuit-breaker half-open probe; a direct
/// caller can walk it too. Rungs, in order:
///
/// 1. `Full` → [`Precision::MixedRefined`] — f32-storage inner LOBPCG
///    iterations with an f64 polish (serial LOBPCG path; the distributed
///    path ignores precision, so the served scheduler pairs this rung with
///    the next one);
/// 2. ISDF rank dropped to the `min(N_r, N_v·N_c)` floor — the cheapest
///    basis that still spans the transition space;
/// 3. LOBPCG → the direct dense finisher ([`Eig::Syev`]) — skips iterative
///    work entirely and lands where the PR-5 eig ladder
///    (Davidson → dense SYEV) would bottom out, without burning the
///    iterations first.
///
/// Every rung stamps [`SolveOptions::degraded`], so the downgrade is
/// recorded in `Solution::recovery` and job outcomes — never silent.
pub fn degrade(opts: &SolveOptions, problem: &CasidaProblem) -> Option<SolveOptions> {
    if opts.precision == Precision::Full {
        return Some(opts.precision(Precision::MixedRefined).degraded("mixed-precision"));
    }
    let floor = (problem.n_v() * problem.n_c()).min(problem.n_r()).max(1);
    if opts.rank.resolve(problem.n_r(), problem.n_v(), problem.n_c()) > floor {
        return Some(opts.rank(IsdfRank::Fixed(floor)).degraded("rank-floor"));
    }
    if opts.eigensolver == Eig::Lobpcg {
        return Some(opts.eigensolver(Eig::Syev).degraded("direct-eig"));
    }
    None
}

/// ISDF-build ladder: one typed failure earns one clean rebuild (injected
/// faults are one-shot, so the retry is pristine); a second failure is
/// [`SolveError::LadderExhausted`].
fn build_ladder(
    problem: &CasidaProblem,
    selector: PointSelector,
    n_mu: usize,
    timings: &mut StageTimings,
    recovery: &mut Vec<String>,
) -> Result<IsdfHamiltonian, SolveError> {
    let first = match try_build_isdf_hamiltonian(problem, selector, n_mu, timings, recovery) {
        Ok(ham) => return Ok(ham),
        Err(e) => e,
    };
    // Let registered observers (e.g. the flight-recorder dump in `repro`)
    // capture the failure context before the rebuild overwrites it.
    faultkit::notify_solve_error(&first);
    recovery.push(format!("isdf.build: {first}; clean rebuild"));
    match try_build_isdf_hamiltonian(problem, selector, n_mu, timings, recovery) {
        Ok(ham) => Ok(ham),
        Err(second) => {
            let err = SolveError::LadderExhausted {
                stage: "isdf.build",
                attempts: vec![first.to_string(), second.to_string()],
            };
            faultkit::notify_solve_error(&err);
            Err(err)
        }
    }
}

/// Mixed-precision refined solve (`Precision::MixedRefined`): inner LOBPCG
/// iterations apply the f32-storage [`crate::versions::MixedIsdfHamiltonian`]
/// (f64-accumulating GEMMs) down to [`MIXED_INNER_TOL`], then a full-f64
/// polish continues from the inner eigenvectors to `opts.tol`.
///
/// Returns `None` — with the failure recorded in `recovery` — when
/// refinement breaks down or the polish does not converge; the caller then
/// falls back to the full-precision [`eig_ladder`], so `MixedRefined` never
/// sacrifices robustness, only (on the happy path) f64 inner iterations.
fn mixed_refined<FA>(
    ham: &IsdfHamiltonian,
    apply: FA,
    k: usize,
    opts: LobpcgOptions,
    seed: u64,
    recovery: &mut Vec<String>,
) -> Option<LobpcgResult>
where
    FA: Fn(&Mat) -> Mat,
{
    let low = ham.to_mixed();
    let x0 = initial_guess(&ham.diag_d, k, seed);
    let pre = casida_preconditioner(&ham.diag_d, 1e-3);
    match lobpcg_refined(|x| low.apply(x), &apply, pre, &x0, MIXED_INNER_TOL, opts) {
        Ok(r) if r.result.converged => Some(r.result),
        Ok(r) => {
            recovery.push(format!(
                "mixed: refined solve unconverged (residual {:.3e}); falling back to full precision",
                r.result.residual
            ));
            None
        }
        Err(e) => {
            faultkit::notify_solve_error(&e);
            recovery.push(format!("mixed: {e}; falling back to full precision"));
            None
        }
    }
}

/// Eigensolver ladder for the LOBPCG versions:
///
/// 1. LOBPCG with the paper's guess/preconditioner (the historical path),
/// 2. on breakdown: resume from the last-good checkpointed iterate,
/// 3. on failure: clean restart from the seeded guess (faults are one-shot),
/// 4. on honest non-convergence or repeated breakdown: block Davidson,
/// 5. floor: dense SYEV of the materialized `H` — always succeeds.
///
/// Returns the first converged result; rungs taken are appended to
/// `recovery`. Infallible by construction (the floor cannot fail).
fn eig_ladder<FA, FD>(
    apply: FA,
    dense: FD,
    diag_d: &[f64],
    k: usize,
    opts: LobpcgOptions,
    seed: u64,
    recovery: &mut Vec<String>,
) -> LobpcgResult
where
    FA: Fn(&Mat) -> Mat,
    FD: FnOnce() -> Mat,
{
    // Stale checkpoints from an earlier solve on this thread must not leak
    // into this ladder's resume rung.
    faultkit::checkpoint_clear();

    // Rung 1: the historical path. A clean run returns here, bit-for-bit.
    match solve_casida_lobpcg(&apply, diag_d, k, opts, seed) {
        Ok(res) if res.converged => return res,
        Ok(res) => {
            recovery.push(format!(
                "lobpcg: no convergence in {} iterations (residual {:.3e}), escalating to davidson",
                res.iterations, res.residual
            ));
        }
        Err(e) => {
            faultkit::notify_solve_error(&e);
            recovery.push(format!("lobpcg: {e}"));

            // Rung 2: resume from the last-good iterate deposited before the
            // breakdown. The faulting occurrence was consumed, so the resumed
            // run sees clean arithmetic.
            let resumed = faultkit::checkpoint_take(LOBPCG_CHECKPOINT)
                .filter(|cp| cp.rows == diag_d.len() && cp.cols == k)
                .and_then(|cp| {
                    let label = format!(
                        "lobpcg: resumed from checkpoint at iteration {}",
                        cp.iteration
                    );
                    let x0 = Mat::from_vec(cp.rows, cp.cols, cp.data);
                    let pre = casida_preconditioner(diag_d, 1e-3);
                    match lobpcg(&apply, pre, &x0, opts) {
                        Ok(res) if res.converged => Some((label, res)),
                        _ => None,
                    }
                });
            if let Some((label, res)) = resumed {
                recovery.push(label);
                return res;
            }

            // Rung 3: clean restart from the seeded guess.
            recovery.push("lobpcg: checkpoint resume unavailable or failed, clean restart".into());
            match solve_casida_lobpcg(&apply, diag_d, k, opts, seed) {
                Ok(res) if res.converged => {
                    recovery.push("lobpcg: clean restart converged".into());
                    return res;
                }
                Ok(res) => recovery.push(format!(
                    "lobpcg: clean restart unconverged (residual {:.3e}), escalating to davidson",
                    res.residual
                )),
                Err(e2) => recovery.push(format!("lobpcg: clean restart failed ({e2}), escalating to davidson")),
            }
        }
    }

    // Rung 4: block Davidson — a different subspace method (paper §1 names
    // both as viable), often converging where LOBPCG soft-locks.
    let x0 = initial_guess(diag_d, k, seed);
    let pre = casida_preconditioner(diag_d, 1e-3);
    let dav = davidson(&apply, pre, &x0, DavidsonOptions { base: opts, max_space: 0 });
    if dav.converged {
        recovery.push(format!("davidson: converged in {} iterations", dav.iterations));
        return dav;
    }
    recovery.push(format!(
        "davidson: unconverged (residual {:.3e}), dense fallback",
        dav.residual
    ));

    // Rung 5: dense floor. Version-3 cost, but exact and unconditional.
    let eig = syev(&dense());
    let cols: Vec<usize> = (0..k).collect();
    recovery.push("dense: syev floor".into());
    LobpcgResult {
        values: eig.values[..k].to_vec(),
        vectors: eig.vectors.select_cols(&cols),
        iterations: 0,
        residual: 0.0,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic_problem;
    use crate::rank::IsdfRank;
    use faultkit::{arm, FaultKind, FaultPlan, NumericalError};

    fn opts(p: &CasidaProblem) -> SolveOptions {
        SolveOptions::new().rank(IsdfRank::Fixed(p.n_cv()))
    }

    #[test]
    fn clean_run_has_empty_recovery_log() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        for v in Version::all() {
            let s = opts(&p).run(&p, v).expect("clean run");
            assert!(s.recovery.is_empty(), "{v:?}: {:?}", s.recovery);
        }
    }

    #[test]
    fn degraded_marker_lands_in_recovery_before_anything_runs() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let s = opts(&p)
            .degraded("rank-floor")
            .run(&p, Version::KmeansIsdf)
            .expect("degraded run solves");
        assert_eq!(s.recovery.first().map(String::as_str), Some("degraded: rank-floor"));
    }

    #[test]
    fn degrade_ladder_walks_precision_then_rank_then_eigensolver() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p).eigensolver(Eig::Lobpcg);
        let first = crate::recover::degrade(&o, &p).expect("full precision has a rung");
        assert_eq!(first.degraded, Some("mixed-precision"));
        assert_eq!(first.precision, Precision::MixedRefined);
        let mut cur = first;
        let mut labels = vec![cur.degraded.unwrap()];
        while let Some(next) = crate::recover::degrade(&cur, &p) {
            labels.push(next.degraded.unwrap());
            cur = next;
        }
        assert_eq!(labels.last().copied(), Some("direct-eig"), "{labels:?}");
        assert_eq!(cur.eigensolver, Eig::Syev);
        assert!(
            crate::recover::degrade(&cur, &p).is_none(),
            "ladder floor reached: no further downgrade"
        );
    }

    #[test]
    fn mixed_refined_matches_full_precision_eigenvalues() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p);
        for v in [Version::KmeansIsdfLobpcg, Version::ImplicitKmeansIsdfLobpcg] {
            let full = o.run(&p, v).expect("full precision");
            let mixed = o
                .precision(crate::options::Precision::MixedRefined)
                .run(&p, v)
                .expect("mixed refined");
            assert!(
                mixed.recovery.is_empty(),
                "{v:?}: clean mixed solve must not take recovery rungs: {:?}",
                mixed.recovery
            );
            for (a, b) in full.energies.iter().zip(&mixed.energies) {
                assert!(
                    (a - b).abs() <= 1e-8,
                    "{v:?}: mixed {b} vs full {a} differ by {:.3e}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn mixed_refined_breakdown_falls_back_to_full_ladder() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p).precision(crate::options::Precision::MixedRefined);
        let baseline = opts(&p).run(&p, Version::ImplicitKmeansIsdfLobpcg).expect("baseline");
        // Poison the first LOBPCG search direction: the mixed inner solve
        // breaks down, the fallback runs the full-f64 ladder (the fault is
        // one-shot, so rung 1 of the ladder is clean).
        let campaign = arm(FaultPlan::new(21).with("lobpcg.w", 0, FaultKind::NanPoison));
        let healed = o.run(&p, Version::ImplicitKmeansIsdfLobpcg).expect("fallback heals");
        assert_eq!(campaign.fired(), 1);
        assert!(
            healed.recovery.iter().any(|r| r.contains("falling back to full precision")),
            "recovery log: {:?}",
            healed.recovery
        );
        for (a, b) in baseline.energies.iter().zip(&healed.energies) {
            assert!((a - b).abs() < 1e-8, "recovered {b} vs baseline {a}");
        }
    }

    #[test]
    fn full_precision_path_unchanged_by_precision_knob_default() {
        // Guard the contract: a default-options run must be bitwise identical
        // whether or not the Precision field exists — i.e. Full is untouched.
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p);
        let a = o.run(&p, Version::ImplicitKmeansIsdfLobpcg).expect("run a");
        let b = o
            .precision(crate::options::Precision::Full)
            .run(&p, Version::ImplicitKmeansIsdfLobpcg)
            .expect("run b");
        for (x, y) in a.energies.iter().zip(&b.energies) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn poisoned_v_tilde_heals_via_clean_rebuild() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p);
        let baseline = o.run(&p, Version::KmeansIsdf).expect("baseline");
        let campaign = arm(FaultPlan::new(3).with("ham.v_tilde", 0, FaultKind::NanPoison));
        let healed = o.run(&p, Version::KmeansIsdf).expect("ladder heals poison");
        assert_eq!(campaign.fired(), 1);
        assert!(
            healed.recovery.iter().any(|r| r.contains("clean rebuild")),
            "recovery log: {:?}",
            healed.recovery
        );
        for (a, b) in baseline.energies.iter().zip(&healed.energies) {
            assert_eq!(a.to_bits(), b.to_bits(), "recovered energies must match fault-free run");
        }
    }

    #[test]
    fn lobpcg_breakdown_heals_through_ladder() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p);
        let baseline = o.run(&p, Version::ImplicitKmeansIsdfLobpcg).expect("baseline");
        // Poison the LOBPCG search direction on the first iteration: rung 1
        // breaks down, the ladder resumes from the checkpoint or restarts
        // clean (the fault is one-shot, so the retry runs unpoisoned).
        let campaign = arm(FaultPlan::new(11).with("lobpcg.w", 0, FaultKind::NanPoison));
        let healed = o.run(&p, Version::ImplicitKmeansIsdfLobpcg).expect("ladder heals");
        assert_eq!(campaign.fired(), 1);
        assert!(!healed.recovery.is_empty());
        for (a, b) in baseline.energies.iter().zip(&healed.energies) {
            assert!(
                (a - b).abs() < 1e-8,
                "recovered {b} vs fault-free {a}; log {:?}",
                healed.recovery
            );
        }
    }

    #[test]
    fn rank_starvation_recovers_at_full_rank() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p);
        let baseline = o.run(&p, Version::KmeansIsdf).expect("baseline");
        let campaign = arm(FaultPlan::new(5).with("isdf.points", 0, FaultKind::RankStarvation));
        let healed = o.run(&p, Version::KmeansIsdf).expect("re-selection heals");
        assert_eq!(campaign.fired(), 1);
        assert!(
            healed.recovery.iter().any(|r| r.contains("starved")),
            "recovery log: {:?}",
            healed.recovery
        );
        for (a, b) in baseline.energies.iter().zip(&healed.energies) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn unrecoverable_double_fault_surfaces_ladder_exhausted() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let o = opts(&p);
        // Two poisonings of the same site: the clean rebuild eats the second
        // occurrence too, so the build ladder runs out of rungs.
        let _campaign = arm(
            FaultPlan::new(9)
                .with("ham.c", 0, FaultKind::NanPoison)
                .with("ham.c", 1, FaultKind::NanPoison),
        );
        let err = match o.run(&p, Version::KmeansIsdf) {
            Err(e) => e,
            Ok(_) => panic!("double fault must exhaust the build ladder"),
        };
        match err {
            SolveError::LadderExhausted { stage, attempts } => {
                assert_eq!(stage, "isdf.build");
                assert_eq!(attempts.len(), 2);
            }
            other => panic!("expected LadderExhausted, got {other:?}"),
        }
    }

    #[test]
    fn fit_residual_guard_rejects_meaningless_basis() {
        // Direct check of the FitResidual error type through the ladder: a
        // poisoned fit that somehow survives as garbage must not pass the
        // sampled-residual guard. Exercised here via the error Display.
        let e = SolveError::from(NumericalError::FitResidual { residual: 2.0, tolerance: 1.0 });
        assert!(e.to_string().contains("fit residual"));
    }
}
