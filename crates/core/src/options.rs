//! Unified solver configuration.
//!
//! Historically the entry points grew knobs one at a time: `SolverParams`
//! carried the serial settings, `distributed_dense_hamiltonian` took a bare
//! `bool pipelined`, and `distributed_solve_implicit` threaded
//! `(n_mu, k, seed)` positionally. [`SolveOptions`] collapses all of them
//! into one consuming builder shared by the serial ([`crate::solve_with`])
//! and distributed (`crate::parallel::*_with`) entry points:
//!
//! ```
//! use lrtddft::{Eig, SolveOptions};
//! let opts = SolveOptions::new()
//!     .n_states(4)
//!     .pipelined(true)
//!     .eigensolver(Eig::Lobpcg);
//! assert_eq!(opts.n_states, 4);
//! assert!(opts.pipelined);
//! ```

use crate::rank::IsdfRank;
use mathkit::lobpcg::LobpcgOptions;

/// Which eigensolver the distributed solve finishes with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Eig {
    /// Replicated dense SYEV on the materialized factored Hamiltonian —
    /// exact, `O(N_cv³)`, fine while `N_cv` is small.
    Syev,
    /// Distributed matrix-free LOBPCG for the lowest `n_states` — the
    /// paper's Table 4 row (5) path.
    Lobpcg,
}

/// Arithmetic precision of the LOBPCG solve path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Everything in f64 — bitwise identical to the historical solver.
    #[default]
    Full,
    /// Iterative refinement: inner LOBPCG iterations apply an f32-storage
    /// copy of the ISDF factors (f64-accumulating mixed GEMMs), then a short
    /// full-f64 polish drives the residual to `opts.tol`. Falls back to the
    /// full-precision recovery ladder if refinement breaks down or fails to
    /// converge. Only affects the LOBPCG versions; dense-SYEV versions
    /// ignore it.
    MixedRefined,
}

/// Every knob of a serial or distributed LR-TDDFT solve, with a consuming
/// builder. `Default` reproduces the legacy `SolverParams::default()`
/// behavior: 3 states, `IsdfRank::default()` rank policy, 400-iteration
/// LOBPCG at `tol = 1e-8`, seed `0xcafe`, monolithic (non-pipelined)
/// reductions, LOBPCG eigensolver.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Number of excitations to return (`k`).
    pub n_states: usize,
    /// ISDF rank policy.
    pub rank: IsdfRank,
    /// LOBPCG settings (used when the eigensolver is iterative).
    pub lobpcg: LobpcgOptions,
    /// RNG seed (K-Means init, LOBPCG guess dressing).
    pub seed: u64,
    /// Use the pipelined GEMM+`Reduce` overlap schedule (paper Fig. 5) for
    /// the distributed `V_Hxc` / `Ṽ_Hxc` contractions instead of the
    /// monolithic GEMM+`Allreduce`. Bitwise-identical results either way.
    pub pipelined: bool,
    /// Final eigensolver for the distributed solve.
    pub eigensolver: Eig,
    /// Arithmetic precision of the LOBPCG solve path. `Full` (the default)
    /// is bitwise identical to the historical solver; `MixedRefined` runs
    /// f32-storage inner iterations with an f64 polish.
    pub precision: Precision,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            n_states: 3,
            rank: IsdfRank::default(),
            lobpcg: LobpcgOptions { max_iter: 400, tol: 1e-8 },
            seed: 0xcafe,
            pipelined: false,
            eigensolver: Eig::Lobpcg,
            precision: Precision::Full,
        }
    }
}

impl SolveOptions {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of excitations to return.
    pub fn n_states(mut self, k: usize) -> Self {
        self.n_states = k;
        self
    }

    /// ISDF rank policy.
    pub fn rank(mut self, rank: IsdfRank) -> Self {
        self.rank = rank;
        self
    }

    /// LOBPCG iteration/tolerance settings.
    pub fn lobpcg(mut self, opts: LobpcgOptions) -> Self {
        self.lobpcg = opts;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggle the pipelined GEMM+`Reduce` overlap schedule.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Final eigensolver for the distributed solve.
    pub fn eigensolver(mut self, eig: Eig) -> Self {
        self.eigensolver = eig;
        self
    }

    /// Arithmetic precision of the LOBPCG solve path.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }
}

#[allow(deprecated)]
impl From<crate::versions::SolverParams> for SolveOptions {
    fn from(p: crate::versions::SolverParams) -> Self {
        SolveOptions {
            n_states: p.n_states,
            rank: p.rank,
            lobpcg: p.lobpcg,
            seed: p.seed,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let o = SolveOptions::new()
            .n_states(7)
            .rank(IsdfRank::Fixed(12))
            .lobpcg(LobpcgOptions { max_iter: 10, tol: 1e-3 })
            .seed(42)
            .pipelined(true)
            .eigensolver(Eig::Syev)
            .precision(Precision::MixedRefined);
        assert_eq!(o.n_states, 7);
        assert!(matches!(o.rank, IsdfRank::Fixed(12)));
        assert_eq!(o.lobpcg.max_iter, 10);
        assert_eq!(o.seed, 42);
        assert!(o.pipelined);
        assert_eq!(o.eigensolver, Eig::Syev);
        assert_eq!(o.precision, Precision::MixedRefined);
    }

    #[test]
    fn default_precision_is_full() {
        // Full precision must stay the default: the fault-free f64 path is
        // contractually bitwise identical to the historical solver.
        assert_eq!(SolveOptions::default().precision, Precision::Full);
        assert_eq!(Precision::default(), Precision::Full);
    }

    #[test]
    fn defaults_match_legacy_solver_params() {
        #[allow(deprecated)]
        let legacy: SolveOptions = crate::versions::SolverParams::default().into();
        let fresh = SolveOptions::default();
        assert_eq!(legacy.n_states, fresh.n_states);
        assert_eq!(legacy.seed, fresh.seed);
        assert_eq!(legacy.lobpcg.max_iter, fresh.lobpcg.max_iter);
        assert!(!fresh.pipelined);
        assert_eq!(fresh.eigensolver, Eig::Lobpcg);
    }
}
