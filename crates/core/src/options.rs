//! Unified solver configuration.
//!
//! Historically the entry points grew knobs one at a time: `SolverParams`
//! carried the serial settings, `distributed_dense_hamiltonian` took a bare
//! `bool pipelined`, and `distributed_solve_implicit` threaded
//! `(n_mu, k, seed)` positionally. [`SolveOptions`] collapses all of them
//! into one consuming builder shared by the serial and distributed entry
//! points, fronted by [`crate::Solver`]:
//!
//! ```
//! use lrtddft::{Eig, SolveOptions};
//! let opts = SolveOptions::new()
//!     .n_states(4)
//!     .pipelined(true)
//!     .eigensolver(Eig::Lobpcg);
//! assert_eq!(opts.n_states, 4);
//! assert!(opts.pipelined);
//! ```
//!
//! Runtime knobs that used to be env-only (`MATHKIT_KERNEL`,
//! `PARCOMM_NO_FUSE`) now have typed equivalents ([`KernelChoice`],
//! [`FusionPolicy`]); the env vars remain as overrides that win over the
//! programmatic setting, so CI's fallback matrices keep working unchanged.

use crate::rank::IsdfRank;
use mathkit::lobpcg::LobpcgOptions;

/// Which eigensolver the distributed solve finishes with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Eig {
    /// Replicated dense SYEV on the materialized factored Hamiltonian —
    /// exact, `O(N_cv³)`, fine while `N_cv` is small.
    Syev,
    /// Distributed matrix-free LOBPCG for the lowest `n_states` — the
    /// paper's Table 4 row (5) path.
    Lobpcg,
}

/// Arithmetic precision of the LOBPCG solve path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Everything in f64 — bitwise identical to the historical solver.
    #[default]
    Full,
    /// Iterative refinement: inner LOBPCG iterations apply an f32-storage
    /// copy of the ISDF factors (f64-accumulating mixed GEMMs), then a short
    /// full-f64 polish drives the residual to `opts.tol`. Falls back to the
    /// full-precision recovery ladder if refinement breaks down or fails to
    /// converge. Only affects the LOBPCG versions; dense-SYEV versions
    /// ignore it.
    MixedRefined,
}

/// Which dense-kernel SIMD path mathkit dispatches to — the typed
/// equivalent of the `MATHKIT_KERNEL` env var (which, when set, wins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelChoice {
    /// Runtime CPU detection picks the best available path.
    #[default]
    Auto,
    /// Force the AVX2+FMA microkernels (panics at dispatch if the CPU
    /// can't run them).
    Avx2,
    /// Force the portable scalar reference kernels.
    Scalar,
}

/// Whether batched reductions fuse into one collective — the typed
/// equivalent of the `PARCOMM_NO_FUSE` env var (which, when set, wins).
/// Fused and unfused schedules are bitwise identical; unfused pays one
/// latency (α) per field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Fuse pending same-op reductions into one wire collective (default).
    #[default]
    Fused,
    /// One collective per field — the reference schedule CI exercises via
    /// `PARCOMM_NO_FUSE=1`.
    Unfused,
}

/// Every knob of a serial or distributed LR-TDDFT solve, with a consuming
/// builder. `Default` reproduces the legacy `SolverParams::default()`
/// behavior: 3 states, `IsdfRank::default()` rank policy, 400-iteration
/// LOBPCG at `tol = 1e-8`, seed `0xcafe`, monolithic (non-pipelined)
/// reductions, LOBPCG eigensolver.
///
/// Non-exhaustive: construct via [`SolveOptions::new`] (or
/// [`crate::Solver::builder`]) and the builder methods, not a struct
/// literal, so future knobs can land without breaking downstream code.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SolveOptions {
    /// Number of excitations to return (`k`).
    pub n_states: usize,
    /// ISDF rank policy.
    pub rank: IsdfRank,
    /// LOBPCG settings (used when the eigensolver is iterative).
    pub lobpcg: LobpcgOptions,
    /// RNG seed (K-Means init, LOBPCG guess dressing).
    pub seed: u64,
    /// Use the pipelined GEMM+`Reduce` overlap schedule (paper Fig. 5) for
    /// the distributed `V_Hxc` / `Ṽ_Hxc` contractions instead of the
    /// monolithic GEMM+`Allreduce`. Bitwise-identical results either way.
    pub pipelined: bool,
    /// Final eigensolver for the distributed solve.
    pub eigensolver: Eig,
    /// Arithmetic precision of the LOBPCG solve path. `Full` (the default)
    /// is bitwise identical to the historical solver; `MixedRefined` runs
    /// f32-storage inner iterations with an f64 polish.
    pub precision: Precision,
    /// SIMD kernel dispatch policy (`MATHKIT_KERNEL` env wins when set).
    pub kernel: KernelChoice,
    /// Reduction fusion policy (`PARCOMM_NO_FUSE` env wins when set).
    pub fusion: FusionPolicy,
    /// Degradation marker. `Some(label)` means this option set is a
    /// deliberate downgrade to a cheaper configuration (one rung of
    /// [`crate::recover::degrade`], applied by the serving scheduler under
    /// deadline pressure or a circuit-breaker probe); the label is recorded
    /// in `Solution::recovery` so a degraded answer is never silent. `None`
    /// (the default) leaves the clean path untouched.
    pub degraded: Option<&'static str>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            n_states: 3,
            rank: IsdfRank::default(),
            lobpcg: LobpcgOptions { max_iter: 400, tol: 1e-8 },
            seed: 0xcafe,
            pipelined: false,
            eigensolver: Eig::Lobpcg,
            precision: Precision::Full,
            kernel: KernelChoice::Auto,
            fusion: FusionPolicy::Fused,
            degraded: None,
        }
    }
}

impl SolveOptions {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of excitations to return.
    pub fn n_states(mut self, k: usize) -> Self {
        self.n_states = k;
        self
    }

    /// ISDF rank policy.
    pub fn rank(mut self, rank: IsdfRank) -> Self {
        self.rank = rank;
        self
    }

    /// LOBPCG iteration/tolerance settings.
    pub fn lobpcg(mut self, opts: LobpcgOptions) -> Self {
        self.lobpcg = opts;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggle the pipelined GEMM+`Reduce` overlap schedule.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Final eigensolver for the distributed solve.
    pub fn eigensolver(mut self, eig: Eig) -> Self {
        self.eigensolver = eig;
        self
    }

    /// Arithmetic precision of the LOBPCG solve path.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// SIMD kernel dispatch policy. Programmatic equivalent of
    /// `MATHKIT_KERNEL`; the env var, when set, overrides this.
    pub fn kernel(mut self, k: KernelChoice) -> Self {
        self.kernel = k;
        self
    }

    /// Reduction fusion policy. Programmatic equivalent of
    /// `PARCOMM_NO_FUSE`; the env var, when set, overrides this.
    pub fn fusion(mut self, f: FusionPolicy) -> Self {
        self.fusion = f;
        self
    }

    /// Mark this option set as a deliberate downgrade (see
    /// [`SolveOptions::degraded`]). The label lands in `Solution::recovery`.
    pub fn degraded(mut self, label: &'static str) -> Self {
        self.degraded = Some(label);
        self
    }

    /// Push the process-wide runtime knobs ([`KernelChoice`],
    /// [`FusionPolicy`]) into mathkit / parcomm. Env vars win: when
    /// `MATHKIT_KERNEL` or `PARCOMM_NO_FUSE` is set the corresponding
    /// programmatic setting is ignored, so CI's scalar-fallback and
    /// unfused-fallback matrices override whatever a caller hard-coded.
    ///
    /// Called by the [`crate::Solver`] facade before every solve. These are
    /// process-wide switches — concurrent solves wanting different policies
    /// should agree or accept last-writer-wins.
    pub fn apply_runtime_knobs(&self) {
        if std::env::var("MATHKIT_KERNEL").is_err() {
            match self.kernel {
                KernelChoice::Auto => mathkit::force_kernel(None),
                KernelChoice::Avx2 => mathkit::force_kernel(Some(mathkit::Kernel::Avx2)),
                KernelChoice::Scalar => mathkit::force_kernel(Some(mathkit::Kernel::Scalar)),
            }
        }
        if std::env::var("PARCOMM_NO_FUSE").is_err() {
            parcomm::set_fusion_enabled(self.fusion == FusionPolicy::Fused);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let o = SolveOptions::new()
            .n_states(7)
            .rank(IsdfRank::Fixed(12))
            .lobpcg(LobpcgOptions { max_iter: 10, tol: 1e-3 })
            .seed(42)
            .pipelined(true)
            .eigensolver(Eig::Syev)
            .precision(Precision::MixedRefined)
            .kernel(KernelChoice::Scalar)
            .fusion(FusionPolicy::Unfused)
            .degraded("rank-floor");
        assert_eq!(o.n_states, 7);
        assert!(matches!(o.rank, IsdfRank::Fixed(12)));
        assert_eq!(o.lobpcg.max_iter, 10);
        assert_eq!(o.seed, 42);
        assert!(o.pipelined);
        assert_eq!(o.eigensolver, Eig::Syev);
        assert_eq!(o.precision, Precision::MixedRefined);
        assert_eq!(o.kernel, KernelChoice::Scalar);
        assert_eq!(o.fusion, FusionPolicy::Unfused);
        assert_eq!(o.degraded, Some("rank-floor"));
        assert_eq!(SolveOptions::default().degraded, None);
    }

    #[test]
    fn default_precision_is_full() {
        // Full precision must stay the default: the fault-free f64 path is
        // contractually bitwise identical to the historical solver.
        assert_eq!(SolveOptions::default().precision, Precision::Full);
        assert_eq!(Precision::default(), Precision::Full);
    }

    #[test]
    fn defaults_match_legacy_solver_params() {
        // Pin the legacy `SolverParams::default()` behaviour the docs
        // promise: 3 states, seed 0xcafe, 400-iter LOBPCG, monolithic
        // reductions.
        let fresh = SolveOptions::default();
        assert_eq!(fresh.n_states, 3);
        assert_eq!(fresh.seed, 0xcafe);
        assert_eq!(fresh.lobpcg.max_iter, 400);
        assert!(!fresh.pipelined);
        assert_eq!(fresh.eigensolver, Eig::Lobpcg);
        assert_eq!(fresh.kernel, KernelChoice::Auto);
        assert_eq!(fresh.fusion, FusionPolicy::Fused);
    }

    #[test]
    fn runtime_knobs_round_trip_when_env_unset() {
        // Serialized with other kernel/fusion togglers via env checks: if
        // either env var is set this test degrades to a no-op assertion.
        if std::env::var("MATHKIT_KERNEL").is_ok() || std::env::var("PARCOMM_NO_FUSE").is_ok() {
            return;
        }
        SolveOptions::new().fusion(FusionPolicy::Unfused).apply_runtime_knobs();
        assert!(!parcomm::fusion_enabled());
        SolveOptions::new().apply_runtime_knobs();
        assert!(parcomm::fusion_enabled());
        assert_eq!(SolveOptions::default().kernel, KernelChoice::Auto);
    }
}
