//! The `Solver` facade — one front door for every way to run a solve.
//!
//! Historically callers picked between `solve_with` (serial, panicking),
//! `SolveOptions::run` (serial, fallible), and `distributed_solve_with`
//! (SPMD), each configured slightly differently. [`Solver`] subsumes them:
//! build one with [`Solver::builder`], then call [`Solver::solve`] for a
//! serial solve or [`Solver::solve_distributed`] inside an SPMD region.
//!
//! ```
//! use lrtddft::{Solver, Version};
//! let solver = Solver::builder()
//!     .version(Version::KmeansIsdf)
//!     .n_states(2)
//!     .build();
//! let problem = lrtddft::synthetic_problem([8, 8, 8], 6.0, 2, 2);
//! let solution = solver.solve(&problem).unwrap();
//! assert_eq!(solution.energies.len(), 2);
//! ```
//!
//! The same `Solver` value is what the serving scheduler (`served` crate)
//! executes per job, so a job submitted to the service and a direct call
//! here run the identical code path.

use crate::options::{Eig, FusionPolicy, KernelChoice, Precision, SolveOptions};
use crate::problem::CasidaProblem;
use crate::rank::IsdfRank;
use crate::timers::StageTimings;
use crate::versions::{Solution, Version};
use faultkit::SolveError;
use mathkit::lobpcg::LobpcgOptions;
use parcomm::Comm;

/// A fully-configured solve: algorithm [`Version`] plus every
/// [`SolveOptions`] knob. Cheap to copy; construct via [`Solver::builder`].
#[derive(Clone, Copy, Debug)]
pub struct Solver {
    version: Version,
    opts: SolveOptions,
}

impl Default for Solver {
    /// The paper's headline path ([`Version::ImplicitKmeansIsdfLobpcg`])
    /// with default options.
    fn default() -> Self {
        Solver { version: Version::ImplicitKmeansIsdfLobpcg, opts: SolveOptions::default() }
    }
}

impl Solver {
    /// Start configuring a solver. Defaults: the paper's implicit
    /// K-Means-ISDF-LOBPCG path with [`SolveOptions::default`] knobs.
    pub fn builder() -> SolverBuilder {
        SolverBuilder { solver: Solver::default() }
    }

    /// The algorithm version this solver runs.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The option set this solver runs with.
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// Serial solve through the recovery ladder. Replaces both the
    /// panicking `solve_with` shim (`.unwrap()` restores that behavior) and
    /// the raw `SolveOptions::run`.
    pub fn solve(&self, problem: &CasidaProblem) -> Result<Solution, SolveError> {
        self.opts.apply_runtime_knobs();
        self.opts.run(problem, self.version)
    }

    /// Distributed solve on an SPMD communicator: ISDF construction
    /// (Algorithm 1 + §4) then the configured eigensolver. Returns
    /// replicated eigenvalues plus this rank's stage timings. The `version`
    /// is ignored here — the distributed path is always the implicit ISDF
    /// pipeline; `options().eigensolver` picks the finisher.
    pub fn solve_distributed(
        &self,
        comm: &Comm,
        problem: &CasidaProblem,
    ) -> (Vec<f64>, StageTimings) {
        self.opts.apply_runtime_knobs();
        crate::parallel::distributed_solve_with(comm, problem, &self.opts)
    }
}

/// Builder for [`Solver`]: the algorithm version plus every
/// [`SolveOptions`] knob, as consuming methods.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverBuilder {
    solver: Solver,
}

impl SolverBuilder {
    /// Algorithm version (paper Table 4 row). Default: the implicit
    /// K-Means-ISDF-LOBPCG path.
    pub fn version(mut self, v: Version) -> Self {
        self.solver.version = v;
        self
    }

    /// Replace the whole option set at once (escape hatch for callers that
    /// already hold a [`SolveOptions`]).
    pub fn options(mut self, opts: SolveOptions) -> Self {
        self.solver.opts = opts;
        self
    }

    /// Number of excitations to return.
    pub fn n_states(mut self, k: usize) -> Self {
        self.solver.opts = self.solver.opts.n_states(k);
        self
    }

    /// ISDF rank policy.
    pub fn rank(mut self, rank: IsdfRank) -> Self {
        self.solver.opts = self.solver.opts.rank(rank);
        self
    }

    /// LOBPCG iteration/tolerance settings.
    pub fn lobpcg(mut self, opts: LobpcgOptions) -> Self {
        self.solver.opts = self.solver.opts.lobpcg(opts);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.solver.opts = self.solver.opts.seed(seed);
        self
    }

    /// Toggle the pipelined GEMM+`Reduce` overlap schedule.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.solver.opts = self.solver.opts.pipelined(on);
        self
    }

    /// Final eigensolver for the distributed solve.
    pub fn eigensolver(mut self, eig: Eig) -> Self {
        self.solver.opts = self.solver.opts.eigensolver(eig);
        self
    }

    /// Arithmetic precision of the LOBPCG solve path.
    pub fn precision(mut self, p: Precision) -> Self {
        self.solver.opts = self.solver.opts.precision(p);
        self
    }

    /// SIMD kernel dispatch policy (`MATHKIT_KERNEL` env overrides).
    pub fn kernel(mut self, k: KernelChoice) -> Self {
        self.solver.opts = self.solver.opts.kernel(k);
        self
    }

    /// Reduction fusion policy (`PARCOMM_NO_FUSE` env overrides).
    pub fn fusion(mut self, f: FusionPolicy) -> Self {
        self.solver.opts = self.solver.opts.fusion(f);
        self
    }

    /// Mark the configuration as a deliberate downgrade (see
    /// [`SolveOptions::degraded`]); the label is recorded in
    /// `Solution::recovery` and surfaced in served job outcomes.
    pub fn degraded(mut self, label: &'static str) -> Self {
        self.solver.opts = self.solver.opts.degraded(label);
        self
    }

    /// Finish configuration.
    pub fn build(self) -> Solver {
        self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthetic_problem;

    #[test]
    fn builder_defaults_to_paper_headline_path() {
        let s = Solver::builder().build();
        assert_eq!(s.version(), Version::ImplicitKmeansIsdfLobpcg);
        assert_eq!(s.options().n_states, 3);
    }

    #[test]
    fn facade_matches_raw_options_run_bitwise() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let solver = Solver::builder()
            .version(Version::KmeansIsdf)
            .n_states(2)
            .rank(IsdfRank::Fixed(p.n_cv()))
            .seed(11)
            .build();
        let via_facade = solver.solve(&p).unwrap();
        let via_opts = solver.options().run(&p, Version::KmeansIsdf).unwrap();
        for (a, b) in via_facade.energies.iter().zip(&via_opts.energies) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn distributed_facade_matches_distributed_solve_with() {
        let p = synthetic_problem([8, 8, 8], 6.0, 2, 2);
        let solver =
            Solver::builder().n_states(2).rank(IsdfRank::Fixed(p.n_cv())).seed(5).build();
        let facade = parcomm::spmd(2, |c| solver.solve_distributed(c, &p).0);
        let raw =
            parcomm::spmd(2, |c| crate::parallel::distributed_solve_with(c, &p, solver.options()).0);
        for (f, r) in facade.iter().zip(&raw) {
            for (x, y) in f.iter().zip(r) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn options_escape_hatch_replaces_everything() {
        let opts = SolveOptions::new().n_states(9).seed(1);
        let s = Solver::builder().options(opts).n_states(4).build();
        assert_eq!(s.options().n_states, 4, "later builder calls refine the injected set");
        assert_eq!(s.options().seed, 1);
    }
}
