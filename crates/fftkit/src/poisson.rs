//! Periodic Poisson solver — the Hartree kernel `f_H(r,r') = 1/|r−r'|`.
//!
//! In reciprocal space the kernel is diagonal: `v_H(G) = 4π/|G|²` (Hartree
//! atomic units). The `G = 0` component is dropped, which corresponds to the
//! usual uniform compensating background for charged densities in periodic
//! cells. This is exactly the operator applied in Algorithm 1 line 5 of the
//! paper ("apply the Hartree potential operator in reciprocal space").

use crate::complex::Complex;
use crate::fft3d::Fft3;

/// Precomputed `4π/|G|²` coefficients on a grid, plus the plan to get there.
pub struct PoissonSolver {
    plan: Fft3,
    /// `4π/|G|²` per grid point, zero at `G = 0`.
    coulomb_g: Vec<f64>,
}

impl PoissonSolver {
    /// Build for an orthorhombic cell with side lengths `(l1, l2, l3)` (Bohr)
    /// discretized on `(n1, n2, n3)` points. The plan is borrowed — cloning
    /// an [`Fft3`] only bumps the `Arc`s holding its tables.
    pub fn new(plan: &Fft3, lengths: [f64; 3]) -> Self {
        let coulomb_g = coulomb_coefficients(plan, lengths);
        PoissonSolver { plan: plan.clone(), coulomb_g }
    }

    #[inline]
    pub fn plan(&self) -> &Fft3 {
        &self.plan
    }

    /// The diagonal reciprocal-space Coulomb coefficients `4π/|G|²`.
    #[inline]
    pub fn coulomb_g(&self) -> &[f64] {
        &self.coulomb_g
    }

    /// Solve `∇²V = −4πρ` for a real density: returns the Hartree potential.
    pub fn hartree_potential(&self, density: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; density.len()];
        self.hartree_potential_into(density, &mut out);
        out
    }

    /// [`PoissonSolver::hartree_potential`] writing into a caller-owned
    /// buffer — the SCF loop calls this every iteration, so the output (and
    /// the engine's per-worker FFT scratch) is reused instead of reallocated.
    pub fn hartree_potential_into(&self, density: &[f64], v_h: &mut [f64]) {
        self.plan.apply_real_diagonal_batch(&self.coulomb_g, density, v_h, false);
    }

    /// Apply the Hartree operator to every column of a column-major batch of
    /// `k` real fields (`fields.len() == k·N`), adding into `out` when
    /// `accumulate`. Columns are packed in pairs through the two-for-one real
    /// transform, halving the 3-D FFT count versus per-column complex
    /// transforms — this is the fused kernel behind `HxcKernel::apply_into`.
    pub fn hartree_many(&self, fields: &[f64], out: &mut [f64], accumulate: bool) {
        self.plan.apply_real_diagonal_batch(&self.coulomb_g, fields, out, accumulate);
    }

    /// Apply the Hartree operator to an already-transformed spectrum in place.
    pub fn apply_in_reciprocal(&self, spec: &mut [Complex]) {
        assert_eq!(spec.len(), self.coulomb_g.len());
        for (z, &c) in spec.iter_mut().zip(self.coulomb_g.iter()) {
            *z = z.scale(c);
        }
    }
}

/// `4π/|G|²` for every grid point of `plan` in an orthorhombic box.
fn coulomb_coefficients(plan: &Fft3, lengths: [f64; 3]) -> Vec<f64> {
    let (n1, n2, n3) = (plan.n1, plan.n2, plan.n3);
    let b = [
        2.0 * std::f64::consts::PI / lengths[0],
        2.0 * std::f64::consts::PI / lengths[1],
        2.0 * std::f64::consts::PI / lengths[2],
    ];
    let mut out = vec![0.0; plan.len()];
    for i3 in 0..n3 {
        let m3 = signed_freq(i3, n3) as f64 * b[2];
        for i2 in 0..n2 {
            let m2 = signed_freq(i2, n2) as f64 * b[1];
            for i1 in 0..n1 {
                let m1 = signed_freq(i1, n1) as f64 * b[0];
                let g2 = m1 * m1 + m2 * m2 + m3 * m3;
                out[plan.idx(i1, i2, i3)] =
                    if g2 > 0.0 { 4.0 * std::f64::consts::PI / g2 } else { 0.0 };
            }
        }
    }
    out
}

/// FFT bin → signed integer frequency (`0..n/2`, then negative).
#[inline]
pub fn signed_freq(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

/// One-shot convenience: Hartree potential of `density`.
pub fn solve_poisson(plan: &Fft3, lengths: [f64; 3], density: &[f64]) -> Vec<f64> {
    PoissonSolver::new(plan, lengths).hartree_potential(density)
}

/// Hartree energy `E_H = ½ ∫ ρ V_H dr` on the grid (trapezoid = Riemann sum
/// for periodic fields).
pub fn hartree_energy(density: &[f64], v_h: &[f64], dv: f64) -> f64 {
    0.5 * dv * density.iter().zip(v_h.iter()).map(|(a, b)| a * b).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_freq_layout() {
        assert_eq!(signed_freq(0, 8), 0);
        assert_eq!(signed_freq(4, 8), 4);
        assert_eq!(signed_freq(5, 8), -3);
        assert_eq!(signed_freq(7, 8), -1);
        assert_eq!(signed_freq(2, 5), 2);
        assert_eq!(signed_freq(3, 5), -2);
    }

    #[test]
    fn plane_wave_density_analytic_potential() {
        // ρ(r) = cos(G·r) with G the first reciprocal vector along x
        // → V_H(r) = (4π/|G|²) cos(G·r).
        let n = 16;
        let l = 10.0;
        let plan = Fft3::new(n, n, n);
        let g = 2.0 * std::f64::consts::PI / l;
        let mut rho = vec![0.0; plan.len()];
        for i3 in 0..n {
            for i2 in 0..n {
                for i1 in 0..n {
                    let x = i1 as f64 * l / n as f64;
                    rho[plan.idx(i1, i2, i3)] = (g * x).cos();
                }
            }
        }
        let v = solve_poisson(&plan, [l, l, l], &rho);
        let scale = 4.0 * std::f64::consts::PI / (g * g);
        for i1 in 0..n {
            let x = i1 as f64 * l / n as f64;
            let expect = scale * (g * x).cos();
            let got = v[plan.idx(i1, 3, 7)];
            assert!((got - expect).abs() < 1e-9, "i1={i1}: {got} vs {expect}");
        }
    }

    #[test]
    fn neutral_shift_invariance() {
        // Adding a constant to the density must not change the potential
        // (G=0 dropped).
        let plan = Fft3::new(8, 8, 8);
        let l = [6.0, 6.0, 6.0];
        let rho: Vec<f64> = (0..plan.len()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let shifted: Vec<f64> = rho.iter().map(|r| r + 5.0).collect();
        let v1 = solve_poisson(&plan, l, &rho);
        let v2 = solve_poisson(&plan, l, &shifted);
        for (a, b) in v1.iter().zip(&v2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn laplacian_consistency() {
        // For a band-limited density, -∇²V/(4π) recovered spectrally = ρ−ρ̄.
        let n = 12;
        let l = 7.5;
        let plan = Fft3::new(n, n, n);
        let g1 = 2.0 * std::f64::consts::PI / l;
        let mut rho = vec![0.0; plan.len()];
        for i3 in 0..n {
            for i2 in 0..n {
                for i1 in 0..n {
                    let (x, y) = (i1 as f64 * l / n as f64, i2 as f64 * l / n as f64);
                    rho[plan.idx(i1, i2, i3)] = (g1 * x).cos() * (2.0 * g1 * y).sin() + 0.3;
                }
            }
        }
        let v = solve_poisson(&plan, [l, l, l], &rho);
        // apply -∇²/(4π) in G space
        let mut spec = plan.forward_real(&v);
        for i3 in 0..n {
            for i2 in 0..n {
                for i1 in 0..n {
                    let gg = [signed_freq(i1, n), signed_freq(i2, n), signed_freq(i3, n)];
                    let g2 = gg.iter().map(|&m| (m as f64 * g1).powi(2)).sum::<f64>();
                    let idx = plan.idx(i1, i2, i3);
                    spec[idx] = spec[idx].scale(g2 / (4.0 * std::f64::consts::PI));
                }
            }
        }
        let back = plan.inverse_to_real(spec);
        let mean = 0.3; // the G=0 part that was dropped
        for (a, b) in rho.iter().zip(&back) {
            assert!((a - mean - b).abs() < 1e-8);
        }
    }

    #[test]
    fn hartree_many_matches_per_column_solves() {
        let plan = Fft3::new(8, 6, 8);
        let l = [7.0, 5.0, 7.0];
        let solver = PoissonSolver::new(&plan, l);
        let n = plan.len();
        for k in [1usize, 2, 3] {
            let fields: Vec<f64> =
                (0..k * n).map(|i| ((i * 29 + 7 * k) % 13) as f64 * 0.3 - 1.8).collect();
            let mut out = vec![0.0; k * n];
            solver.hartree_many(&fields, &mut out, false);
            for j in 0..k {
                let v = solver.hartree_potential(&fields[j * n..(j + 1) * n]);
                for (a, b) in out[j * n..(j + 1) * n].iter().zip(v.iter()) {
                    assert!((a - b).abs() < 1e-10, "k={k} col={j}");
                }
            }
        }
    }

    #[test]
    fn hartree_energy_positive_for_real_density() {
        let plan = Fft3::new(8, 8, 8);
        let l = [5.0, 5.0, 5.0];
        // localized Gaussian blob (positive charge fluctuation)
        let mut rho = vec![0.0; plan.len()];
        for i3 in 0..8 {
            for i2 in 0..8 {
                for i1 in 0..8 {
                    let dx = (i1 as f64 - 4.0) * l[0] / 8.0;
                    let dy = (i2 as f64 - 4.0) * l[1] / 8.0;
                    let dz = (i3 as f64 - 4.0) * l[2] / 8.0;
                    rho[plan.idx(i1, i2, i3)] = (-(dx * dx + dy * dy + dz * dz)).exp();
                }
            }
        }
        let v = solve_poisson(&plan, l, &rho);
        let dv = (l[0] / 8.0) * (l[1] / 8.0) * (l[2] / 8.0);
        assert!(hartree_energy(&rho, &v, dv) > 0.0);
    }
}
