//! # fftkit — FFT substrate (replaces FFTW)
//!
//! The LR-TDDFT pipeline Fourier-transforms the orbital-pair products
//! `P_vc(r)` to reciprocal space, applies the diagonal Hartree operator
//! `4π/|G|²`, and transforms back (paper Algorithm 1, lines 4–5). The
//! ground-state DFT substrate additionally needs forward/backward transforms
//! of densities and wavefunctions.
//!
//! Provided here:
//! * [`Complex`] — a minimal `f64` complex type (no external dependency),
//! * [`Plan1d`] — a planned 1-D transform: precomputed bit-reversal and
//!   twiddle tables for power-of-two lengths, cached Bluestein chirp and
//!   convolution-kernel spectra otherwise (any length). [`fft`]/[`ifft`]
//!   remain as conveniences backed by a process-wide plan cache,
//! * [`Fft3`] — planned 3-D transform over a `n1 × n2 × n3` grid with
//!   batched entry points ([`Fft3::forward_many`]) that tile strided lines
//!   through per-worker scratch, and a two-for-one real-field path
//!   ([`Fft3::apply_real_diagonal_batch`]) that packs pairs of real fields
//!   into one complex grid and halves the 3-D FFT count of every diagonal
//!   reciprocal-space kernel application,
//! * [`poisson`] — the periodic Poisson solver / Hartree kernel, including
//!   the fused batched [`PoissonSolver::hartree_many`].

pub mod complex;
pub mod fft1d;
pub mod fft3d;
pub mod poisson;

pub use complex::Complex;
pub use fft1d::{fft, fft_inplace, ifft, ifft_inplace, Plan1d};
pub use fft3d::{pack_real_pair, Fft3};
pub use poisson::{hartree_energy, solve_poisson, PoissonSolver};
