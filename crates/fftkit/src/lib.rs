//! # fftkit — FFT substrate (replaces FFTW)
//!
//! The LR-TDDFT pipeline Fourier-transforms the orbital-pair products
//! `P_vc(r)` to reciprocal space, applies the diagonal Hartree operator
//! `4π/|G|²`, and transforms back (paper Algorithm 1, lines 4–5). The
//! ground-state DFT substrate additionally needs forward/backward transforms
//! of densities and wavefunctions.
//!
//! Provided here:
//! * [`Complex`] — a minimal `f64` complex type (no external dependency),
//! * [`fft`]/[`ifft`] — 1-D transforms: iterative radix-2 Cooley–Tukey for
//!   power-of-two lengths, Bluestein's algorithm otherwise (any length),
//! * [`Fft3`] — 3-D transform over a `n1 × n2 × n3` grid with plan reuse,
//! * [`poisson`] — the periodic Poisson solver / Hartree kernel.

pub mod complex;
pub mod fft1d;
pub mod fft3d;
pub mod poisson;

pub use complex::Complex;
pub use fft1d::{fft, fft_inplace, ifft, ifft_inplace};
pub use fft3d::Fft3;
pub use poisson::{hartree_energy, solve_poisson, PoissonSolver};
