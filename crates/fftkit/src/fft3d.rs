//! 3-D FFT over a real-space grid.
//!
//! Layout convention: a scalar field on an `n1 × n2 × n3` grid is stored as a
//! flat slice with index `i1 + n1*(i2 + n2*i3)` — the same Fortran-ordering
//! PWDFT uses, so axis-1 lines are contiguous.
//!
//! The 3-D transform is three passes of batched 1-D transforms. Each pass is
//! Rayon-parallel over independent lines, matching the paper's column-block
//! distribution where every MPI task FFTs its own orbitals independently.

use crate::complex::Complex;
use crate::fft1d::{fft_inplace, ifft_inplace};
use rayon::prelude::*;

/// A reusable 3-D FFT "plan" (grid dimensions + scratch strategy).
#[derive(Clone, Debug)]
pub struct Fft3 {
    pub n1: usize,
    pub n2: usize,
    pub n3: usize,
}

impl Fft3 {
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        assert!(n1 > 0 && n2 > 0 && n3 > 0);
        Fft3 { n1, n2, n3 }
    }

    /// Total grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of grid point `(i1, i2, i3)`.
    #[inline]
    pub fn idx(&self, i1: usize, i2: usize, i3: usize) -> usize {
        i1 + self.n1 * (i2 + self.n2 * i3)
    }

    /// Forward in-place 3-D FFT (no normalization).
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.len());
        self.transform(data, false);
    }

    /// Inverse in-place 3-D FFT (normalized by `1/N`).
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.len());
        self.transform(data, true);
    }

    /// Forward transform of a real field into a freshly allocated complex grid.
    pub fn forward_real(&self, real: &[f64]) -> Vec<Complex> {
        assert_eq!(real.len(), self.len());
        let mut c: Vec<Complex> = real.iter().map(|&v| Complex::from_re(v)).collect();
        self.forward(&mut c);
        c
    }

    /// Inverse transform returning only the real part (for fields known to be
    /// real in real space, e.g. densities and Hartree potentials).
    pub fn inverse_to_real(&self, mut data: Vec<Complex>) -> Vec<f64> {
        self.inverse(&mut data);
        data.into_iter().map(|z| z.re).collect()
    }

    fn transform(&self, data: &mut [Complex], inverse: bool) {
        obskit::add_fft_calls(1);
        let (n1, n2, n3) = (self.n1, self.n2, self.n3);
        let apply = |line: &mut Vec<Complex>| {
            if inverse {
                ifft_inplace(line);
            } else {
                fft_inplace(line);
            }
        };

        // Pass 1: axis-1 lines are contiguous chunks of length n1.
        data.par_chunks_mut(n1).for_each(|chunk| {
            let mut line = chunk.to_vec();
            apply(&mut line);
            chunk.copy_from_slice(&line);
        });

        // Pass 2: axis-2 lines, stride n1 within each i3-plane.
        let plane = n1 * n2;
        // Collect per-(i3, i1) lines; parallelize over planes.
        let data_ptr = SendPtr(data.as_mut_ptr());
        (0..n3).into_par_iter().for_each(|i3| {
            let base = i3 * plane;
            let mut line = vec![Complex::ZERO; n2];
            for i1 in 0..n1 {
                // SAFETY: each (i3, i1) pair touches a disjoint strided line.
                let p = data_ptr;
                unsafe {
                    for (i2, l) in line.iter_mut().enumerate() {
                        *l = *p.0.add(base + i1 + i2 * n1);
                    }
                }
                apply(&mut line);
                unsafe {
                    for (i2, l) in line.iter().enumerate() {
                        *p.0.add(base + i1 + i2 * n1) = *l;
                    }
                }
            }
        });

        // Pass 3: axis-3 lines, stride n1*n2; parallelize over (i2) rows.
        let data_ptr = SendPtr(data.as_mut_ptr());
        (0..n2).into_par_iter().for_each(|i2| {
            let mut line = vec![Complex::ZERO; n3];
            for i1 in 0..n1 {
                let p = data_ptr;
                let off = i1 + i2 * n1;
                // SAFETY: disjoint strided lines per (i1, i2).
                unsafe {
                    for (i3, l) in line.iter_mut().enumerate() {
                        *l = *p.0.add(off + i3 * plane);
                    }
                }
                apply(&mut line);
                unsafe {
                    for (i3, l) in line.iter().enumerate() {
                        *p.0.add(off + i3 * plane) = *l;
                    }
                }
            }
        });
    }
}

/// Raw pointer wrapper so disjoint strided writes can cross Rayon tasks.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_field(n: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn roundtrip_cubic() {
        let plan = Fft3::new(8, 8, 8);
        let x = rand_field(plan.len(), 3);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_anisotropic_nonpow2() {
        let plan = Fft3::new(6, 5, 9);
        let x = rand_field(plan.len(), 11);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_separable_naive_dft() {
        // 3-D DFT of a delta at the origin is all-ones.
        let plan = Fft3::new(4, 3, 5);
        let mut x = vec![Complex::ZERO; plan.len()];
        x[0] = Complex::ONE;
        plan.forward(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-10 && v.im.abs() < 1e-10);
        }
    }

    #[test]
    fn plane_wave_maps_to_single_g() {
        // x(r) = e^{2πi (k·r)/n} → delta at bin k.
        let plan = Fft3::new(8, 8, 8);
        let (k1, k2, k3) = (2usize, 5, 1);
        let mut x = vec![Complex::ZERO; plan.len()];
        for i3 in 0..8 {
            for i2 in 0..8 {
                for i1 in 0..8 {
                    let phase = 2.0 * std::f64::consts::PI
                        * ((k1 * i1 + k2 * i2 + k3 * i3) as f64 / 8.0);
                    x[plan.idx(i1, i2, i3)] = Complex::cis(phase);
                }
            }
        }
        plan.forward(&mut x);
        let hot = plan.idx(k1, k2, k3);
        for (i, v) in x.iter().enumerate() {
            if i == hot {
                assert!((v.re - 512.0).abs() < 1e-7);
            } else {
                assert!(v.abs() < 1e-7, "leakage at {i}");
            }
        }
    }

    #[test]
    fn real_field_has_hermitian_spectrum() {
        let plan = Fft3::new(4, 4, 4);
        let real: Vec<f64> = (0..plan.len()).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let spec = plan.forward_real(&real);
        // F(-G) = conj(F(G))
        for i3 in 0..4 {
            for i2 in 0..4 {
                for i1 in 0..4 {
                    let a = spec[plan.idx(i1, i2, i3)];
                    let b = spec[plan.idx((4 - i1) % 4, (4 - i2) % 4, (4 - i3) % 4)];
                    assert!((a - b.conj()).abs() < 1e-9);
                }
            }
        }
        let back = plan.inverse_to_real(spec);
        for (a, b) in real.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
