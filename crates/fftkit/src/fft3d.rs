//! 3-D FFT over a real-space grid — planned, batched, with a two-for-one
//! real-field path.
//!
//! Layout convention: a scalar field on an `n1 × n2 × n3` grid is stored as a
//! flat slice with index `i1 + n1*(i2 + n2*i3)` — the same Fortran-ordering
//! PWDFT uses, so axis-1 lines are contiguous.
//!
//! The 3-D transform is three passes of batched 1-D transforms against the
//! per-axis [`Plan1d`] tables held by the plan (built once in [`Fft3::new`]):
//! no trig, no twiddle recurrence, and no per-line allocation runs inside a
//! transform. Axis-2/axis-3 lines are strided, so they are gathered into
//! cache-blocked tiles of [`LINE_TILE`] lines per worker-scratch buffer,
//! transformed contiguously, and scattered back. Each pass is Rayon-parallel
//! over independent line sets, matching the paper's column-block distribution
//! where every MPI task FFTs its own orbitals independently.
//!
//! For *real* fields (Γ-point orbital pair products, densities, potentials)
//! the engine additionally offers a two-for-one path: two real fields `a, b`
//! are packed as `z = a + i·b`, one complex transform produces both spectra
//! (recoverable by Hermitian symmetry, see [`Fft3::split_packed_spectrum`]),
//! a diagonal reciprocal-space kernel is applied, and one inverse transform
//! returns both filtered fields in the real and imaginary parts. This halves
//! the 3-D FFT count of every real-field kernel application in the code base
//! — see [`Fft3::apply_real_diagonal_batch`].

use crate::complex::Complex;
use crate::fft1d::Plan1d;
use rayon::prelude::*;
use std::sync::Arc;

/// Lines gathered per tile in the strided passes. Eight complex lines of a
/// 64-point axis are 8 KiB — comfortably L1-resident next to the twiddles.
const LINE_TILE: usize = 8;

/// A reusable 3-D FFT plan: grid dimensions plus per-axis 1-D plans
/// (bit-reversal + twiddle tables, cached Bluestein chirp/kernel spectra for
/// non-power-of-two axes). Cloning shares the tables via `Arc`.
#[derive(Clone, Debug)]
pub struct Fft3 {
    pub n1: usize,
    pub n2: usize,
    pub n3: usize,
    ax1: Arc<Plan1d>,
    ax2: Arc<Plan1d>,
    ax3: Arc<Plan1d>,
}

/// Per-worker scratch for the strided passes: one tile of gathered lines
/// plus the Bluestein convolution buffer. Reused across every line a worker
/// touches — nothing is allocated inside a transform after warm-up.
struct Scratch {
    lines: Vec<Complex>,
    conv: Vec<Complex>,
}

impl Scratch {
    fn new() -> Self {
        Scratch { lines: Vec::new(), conv: Vec::new() }
    }
}

/// Raw pointer wrapper so disjoint strided writes can cross Rayon tasks.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl Fft3 {
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        assert!(n1 > 0 && n2 > 0 && n3 > 0);
        let ax1 = crate::fft1d::plan(n1);
        let ax2 = if n2 == n1 { ax1.clone() } else { crate::fft1d::plan(n2) };
        let ax3 = if n3 == n1 {
            ax1.clone()
        } else if n3 == n2 {
            ax2.clone()
        } else {
            crate::fft1d::plan(n3)
        };
        Fft3 { n1, n2, n3, ax1, ax2, ax3 }
    }

    /// Total grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of grid point `(i1, i2, i3)`.
    #[inline]
    pub fn idx(&self, i1: usize, i2: usize, i3: usize) -> usize {
        i1 + self.n1 * (i2 + self.n2 * i3)
    }

    /// Flat index of `−G` for flat index `idx` — the bin whose spectrum value
    /// is the conjugate of `idx`'s for any real field (Hermitian symmetry).
    #[inline]
    pub fn conj_index(&self, idx: usize) -> usize {
        let i1 = idx % self.n1;
        let i2 = (idx / self.n1) % self.n2;
        let i3 = idx / (self.n1 * self.n2);
        let j1 = (self.n1 - i1) % self.n1;
        let j2 = (self.n2 - i2) % self.n2;
        let j3 = (self.n3 - i3) % self.n3;
        self.idx(j1, j2, j3)
    }

    /// Forward in-place 3-D FFT (no normalization).
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.len());
        obskit::add_fft_calls(1);
        self.transform_par(data, false);
    }

    /// Inverse in-place 3-D FFT (normalized by `1/N`).
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.len());
        obskit::add_fft_calls(1);
        self.transform_par(data, true);
    }

    /// Forward transform of a batch of grids stored back to back
    /// (`batch.len()` must be a multiple of [`Fft3::len`]). Grids are
    /// distributed over Rayon workers, each owning one scratch set.
    pub fn forward_many(&self, batch: &mut [Complex]) {
        self.many(batch, false);
    }

    /// Inverse transform (normalized) of a back-to-back batch of grids.
    pub fn inverse_many(&self, batch: &mut [Complex]) {
        self.many(batch, true);
    }

    fn many(&self, batch: &mut [Complex], inverse: bool) {
        let len = self.len();
        assert_eq!(batch.len() % len, 0, "batch length must be a multiple of the grid size");
        let count = batch.len() / len;
        obskit::add_fft_calls(count as u64);
        batch
            .par_chunks_mut(len)
            .for_each_init(Scratch::new, |s, grid| self.transform_seq(grid, inverse, s));
    }

    /// Forward transform of a real field into a freshly allocated complex grid.
    pub fn forward_real(&self, real: &[f64]) -> Vec<Complex> {
        assert_eq!(real.len(), self.len());
        let mut c: Vec<Complex> = real.iter().map(|&v| Complex::from_re(v)).collect();
        self.forward(&mut c);
        c
    }

    /// Inverse transform returning only the real part (for fields known to be
    /// real in real space, e.g. densities and Hartree potentials).
    pub fn inverse_to_real(&self, mut data: Vec<Complex>) -> Vec<f64> {
        self.inverse(&mut data);
        data.into_iter().map(|z| z.re).collect()
    }

    /// Split a packed-pair spectrum: if `z = FFT(a + i·b)` for real fields
    /// `a, b`, Hermitian symmetry recovers both individual spectra as
    /// `A(G) = (z(G) + conj(z(−G)))/2` and `B(G) = −i(z(G) − conj(z(−G)))/2`.
    pub fn split_packed_spectrum(&self, z: &[Complex]) -> (Vec<Complex>, Vec<Complex>) {
        assert_eq!(z.len(), self.len());
        let mut a = vec![Complex::ZERO; z.len()];
        let mut b = vec![Complex::ZERO; z.len()];
        for g in 0..z.len() {
            let zc = z[self.conj_index(g)].conj();
            a[g] = (z[g] + zc).scale(0.5);
            b[g] = (z[g] - zc) * Complex::new(0.0, -0.5);
        }
        (a, b)
    }

    /// Apply a diagonal reciprocal-space kernel `coeff` to `k` real fields
    /// stored column-major in `fields` (length `k·N`), writing the filtered
    /// real fields into `out` (`+=` when `accumulate`).
    ///
    /// `coeff` must be real and even under `G → −G` (`coeff[conj_index(g)] ==
    /// coeff[g]`) — true for any kernel that is a function of `|G|²`, e.g. the
    /// Hartree `4π/|G|²`, the kinetic `½|G|²`, or the Teter preconditioner.
    /// Evenness is what keeps the two-for-one packing exact: columns are
    /// packed in pairs `z = a + i·b`, one forward transform yields both
    /// spectra superposed, the even kernel scales both Hermitian halves
    /// identically, and one inverse transform returns `kernel∗a` in the real
    /// part and `kernel∗b` in the imaginary part — two 3-D FFTs per pair of
    /// columns instead of four.
    pub fn apply_real_diagonal_batch(
        &self,
        coeff: &[f64],
        fields: &[f64],
        out: &mut [f64],
        accumulate: bool,
    ) {
        let len = self.len();
        assert_eq!(coeff.len(), len, "coefficient table must match the grid");
        assert_eq!(fields.len(), out.len(), "fields/out length mismatch");
        assert_eq!(fields.len() % len, 0, "fields length must be a multiple of the grid size");
        debug_assert!(
            (0..len).step_by((len / 64).max(1)).all(|g| {
                let c = coeff[g];
                (c - coeff[self.conj_index(g)]).abs() <= 1e-12 * c.abs().max(1.0)
            }),
            "diagonal kernel must be even under G → −G for the two-for-one path"
        );
        let k = fields.len() / len;
        obskit::add_fft_calls(2 * k.div_ceil(2) as u64);
        out.par_chunks_mut(2 * len).enumerate().for_each_init(
            || (vec![Complex::ZERO; len], Scratch::new()),
            |(z, s), (p, out_pair)| {
                let f = &fields[2 * p * len..2 * p * len + out_pair.len()];
                if out_pair.len() == 2 * len {
                    let (fa, fb) = f.split_at(len);
                    for ((zv, &a), &b) in z.iter_mut().zip(fa.iter()).zip(fb.iter()) {
                        *zv = Complex::new(a, b);
                    }
                } else {
                    for (zv, &a) in z.iter_mut().zip(f.iter()) {
                        *zv = Complex::from_re(a);
                    }
                }
                self.transform_seq(z, false, s);
                for (zv, &c) in z.iter_mut().zip(coeff.iter()) {
                    *zv = zv.scale(c);
                }
                self.transform_seq(z, true, s);
                if out_pair.len() == 2 * len {
                    let (oa, ob) = out_pair.split_at_mut(len);
                    if accumulate {
                        for ((o, q), zv) in oa.iter_mut().zip(ob.iter_mut()).zip(z.iter()) {
                            *o += zv.re;
                            *q += zv.im;
                        }
                    } else {
                        for ((o, q), zv) in oa.iter_mut().zip(ob.iter_mut()).zip(z.iter()) {
                            *o = zv.re;
                            *q = zv.im;
                        }
                    }
                } else if accumulate {
                    for (o, zv) in out_pair.iter_mut().zip(z.iter()) {
                        *o += zv.re;
                    }
                } else {
                    for (o, zv) in out_pair.iter_mut().zip(z.iter()) {
                        *o = zv.re;
                    }
                }
            },
        );
    }

    /// One full 3-D transform, parallel over line sets within the grid
    /// (used by the single-grid entry points).
    fn transform_par(&self, data: &mut [Complex], inverse: bool) {
        let (n1, n2) = (self.n1, self.n2);
        let plane = n1 * n2;

        // Pass 1: axis-1 lines are contiguous; transform in place, several
        // lines per task so scratch init amortizes.
        data.par_chunks_mut(n1 * LINE_TILE).for_each_init(Scratch::new, |s, block| {
            for line in block.chunks_mut(n1) {
                self.line(&self.ax1, line, inverse, s);
            }
        });

        // Pass 2: axis-2 lines, stride n1. Planes are contiguous chunks, so
        // each worker owns whole planes.
        data.par_chunks_mut(plane).for_each_init(Scratch::new, |s, pl| {
            let p = SendPtr(pl.as_mut_ptr());
            self.pass2_plane(p, inverse, s);
        });

        // Pass 3: axis-3 lines, stride n1*n2, spanning every plane;
        // parallelize over i2 rows (disjoint strided line sets).
        let p = SendPtr(data.as_mut_ptr());
        (0..n2).into_par_iter().for_each_init(Scratch::new, |s, i2| {
            self.pass3_row(p, i2, inverse, s);
        });
    }

    /// One full 3-D transform on the calling thread (used inside batches,
    /// where parallelism lives across grids, not within one).
    fn transform_seq(&self, data: &mut [Complex], inverse: bool, s: &mut Scratch) {
        let (n1, n2, n3) = (self.n1, self.n2, self.n3);
        let plane = n1 * n2;
        for line in data.chunks_mut(n1) {
            self.line(&self.ax1, line, inverse, s);
        }
        for i3 in 0..n3 {
            let p = SendPtr(data[i3 * plane..(i3 + 1) * plane].as_mut_ptr());
            self.pass2_plane(p, inverse, s);
        }
        let p = SendPtr(data.as_mut_ptr());
        for i2 in 0..n2 {
            self.pass3_row(p, i2, inverse, s);
        }
    }

    #[inline]
    fn line(&self, plan: &Plan1d, x: &mut [Complex], inverse: bool, s: &mut Scratch) {
        if inverse {
            plan.inverse(x, &mut s.conv);
        } else {
            plan.forward(x, &mut s.conv);
        }
    }

    /// Axis-2 pass over one `n1 × n2` plane pointed to by `p`.
    fn pass2_plane(&self, p: SendPtr, inverse: bool, s: &mut Scratch) {
        let (n1, n2) = (self.n1, self.n2);
        let mut i1 = 0;
        while i1 < n1 {
            let w = LINE_TILE.min(n1 - i1);
            // SAFETY: the tile touches only `{i1..i1+w} × {0..n2}` of this
            // plane; tiles are disjoint and the caller hands each plane to
            // exactly one worker.
            unsafe { self.strided_tile(p, i1, w, n2, n1, &self.ax2, inverse, s) };
            i1 += w;
        }
    }

    /// Axis-3 pass over the `i2`-th row family of the whole grid.
    fn pass3_row(&self, p: SendPtr, i2: usize, inverse: bool, s: &mut Scratch) {
        let (n1, n3) = (self.n1, self.n3);
        let plane = n1 * self.n2;
        let mut i1 = 0;
        while i1 < n1 {
            let w = LINE_TILE.min(n1 - i1);
            // SAFETY: the tile touches only `{i1..i1+w}` at this `i2` across
            // all planes; (i2, tile) regions are pairwise disjoint.
            unsafe { self.strided_tile(p, i2 * n1 + i1, w, n3, plane, &self.ax3, inverse, s) };
            i1 += w;
        }
    }

    /// Gather `nline` consecutive strided lines (`base + t + e*stride` for
    /// line `t`, element `e`) into the scratch tile, transform each
    /// contiguously, and scatter back.
    ///
    /// # Safety
    /// `base + t + e*stride` must be in bounds for all `t < nline`,
    /// `e < len`, and no other thread may touch those elements concurrently.
    #[allow(clippy::too_many_arguments)]
    unsafe fn strided_tile(
        &self,
        p: SendPtr,
        base: usize,
        nline: usize,
        len: usize,
        stride: usize,
        plan: &Plan1d,
        inverse: bool,
        s: &mut Scratch,
    ) {
        s.lines.resize(nline * len, Complex::ZERO);
        for e in 0..len {
            let src = p.0.add(base + e * stride);
            for t in 0..nline {
                *s.lines.get_unchecked_mut(t * len + e) = *src.add(t);
            }
        }
        // Transform the gathered lines without holding a borrow of `s`.
        let mut lines = std::mem::take(&mut s.lines);
        for line in lines.chunks_mut(len) {
            self.line(plan, line, inverse, s);
        }
        s.lines = lines;
        for e in 0..len {
            let dst = p.0.add(base + e * stride);
            for t in 0..nline {
                *dst.add(t) = *s.lines.get_unchecked(t * len + e);
            }
        }
    }
}

/// Pack two real fields into one complex grid: `out[i] = a[i] + i·b[i]`.
pub fn pack_real_pair(a: &[f64], b: &[f64], out: &mut [Complex]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = Complex::new(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_field(n: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    fn rand_real(n: usize, seed: u64) -> Vec<f64> {
        rand_field(n, seed).into_iter().map(|z| z.re).collect()
    }

    #[test]
    fn roundtrip_cubic() {
        let plan = Fft3::new(8, 8, 8);
        let x = rand_field(plan.len(), 3);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_anisotropic_nonpow2() {
        let plan = Fft3::new(6, 5, 9);
        let x = rand_field(plan.len(), 11);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_separable_naive_dft() {
        // 3-D DFT of a delta at the origin is all-ones.
        let plan = Fft3::new(4, 3, 5);
        let mut x = vec![Complex::ZERO; plan.len()];
        x[0] = Complex::ONE;
        plan.forward(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-10 && v.im.abs() < 1e-10);
        }
    }

    #[test]
    fn plane_wave_maps_to_single_g() {
        // x(r) = e^{2πi (k·r)/n} → delta at bin k.
        let plan = Fft3::new(8, 8, 8);
        let (k1, k2, k3) = (2usize, 5, 1);
        let mut x = vec![Complex::ZERO; plan.len()];
        for i3 in 0..8 {
            for i2 in 0..8 {
                for i1 in 0..8 {
                    let phase = 2.0 * std::f64::consts::PI
                        * ((k1 * i1 + k2 * i2 + k3 * i3) as f64 / 8.0);
                    x[plan.idx(i1, i2, i3)] = Complex::cis(phase);
                }
            }
        }
        plan.forward(&mut x);
        let hot = plan.idx(k1, k2, k3);
        for (i, v) in x.iter().enumerate() {
            if i == hot {
                assert!((v.re - 512.0).abs() < 1e-7);
            } else {
                assert!(v.abs() < 1e-7, "leakage at {i}");
            }
        }
    }

    #[test]
    fn real_field_has_hermitian_spectrum() {
        let plan = Fft3::new(4, 4, 4);
        let real: Vec<f64> = (0..plan.len()).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let spec = plan.forward_real(&real);
        // F(-G) = conj(F(G)), with conj_index supplying the -G bin.
        for (g, v) in spec.iter().enumerate() {
            let b = spec[plan.conj_index(g)];
            assert!((*v - b.conj()).abs() < 1e-9);
        }
        let back = plan.inverse_to_real(spec);
        for (a, b) in real.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn conj_index_is_an_involution() {
        let plan = Fft3::new(4, 6, 5);
        for g in 0..plan.len() {
            assert_eq!(plan.conj_index(plan.conj_index(g)), g);
        }
        assert_eq!(plan.conj_index(0), 0);
    }

    #[test]
    fn batched_matches_single_transforms() {
        let plan = Fft3::new(4, 5, 8);
        let len = plan.len();
        let k = 3;
        let mut batch: Vec<Complex> = (0..k).flat_map(|j| rand_field(len, 7 + j)).collect();
        let singles: Vec<Vec<Complex>> = (0..k)
            .map(|j| {
                let mut g = batch[j as usize * len..(j as usize + 1) * len].to_vec();
                plan.forward(&mut g);
                g
            })
            .collect();
        plan.forward_many(&mut batch);
        for j in 0..k as usize {
            for (a, b) in batch[j * len..(j + 1) * len].iter().zip(singles[j].iter()) {
                assert!((*a - *b).abs() < 1e-11);
            }
        }
        plan.inverse_many(&mut batch);
        for (j, orig) in (0..k).map(|j| rand_field(len, 7 + j)).enumerate() {
            for (a, b) in batch[j * len..(j + 1) * len].iter().zip(orig.iter()) {
                assert!((*a - *b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn split_packed_spectrum_recovers_individual_spectra() {
        let plan = Fft3::new(4, 4, 6);
        let a = rand_real(plan.len(), 21);
        let b = rand_real(plan.len(), 22);
        let mut z = vec![Complex::ZERO; plan.len()];
        pack_real_pair(&a, &b, &mut z);
        plan.forward(&mut z);
        let (sa, sb) = plan.split_packed_spectrum(&z);
        let ra = plan.forward_real(&a);
        let rb = plan.forward_real(&b);
        for g in 0..plan.len() {
            assert!((sa[g] - ra[g]).abs() < 1e-10, "A spectrum differs at {g}");
            assert!((sb[g] - rb[g]).abs() < 1e-10, "B spectrum differs at {g}");
        }
    }

    #[test]
    fn two_for_one_kernel_apply_matches_per_column() {
        let plan = Fft3::new(4, 6, 4);
        let len = plan.len();
        // Even diagonal kernel: a function of the bin's |G|-like magnitude.
        let coeff: Vec<f64> = (0..len)
            .map(|g| {
                let cg = plan.conj_index(g);
                1.0 + 0.1 * (g.min(cg) as f64)
            })
            .collect();
        for k in [1usize, 2, 3, 5] {
            let fields: Vec<f64> = (0..k).flat_map(|j| rand_real(len, 40 + j as u64)).collect();
            let mut out = vec![0.5; fields.len()];
            plan.apply_real_diagonal_batch(&coeff, &fields, &mut out, false);
            for j in 0..k {
                let col = &fields[j * len..(j + 1) * len];
                let mut spec = plan.forward_real(col);
                for (z, &c) in spec.iter_mut().zip(coeff.iter()) {
                    *z = z.scale(c);
                }
                let expect = plan.inverse_to_real(spec);
                for (o, e) in out[j * len..(j + 1) * len].iter().zip(expect.iter()) {
                    assert!((o - e).abs() < 1e-10, "k={k} col={j}");
                }
            }
            // Accumulate mode adds on top.
            let mut acc = vec![1.0; fields.len()];
            plan.apply_real_diagonal_batch(&coeff, &fields, &mut acc, true);
            for (a, o) in acc.iter().zip(out.iter()) {
                assert!((a - 1.0 - o).abs() < 1e-10);
            }
        }
    }
}
