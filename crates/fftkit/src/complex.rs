//! Minimal complex arithmetic — just what the FFT and plane-wave kernels use.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Real number embedded in the complex plane.
    #[inline]
    pub fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, o: Complex) -> Complex {
        let d = o.norm_sqr();
        Complex {
            re: (self.re * o.re + self.im * o.im) / d,
            im: (self.im * o.re - self.re * o.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-14 && (q.im - a.im).abs() < 1e-14);
    }

    #[test]
    fn cis_and_conj() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < 1e-15 && (z.im - 1.0).abs() < 1e-15);
        assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
        // |e^{iθ}| = 1
        for k in 0..8 {
            assert!((Complex::cis(k as f64).abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }
}
