//! 1-D complex FFT.
//!
//! * Power-of-two lengths: iterative radix-2 Cooley–Tukey with precomputed
//!   bit-reversal and twiddle tables (the workhorse — plane-wave grids are
//!   chosen as powers of two, as on the Cori runs where `N_r = 104³` was the
//!   FFT-friendly grid for Si₁₀₀₀; we snap to powers of two instead).
//! * Arbitrary lengths: Bluestein's chirp-z algorithm, which reduces any `n`
//!   to a power-of-two convolution. This keeps the library usable for the
//!   odd grid dimensions produced by non-cubic cells.

use crate::complex::Complex;

/// Forward DFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}` (no normalization).
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    fft_inplace(&mut buf);
    buf
}

/// Inverse DFT: `x[j] = (1/n) Σ_k X[k] e^{+2πi jk/n}`.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    ifft_inplace(&mut buf);
    buf
}

/// In-place forward DFT.
pub fn fft_inplace(x: &mut [Complex]) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(x, false);
    } else {
        bluestein(x, false);
    }
}

/// In-place inverse DFT (includes the `1/n` normalization).
pub fn ifft_inplace(x: &mut [Complex]) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(x, true);
    } else {
        bluestein(x, true);
    }
    let inv = 1.0 / n as f64;
    for v in x.iter_mut() {
        *v = v.scale(inv);
    }
}

/// Iterative radix-2 Cooley–Tukey (decimation in time).
fn radix2(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = x[i + k];
                let v = x[i + k + half] * w;
                x[i + k] = u + v;
                x[i + k + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein chirp-z: DFT of arbitrary length via a power-of-two convolution.
fn bluestein(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[j] = e^{sign * -πi j² / n}; use j² mod 2n to avoid overflow.
    let mut chirp = Vec::with_capacity(n);
    for j in 0..n {
        let jj = (j * j) % (2 * n);
        chirp.push(Complex::cis(sign * std::f64::consts::PI * jj as f64 / n as f64));
    }
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for j in 0..n {
        a[j] = x[j] * chirp[j];
        b[j] = chirp[j].conj();
    }
    for j in 1..n {
        b[m - j] = chirp[j].conj();
    }
    radix2(&mut a, false);
    radix2(&mut b, false);
    for (av, bv) in a.iter_mut().zip(b.iter()) {
        *av *= *bv;
    }
    radix2(&mut a, true);
    let minv = 1.0 / m as f64;
    for j in 0..n {
        x[j] = a[j].scale(minv) * chirp[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = x.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &xi) in x.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                *o += xi * Complex::cis(ang);
            }
        }
        if inverse {
            for o in &mut out {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Simple xorshift so the test needs no RNG dependency wiring.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.iter().zip(b.iter()).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = rand_signal(n, 42 + n as u64);
            assert!(close(&fft(&x), &naive_dft(&x, false), 1e-10), "n={n}");
        }
    }

    #[test]
    fn matches_naive_dft_nonpow2() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 27, 100] {
            let x = rand_signal(n, 7 + n as u64);
            assert!(close(&fft(&x), &naive_dft(&x, false), 1e-9), "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for &n in &[8usize, 13, 32, 45, 128] {
            let x = rand_signal(n, n as u64);
            let y = ifft(&fft(&x));
            assert!(close(&x, &y, 1e-10), "n={n}");
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let y = fft(&x);
        for v in y {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        for &n in &[16usize, 21] {
            let x = rand_signal(n, 99);
            let y = fft(&x);
            let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((ex - ey).abs() < 1e-9 * ex.max(1.0), "n={n}");
        }
    }

    #[test]
    fn pure_tone_single_bin() {
        let n = 32;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 24;
        let x = rand_signal(n, 1);
        let y = rand_signal(n, 2);
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + b.scale(2.5)).collect();
        let fs = fft(&sum);
        let fx = fft(&x);
        let fy = fft(&y);
        let expect: Vec<Complex> = fx.iter().zip(&fy).map(|(a, b)| *a + b.scale(2.5)).collect();
        assert!(close(&fs, &expect, 1e-9));
    }
}
